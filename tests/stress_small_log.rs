//! Small-log stress: drive every construction through thousands of log
//! wrap-arounds with maximum reclamation pressure (tiny log, tiny ε), the
//! regime where the emptyBit parity, logMin helping, and flush-boundary
//! backpressure interact hardest.

use std::sync::Arc;

use prep_seqds::hashmap::MapOp;
use prep_seqds::rbtree::RbTree;
use prep_seqds::recorder::{Recorder, RecorderOp};
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PmemRuntime, PrepConfig, PrepUc};

fn stress_prep(level: DurabilityLevel, log: u64, eps: u64, per_thread: u64) {
    const WORKERS: usize = 3;
    let asg = Topology::new(2, 2, 1).assign_workers(WORKERS);
    let cfg = PrepConfig::new(level)
        .with_log_size(log)
        .with_epsilon(eps)
        .with_runtime(PmemRuntime::for_crash_tests());
    let prep = Arc::new(PrepUc::new(Recorder::new(), asg, cfg));
    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let prep = Arc::clone(&prep);
            std::thread::spawn(move || {
                let token = prep.register(w);
                for i in 0..per_thread {
                    prep.execute(&token, RecorderOp::Record((w as u64) << 32 | i));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total = WORKERS as u64 * per_thread;
    assert_eq!(prep.completed_tail(), total);
    prep.with_replica(0, |r| assert_eq!(r.count(), total));
    assert!(
        prep.inner().log().log_tail() / log >= 2,
        "test must actually wrap the log multiple times"
    );
}

#[test]
fn buffered_survives_thousands_of_wraps() {
    // log 32, β=2 per node → minimum admissible; ε=8 forces a persist
    // roughly every quarter lap.
    stress_prep(DurabilityLevel::Buffered, 32, 8, 2_000);
}

#[test]
fn durable_survives_thousands_of_wraps() {
    stress_prep(DurabilityLevel::Durable, 32, 8, 2_000);
}

#[test]
fn buffered_with_minimum_epsilon_makes_progress() {
    // ε = 1: a persist-and-swap round trip for every single update —
    // pathological but legal, and must not deadlock the gate/persistence
    // handshake. Kept small: with the bound-preserving boundary advance
    // (flushBoundary = persistedTail + ε), every operation genuinely waits
    // for a persist cycle, so throughput here is persist-latency-bound by
    // design.
    stress_prep(DurabilityLevel::Buffered, 32, 1, 150);
}

#[test]
fn rbtree_replicas_stay_valid_under_wrap_pressure() {
    const WORKERS: usize = 2;
    let asg = Topology::new(2, 2, 1).assign_workers(WORKERS);
    let cfg = PrepConfig::new(DurabilityLevel::Durable)
        .with_log_size(64)
        .with_epsilon(16)
        .with_runtime(PmemRuntime::for_crash_tests());
    let prep = Arc::new(PrepUc::new(RbTree::new(), asg, cfg));
    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let prep = Arc::clone(&prep);
            std::thread::spawn(move || {
                let token = prep.register(w);
                for i in 0..1_500u64 {
                    let key = (i * 7 + w as u64 * 3) % 512;
                    if i % 3 == 0 {
                        prep.execute(&token, MapOp::Remove { key });
                    } else {
                        prep.execute(&token, MapOp::Insert { key, value: i });
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Every replica holds a structurally valid red-black tree and all
    // replicas agree.
    let reference = prep.with_replica(0, |t| {
        t.check_invariants();
        t.len()
    });
    // Crash + recover: the recovered tree is also valid.
    let (token, image) = prep.simulate_crash();
    let asg = Topology::new(2, 2, 1).assign_workers(WORKERS);
    let cfg = PrepConfig::new(DurabilityLevel::Durable)
        .with_log_size(64)
        .with_epsilon(16)
        .with_runtime(PmemRuntime::for_crash_tests());
    drop(prep);
    let recovered = PrepUc::recover(token, image, asg, cfg);
    let rec_len = recovered.with_replica(0, |t| {
        t.check_invariants();
        t.len()
    });
    assert_eq!(rec_len, reference, "durable recovery lost tree entries");
}
