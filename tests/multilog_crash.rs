//! Property-based crash testing for the multi-log construction
//! (persistent CNR): proptest drives (ε, log count, op count, crash
//! schedule) through deterministic single-worker executions where the
//! multi-log durability conditions can be asserted exactly:
//!
//! * each log recovers a **prefix of its own** linearization order
//!   (per-log prefix closure — no splicing, no holes);
//! * composed loss over `c` crashes is at most `c · L · (ε + β − 1)`;
//! * in durable mode, acknowledged operations are **never** lost, in any
//!   log;
//! * a cross-log operation is atomic across the cut: after recovery every
//!   log agrees on its effect (all-or-nothing, never a strict subset).

#![allow(clippy::int_plus_one)] // keep the paper's ε + β − 1 formulas verbatim

use proptest::prelude::*;

use prep_seqds::hashmap::{HashMap, MapOp, MapResp};
use prep_seqds::recorder::{assert_prefix, Recorder, RecorderOp, RecorderResp};
use prep_seqds::SequentialObject;
use prep_uc::{mix64, DurabilityLevel, LaneRouter, MultiLogUc, PmemRuntime, PrepConfig};

fn cfg(level: DurabilityLevel, eps: u64, log: u64) -> PrepConfig {
    PrepConfig::new(level)
        .with_log_size(log)
        .with_epsilon(eps)
        .with_runtime(PmemRuntime::for_crash_tests())
}

/// The recorder router: `Record(id)` partitions by id, reads are
/// cross-log (folded by summing counts — only used incidentally here).
fn recorder_router() -> LaneRouter<Recorder> {
    LaneRouter::by_key(
        |op: &RecorderOp| match *op {
            RecorderOp::Record(id) => Some(id),
            RecorderOp::Count | RecorderOp::Last => None,
        },
        |_, resps| {
            let total = resps
                .iter()
                .map(|r| match r {
                    RecorderResp::Count(n) => *n,
                    _ => 0,
                })
                .sum();
            RecorderResp::Count(total)
        },
    )
}

/// The lane `Record(id)` routes to, mirroring [`LaneRouter::by_key`].
fn lane_of(id: u64, lanes: usize) -> usize {
    (mix64(id) % lanes as u64) as usize
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Durable mode: every acknowledged op is recovered, in every log,
    /// in order — exact equality, no loss, for arbitrary (ε, L, n).
    #[test]
    fn durable_acks_are_never_lost(
        eps in 1u64..32,
        lanes in 2usize..5,
        n in 1u64..300,
    ) {
        let log = 256u64;
        let uc = MultiLogUc::new(
            Recorder::new(),
            recorder_router(),
            lanes,
            1,
            cfg(DurabilityLevel::Durable, eps, log),
        );
        let t = uc.register(0);
        let mut issued: Vec<Vec<u64>> = vec![Vec::new(); lanes];
        for i in 0..n {
            uc.execute(&t, RecorderOp::Record(i)); // returning = acknowledged
            issued[lane_of(i, lanes)].push(i);
        }
        let (token, image) = uc.simulate_crash();
        drop(uc);
        let rec = MultiLogUc::recover(
            token,
            image,
            recorder_router(),
            1,
            cfg(DurabilityLevel::Durable, eps, log),
        );
        for (l, expect) in issued.iter().enumerate() {
            let hist = rec.with_lane(l, |r| r.history().to_vec());
            prop_assert_eq!(
                &hist, expect,
                "log {} lost or reordered acknowledged ops", l
            );
        }
    }

    /// Buffered mode under repeated crashes: each log's recovered history
    /// stays a prefix of that log's issued order (prefix closure), each
    /// crash loses at most L·(ε + β − 1) in total, and the composed loss
    /// over c crashes is at most c·L·(ε + β − 1).
    #[test]
    fn buffered_per_log_prefix_and_composed_bound(
        eps in 1u64..24,
        lanes in 2usize..5,
        epochs in 1usize..4,
        per_epoch in 1u64..100,
    ) {
        let log = 256u64;
        let mut uc = MultiLogUc::new(
            Recorder::new(),
            recorder_router(),
            lanes,
            1,
            cfg(DurabilityLevel::Buffered, eps, log),
        );
        // β = 1, so the per-log bound is ε and the composed bound L·ε.
        prop_assert_eq!(uc.loss_bound(), lanes as u64 * eps);
        let mut issued = 0u64;
        // As in the single-log multi-crash property: ops lost at crash k
        // never reappear, so each epoch's per-log reference is the prior
        // recovery's history extended by this epoch's ids for that log.
        let mut base: Vec<Vec<u64>> = vec![Vec::new(); lanes];
        let mut total_kept = 0usize;
        for _ in 0..epochs {
            let t = uc.register(0);
            let mut reference = base.clone();
            for _ in 0..per_epoch {
                uc.execute(&t, RecorderOp::Record(issued));
                reference[lane_of(issued, lanes)].push(issued);
                issued += 1;
            }
            let (token, image) = uc.simulate_crash();
            drop(uc);
            uc = MultiLogUc::recover(
                token,
                image,
                recorder_router(),
                1,
                cfg(DurabilityLevel::Buffered, eps, log),
            );
            let mut epoch_lost = 0u64;
            total_kept = 0;
            for (l, lane_ref) in reference.iter().enumerate() {
                let hist = uc.with_lane(l, |r| r.history().to_vec());
                // Per-log prefix closure (panics inside on a non-prefix).
                let kept = assert_prefix(&hist, lane_ref);
                // Recovery never loses what an earlier recovery preserved.
                prop_assert!(kept >= base[l].len(), "log {} regressed", l);
                epoch_lost += (lane_ref.len() - kept) as u64;
                total_kept += kept;
                base[l] = hist;
            }
            prop_assert!(
                epoch_lost <= lanes as u64 * eps,
                "one crash lost {} > L*eps = {}", epoch_lost, lanes as u64 * eps
            );
        }
        let total_lost = issued - total_kept as u64;
        prop_assert!(
            total_lost <= epochs as u64 * lanes as u64 * eps,
            "lost {} over {} crashes with L {} eps {}", total_lost, epochs, lanes, eps
        );
    }

    /// Cross-log atomicity across the cut: a broadcast (multi) write is
    /// recovered in every log or in none — after recovery all logs agree
    /// on the sentinel key's value, in both durability levels, and that
    /// value is one actually written (no invented or spliced state).
    #[test]
    fn cross_log_ops_are_atomic_across_the_cut(
        durable in any::<bool>(),
        eps in 1u64..24,
        lanes in 2usize..5,
        n in 1u64..120,
        stride in 2u64..7,
    ) {
        let level = if durable {
            DurabilityLevel::Durable
        } else {
            DurabilityLevel::Buffered
        };
        // Sentinel key u64::MAX is declared cross-log: writing it goes
        // through the ordered multi path and lands in every log's map.
        let mk_router = || {
            LaneRouter::<HashMap>::new(
                |op: &MapOp, lanes| match op.key() {
                    Some(u64::MAX) | None => None,
                    Some(k) => Some((mix64(k) % lanes as u64) as usize),
                },
                |_, mut resps| resps.pop().expect("at least one lane"),
            )
        };
        let uc = MultiLogUc::new(HashMap::new(), mk_router(), lanes, 1, cfg(level, eps, 256));
        let t = uc.register(0);
        let mut versions: Vec<u64> = Vec::new();
        for i in 0..n {
            uc.execute(&t, MapOp::Insert { key: i, value: i });
            if i % stride == stride - 1 {
                uc.execute(&t, MapOp::Insert { key: u64::MAX, value: i });
                versions.push(i);
            }
        }
        let (token, image) = uc.simulate_crash();
        drop(uc);
        let rec = MultiLogUc::recover(token, image, mk_router(), 1, cfg(level, eps, 256));
        let sentinel: Vec<Option<u64>> = (0..lanes)
            .map(|l| {
                rec.with_lane(l, |m| match m.apply_readonly(&MapOp::Get { key: u64::MAX }) {
                    MapResp::Value(v) => v,
                    other => panic!("unexpected {other:?}"),
                })
            })
            .collect();
        for (l, v) in sentinel.iter().enumerate() {
            prop_assert_eq!(
                *v, sentinel[0],
                "log {} disagrees on the cross-log write: {:?}", l, sentinel
            );
        }
        match sentinel[0] {
            None => {} // every broadcast was cut away — still atomic
            Some(v) => prop_assert!(
                versions.contains(&v),
                "recovered sentinel {} was never written ({:?})", v, versions
            ),
        }
        if level == DurabilityLevel::Durable {
            // Durable: the *latest* broadcast must have survived.
            prop_assert_eq!(sentinel[0], versions.last().copied());
        }
    }
}
