//! Linearizability checks for the universal constructions.
//!
//! Two complementary strategies:
//!
//! 1. **Owned-key discipline** — each worker owns a disjoint key set, so
//!    the responses it receives must match its own *sequential* expectation
//!    exactly (any lost, duplicated, or reordered update would produce a
//!    mismatching previous-value response).
//! 2. **History-object checks** — the `Recorder` turns the object state
//!    into the linearization order itself: ids must be exactly-once and
//!    per-worker FIFO, and every read must observe at least the reader's
//!    own completed updates (real-time order).

use std::sync::Arc;

use prep_cx::{CxConfig, CxUc};
use prep_nr::NodeReplicated;
use prep_seqds::hashmap::{HashMap, MapOp, MapResp};
use prep_seqds::recorder::{Recorder, RecorderOp, RecorderResp};
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PmemRuntime, PrepConfig, PrepUc};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const WORKERS: usize = 3;
const OPS_PER_WORKER: usize = 2_000;

/// Runs the owned-key discipline against an `execute` closure.
fn owned_key_discipline(execute: impl Fn(usize, MapOp) -> MapResp + Sync) {
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let execute = &execute;
            s.spawn(move || {
                let mut rng = SmallRng::seed_from_u64(w as u64);
                // This worker exclusively owns keys ≡ w (mod WORKERS).
                let mut model = std::collections::HashMap::new();
                for _ in 0..OPS_PER_WORKER {
                    let key = (rng.gen_range(0..64u64)) * WORKERS as u64 + w as u64;
                    if rng.gen_bool(0.5) {
                        let value = rng.gen();
                        let expect = model.insert(key, value);
                        let got = execute(w, MapOp::Insert { key, value });
                        assert_eq!(got, MapResp::Value(expect), "insert resp for key {key}");
                    } else {
                        let expect = model.remove(&key);
                        let got = execute(w, MapOp::Remove { key });
                        assert_eq!(got, MapResp::Value(expect), "remove resp for key {key}");
                    }
                    if rng.gen_bool(0.2) {
                        let expect = model.get(&key).copied();
                        let got = execute(w, MapOp::Get { key });
                        assert_eq!(got, MapResp::Value(expect), "get resp for key {key}");
                    }
                }
            });
        }
    });
}

#[test]
fn nr_uc_owned_key_responses_are_sequential() {
    let asg = Topology::new(2, 2, 1).assign_workers(WORKERS);
    let nr = NodeReplicated::new(HashMap::new(), asg, 256);
    let tokens: Vec<_> = (0..WORKERS).map(|w| nr.register(w)).collect();
    owned_key_discipline(|w, op| nr.execute(&tokens[w], op));
}

#[test]
fn prep_buffered_owned_key_responses_are_sequential() {
    let asg = Topology::new(2, 2, 1).assign_workers(WORKERS);
    let cfg = PrepConfig::new(DurabilityLevel::Buffered)
        .with_log_size(256)
        .with_epsilon(32)
        .with_runtime(PmemRuntime::for_crash_tests());
    let prep = PrepUc::new(HashMap::new(), asg, cfg);
    let tokens: Vec<_> = (0..WORKERS).map(|w| prep.register(w)).collect();
    owned_key_discipline(|w, op| prep.execute(&tokens[w], op));
}

#[test]
fn prep_durable_owned_key_responses_are_sequential() {
    let asg = Topology::new(2, 2, 1).assign_workers(WORKERS);
    let cfg = PrepConfig::new(DurabilityLevel::Durable)
        .with_log_size(256)
        .with_epsilon(32)
        .with_runtime(PmemRuntime::for_crash_tests());
    let prep = PrepUc::new(HashMap::new(), asg, cfg);
    let tokens: Vec<_> = (0..WORKERS).map(|w| prep.register(w)).collect();
    owned_key_discipline(|w, op| prep.execute(&tokens[w], op));
}

#[test]
fn cx_puc_owned_key_responses_are_sequential() {
    let cfg = CxConfig::persistent(WORKERS, PmemRuntime::for_crash_tests());
    let cx = CxUc::new(HashMap::new(), cfg);
    owned_key_discipline(|_w, op| cx.execute(op));
}

#[test]
fn prep_reads_respect_real_time_order() {
    // A read invoked after my update completes must observe it (through
    // the Recorder's count).
    let asg = Topology::new(2, 2, 1).assign_workers(WORKERS);
    let cfg = PrepConfig::new(DurabilityLevel::Buffered)
        .with_log_size(256)
        .with_epsilon(32)
        .with_runtime(PmemRuntime::for_crash_tests());
    let prep = Arc::new(PrepUc::new(Recorder::new(), asg, cfg));
    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let prep = Arc::clone(&prep);
            std::thread::spawn(move || {
                let token = prep.register(w);
                let mut mine = 0u64;
                for i in 0..1_000u64 {
                    prep.execute(&token, RecorderOp::Record((w as u64) << 32 | i));
                    mine += 1;
                    match prep.execute(&token, RecorderOp::Count) {
                        RecorderResp::Count(c) => assert!(
                            c >= mine,
                            "worker {w}: read observed {c} < own completed {mine}"
                        ),
                        other => panic!("unexpected response {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Exactly-once, per-worker FIFO over the full history.
    prep.with_replica(0, |r| {
        let mut next = [0u64; WORKERS];
        let mut seen = std::collections::HashSet::new();
        for id in r.history() {
            assert!(seen.insert(*id), "duplicate id");
            let w = (id >> 32) as usize;
            assert_eq!(id & 0xffff_ffff, next[w], "per-worker FIFO violated");
            next[w] += 1;
        }
        assert_eq!(r.count(), (WORKERS * 1_000) as u64);
    });
}
