//! Crash-equivalence properties for the incremental (`DirtyLines`)
//! checkpoint path.
//!
//! Under `Wbinvd`/`RangeFlush` the crash-sim image of a checkpoint is a
//! **deep clone** of the persistence replica at its localTail — by
//! construction it equals a sequential replay of the completed-op prefix
//! `[0, localTail)`. Under `DirtyLines` the image is instead **delta
//! applied**: the interval's ops are replayed onto the previous stored
//! snapshot with no clone. These properties pin the two paths to the same
//! observable: every crash, at any point, under every strategy and both
//! durability levels, must expose a stable snapshot equal to the
//! prefix-replay model — so delta-applied and full-clone images are
//! interchangeable.

use proptest::prelude::*;

use prep_seqds::hashmap::{HashMap, MapOp};
use prep_seqds::recorder::{assert_prefix, Recorder, RecorderOp};
use prep_seqds::SequentialObject;
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, FlushStrategy, PmemRuntime, PrepConfig, PrepUc};

const STRATEGIES: [FlushStrategy; 3] = [
    FlushStrategy::Wbinvd,
    FlushStrategy::RangeFlush,
    FlushStrategy::DirtyLines,
];

fn cfg(level: DurabilityLevel, strategy: FlushStrategy, eps: u64, log: u64) -> PrepConfig {
    PrepConfig::new(level)
        .with_log_size(log)
        .with_epsilon(eps)
        .with_flush_strategy(strategy)
        .with_runtime(PmemRuntime::for_crash_tests())
}

/// Keys confined to a small universe so removes hit, buckets collide, and
/// states can be compared exhaustively by lookup.
const KEY_SPACE: u64 = 64;

fn map_eq(a: &HashMap, b: &HashMap) -> bool {
    a.len() == b.len() && (0..KEY_SPACE).all(|k| a.get(k) == b.get(k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Recorder, both levels, all three strategies: the stable snapshot
    /// taken at an arbitrary crash point must equal the sequential replay
    /// of ops `[0, snapshot.local_tail)` — the full-clone observable.
    #[test]
    fn stable_snapshot_equals_prefix_replay(
        eps in 1u64..48,
        n in 1u64..300,
        level_durable in any::<bool>(),
    ) {
        let log = 256u64;
        prop_assume!(eps <= log - 2);
        let level = if level_durable {
            DurabilityLevel::Durable
        } else {
            DurabilityLevel::Buffered
        };
        for strategy in STRATEGIES {
            let asg = Topology::small().assign_workers(1);
            let prep = PrepUc::new(
                Recorder::new(), asg, cfg(level, strategy, eps, log));
            let t = prep.register(0);
            for i in 0..n {
                prep.execute(&t, RecorderOp::Record(i));
            }
            let (_tok, image) = prep.simulate_crash();
            let snap = image.stable_snapshot();
            let mut model = Recorder::new();
            for i in 0..snap.local_tail {
                model.apply(&RecorderOp::Record(i));
            }
            prop_assert_eq!(
                snap.state.history(), model.history(),
                "{:?}/{:?}: snapshot at tail {} diverges from prefix replay",
                level, strategy, snap.local_tail
            );
        }
    }

    /// Hashmap with collisions, overwrites, removes and resizes: the
    /// delta-applied image must match prefix replay on a structure whose
    /// dirty tracking has non-trivial cases (bucket headers, tombstones,
    /// `touch_all` on resize).
    #[test]
    fn hashmap_snapshot_equals_prefix_replay(
        eps in 1u64..32,
        ops in proptest::collection::vec((0..KEY_SPACE, any::<u64>(), any::<bool>()), 1..250),
    ) {
        let log = 256u64;
        for strategy in STRATEGIES {
            let asg = Topology::small().assign_workers(1);
            // Tiny bucket count: forces collisions and at least one resize.
            let prep = PrepUc::new(
                HashMap::with_buckets(2),
                asg,
                cfg(DurabilityLevel::Buffered, strategy, eps, log),
            );
            let t = prep.register(0);
            let stream: Vec<MapOp> = ops
                .iter()
                .map(|&(key, value, insert)| if insert {
                    MapOp::Insert { key, value }
                } else {
                    MapOp::Remove { key }
                })
                .collect();
            for op in &stream {
                prep.execute(&t, *op);
            }
            let (_tok, image) = prep.simulate_crash();
            let snap = image.stable_snapshot();
            let mut model = HashMap::with_buckets(2);
            for op in stream.iter().take(snap.local_tail as usize) {
                model.apply(op);
            }
            prop_assert!(
                map_eq(&snap.state, &model),
                "{:?}: image at tail {} diverges from prefix replay",
                strategy, snap.local_tail
            );
        }
    }

    /// Full recovery equivalence across strategies, including multi-epoch
    /// crash → recover → continue cycles: durable recovers everything under
    /// every strategy; buffered recovers a prefix within the loss bound,
    /// and `DirtyLines` recoveries obey the same invariants as full-clone
    /// ones.
    #[test]
    fn recovery_equivalent_across_strategies(
        eps in 1u64..24,
        epochs in 1usize..4,
        per_epoch in 1u64..100,
        level_durable in any::<bool>(),
    ) {
        let log = 256u64;
        let level = if level_durable {
            DurabilityLevel::Durable
        } else {
            DurabilityLevel::Buffered
        };
        for strategy in STRATEGIES {
            let asg = Topology::small().assign_workers(1);
            let mut prep = PrepUc::new(
                Recorder::new(), asg.clone(), cfg(level, strategy, eps, log));
            let mut issued = 0u64;
            let mut base: Vec<u64> = Vec::new();
            for _ in 0..epochs {
                let t = prep.register(0);
                let mut reference = base.clone();
                for _ in 0..per_epoch {
                    prep.execute(&t, RecorderOp::Record(issued));
                    reference.push(issued);
                    issued += 1;
                }
                let (token, image) = prep.simulate_crash();
                drop(prep);
                prep = PrepUc::recover(
                    token, image, asg.clone(), cfg(level, strategy, eps, log));
                let hist = prep.with_replica(0, |r| r.history().to_vec());
                let kept = assert_prefix(&hist, &reference);
                match level {
                    // Durable: zero loss regardless of checkpoint path.
                    DurabilityLevel::Durable => prop_assert_eq!(
                        kept, reference.len(),
                        "{:?}: durable lost ops", strategy
                    ),
                    // Buffered: prefix within ε + β − 1 (β = 1), and never
                    // below what the previous recovery preserved.
                    DurabilityLevel::Buffered => {
                        prop_assert!(kept >= base.len());
                        prop_assert!(
                            (reference.len() - kept) as u64 <= eps,
                            "{:?}: epoch loss {} > bound {}",
                            strategy, reference.len() - kept, eps
                        );
                    }
                }
                base = hist;
            }
        }
    }
}

/// Deterministic end-to-end smoke: under `DirtyLines` with crash sim on,
/// image maintenance replays deltas instead of cloning, yet a recovery
/// after heavy churn on a resizing hashmap is byte-for-byte the model
/// state.
#[test]
fn dirty_lines_recovery_after_churn_matches_model() {
    let asg = Topology::small().assign_workers(1);
    let level = DurabilityLevel::Durable;
    let strategy = FlushStrategy::DirtyLines;
    let prep = PrepUc::new(
        HashMap::with_buckets(2),
        asg.clone(),
        cfg(level, strategy, 8, 256),
    );
    let t = prep.register(0);
    let mut model = HashMap::with_buckets(2);
    for i in 0..500u64 {
        let op = match i % 3 {
            0 | 1 => MapOp::Insert {
                key: i % KEY_SPACE,
                value: i,
            },
            _ => MapOp::Remove {
                key: (i + 7) % KEY_SPACE,
            },
        };
        prep.execute(&t, op);
        model.apply(&op);
    }
    let (token, image) = prep.simulate_crash();
    drop(prep);
    let rec = PrepUc::recover(token, image, asg, cfg(level, strategy, 8, 256));
    rec.with_replica(0, |r| {
        assert!(map_eq(r, &model), "durable DirtyLines recovery diverged");
    });
}
