//! Cross-construction agreement: every universal construction in the
//! workspace, fed the *same* operations under a single-writer-per-key
//! discipline, must converge to the same abstract state — NR-UC,
//! PREP-Buffered, PREP-Durable, CX-UC, CX-PUC, the global-lock UC, and the
//! hand-crafted SOFT table all implement the same sequential map.

use std::collections::BTreeMap;
use std::sync::Arc;

use prep_cx::{CxConfig, CxUc};
use prep_nr::{GlobalLockUc, NodeReplicated};
use prep_seqds::hashmap::{HashMap, MapOp};
use prep_soft::SoftHashMap;
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PmemRuntime, PrepConfig, PrepUc};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const WORKERS: usize = 3;
const OPS: usize = 1_200;

/// Deterministic per-worker op tape over worker-owned keys.
fn tape(w: usize) -> Vec<MapOp> {
    let mut rng = SmallRng::seed_from_u64(42 + w as u64);
    (0..OPS)
        .map(|_| {
            let key = rng.gen_range(0..96u64) * WORKERS as u64 + w as u64;
            if rng.gen_bool(0.6) {
                MapOp::Insert {
                    key,
                    value: rng.gen(),
                }
            } else {
                MapOp::Remove { key }
            }
        })
        .collect()
}

/// The expected final state: per-key, the last op on each worker's tape
/// wins (keys are worker-owned, so cross-worker order is irrelevant).
fn expected_state() -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    for w in 0..WORKERS {
        for op in tape(w) {
            match op {
                MapOp::Insert { key, value } => {
                    m.insert(key, value);
                }
                MapOp::Remove { key } => {
                    m.remove(&key);
                }
                _ => {}
            }
        }
    }
    m
}

fn dump(map: &HashMap) -> BTreeMap<u64, u64> {
    let mut out = BTreeMap::new();
    for key in 0..(96 * WORKERS as u64) {
        if let Some(v) = map.get(key) {
            out.insert(key, v);
        }
    }
    out
}

fn run_tapes(execute: impl Fn(usize, MapOp) + Sync) {
    std::thread::scope(|s| {
        for w in 0..WORKERS {
            let execute = &execute;
            s.spawn(move || {
                for op in tape(w) {
                    execute(w, op);
                }
            });
        }
    });
}

#[test]
fn all_constructions_converge_to_the_same_state() {
    let expected = expected_state();
    let asg = || Topology::new(2, 2, 1).assign_workers(WORKERS);

    // NR-UC.
    let nr = NodeReplicated::new(HashMap::new(), asg(), 256);
    let tokens: Vec<_> = (0..WORKERS).map(|w| nr.register(w)).collect();
    run_tapes(|w, op| {
        nr.execute(&tokens[w], op);
    });
    assert_eq!(nr.with_replica(0, dump), expected, "NR-UC diverged");

    // PREP, both levels.
    for level in [DurabilityLevel::Buffered, DurabilityLevel::Durable] {
        let cfg = PrepConfig::new(level)
            .with_log_size(256)
            .with_epsilon(32)
            .with_runtime(PmemRuntime::for_crash_tests());
        let prep = PrepUc::new(HashMap::new(), asg(), cfg);
        let tokens: Vec<_> = (0..WORKERS).map(|w| prep.register(w)).collect();
        run_tapes(|w, op| {
            prep.execute(&tokens[w], op);
        });
        assert_eq!(
            prep.with_replica(0, dump),
            expected,
            "PREP {level:?} diverged"
        );
    }

    // Global lock.
    let gl = GlobalLockUc::new(HashMap::new());
    run_tapes(|_w, op| {
        gl.execute(op);
    });
    assert_eq!(gl.with_object(dump), expected, "GlobalLockUc diverged");

    // CX, volatile and persistent.
    for persistent in [false, true] {
        let cfg = if persistent {
            CxConfig::persistent(WORKERS, PmemRuntime::for_crash_tests())
        } else {
            CxConfig::volatile(WORKERS)
        };
        let cx = CxUc::new(HashMap::new(), cfg);
        run_tapes(|_w, op| {
            cx.execute(op);
        });
        assert_eq!(
            cx.with_latest(dump),
            expected,
            "CX (persistent={persistent}) diverged"
        );
    }

    // SOFT (set-semantics insert: duplicates fail, so use insert-or-update
    // emulation: remove then insert).
    let soft = SoftHashMap::new(64, PmemRuntime::for_crash_tests());
    run_tapes(|_w, op| match op {
        MapOp::Insert { key, value } => {
            soft.remove(key);
            assert!(soft.insert(key, value));
        }
        MapOp::Remove { key } => {
            let _ = soft.remove(key);
        }
        _ => {}
    });
    let mut got = BTreeMap::new();
    for key in 0..(96 * WORKERS as u64) {
        if let Some(v) = soft.get(key) {
            got.insert(key, v);
        }
    }
    assert_eq!(got, expected, "SOFT diverged");
    // And SOFT's recovery image agrees with its volatile state.
    let rec = soft.recover_contents();
    assert_eq!(rec.len(), expected.len());
    for (k, v) in &expected {
        assert_eq!(rec.get(k), Some(v), "SOFT NVM image diverged at key {k}");
    }

    // Workers drop their Arcs; nothing left to assert.
    let _ = Arc::new(());
}
