//! The two-persistent-replica design ablation (§4.1).
//!
//! The paper argues a single persistent replica is unsound: during an
//! update, background cache evictions can write an *inconsistent mixture*
//! of the replica back to NVM, so a crash mid-update recovers garbage.
//! PREP-UC therefore keeps two persistence-only replicas and only ever
//! updates the active one, recovering from the quiescent stable one.
//!
//! The emulator makes this directly observable: the active replica's image
//! is *torn* from its first post-snapshot mutation until the next WBINVD.
//! These tests show (a) a hypothetical one-replica design (i.e. recovering
//! the ACTIVE image) hits torn state under crash injection, while (b) the
//! stable image is never torn — the invariant PREP-UC's recovery relies on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use prep_seqds::recorder::{Recorder, RecorderOp};
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PmemRuntime, PrepConfig, PrepUc};

fn cfg(eps: u64) -> PrepConfig {
    PrepConfig::new(DurabilityLevel::Buffered)
        .with_log_size(512)
        .with_epsilon(eps)
        .with_runtime(PmemRuntime::for_crash_tests())
}

#[test]
fn one_persistent_replica_design_would_recover_torn_state() {
    // Hammer updates with a small ε so persist cycles are frequent, and
    // crash repeatedly. The ACTIVE image — the only image a one-replica
    // design would have — must be caught torn at least once.
    let asg = Topology::new(2, 2, 1).assign_workers(2);
    let prep = Arc::new(PrepUc::new(Recorder::new(), asg, cfg(8)));
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..2)
        .map(|w| {
            let prep = Arc::clone(&prep);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let token = prep.register(w);
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    prep.execute(&token, RecorderOp::Record(i));
                    i += 1;
                }
            })
        })
        .collect();

    let mut saw_torn_active = false;
    let mut stable_always_ok = true;
    for _ in 0..300 {
        let (_tok, image) = prep.simulate_crash();
        let active = image.active as usize;
        let stable = image.stable_index();
        if image.replicas[active].is_err() {
            saw_torn_active = true;
        }
        if image.replicas[stable].is_err() {
            stable_always_ok = false;
        }
        if saw_torn_active && !stable_always_ok {
            break;
        }
        std::thread::yield_now();
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }

    assert!(
        saw_torn_active,
        "expected at least one crash to catch the active replica mid-update \
         (the hazard motivating the two-replica design)"
    );
    assert!(
        stable_always_ok,
        "the STABLE replica image must never be torn — PREP-UC's recovery \
         invariant"
    );
}

#[test]
fn active_image_becomes_consistent_again_after_wbinvd() {
    // Single-threaded deterministic check of the torn lifecycle across a
    // persist cycle: torn while dirty, consistent right after the swap.
    let asg = Topology::new(2, 2, 1).assign_workers(1);
    let prep = PrepUc::new(Recorder::new(), asg, cfg(4));
    let token = prep.register(0);

    // Drive past several flush boundaries.
    for i in 0..64u64 {
        prep.execute(&token, RecorderOp::Record(i));
    }
    // Wait for the persistence thread to finish a cycle (≥ 2 snapshots).
    prep_sync::spin_until(|| prep.runtime().stats().snapshot_count() >= 2);

    let (_tok, image) = prep.simulate_crash();
    // Whatever the interleaving, the stable side must be consistent with a
    // localTail that reached at least the first boundary.
    let snap = image.stable_snapshot();
    assert!(
        snap.local_tail >= 4,
        "stable snapshot should reflect at least one completed cycle, got {}",
        snap.local_tail
    );
    // Its state must be exactly the log prefix of length local_tail.
    let expected: Vec<u64> = (0..snap.local_tail).collect();
    assert_eq!(snap.state.history(), &expected[..]);
}
