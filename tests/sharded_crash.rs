//! Property-based crash testing for the sharded store (`prep-shard`):
//! proptest drives (shard count, ε, durability, crash point) through
//! deterministic workloads with a crash injected mid-stream, and asserts
//! the sharded correctness condition:
//!
//! * every shard recovers a **prefix of its own linearization order**;
//! * total completed-operation loss across shards is at most
//!   **N·(ε + β − 1)** in buffered mode and exactly **0** in durable mode.

#![allow(clippy::int_plus_one)] // keep the paper's ε + β − 1 formulas verbatim

use proptest::prelude::*;

use prep_seqds::recorder::{assert_prefix, Recorder, RecorderOp};
use prep_shard::ShardedStore;
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PmemRuntime, PrepConfig};

fn cfg(level: DurabilityLevel, eps: u64) -> PrepConfig {
    PrepConfig::new(level)
        .with_log_size(256)
        .with_epsilon(eps)
        .with_runtime(PmemRuntime::for_crash_tests())
}

fn route(op: &RecorderOp) -> u64 {
    match *op {
        RecorderOp::Record(id) => id,
        RecorderOp::Count | RecorderOp::Last => 0,
    }
}

/// Issues ids `start..start + n` through the store, appending each to its
/// home shard's reference order.
fn issue(
    store: &ShardedStore<Recorder>,
    token: &prep_shard::ShardToken,
    per_shard: &mut [Vec<u64>],
    start: u64,
    n: u64,
) {
    for id in start..start + n {
        let op = RecorderOp::Record(id);
        per_shard[store.shard_of(&op)].push(id);
        store.execute(token, op);
    }
}

/// Crashes + recovers `store`, asserting the per-shard prefix property and
/// returning (recovered store, total operations lost).
fn crash_recover(
    store: ShardedStore<Recorder>,
    per_shard: &[Vec<u64>],
    level: DurabilityLevel,
    eps: u64,
    asg: &prep_topology::ThreadAssignment,
) -> (ShardedStore<Recorder>, u64) {
    let shards = store.shards();
    let (token, image) = store.simulate_crash();
    drop(store); // the "power failure"
    let rec = ShardedStore::recover(token, image, asg.clone(), cfg(level, eps), route);
    assert_eq!(
        rec.shards(),
        shards,
        "recovery must preserve the shard layout"
    );
    let mut lost = 0u64;
    for (s, issued) in per_shard.iter().enumerate() {
        let hist = rec.shard(s).with_replica(0, |r| r.history().to_vec());
        // The prefix property, per shard, against that shard's own order.
        let kept = assert_prefix(&hist, issued);
        lost += (issued.len() - kept) as u64;
    }
    (rec, lost)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Buffered: a crash injected mid-workload loses at most N·(ε + β − 1)
    /// completed operations in total, and each shard keeps a prefix.
    #[test]
    fn buffered_sharded_loss_within_combined_bound(
        shards in 1usize..5,
        eps in 1u64..32,
        crash_at in 1u64..300,
    ) {
        let asg = Topology::small().assign_workers(1);
        let store = ShardedStore::new(
            Recorder::new(),
            shards,
            asg.clone(),
            cfg(DurabilityLevel::Buffered, eps),
            route,
        );
        let bound = store.loss_bound();
        prop_assert_eq!(bound, shards as u64 * eps); // β = 1 ⇒ N·(ε + β − 1) = N·ε
        let token = store.register(0);
        let mut per_shard = vec![Vec::new(); shards];
        issue(&store, &token, &mut per_shard, 0, crash_at);
        let (_rec, lost) = crash_recover(
            store, &per_shard, DurabilityLevel::Buffered, eps, &asg);
        prop_assert!(
            lost <= bound,
            "lost {} > combined bound {} ({} shards, eps {})", lost, bound, shards, eps
        );
    }

    /// Durable: no shard loses anything, no matter where the crash lands.
    #[test]
    fn durable_sharded_loses_nothing(
        shards in 1usize..5,
        eps in 1u64..32,
        crash_at in 1u64..300,
    ) {
        let asg = Topology::small().assign_workers(1);
        let store = ShardedStore::new(
            Recorder::new(),
            shards,
            asg.clone(),
            cfg(DurabilityLevel::Durable, eps),
            route,
        );
        prop_assert_eq!(store.loss_bound(), 0);
        let token = store.register(0);
        let mut per_shard = vec![Vec::new(); shards];
        issue(&store, &token, &mut per_shard, 0, crash_at);
        let (rec, lost) = crash_recover(
            store, &per_shard, DurabilityLevel::Durable, eps, &asg);
        prop_assert_eq!(lost, 0, "durable mode must lose nothing");
        // Exact recovery: each shard's history IS its issued order.
        for (s, issued) in per_shard.iter().enumerate() {
            let hist = rec.shard(s).with_replica(0, |r| r.history().to_vec());
            prop_assert_eq!(&hist, issued, "shard {} diverged", s);
        }
    }

    /// Crash → recover → keep serving → crash again: loss accumulates at
    /// most c·N·(ε + β − 1) over c crashes, and the recovered store keeps
    /// routing new operations to the shards that own their keys.
    #[test]
    fn repeated_sharded_crashes_accumulate_bounded_loss(
        shards in 1usize..4,
        eps in 1u64..16,
        crashes in 1usize..4,
        per_epoch in 1u64..100,
    ) {
        let asg = Topology::small().assign_workers(1);
        let mut store = ShardedStore::new(
            Recorder::new(),
            shards,
            asg.clone(),
            cfg(DurabilityLevel::Buffered, eps),
            route,
        );
        let bound_per_crash = store.loss_bound();
        let mut issued = 0u64;
        let mut total_lost = 0u64;
        // After each crash, ops lost in that epoch never reappear, so the
        // per-shard reference becomes the recovered history extended by the
        // next epoch's ids.
        let mut per_shard: Vec<Vec<u64>> =
            (0..shards).map(|s| store.shard(s).with_replica(0, |r| r.history().to_vec())).collect();
        for epoch in 0..crashes {
            let token = store.register(0);
            issue(&store, &token, &mut per_shard, issued, per_epoch);
            issued += per_epoch;
            let (rec, lost) = crash_recover(
                store, &per_shard, DurabilityLevel::Buffered, eps, &asg);
            prop_assert!(lost <= bound_per_crash);
            prop_assert_eq!(rec.epoch(), epoch as u64 + 1, "epoch must count crashes");
            total_lost += lost;
            // Rebase each shard's reference on what actually survived.
            per_shard = (0..shards)
                .map(|s| rec.shard(s).with_replica(0, |r| r.history().to_vec()))
                .collect();
            store = rec;
        }
        prop_assert!(
            total_lost <= crashes as u64 * bound_per_crash,
            "lost {} over {} crashes (bound {})",
            total_lost, crashes, crashes as u64 * bound_per_crash
        );
    }
}
