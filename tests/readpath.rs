//! Read-path correctness for the distributed replica lock: linearizability
//! of DistRwLock-backed NR at read-heavy ratios (the zero-contention fast
//! path must not let a reader observe a state older than `completedTail`
//! at invocation), plus cross-fairness-mode agreement (the three replica
//! locks must be semantically interchangeable).

use std::sync::Arc;

use prep_checker::{check_linearizable, record_concurrent};
use prep_nr::{FairnessMode, NodeReplicated, NoopHooks};
use prep_seqds::hashmap::{HashMap, MapOp};
use prep_seqds::recorder::{Recorder, RecorderOp};
use prep_topology::Topology;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const THREADS: usize = 3;
const OPS_PER_THREAD: usize = 5; // 15-op windows: cheap exhaustive search

/// ~90% reads over a tiny key space (collisions on purpose, so reads
/// actually discriminate between candidate linearizations).
fn read_heavy_ops(seed: u64) -> impl Fn(usize, usize) -> MapOp + Sync {
    move |t, i| {
        let mut rng = SmallRng::seed_from_u64(seed ^ ((t as u64) << 8) ^ i as u64);
        let key = rng.gen_range(0..4u64);
        if rng.gen_range(0..10) == 0 {
            MapOp::Insert {
                key,
                value: rng.gen_range(0..100),
            }
        } else {
            MapOp::Get { key }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DistRwLock-backed NR (the Throughput default) produces linearizable
    /// histories at 90% reads, across randomized windows and registration
    /// orders. Exercises the fast path heavily: most reads hit a caught-up
    /// replica and acquire only their own reader slot.
    #[test]
    fn dist_lock_nr_read_heavy_histories_linearize(seed in 0u64..1u64 << 32) {
        let asg = Topology::new(2, 2, 1).assign_workers(THREADS);
        let nr = NodeReplicated::with_hooks_and_fairness(
            HashMap::new(),
            asg,
            256,
            NoopHooks,
            FairnessMode::Throughput,
        );
        let tokens: Vec<_> = (0..THREADS).map(|t| nr.register(t)).collect();
        let history = record_concurrent::<HashMap, _, _>(
            THREADS,
            OPS_PER_THREAD,
            read_heavy_ops(seed),
            |t, op| nr.execute(&tokens[t], op),
        );
        prop_assert!(
            check_linearizable(&HashMap::new(), &history),
            "DistRwLock-backed NR produced a non-linearizable history \
             (seed {seed}): {history:#?}"
        );
    }
}

/// All three fairness modes (distributed, centralized, phase-fair replica
/// locks) agree on final state under an owned-key update discipline with
/// interleaved reads.
#[test]
fn fairness_modes_agree_on_final_state() {
    const WORKERS: usize = 4;
    const PER_WORKER: u64 = 250;
    let mut final_histories = Vec::new();
    for fairness in [
        FairnessMode::Throughput,
        FairnessMode::ThroughputCentralized,
        FairnessMode::StarvationFree,
    ] {
        let asg = Topology::new(2, 4, 1).assign_workers(WORKERS);
        let nr = Arc::new(NodeReplicated::with_hooks_and_fairness(
            Recorder::new(),
            asg,
            128,
            NoopHooks,
            fairness,
        ));
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let nr = Arc::clone(&nr);
                std::thread::spawn(move || {
                    let t = nr.register(w);
                    for i in 0..PER_WORKER {
                        nr.execute(&t, RecorderOp::Record((w as u64) << 32 | i));
                        if i % 8 == 0 {
                            nr.execute(&t, RecorderOp::Count);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut hist = nr.with_replica(0, |r| r.history().to_vec());
        assert_eq!(
            hist.len() as u64,
            WORKERS as u64 * PER_WORKER,
            "{fairness:?} lost updates"
        );
        // Interleavings differ run to run; the invariant is the multiset of
        // applied updates plus per-worker FIFO order (checked via sort key).
        let mut next = [0u64; WORKERS];
        for id in &hist {
            let w = (id >> 32) as usize;
            assert_eq!(id & 0xffff_ffff, next[w], "{fairness:?} broke FIFO");
            next[w] += 1;
        }
        hist.sort_unstable();
        final_histories.push(hist);
    }
    assert_eq!(final_histories[0], final_histories[1]);
    assert_eq!(final_histories[0], final_histories[2]);
}

/// The fast path is actually taken: a single-threaded reader whose replica
/// is always caught up must never bump the slow-path counter, while a
/// reader racing a log the replica hasn't applied yet must.
#[test]
fn slow_path_counter_is_a_faithful_fast_path_probe() {
    let asg = Topology::new(2, 4, 1).assign_workers(1);
    let nr = NodeReplicated::new(Recorder::new(), asg, 64);
    let t = nr.register(0);
    for i in 0..100 {
        nr.execute(&t, RecorderOp::Record(i));
        nr.execute(&t, RecorderOp::Count);
    }
    assert_eq!(
        nr.read_slow_paths(),
        0,
        "single-threaded reads must always hit the fast path"
    );
}
