//! Optimistic lock-free reads, end to end.
//!
//! The optimistic read path returns values observed with **no lock held**:
//! a seqlock version bracket (`SeqVersion::read_begin` / `validate`)
//! detects any overlapping combiner and discards the read. These tests
//! check the three ways that could go wrong:
//!
//! * **Linearizability** — optimistic reads racing writers must still
//!   produce linearizable histories (the validated read reflects a state
//!   at least as new as `completedTail` at invocation).
//! * **Torn reads** — a multi-word invariant (`N` words all equal) must
//!   never be observed mid-write; validation failure must discard the
//!   torn snapshot rather than return it.
//! * **Cross-mode agreement** — Centralized, Distributed, Optimistic and
//!   Adaptive modes are semantically interchangeable.
//! * **Recovery** — after a crash, optimistic reads on the recovered
//!   instance see exactly the recovered prefix, never post-cut state.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use prep_checker::{check_linearizable, record_concurrent};
use prep_nr::{FairnessMode, NodeReplicated, NoopHooks};
use prep_seqds::hashmap::{HashMap, MapOp};
use prep_seqds::recorder::{assert_prefix, Recorder, RecorderOp, RecorderResp};
use prep_seqds::SequentialObject;
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PmemRuntime, PrepConfig, PrepUc};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const THREADS: usize = 3;
const OPS_PER_THREAD: usize = 5; // 15-op windows: cheap exhaustive search

/// ~90% reads over a tiny key space (collisions on purpose, so reads
/// actually discriminate between candidate linearizations).
fn read_heavy_ops(seed: u64) -> impl Fn(usize, usize) -> MapOp + Sync {
    move |t, i| {
        let mut rng = SmallRng::seed_from_u64(seed ^ ((t as u64) << 8) ^ i as u64);
        let key = rng.gen_range(0..4u64);
        if rng.gen_range(0..10) == 0 {
            MapOp::Insert {
                key,
                value: rng.gen_range(0..100),
            }
        } else {
            MapOp::Get { key }
        }
    }
}

fn linearizable_under(fairness: FairnessMode, seed: u64) -> bool {
    let asg = Topology::new(2, 2, 1).assign_workers(THREADS);
    let nr = NodeReplicated::with_hooks_and_fairness(HashMap::new(), asg, 256, NoopHooks, fairness);
    let tokens: Vec<_> = (0..THREADS).map(|t| nr.register(t)).collect();
    let history = record_concurrent::<HashMap, _, _>(
        THREADS,
        OPS_PER_THREAD,
        read_heavy_ops(seed),
        |t, op| nr.execute(&tokens[t], op),
    );
    check_linearizable(&HashMap::new(), &history)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Optimistic-mode NR produces linearizable histories at 90% reads:
    /// most reads are served lock-free with seqlock validation, racing
    /// the combiner that bumps the version on every batch.
    #[test]
    fn optimistic_nr_read_heavy_histories_linearize(seed in 0u64..1u64 << 32) {
        prop_assert!(
            linearizable_under(FairnessMode::Optimistic, seed),
            "Optimistic NR produced a non-linearizable history (seed {seed})"
        );
    }

    /// Same property under the adaptive selector, which migrates between
    /// the slot path, the shared line, and the optimistic path mid-run.
    #[test]
    fn adaptive_nr_read_heavy_histories_linearize(seed in 0u64..1u64 << 32) {
        prop_assert!(
            linearizable_under(FairnessMode::Adaptive, seed),
            "Adaptive NR produced a non-linearizable history (seed {seed})"
        );
    }
}

/// A sequential object built to make torn reads visible: `WORDS` words
/// that are always all equal between operations. A writer walks the array
/// one word at a time, so an unvalidated mid-write read *would* observe a
/// mix of old and new values.
#[derive(Clone)]
struct TornDetector {
    words: [u64; TornDetector::WORDS],
}

impl TornDetector {
    const WORDS: usize = 48;

    fn new() -> Self {
        TornDetector {
            words: [0; Self::WORDS],
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum TornOp {
    /// Update: set every word to `v`, one word at a time.
    SetAll(u64),
    /// Read-only: return (min, max) across the words — equal iff untorn.
    ReadAll,
}

impl SequentialObject for TornDetector {
    type Op = TornOp;
    type Resp = (u64, u64);

    fn apply(&mut self, op: &TornOp) -> (u64, u64) {
        match *op {
            TornOp::SetAll(v) => {
                for w in self.words.iter_mut() {
                    *w = v;
                }
                (v, v)
            }
            TornOp::ReadAll => self.apply_readonly(op),
        }
    }

    fn apply_readonly(&self, op: &TornOp) -> (u64, u64) {
        match *op {
            TornOp::ReadAll => {
                let min = *self.words.iter().min().unwrap();
                let max = *self.words.iter().max().unwrap();
                (min, max)
            }
            TornOp::SetAll(_) => panic!("SetAll is not read-only"),
        }
    }

    fn is_read_only(op: &TornOp) -> bool {
        matches!(op, TornOp::ReadAll)
    }

    fn approx_bytes(&self) -> u64 {
        (Self::WORDS * 8) as u64
    }
}

/// Readers hammer the optimistic path while writers rewrite the whole
/// array; every returned snapshot must be internally consistent. This is
/// the direct test that seqlock validation discards torn reads.
#[test]
fn optimistic_reads_are_never_torn() {
    for fairness in [FairnessMode::Optimistic, FairnessMode::Adaptive] {
        const READERS: usize = 3;
        let asg = Topology::new(2, 4, 1).assign_workers(READERS + 1);
        let nr = Arc::new(NodeReplicated::with_hooks_and_fairness(
            TornDetector::new(),
            asg,
            128,
            NoopHooks,
            fairness,
        ));
        let stop = Arc::new(AtomicBool::new(false));

        let writer = {
            let nr = Arc::clone(&nr);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let t = nr.register(0);
                let mut v = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    nr.execute(&t, TornOp::SetAll(v));
                    v += 1;
                }
                v
            })
        };
        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let nr = Arc::clone(&nr);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let t = nr.register(1 + r);
                    let mut reads = 0u64;
                    let mut last_seen = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let (min, max) = nr.execute(&t, TornOp::ReadAll);
                        assert_eq!(min, max, "torn read escaped validation ({fairness:?})");
                        // Values a single reader observes are monotone
                        // (the writer only counts up).
                        assert!(min >= last_seen, "read went backwards ({fairness:?})");
                        last_seen = min;
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();

        std::thread::sleep(std::time::Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
        writer.join().unwrap();
        let total_reads: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total_reads > 0, "readers made no progress ({fairness:?})");
    }
}

/// All read-path modes agree on final state under an owned-key update
/// discipline with interleaved reads (extends `readpath.rs`'s three-mode
/// agreement test to the optimistic and adaptive modes).
#[test]
fn optimistic_modes_agree_with_lock_modes_on_final_state() {
    const WORKERS: usize = 4;
    const PER_WORKER: u64 = 250;
    let mut final_histories = Vec::new();
    for fairness in [
        FairnessMode::Throughput,
        FairnessMode::ThroughputCentralized,
        FairnessMode::Optimistic,
        FairnessMode::Adaptive,
    ] {
        let asg = Topology::new(2, 4, 1).assign_workers(WORKERS);
        let nr = Arc::new(NodeReplicated::with_hooks_and_fairness(
            Recorder::new(),
            asg,
            128,
            NoopHooks,
            fairness,
        ));
        let handles: Vec<_> = (0..WORKERS)
            .map(|w| {
                let nr = Arc::clone(&nr);
                std::thread::spawn(move || {
                    let t = nr.register(w);
                    for i in 0..PER_WORKER {
                        nr.execute(&t, RecorderOp::Record((w as u64) << 32 | i));
                        if i % 8 == 0 {
                            nr.execute(&t, RecorderOp::Count);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut hist = nr.with_replica(0, |r| r.history().to_vec());
        assert_eq!(
            hist.len() as u64,
            WORKERS as u64 * PER_WORKER,
            "{fairness:?} lost updates"
        );
        let mut next = [0u64; WORKERS];
        for id in &hist {
            let w = (id >> 32) as usize;
            assert_eq!(id & 0xffff_ffff, next[w], "{fairness:?} broke FIFO");
            next[w] += 1;
        }
        hist.sort_unstable();
        final_histories.push(hist);
    }
    for other in &final_histories[1..] {
        assert_eq!(&final_histories[0], other);
    }
}

/// Crash/recovery: optimistic reads on the recovered instance observe
/// exactly the recovered prefix — never state from after the crash cut —
/// and they actually take the optimistic path (counter probe).
#[test]
fn recovered_optimistic_reads_see_exactly_the_recovered_prefix() {
    const WORKERS: usize = 2;
    let cfg = || {
        PrepConfig::new(DurabilityLevel::Buffered)
            .with_log_size(256)
            .with_epsilon(8)
            .with_fairness(FairnessMode::Optimistic)
            .with_runtime(PmemRuntime::for_crash_tests())
    };
    let asg = Topology::new(2, 2, 1).assign_workers(WORKERS);
    let prep = Arc::new(PrepUc::new(Recorder::new(), asg.clone(), cfg()));
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let prep = Arc::clone(&prep);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let token = prep.register(w);
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    prep.execute(&token, RecorderOp::Record((w as u64) << 32 | i));
                    i += 1;
                }
            })
        })
        .collect();
    std::thread::sleep(std::time::Duration::from_millis(100));
    let (crash_token, (image, ())) = prep.simulate_crash_with(|| ());
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    // Ground truth: the pre-crash instance's full history extends whatever
    // the image captured.
    let full_history = prep.with_replica(0, |r| r.history().to_vec());
    drop(prep);

    let recovered = PrepUc::recover(crash_token, image, asg, cfg());
    let recovered_history = recovered.with_replica(0, |r| r.history().to_vec());
    assert_prefix(&recovered_history, &full_history);

    // Optimistic reads on the recovered instance: every read must see
    // exactly the recovered prefix (no lost or phantom post-cut ops).
    let token = recovered.register(0);
    for _ in 0..200 {
        match recovered.execute(&token, RecorderOp::Count) {
            RecorderResp::Count(n) => assert_eq!(
                n,
                recovered_history.len() as u64,
                "read observed state differing from the recovered prefix"
            ),
            other => panic!("unexpected response {other:?}"),
        }
    }
    match recovered.execute(&token, RecorderOp::Last) {
        RecorderResp::Last(last) => assert_eq!(last, recovered_history.last().copied()),
        other => panic!("unexpected response {other:?}"),
    }
    assert!(
        recovered.read_fast_optimistic() > 0,
        "recovered reads never took the optimistic path"
    );
}
