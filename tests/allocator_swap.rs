//! End-to-end allocator-swap test (§5.1).
//!
//! This test binary registers `SwappableAllocator` as the process's global
//! allocator — the configuration the paper's implementation runs in. The
//! persistence thread must transparently route the *sequential object's own
//! allocations* (the `SortedList`'s `Box`ed nodes) into the persistent
//! arena while it replays the log, without the sequential code knowing, and
//! worker threads' allocations must stay on the system allocator.

#[global_allocator]
static ALLOC: prep_pmem::alloc::SwappableAllocator = prep_pmem::alloc::SwappableAllocator::new();

use prep_pmem::alloc::{global_arena, persistent_allocation_enabled, with_persistent};
use prep_seqds::list::{SetOp, SetResp, SortedList};
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PmemRuntime, PrepConfig, PrepUc};

fn cfg() -> PrepConfig {
    PrepConfig::new(DurabilityLevel::Buffered)
        .with_log_size(512)
        .with_epsilon(64)
        .with_runtime(PmemRuntime::for_crash_tests())
}

#[test]
fn persistence_thread_allocates_sequential_nodes_in_the_arena() {
    // Touch the arena once so baseline counters exist.
    let _warm = with_persistent(|| Box::new(0u64));
    let (allocs_before, _) = global_arena().op_counts();

    let asg = Topology::new(2, 2, 1).assign_workers(1);
    let prep = PrepUc::new(SortedList::new(), asg, cfg());
    let token = prep.register(0);
    // Enough inserts to cross several flush boundaries, so the persistence
    // thread replays them (allocating one list node each) persistently.
    for k in 0..300u64 {
        assert_eq!(prep.execute(&token, SetOp::Insert(k)), SetResp::Bool(true));
    }
    // Wait until both persistent replicas have caught up past most inserts.
    prep_sync::spin_until(|| {
        let [a, b] = prep.persistent_tails();
        a.min(b) >= 200
    });
    let (allocs_after, _) = global_arena().op_counts();
    let delta = allocs_after - allocs_before;
    assert!(
        delta >= 300,
        "persistence thread should have allocated ≥300 list nodes (two \
         replicas' worth in flight) in the arena; saw {delta}"
    );

    // The worker thread (this thread) is in volatile mode throughout.
    assert!(!persistent_allocation_enabled());
    drop(prep);
}

#[test]
fn worker_allocations_do_not_touch_the_arena() {
    let _warm = with_persistent(|| Box::new(0u64));
    let (before, _) = global_arena().op_counts();
    // A purely volatile allocation storm on this thread.
    let mut keep = Vec::new();
    for i in 0..1000usize {
        keep.push(vec![i; 8]);
    }
    drop(keep);
    let (after, _) = global_arena().op_counts();
    assert_eq!(
        before, after,
        "volatile-mode allocations leaked into the persistent arena"
    );
}

#[test]
fn cross_mode_drop_routes_by_pointer_range() {
    // Allocate persistently, drop in volatile mode (what happens when a
    // recovered replica is rebuilt): must not crash or double count.
    let b = with_persistent(|| Box::new([0u8; 256]));
    let p = b.as_ptr();
    assert!(global_arena().contains(p));
    drop(b); // volatile mode here
    let b2 = with_persistent(|| Box::new([0u8; 256]));
    assert_eq!(
        b2.as_ptr(),
        p,
        "freed arena block should be reused by the free list"
    );
}
