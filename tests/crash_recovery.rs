//! Randomized crash-point injection under concurrency.
//!
//! The central correctness claims of the paper (§4.2, §5.1, §5.2), checked
//! end to end with workers running *while* the power fails:
//!
//! * **Prefix property** (buffered durable linearizability): the recovered
//!   state reflects a prefix of the linearization order.
//! * **Completeness** (durable linearizability): every operation whose
//!   response was delivered before the crash instant survives recovery.
//! * **Loss bound** (PREP-Buffered): at most `ε + β − 1` completed updates
//!   are lost per crash.
//!
//! The sequential object is the `Recorder`, whose state *is* the applied
//! operation sequence, so these properties are direct assertions on
//! vectors. The "linearization order" ground truth is read from a volatile
//! replica after the workers stop — the log order is fixed once written, so
//! the pre-crash instance's final history extends the crash-time history.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use prep_seqds::recorder::{assert_prefix, Recorder, RecorderOp};
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PmemRuntime, PrepConfig, PrepUc};

const WORKERS: usize = 3;

fn cfg(level: DurabilityLevel, eps: u64, log: u64) -> PrepConfig {
    PrepConfig::new(level)
        .with_log_size(log)
        .with_epsilon(eps)
        .with_runtime(PmemRuntime::for_crash_tests())
}

struct CrashOutcome {
    /// Per-worker number of updates observed complete at the crash cut.
    observed_at_cut: Vec<u64>,
    /// Full linearized history of the pre-crash instance (after stopping).
    full_history: Vec<u64>,
    /// History recovered from the crash image.
    recovered: Vec<u64>,
    beta: u64,
}

/// Runs a concurrent workload, crashes after `run_ms`, recovers, and
/// returns everything the properties need.
fn crash_run(level: DurabilityLevel, eps: u64, log: u64, run_ms: u64) -> CrashOutcome {
    let asg = Topology::new(2, 2, 1).assign_workers(WORKERS);
    let prep = Arc::new(PrepUc::new(
        Recorder::new(),
        asg.clone(),
        cfg(level, eps, log),
    ));
    let beta = prep.beta();
    let stop = Arc::new(AtomicBool::new(false));
    let completed: Arc<Vec<AtomicU64>> =
        Arc::new((0..WORKERS).map(|_| AtomicU64::new(0)).collect());

    let handles: Vec<_> = (0..WORKERS)
        .map(|w| {
            let prep = Arc::clone(&prep);
            let stop = Arc::clone(&stop);
            let completed = Arc::clone(&completed);
            std::thread::spawn(move || {
                let token = prep.register(w);
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    prep.execute(&token, RecorderOp::Record((w as u64) << 32 | i));
                    // Release-publish completion *after* the response is in
                    // hand; the crash cut reads these with the cut lock
                    // held, giving a sound lower bound on completed ops.
                    completed[w].fetch_add(1, Ordering::Release);
                    i += 1;
                }
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(run_ms));
    // Capture the NVM image and the worker completion counters under the
    // same consistent cut. Reading the counters here bounds
    // completed-before-cut from below (an op may complete just before the
    // cut without its increment being visible yet — the safe direction).
    let (token, (image, observed_at_cut)) = prep.simulate_crash_with(|| {
        completed
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .collect::<Vec<u64>>()
    });
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    let full_history = prep.with_replica(0, |r| r.history().to_vec());
    drop(prep);

    let recovered_uc = PrepUc::recover(token, image, asg, cfg(level, eps, log));
    let recovered = recovered_uc.with_replica(0, |r| r.history().to_vec());

    CrashOutcome {
        observed_at_cut,
        full_history,
        recovered,
        beta,
    }
}

#[test]
fn buffered_recovery_is_a_prefix_with_bounded_loss() {
    for (run_ms, eps) in [(20u64, 8u64), (50, 32), (80, 8)] {
        let out = crash_run(DurabilityLevel::Buffered, eps, 256, run_ms);
        let kept = assert_prefix(&out.recovered, &out.full_history);
        let observed: u64 = out.observed_at_cut.iter().sum();
        let bound = eps + out.beta - 1;
        assert!(
            observed.saturating_sub(kept as u64) <= bound,
            "buffered loss: observed-completed {observed}, recovered {kept}, bound {bound}"
        );
    }
}

#[test]
fn durable_recovery_keeps_every_completed_operation() {
    for run_ms in [20u64, 50, 80] {
        let out = crash_run(DurabilityLevel::Durable, 32, 256, run_ms);
        let kept = assert_prefix(&out.recovered, &out.full_history);
        // Every op observed complete at the cut must be in the recovered
        // prefix — per worker, the first observed[w] ops of that worker.
        for (w, &obs) in out.observed_at_cut.iter().enumerate() {
            let in_recovered = out
                .recovered
                .iter()
                .filter(|id| (*id >> 32) as usize == w)
                .count() as u64;
            assert!(
                in_recovered >= obs,
                "durable: worker {w} had {obs} completed ops at crash but only \
                 {in_recovered} recovered (prefix length {kept})"
            );
        }
    }
}

#[test]
fn recovered_instance_accepts_new_operations_and_stays_consistent() {
    let out = crash_run(DurabilityLevel::Durable, 16, 256, 30);
    // Start a second life from the recovered history and crash it again:
    // c crashes lose at most c(ε + β − 1), and durable loses none.
    let asg = Topology::new(2, 2, 1).assign_workers(1);
    let prep = PrepUc::new(
        Recorder::new(),
        asg.clone(),
        cfg(DurabilityLevel::Durable, 16, 256),
    );
    let t = prep.register(0);
    for i in 0..40u64 {
        prep.execute(&t, RecorderOp::Record(0xEE00_0000 + i));
    }
    let (token, image) = prep.simulate_crash();
    drop(prep);
    let again = PrepUc::recover(token, image, asg, cfg(DurabilityLevel::Durable, 16, 256));
    let hist = again.with_replica(0, |r| r.history().to_vec());
    assert_eq!(
        hist.len(),
        40,
        "second-generation durable recovery lost ops"
    );
    // And the first outcome's recovered data is untouched by any of this.
    assert_prefix(&out.recovered, &out.full_history);
}

#[test]
fn crash_image_identifies_consistent_stable_replica_under_load() {
    // Capture many crash images while workers hammer the object; the
    // stable replica must be readable (never torn) every single time.
    let asg = Topology::new(2, 2, 1).assign_workers(2);
    let prep = Arc::new(PrepUc::new(
        Recorder::new(),
        asg,
        cfg(DurabilityLevel::Buffered, 8, 256),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..2)
        .map(|w| {
            let prep = Arc::clone(&prep);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let token = prep.register(w);
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    prep.execute(&token, RecorderOp::Record(i));
                    i += 1;
                }
            })
        })
        .collect();
    for _ in 0..50 {
        let (_tok, image) = prep.simulate_crash();
        let snap = image.stable_snapshot(); // panics if torn
        assert!(snap.local_tail <= prep.completed_tail());
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
}
