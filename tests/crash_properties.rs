//! Property-based crash testing: proptest drives (ε, log size, op count,
//! crash schedule) through single-threaded deterministic executions where
//! the exact durability conditions can be asserted with equality, not just
//! bounds.

#![allow(clippy::int_plus_one)] // keep the paper's ε + β − 1 formulas verbatim

use proptest::prelude::*;

use prep_seqds::recorder::{assert_prefix, Recorder, RecorderOp};
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PmemRuntime, PrepConfig, PrepUc};

fn cfg(level: DurabilityLevel, eps: u64, log: u64) -> PrepConfig {
    PrepConfig::new(level)
        .with_log_size(log)
        .with_epsilon(eps)
        .with_runtime(PmemRuntime::for_crash_tests())
}

/// Executes `n` updates, crashes, recovers; returns (completed, recovered).
fn run_once(level: DurabilityLevel, eps: u64, log: u64, n: u64) -> (u64, Vec<u64>) {
    let asg = Topology::small().assign_workers(1);
    let prep = PrepUc::new(Recorder::new(), asg.clone(), cfg(level, eps, log));
    let t = prep.register(0);
    for i in 0..n {
        prep.execute(&t, RecorderOp::Record(i));
    }
    let (token, image) = prep.simulate_crash();
    drop(prep);
    let rec = PrepUc::recover(token, image, asg, cfg(level, eps, log));
    let hist = rec.with_replica(0, |r| r.history().to_vec());
    (n, hist)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Durable linearizability, exactly: every completed op recovered, in
    /// order, for arbitrary (ε, log, n) within the legal parameter space.
    #[test]
    fn durable_recovers_exactly_completed(
        eps in 1u64..64,
        log_pow in 6u32..9,           // log sizes 64..256
        n in 1u64..400,
    ) {
        let log = 1u64 << log_pow;
        prop_assume!(eps <= log - 1 - 1); // ε ≤ LOG_SIZE − β − 1 (β = 1)
        let (completed, recovered) = run_once(DurabilityLevel::Durable, eps, log, n);
        let expect: Vec<u64> = (0..completed).collect();
        prop_assert_eq!(recovered, expect);
    }

    /// Buffered durable linearizability: the recovered history is a prefix
    /// and the ε + β − 1 bound holds, for arbitrary legal parameters.
    #[test]
    fn buffered_prefix_and_loss_bound(
        eps in 1u64..64,
        log_pow in 6u32..9,
        n in 1u64..400,
    ) {
        let log = 1u64 << log_pow;
        prop_assume!(eps <= log - 1 - 1);
        let (completed, recovered) = run_once(DurabilityLevel::Buffered, eps, log, n);
        let reference: Vec<u64> = (0..completed).collect();
        let kept = assert_prefix(&recovered, &reference) as u64;
        let beta = 1;
        prop_assert!(
            completed - kept <= eps + beta - 1,
            "lost {} with eps {} (bound {})", completed - kept, eps, eps + beta - 1
        );
    }

    /// Crash → recover → continue → crash again: the multi-crash bound
    /// c(ε + β − 1) from §5.1, and monotone history growth across lives.
    #[test]
    fn multi_crash_accumulated_loss(
        eps in 1u64..32,
        epochs in 1usize..5,
        per_epoch in 1u64..120,
    ) {
        let log = 256u64;
        prop_assume!(eps <= log - 2);
        let asg = Topology::small().assign_workers(1);
        let mut prep = PrepUc::new(
            Recorder::new(), asg.clone(), cfg(DurabilityLevel::Buffered, eps, log));
        let mut issued = 0u64;
        // Operations lost at crash k never reappear (§5.1: "the log returns
        // to empty after a crash"), so the valid reference after each crash
        // is *the previous recovery's history* extended by this epoch's
        // ids — a concatenation of per-epoch prefixes, not a prefix of
        // everything ever issued.
        let mut base: Vec<u64> = Vec::new();
        for _ in 0..epochs {
            let t = prep.register(0);
            let mut reference = base.clone();
            for _ in 0..per_epoch {
                prep.execute(&t, RecorderOp::Record(issued));
                reference.push(issued);
                issued += 1;
            }
            let (token, image) = prep.simulate_crash();
            drop(prep);
            prep = PrepUc::recover(
                token, image, asg.clone(), cfg(DurabilityLevel::Buffered, eps, log));
            let hist = prep.with_replica(0, |r| r.history().to_vec());
            let kept = assert_prefix(&hist, &reference);
            // Recovery never loses what an earlier recovery preserved…
            prop_assert!(kept >= base.len());
            // …and each crash loses at most ε + β − 1 of this epoch's ops.
            prop_assert!(
                (reference.len() - kept) as u64 <= eps, // ε + β − 1, β = 1
                "epoch loss {} with eps {}", reference.len() - kept, eps
            );
            base = hist;
        }
        let total_lost = issued - base.len() as u64;
        prop_assert!(
            total_lost <= epochs as u64 * eps, // c(ε + β − 1), β = 1
            "lost {} over {} crashes with eps {}", total_lost, epochs, eps
        );
    }
}

#[test]
fn read_only_operations_never_flush_or_fence() {
    // ONLL-inspired sanity check the paper implies for PREP: read-only
    // operations take no persistence actions in either mode (all flush
    // traffic comes from updates and the persistence thread).
    for level in [DurabilityLevel::Buffered, DurabilityLevel::Durable] {
        let asg = Topology::small().assign_workers(1);
        let prep = PrepUc::new(Recorder::new(), asg, cfg(level, 1_000, 4_096));
        let t = prep.register(0);
        // A couple of updates so reads have something to see, then let the
        // persistence thread go quiescent.
        for i in 0..5u64 {
            prep.execute(&t, RecorderOp::Record(i));
        }
        prep_sync::spin_until(|| {
            prep.persistent_tails()[prep.active_persistent_replica() as usize] >= 5
        });
        let before = prep.stats();
        for _ in 0..1_000 {
            prep.execute(&t, RecorderOp::Count);
            prep.execute(&t, RecorderOp::Last);
        }
        let delta = prep.stats().delta_since(&before);
        assert_eq!(delta.total_flushes(), 0, "{level:?}: reads flushed");
        assert_eq!(delta.sfence, 0, "{level:?}: reads fenced");
        assert_eq!(delta.wbinvd, 0, "{level:?}: reads triggered WBINVD");
    }
}
