//! End-to-end persistence-ordering sanitizer runs (`prep-psan`).
//!
//! Two directions:
//!
//! * **Clean paths stay clean** — every durability level × flush strategy,
//!   plus the sharded store's cross-shard crash, runs a full
//!   workload + crash + recovery under the tracer and must produce *zero*
//!   violations. This is the sanitizer's false-positive budget: the
//!   instrumented persist paths implement exactly the ordering the paper's
//!   durability argument needs, and the rule engine must agree.
//!
//! * **Seeded bugs are caught** — [`PsanFault`] drops a single `SFENCE`
//!   from a real persist path (log payload batch / checkpoint), and the
//!   sanitizer must flag the resulting publish of not-yet-durable data as
//!   `missing-fence`. These are the regression tests for the ordering the
//!   clean runs silently rely on.

use std::sync::Arc;

use prep_checker::check_persistence_ordering;
use prep_pmem::psan::ViolationKind;
use prep_pmem::PmemRuntime;
use prep_seqds::recorder::{Recorder, RecorderOp};
use prep_shard::ShardedStore;
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, FlushStrategy, PrepConfig, PrepUc, PsanFault};

fn traced_runtime() -> Arc<PmemRuntime> {
    let rt = PmemRuntime::for_crash_tests();
    rt.psan_enable();
    rt
}

fn cfg(rt: &Arc<PmemRuntime>, level: DurabilityLevel, strategy: FlushStrategy) -> PrepConfig {
    PrepConfig::new(level)
        .with_log_size(256)
        .with_epsilon(16)
        .with_flush_strategy(strategy)
        .with_runtime(Arc::clone(rt))
}

/// Runs a single-worker workload, crashes, recovers, works some more, and
/// returns the runtime for rule checking.
fn run_crash_recover(level: DurabilityLevel, strategy: FlushStrategy) -> Arc<PmemRuntime> {
    let rt = traced_runtime();
    let asg = Topology::small().assign_workers(1);
    let prep = PrepUc::new(Recorder::new(), asg.clone(), cfg(&rt, level, strategy));
    let t = prep.register(0);
    for i in 0..100u64 {
        prep.execute(&t, RecorderOp::Record(i));
    }
    let (token, image) = prep.simulate_crash();
    drop(prep); // the "power failure"
    let recovered = PrepUc::recover(token, image, asg, cfg(&rt, level, strategy));
    let t = recovered.register(0);
    for i in 100..150u64 {
        recovered.execute(&t, RecorderOp::Record(i));
    }
    drop(recovered);
    rt
}

#[test]
fn clean_paths_produce_zero_violations_across_the_strategy_matrix() {
    for level in [DurabilityLevel::Buffered, DurabilityLevel::Durable] {
        for strategy in [
            FlushStrategy::Wbinvd,
            FlushStrategy::RangeFlush,
            FlushStrategy::DirtyLines,
        ] {
            let rt = run_crash_recover(level, strategy);
            assert!(
                rt.psan_event_count() > 0,
                "{level:?}/{strategy:?}: tracer recorded nothing"
            );
            if let Err(report) = check_persistence_ordering(&rt) {
                panic!("{level:?}/{strategy:?} flagged a clean path:\n{report}");
            }
        }
    }
}

#[test]
fn sharded_crash_and_recovery_stay_clean() {
    let rt = traced_runtime();
    let asg = Topology::small().assign_workers(2);
    let level = DurabilityLevel::Durable;
    let route = |op: &RecorderOp| match *op {
        RecorderOp::Record(id) => id,
        _ => 0,
    };
    let store = ShardedStore::new(
        Recorder::new(),
        3,
        asg.clone(),
        cfg(&rt, level, FlushStrategy::Wbinvd),
        route,
    );
    let token = store.register(0);
    for id in 0..90u64 {
        store.execute(&token, RecorderOp::Record(id));
    }
    let (crash, image) = store.simulate_crash();
    drop(store);
    let recovered = ShardedStore::recover(
        crash,
        image,
        asg,
        cfg(&rt, level, FlushStrategy::Wbinvd),
        route,
    );
    let token = recovered.register(0);
    for id in 90..120u64 {
        recovered.execute(&token, RecorderOp::Record(id));
    }
    drop(recovered);
    assert!(rt.psan_event_count() > 0, "tracer recorded nothing");
    if let Err(report) = check_persistence_ordering(&rt) {
        panic!("sharded crash/recovery flagged:\n{report}");
    }
}

/// Asserts the trace contains at least one violation of `kind` and that
/// every violation is of that kind (a dropped fence must not cascade into
/// unrelated reports).
fn assert_only_kind(rt: &PmemRuntime, kind: ViolationKind, what: &str) {
    let violations = rt.psan_check();
    assert!(
        violations.iter().any(|v| v.kind == kind),
        "{what}: expected a {kind} violation, got:\n{}",
        prep_pmem::psan::format_violations(&violations)
    );
    for v in &violations {
        assert_eq!(
            v.kind,
            kind,
            "{what}: unexpected extra violation kind:\n{}",
            prep_pmem::psan::format_violations(&violations)
        );
    }
}

#[test]
fn dropping_the_log_payload_fence_is_detected() {
    let rt = traced_runtime();
    let asg = Topology::small().assign_workers(1);
    let config = cfg(&rt, DurabilityLevel::Durable, FlushStrategy::Wbinvd)
        .with_psan_fault(PsanFault::SkipLogPayloadFence);
    let prep = PrepUc::new(Recorder::new(), asg, config);
    let t = prep.register(0);
    for i in 0..100u64 {
        prep.execute(&t, RecorderOp::Record(i));
    }
    drop(prep);
    // The emptyBit publishes entries whose payload flushes were never
    // fenced: rule 1 must flag the publish.
    assert_only_kind(&rt, ViolationKind::MissingFence, "SkipLogPayloadFence");
}

#[test]
fn dropping_the_checkpoint_fence_is_detected() {
    let rt = traced_runtime();
    let asg = Topology::small().assign_workers(1);
    // Tiny log + tiny ε force many checkpoints (cf. the backpressure
    // test), so the faulty swap definitely executes.
    let config = PrepConfig::new(DurabilityLevel::Buffered)
        .with_log_size(64)
        .with_epsilon(8)
        .with_flush_strategy(FlushStrategy::RangeFlush)
        .with_runtime(Arc::clone(&rt))
        .with_psan_fault(PsanFault::SkipCheckpointFence);
    let prep = PrepUc::new(Recorder::new(), asg, config);
    let t = prep.register(0);
    for i in 0..200u64 {
        prep.execute(&t, RecorderOp::Record(i));
    }
    drop(prep);
    // `p_activePReplica` swings to a replica whose flushes were never
    // fenced: the checkpoint-marker publish must be flagged.
    assert_only_kind(&rt, ViolationKind::MissingFence, "SkipCheckpointFence");
}
