//! Direct linearizability checking of the universal constructions: record
//! small concurrent histories through `prep-checker`'s global-clock
//! recorder and search for a valid linearization of each.

use std::sync::Arc;

use prep_checker::{check_linearizable, record_concurrent};
use prep_nr::NodeReplicated;
use prep_seqds::stack::{Stack, StackOp};
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PmemRuntime, PrepConfig, PrepUc};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const THREADS: usize = 3;
const OPS_PER_THREAD: usize = 5; // 15-op windows: cheap exhaustive search
const WINDOWS: usize = 25;

fn window_ops(seed: u64) -> impl Fn(usize, usize) -> StackOp + Sync {
    move |t, i| {
        let mut rng = SmallRng::seed_from_u64(seed ^ ((t as u64) << 8) ^ i as u64);
        match rng.gen_range(0..4) {
            0 | 1 => StackOp::Push(rng.gen_range(0..100)),
            2 => StackOp::Pop,
            _ => StackOp::Top,
        }
    }
}

#[test]
fn nr_uc_histories_are_linearizable() {
    for w in 0..WINDOWS {
        let asg = Topology::new(2, 2, 1).assign_workers(THREADS);
        let nr = NodeReplicated::new(Stack::new(), asg, 256);
        let tokens: Vec<_> = (0..THREADS).map(|t| nr.register(t)).collect();
        let history = record_concurrent::<Stack, _, _>(
            THREADS,
            OPS_PER_THREAD,
            window_ops(w as u64),
            |t, op| nr.execute(&tokens[t], op),
        );
        assert!(
            check_linearizable(&Stack::new(), &history),
            "NR-UC produced a non-linearizable history in window {w}: {history:#?}"
        );
    }
}

#[test]
fn prep_buffered_histories_are_linearizable() {
    for w in 0..WINDOWS {
        let asg = Topology::new(2, 2, 1).assign_workers(THREADS);
        let cfg = PrepConfig::new(DurabilityLevel::Buffered)
            .with_log_size(256)
            .with_epsilon(8) // frequent persist cycles interleave with ops
            .with_runtime(PmemRuntime::for_crash_tests());
        let prep = Arc::new(PrepUc::new(Stack::new(), asg, cfg));
        let tokens: Vec<_> = (0..THREADS).map(|t| prep.register(t)).collect();
        let history = record_concurrent::<Stack, _, _>(
            THREADS,
            OPS_PER_THREAD,
            window_ops(0xB00 + w as u64),
            |t, op| prep.execute(&tokens[t], op),
        );
        assert!(
            check_linearizable(&Stack::new(), &history),
            "PREP-Buffered produced a non-linearizable history in window {w}: {history:#?}"
        );
    }
}

#[test]
fn prep_durable_histories_are_linearizable() {
    for w in 0..WINDOWS {
        let asg = Topology::new(2, 2, 1).assign_workers(THREADS);
        let cfg = PrepConfig::new(DurabilityLevel::Durable)
            .with_log_size(256)
            .with_epsilon(8)
            .with_runtime(PmemRuntime::for_crash_tests());
        let prep = Arc::new(PrepUc::new(Stack::new(), asg, cfg));
        let tokens: Vec<_> = (0..THREADS).map(|t| prep.register(t)).collect();
        let history = record_concurrent::<Stack, _, _>(
            THREADS,
            OPS_PER_THREAD,
            window_ops(0xD00 + w as u64),
            |t, op| prep.execute(&tokens[t], op),
        );
        assert!(
            check_linearizable(&Stack::new(), &history),
            "PREP-Durable produced a non-linearizable history in window {w}: {history:#?}"
        );
    }
}
