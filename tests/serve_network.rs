//! Wire-level durability tests for `prep-serve`: the paper's buffered /
//! durable ack contract, observed from the *client* side of a TCP socket.
//!
//! Two properties, both stated over acknowledgements a real client saw:
//!
//! * **Graceful shutdown loses nothing.** Every op buffered-acked before a
//!   clean `ADMIN SHUTDOWN` survives a post-shutdown crash cut — the drain
//!   path's final forced checkpoint turns "applied" into "persistent" for
//!   the entire completed prefix.
//!
//! * **Crash under load honors the ack levels.** With `ADMIN CRASH` landing
//!   mid-workload: durable-acked ops are *never* lost; buffered-acked loss
//!   stays within the store-wide `N·(ε + β − 1)` bound; and per shard the
//!   survivors are closed under the wire-level happens-before order (an op
//!   acked before a survivor was even sent cannot itself be missing),
//!   checked through `prep-checker`'s sharded history recorder fed from
//!   the client threads.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use prep_checker::ShardedHistoryRecorder;
use prep_seqds::hashmap::{HashMap, MapOp, MapResp};
use prep_serve::proto::{decode_response, encode_request, AckLevel, AdminCmd, Request, Response};
use prep_serve::server::{ServeConfig, Server, Store};
use prep_shard::{shard_index, ShardedStore};
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, LatencyModel, PmemRuntime, PrepConfig};

const SHARDS: usize = 2;
const EXECUTORS: usize = 2;

fn server() -> Server {
    Server::start(
        ServeConfig {
            shards: SHARDS,
            executors_per_shard: EXECUTORS,
            conn_threads: 2,
            queue_depth: 64,
            durability: DurabilityLevel::Buffered,
            epsilon: 16,
            log_size: 1024,
            latency: LatencyModel::off(),
            crash_sim: true,
            watch_signals: false,
            fairness: prep_uc::FairnessMode::Adaptive,
        },
        "127.0.0.1:0",
    )
    .expect("start server")
}

/// Blocking one-request-at-a-time client.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Client {
            stream,
            buf: Vec::new(),
        }
    }

    fn roundtrip(&mut self, req: &Request) -> Response {
        let mut out = Vec::with_capacity(32);
        encode_request(req, &mut out);
        self.stream.write_all(&out).expect("send");
        let mut tmp = [0u8; 4096];
        loop {
            if let Some((resp, used)) = decode_response(&self.buf).expect("decode") {
                self.buf.drain(..used);
                return resp;
            }
            let n = self.stream.read(&mut tmp).expect("recv");
            assert!(n > 0, "server closed connection");
            self.buf.extend_from_slice(&tmp[..n]);
        }
    }

    /// PUTs until the server stops shedding; returns the ack response.
    fn put_retrying(&mut self, id: u64, ack: AckLevel, key: u64, value: u64) -> Response {
        loop {
            match self.roundtrip(&Request::Put {
                id,
                ack,
                key,
                value,
            }) {
                Response::Retry { .. } => std::thread::yield_now(),
                resp => return resp,
            }
        }
    }
}

/// Reads the whole key set out of a (recovered or live) store.
fn present_keys(store: &ShardedStore<HashMap>, keys: impl Iterator<Item = u64>) -> HashSet<u64> {
    let token = store.register(0);
    keys.filter(|&k| {
        matches!(
            store.execute(&token, MapOp::Get { key: k }),
            MapResp::Value(Some(_))
        )
    })
    .collect()
}

#[test]
fn graceful_shutdown_loses_no_buffered_ops() {
    let server = server();
    let addr = server.local_addr();

    // Concurrent writers, buffered acks only, unique keys per thread.
    const WRITERS: u64 = 3;
    const OPS: u64 = 200;
    let acked: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|t| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr);
                    let mut acked = Vec::new();
                    for i in 0..OPS {
                        let key = t * 1_000_000 + i;
                        if matches!(
                            c.put_retrying(i, AckLevel::Buffered, key, key + 7),
                            Response::Done { .. }
                        ) {
                            acked.push(key);
                        }
                    }
                    acked
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("writer panicked"))
            .collect()
    });
    assert_eq!(acked.len() as u64, WRITERS * OPS, "every put must ack");

    // Clean wire shutdown, then prove the acks are on NVM: capture a crash
    // cut from the quiesced store and recover from it.
    let mut c = Client::connect(addr);
    assert!(matches!(
        c.roundtrip(&Request::Admin {
            id: 9,
            cmd: AdminCmd::Shutdown,
        }),
        Response::Done { .. }
    ));
    let report = server.join();
    assert_eq!(
        report.completed_tails, report.durable_watermarks,
        "drain must quiesce every shard"
    );
    let store = Arc::try_unwrap(report.store)
        .unwrap_or_else(|_| panic!("post-join store handle must be unique"));
    let (token, image) = store.simulate_crash();
    drop(store);
    let workers = SHARDS * EXECUTORS;
    let recovered: ShardedStore<HashMap> = ShardedStore::recover(
        token,
        image,
        Topology::new(1, workers + 1, 1).assign_workers(workers),
        PrepConfig::new(DurabilityLevel::Buffered)
            .with_log_size(1024)
            .with_epsilon(16)
            .with_runtime(PmemRuntime::for_crash_tests()),
        |op: &MapOp| op.key().unwrap_or(0),
    );
    let survived = present_keys(&recovered, acked.iter().copied());
    assert_eq!(
        survived.len(),
        acked.len(),
        "clean shutdown lost {} buffered-acked ops",
        acked.len() - survived.len()
    );
}

/// One client thread's view of its own acked ops.
struct AckedOp {
    key: u64,
    durable: bool,
    /// Recorder event index is recovered by (shard, invoke) later; the
    /// stamps live in the recorder.
    shard: usize,
}

#[test]
fn crash_under_load_honors_ack_levels() {
    let server = server();
    let addr = server.local_addr();
    let loss_bound = server.store_handle().loss_bound();

    const CLIENTS: u64 = 4;
    let stop = AtomicBool::new(false);
    let crashed = AtomicBool::new(false);
    // Recorder stamp taken immediately before ADMIN CRASH is sent: events
    // with `response < crash_stamp` completed strictly before the outage.
    let crash_stamp = std::sync::atomic::AtomicU64::new(u64::MAX);
    // Wire-fed sharded history: clients stamp invoke before the frame is
    // sent and complete after the ack frame arrives.
    let recorder: ShardedHistoryRecorder<MapOp, ()> = ShardedHistoryRecorder::new(SHARDS);

    let acked: Vec<AckedOp> = std::thread::scope(|scope| {
        let stop = &stop;
        let crashed = &crashed;
        let crash_stamp = &crash_stamp;
        let recorder = &recorder;
        let workers: Vec<_> = (0..CLIENTS)
            .map(|t| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr);
                    let mut acked: Vec<AckedOp> = Vec::new();
                    let mut i = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let key = (t + 1) * 1_000_000 + i;
                        let durable = i.is_multiple_of(2);
                        let ack = if durable {
                            AckLevel::Durable
                        } else {
                            AckLevel::Buffered
                        };
                        let shard = shard_index(key, SHARDS);
                        let op = MapOp::Insert { key, value: key };
                        let stamp = recorder.invoke();
                        match c.roundtrip(&Request::Put {
                            id: i,
                            ack,
                            key,
                            value: key,
                        }) {
                            Response::Done { .. } => {
                                recorder.complete(shard, t as usize, op, (), stamp);
                                acked.push(AckedOp {
                                    key,
                                    durable,
                                    shard,
                                });
                            }
                            Response::Retry { .. } => std::thread::yield_now(),
                            other => panic!("unexpected response {other:?}"),
                        }
                        i += 1;
                    }
                    acked
                })
            })
            .collect();

        // Controller: let load build, crash mid-stream, let load continue
        // briefly on the recovered store, then stop the writers.
        let controller = scope.spawn(move || {
            let mut c = Client::connect(addr);
            // Wait until real traffic is flowing.
            loop {
                if let Response::Stats { stats, .. } = c.roundtrip(&Request::Admin {
                    id: 1,
                    cmd: AdminCmd::Stats,
                }) {
                    let total: u64 = stats.shards.iter().map(|s| s.completed_tail).sum();
                    if total > 300 {
                        break;
                    }
                }
                std::thread::yield_now();
            }
            crash_stamp.store(recorder.invoke(), Ordering::Release);
            assert!(matches!(
                c.roundtrip(&Request::Admin {
                    id: 2,
                    cmd: AdminCmd::Crash,
                }),
                Response::Done { .. }
            ));
            crashed.store(true, Ordering::Release);
            // A little post-recovery load proves the store still serves.
            for i in 0..50u64 {
                let _ = c.put_retrying(1_000 + i, AckLevel::Buffered, 9_000_000 + i, i);
            }
            stop.store(true, Ordering::Release);
        });

        let acked: Vec<AckedOp> = workers
            .into_iter()
            .flat_map(|h| h.join().expect("client panicked"))
            .collect();
        controller.join().expect("controller panicked");
        acked
    });
    assert!(crashed.load(Ordering::Acquire), "crash never happened");
    assert_eq!(server.crash_count(), 1);

    // Read back every acked key over the wire: any absent acked key was
    // lost in the crash (post-crash state is all applied and live).
    let mut reader = Client::connect(addr);
    let survived: HashSet<u64> = acked
        .iter()
        .map(|a| a.key)
        .filter(|&k| {
            matches!(
                reader.roundtrip(&Request::Get { id: k, key: k }),
                Response::Value { value: Some(_), .. }
            )
        })
        .collect();
    server.shutdown();

    let lost: Vec<&AckedOp> = acked
        .iter()
        .filter(|a| !survived.contains(&a.key))
        .collect();
    // 1) Durable acks are never lost.
    let durable_lost: Vec<u64> = lost.iter().filter(|a| a.durable).map(|a| a.key).collect();
    assert!(
        durable_lost.is_empty(),
        "durable-acked ops lost across crash: {durable_lost:?}"
    );
    // 2) Buffered loss stays within the store-wide bound.
    assert!(
        (lost.len() as u64) <= loss_bound,
        "lost {} buffered-acked ops, bound is {loss_bound}",
        lost.len()
    );
    // 3) Per-shard prefix closure over the wire-level happens-before
    //    order: if op A was acked before op B was even sent and both
    //    completed before the crash, then B surviving implies A survived
    //    (loss is a log suffix). Equivalently, on each shard every
    //    *pre-crash* survivor's invoke stamp precedes every lost op's
    //    response stamp. Ops completed after the crash request replay on
    //    the recovered log and say nothing about the old log's suffix.
    let cut = crash_stamp.load(Ordering::Acquire);
    let lost_keys: HashSet<u64> = lost.iter().map(|a| a.key).collect();
    let histories = recorder.into_histories();
    assert_eq!(histories.len(), SHARDS);
    for (shard, history) in histories.iter().enumerate() {
        let max_survivor_invoke = history
            .iter()
            .filter(|e| {
                e.response < cut
                    && e.op
                        .key()
                        .is_some_and(|k| survived.contains(&k) && !lost_keys.contains(&k))
            })
            .map(|e| e.invoke)
            .max();
        let min_lost_response = history
            .iter()
            .filter(|e| e.op.key().is_some_and(|k| lost_keys.contains(&k)))
            .map(|e| e.response)
            .min();
        if let (Some(survivor), Some(lost_resp)) = (max_survivor_invoke, min_lost_response) {
            assert!(
                survivor < lost_resp,
                "shard {shard}: op acked at stamp {lost_resp} lost while a later \
                 survivor was invoked at {survivor} — survivors are not a log prefix"
            );
        }
    }
    // Sanity: the workload actually exercised both ack levels and shards.
    assert!(acked.iter().any(|a| a.durable) && acked.iter().any(|a| !a.durable));
    assert!(acked.iter().any(|a| a.shard == 0) && acked.iter().any(|a| a.shard == 1));
}

/// The epoch a recovered store reports over the wire matches the number of
/// crashes, and a `Store` type alias round-trips through the public API.
#[test]
fn recovered_epoch_is_visible_on_the_wire() {
    let server = server();
    let addr = server.local_addr();
    let mut c = Client::connect(addr);
    for round in 1..=2u64 {
        c.put_retrying(round, AckLevel::Durable, round, round);
        assert!(matches!(
            c.roundtrip(&Request::Admin {
                id: 10 + round,
                cmd: AdminCmd::Crash,
            }),
            Response::Done { .. }
        ));
        match c.roundtrip(&Request::Admin {
            id: 20 + round,
            cmd: AdminCmd::Stats,
        }) {
            Response::Stats { stats, .. } => assert_eq!(stats.epoch, round),
            other => panic!("unexpected {other:?}"),
        }
    }
    let store: Arc<Store> = server.store_handle();
    assert_eq!(store.epoch(), 2);
    server.shutdown();
}
