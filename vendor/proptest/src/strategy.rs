//! Value-generation strategies.

use std::fmt::Debug;
use std::ops::Range;

use rand::{Rng, SampleUniform};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// `low..high` draws uniformly from the half-open range.
impl<T: SampleUniform + Debug> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
