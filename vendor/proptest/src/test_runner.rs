//! Test-case configuration and the per-case RNG.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The deterministic RNG driving one generated case.
pub type TestRng = SmallRng;

/// Per-test configuration; only `cases` is honoured by the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the workspace's
        // differential-model suites fast while still exploring widely.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the generated inputs; try another case.
    Reject,
    /// A `prop_assert!`-family assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic per-case RNG: a pure function of the (fully qualified)
/// test name and the case's stream index, so every run regenerates the
/// same inputs and a reported stream index pinpoints a failing case.
pub fn case_rng(test_name: &str, stream: u64) -> TestRng {
    // FNV-1a over the test name, mixed with the stream index.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    SmallRng::seed_from_u64(h ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}
