//! Collection strategies.

use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `Vec<S::Value>` with a length drawn from a range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.gen_range(self.size.start..self.size.end);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors whose elements come from `element` and whose length is
/// uniform over `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec-size range");
    VecStrategy { element, size }
}
