//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors
//! API-compatible minimal versions of its external dependencies (see
//! `vendor/README.md`). This shim keeps the property-based tests running
//! with the same surface syntax:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * strategies: integer/float ranges, tuples of strategies,
//!   [`collection::vec`], and [`arbitrary::any`].
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed sequence and failing inputs are reported but **not
//! shrunk**. For the differential-model and bound-checking properties in
//! this workspace that trade-off is acceptable — determinism and coverage
//! matter, minimal counterexamples are a debugging nicety.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface the tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current test case (with an optional formatted message) without
/// panicking, so the runner can attach the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Discards the current case (counted as a rejection, not a failure) when
/// its generated inputs violate a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn, recurses.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let mut stream = 0u64;
            while accepted < config.cases {
                let mut rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    stream,
                );
                stream += 1;
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (move || -> $crate::test_runner::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => {
                        rejected += 1;
                        assert!(
                            rejected < 65_536,
                            "proptest: too many prop_assume rejections \
                             ({rejected}) before {} accepted cases",
                            config.cases
                        );
                    }
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!(
                            "proptest case failed (stream {}, inputs: {}):\n{}",
                            stream - 1,
                            stringify!($($pat in $strat),+),
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}
