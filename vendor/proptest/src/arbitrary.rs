//! `any::<T>()`: whole-domain strategies for primitive types.

use std::fmt::Debug;
use std::marker::PhantomData;

use rand::{Rng, SampleStandard};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one value over the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: SampleStandard + Debug> Arbitrary for T {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform over its whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
