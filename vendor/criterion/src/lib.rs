//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors
//! API-compatible minimal versions of its external dependencies (see
//! `vendor/README.md`). Bench sources compile and run unchanged
//! (`criterion_group!`/`criterion_main!`, benchmark groups, throughput
//! annotations, `bench_function`/`bench_with_input`); measurement is a
//! plain mean-of-samples timer printed as `ns/iter` plus derived
//! throughput — no statistics, plots, or HTML reports.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// How many logical items one iteration processes; used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine`: warms up, then runs `samples` timed batches whose
    /// size is auto-scaled so each batch takes roughly a millisecond.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch = batch.saturating_mul(4);
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            total += t0.elapsed();
            iters += batch;
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used to derive rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        self.report(&id.to_string(), b.mean_ns);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b, input);
        self.report(&id.to_string(), b.mean_ns);
        self
    }

    /// Ends the group (printing is per-benchmark; this is a no-op hook kept
    /// for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&mut self, id: &str, mean_ns: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / (mean_ns * 1e-9))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 / (mean_ns * 1e-9))
            }
            None => String::new(),
        };
        println!("{}/{}: {:>12.1} ns/iter{}", self.name, id, mean_ns, rate);
        self.criterion.benchmarks_run += 1;
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Applies CLI configuration (accepted and ignored by the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group runner function invoking each benchmark fn in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export of the standard optimization barrier, matching criterion's API.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}
