//! Offline shim for the subset of `crossbeam-utils` this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors
//! API-compatible minimal versions of its external dependencies (see
//! `vendor/README.md`). Only [`CachePadded`] is provided; it keeps the same
//! alignment guarantees the real crate documents for x86-64 (128 bytes, two
//! cache lines, to defeat the adjacent-line prefetcher).

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes so that concurrent writers to
/// neighbouring values never share (or prefetch) a cache line.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value`.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Returns the inner value, consuming the padding wrapper.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        CachePadded::new(value)
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CachePadded")
            .field("value", &self.value)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_128() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        assert!(std::mem::align_of::<CachePadded<u64>>() >= 128);
    }

    #[test]
    fn deref_and_into_inner_roundtrip() {
        let mut p = CachePadded::new(41u64);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}
