//! Offline shim for the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment has no registry access, so the workspace vendors
//! API-compatible minimal versions of its external dependencies (see
//! `vendor/README.md`). Provided surface: [`rngs::SmallRng`], the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), and [`SeedableRng`]
//! (`seed_from_u64`). The generator is xoshiro256++ seeded via splitmix64 —
//! the same family the real `SmallRng` uses on 64-bit targets — so workload
//! streams remain deterministic, well-distributed, and cheap.

#![warn(missing_docs)]

use std::ops::Range;

/// A source of random 64-bit values.
pub trait RngCore {
    /// Returns the next value in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can sample uniformly over their whole domain
/// (the shim's stand-in for `rand`'s `Standard` distribution; floats sample
/// uniformly from `[0, 1)` like the real crate).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Integer types that [`Rng::gen_range`] can sample from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// The user-facing extension trait: convenience samplers over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value over the type's full domain (`[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from the half-open `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1), as in rand's Standard for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                // Debiased multiply-shift (Lemire); span never exceeds 2^64.
                let mut x = rng.next_u64() as u128;
                let threshold = (u128::from(u64::MAX) + 1) % span;
                while (x * span) & u128::from(u64::MAX) < threshold {
                    x = rng.next_u64() as u128;
                }
                let offset = (x * span) >> 64;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::sample(rng) * (high - low)
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded from a single `u64` via splitmix64.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0 ^ s3, s1 ^ s0, s2 ^ t ^ s1, (s3 ^ s2).rotate_left(45)];
            std::mem::swap(&mut self.s, &mut s);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_all_values() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "uniform sampler missed a bucket");
        for _ in 0..1_000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn f64_standard_is_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
