#!/usr/bin/env bash
# Unsafe-code audit, enforced in CI.
#
# Policy (DESIGN.md "Unsafe-code audit"):
#   * A crate with no unsafe code must declare `#![forbid(unsafe_code)]`
#     so none can creep in silently.
#   * A crate that does use unsafe must declare
#     `#![deny(unsafe_op_in_unsafe_fn)]`, and every file containing an
#     unsafe site must carry at least one `// SAFETY:` justification.
#
# Pure grep — no toolchain required — so it runs before the build.

set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

for crate in crates/*/; do
    name=$(basename "$crate")
    lib="$crate/src/lib.rs"
    [ -f "$lib" ] || continue

    # Unsafe *sites* (blocks, fns, impls, traits) — not lint attributes
    # or prose mentioning the word.
    unsafe_files=$(grep -rlE '\bunsafe (\{|fn|impl|trait)' "$crate/src" --include='*.rs' || true)

    if [ -z "$unsafe_files" ]; then
        if ! grep -q '#!\[forbid(unsafe_code)\]' "$lib"; then
            echo "FAIL: $name has no unsafe code but lacks #![forbid(unsafe_code)]"
            fail=1
        fi
    else
        if ! grep -q '#!\[deny(unsafe_op_in_unsafe_fn)\]' "$lib"; then
            echo "FAIL: $name uses unsafe but lacks #![deny(unsafe_op_in_unsafe_fn)]"
            fail=1
        fi
        for f in $unsafe_files; do
            if ! grep -q 'SAFETY:' "$f"; then
                echo "FAIL: $f contains unsafe sites but no // SAFETY: comment"
                fail=1
            fi
        done
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "unsafe audit failed"
    exit 1
fi
echo "unsafe audit OK"
