//! A durable task queue with bounded-loss buffered mode.
//!
//! A job system enqueues work items into a persistent FIFO queue built from
//! the sequential `Queue` via PREP-Buffered. Buffered durability is the
//! interesting trade here: each accepted task *might* be lost in a crash,
//! but never more than `ε + β − 1` of the most recent ones — and the
//! operator picks ε to trade ingest throughput against the re-submission
//! window, exactly the knob §4.2 argues for.
//!
//! ```text
//! cargo run -p prep-bench --release --example durable_task_queue
//! ```

use std::sync::Arc;

use prep_seqds::queue::{Queue, QueueOp, QueueResp};
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PmemRuntime, PrepConfig, PrepUc};

const PRODUCERS: usize = 3;
const TASKS_PER_PRODUCER: u64 = 1_500;
const EPSILON: u64 = 200;

fn config() -> PrepConfig {
    PrepConfig::new(DurabilityLevel::Buffered)
        .with_log_size(8_192)
        .with_epsilon(EPSILON)
        .with_runtime(PmemRuntime::for_crash_tests())
}

fn main() {
    let assignment = Topology::new(2, 4, 1).assign_workers(PRODUCERS);
    let queue = Arc::new(PrepUc::new(Queue::new(), assignment.clone(), config()));
    println!(
        "durable task queue: ε = {EPSILON}, β = {}, re-submission window ≤ {} tasks",
        queue.beta(),
        queue.loss_bound()
    );

    let handles: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let token = queue.register(p);
                for i in 0..TASKS_PER_PRODUCER {
                    let task_id = (p as u64) << 32 | i;
                    queue.execute(&token, QueueOp::Enqueue(task_id));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let accepted = PRODUCERS as u64 * TASKS_PER_PRODUCER;
    let depth = queue.with_replica(0, |q| q.len());
    println!("accepted {accepted} tasks; queue depth {depth}");

    // Crash mid-shift; recover; measure the loss window.
    let loss_bound = queue.loss_bound();
    let (token, image) = queue.simulate_crash();
    drop(queue);
    let queue = PrepUc::recover(token, image, assignment, config());
    let recovered = queue.with_replica(0, |q| q.len()) as u64;
    let lost = accepted - recovered;
    println!(
        "after crash: {recovered} tasks survive, {lost} need re-submission \
         (bound {loss_bound})"
    );
    assert!(lost <= loss_bound, "loss exceeded the ε + β − 1 bound");

    // Drain a few tasks to show the recovered queue is live and FIFO.
    let worker = queue.register(0);
    let first = queue.execute(&worker, QueueOp::Dequeue);
    if let QueueResp::Value(Some(id)) = first {
        println!(
            "first recovered task: producer {} task {}",
            id >> 32,
            id & 0xffff_ffff
        );
        // Producers interleave, but per-producer FIFO holds, so the global
        // head must be *some* producer's first task.
        assert_eq!(id & 0xffff_ffff, 0, "head of queue must be a first task");
    } else {
        panic!("recovered queue unexpectedly empty");
    }
}
