//! Quickstart: turn a plain sequential hashmap into a concurrent,
//! persistent one with PREP-UC.
//!
//! ```text
//! cargo run -p prep-bench --release --example quickstart
//! ```

use std::sync::Arc;

use prep_seqds::hashmap::{HashMap, MapOp, MapResp};
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PrepConfig, PrepUc};

fn main() {
    // 1. A machine model: 2 NUMA nodes → PREP keeps one volatile replica
    //    per node, plus two persistence-only replicas in (emulated) NVM.
    let topology = Topology::new(2, 4, 1);
    let workers = 4;
    let assignment = topology.assign_workers(workers);

    // 2. A black-box *sequential* hashmap — no locks, no flushes, no
    //    awareness of concurrency or persistence.
    let map = HashMap::new();

    // 3. Wrap it. Buffered durability: on a crash, at most ε + β − 1
    //    completed updates are lost.
    let config = PrepConfig::new(DurabilityLevel::Buffered)
        .with_log_size(8_192)
        .with_epsilon(512);
    let prep = Arc::new(PrepUc::new(map, assignment, config));
    println!(
        "PREP-Buffered over a sequential HashMap: β = {}, loss bound = {} ops/crash",
        prep.beta(),
        prep.loss_bound()
    );

    // 4. Hammer it from several threads through ExecuteConcurrent.
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let prep = Arc::clone(&prep);
            std::thread::spawn(move || {
                let token = prep.register(w);
                for i in 0..10_000u64 {
                    let key = (w as u64) << 32 | i;
                    prep.execute(&token, MapOp::Insert { key, value: i });
                    if i % 3 == 0 {
                        let got = prep.execute(&token, MapOp::Get { key });
                        assert_eq!(got, MapResp::Value(Some(i)));
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // 5. Every replica has converged to the same linearized state.
    let len = prep.with_replica(0, |m| m.len());
    println!("final size: {len} entries (expected {})", workers * 10_000);
    assert_eq!(len, workers * 10_000);

    let stats = prep.stats();
    println!(
        "persistence work: {} flushes, {} fences, {} WBINVDs, {} snapshots",
        stats.total_flushes(),
        stats.sfence,
        stats.wbinvd,
        stats.snapshots
    );
}
