//! A persistent key-value store built from a *sequential* red-black tree —
//! the workload the paper's introduction motivates: you wrote a simple
//! single-threaded structure; PREP-UC gives you the concurrent persistent
//! version for free.
//!
//! Simulates a small KV service: several writer threads ingest records,
//! reader threads serve lookups, and the store survives a mid-run power
//! failure with durable linearizability (no acknowledged write is lost).
//!
//! ```text
//! cargo run -p prep-bench --release --example persistent_kv_store
//! ```

use std::sync::Arc;

use prep_seqds::hashmap::{MapOp, MapResp};
use prep_seqds::rbtree::RbTree;
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PmemRuntime, PrepConfig, PrepUc};

const WRITERS: usize = 3;
const READERS: usize = 2;
const RECORDS_PER_WRITER: u64 = 2_000;

fn config() -> PrepConfig {
    PrepConfig::new(DurabilityLevel::Durable)
        .with_log_size(16_384)
        .with_epsilon(1_024)
        .with_runtime(PmemRuntime::for_crash_tests())
}

fn main() {
    let assignment = Topology::new(2, 4, 1).assign_workers(WRITERS + READERS);
    let store = Arc::new(PrepUc::new(RbTree::new(), assignment.clone(), config()));

    // Ingest + serve concurrently.
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            let token = store.register(w);
            for i in 0..RECORDS_PER_WRITER {
                let key = (w as u64) << 32 | i;
                // An acknowledged write is durable (durable linearizability).
                store.execute(&token, MapOp::Insert { key, value: i * 7 });
            }
            0u64 // same return type as the reader threads
        }));
    }
    for r in 0..READERS {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            let token = store.register(WRITERS + r);
            let mut hits = 0u64;
            for i in 0..RECORDS_PER_WRITER {
                let key = ((i as usize % WRITERS) as u64) << 32 | i;
                if let MapResp::Value(Some(_)) = store.execute(&token, MapOp::Get { key }) {
                    hits += 1;
                }
            }
            hits
        }));
    }
    for h in handles {
        let _ = h.join().unwrap();
    }

    let ingested = store.with_replica(0, |t| t.len());
    println!("ingested {ingested} records across {WRITERS} writers");
    assert_eq!(ingested as u64, WRITERS as u64 * RECORDS_PER_WRITER);

    // Pull the plug and recover on "reboot".
    let (token, image) = store.simulate_crash();
    drop(store);
    let store = PrepUc::recover(token, image, assignment, config());
    let recovered = store.with_replica(0, |t| {
        t.check_invariants(); // the recovered tree is a valid red-black tree
        t.len()
    });
    println!("after crash + recovery: {recovered} records (expected {ingested})");
    assert_eq!(recovered, ingested, "durable store lost acknowledged writes");

    // Keep serving after recovery.
    let reader = store.register(0);
    let resp = store.execute(&reader, MapOp::Get { key: 0 });
    println!("post-recovery read of key 0 → {resp:?}");
}
