//! A *sharded* persistent key-value store built from a sequential red-black
//! tree — the workload the paper's introduction motivates, scaled past one
//! log with `prep-shard`: you wrote a simple single-threaded structure;
//! PREP-UC gives you the concurrent persistent version for free, and the
//! sharded store partitions it over several independent PREP-UC instances
//! (each with its own operation log and persistence thread), routed by key.
//!
//! Simulates a small KV service: several writer threads ingest records,
//! reader threads serve lookups, and the store survives a mid-run power
//! failure — one consistent cut across **all** shards — with durable
//! linearizability (no acknowledged write is lost on any shard).
//!
//! ```text
//! cargo run -p prep-bench --release --example persistent_kv_store
//! ```

use std::sync::Arc;

use prep_seqds::hashmap::{MapOp, MapResp};
use prep_seqds::rbtree::RbTree;
use prep_shard::ShardedStore;
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PmemRuntime, PrepConfig};

const SHARDS: usize = 4;
const WRITERS: usize = 3;
const READERS: usize = 2;
const RECORDS_PER_WRITER: u64 = 2_000;

fn config() -> PrepConfig {
    PrepConfig::new(DurabilityLevel::Durable)
        .with_log_size(16_384)
        .with_epsilon(1_024)
        .with_runtime(PmemRuntime::for_crash_tests())
}

/// Keyed ops route to the key's shard; `Len` is keyless and is broadcast
/// via `execute_all` instead.
fn route(op: &MapOp) -> u64 {
    op.key().unwrap_or(0)
}

/// Total entries across all shards (a broadcast aggregate).
fn total_len(store: &ShardedStore<RbTree>, token: &prep_shard::ShardToken) -> u64 {
    store
        .execute_all(token, MapOp::Len)
        .into_iter()
        .map(|r| match r {
            MapResp::Len(n) => n as u64,
            other => panic!("unexpected {other:?}"),
        })
        .sum()
}

fn main() {
    // One extra worker slot for the main thread's aggregate queries.
    let assignment = Topology::new(2, 4, 1).assign_workers(WRITERS + READERS + 1);
    let store = Arc::new(ShardedStore::new(
        RbTree::new(),
        SHARDS,
        assignment.clone(),
        config(),
        route,
    ));

    // Ingest + serve concurrently; every operation is routed to the shard
    // owning its key.
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            let token = store.register(w);
            for i in 0..RECORDS_PER_WRITER {
                let key = (w as u64) << 32 | i;
                // An acknowledged write is durable (durable linearizability).
                store.execute(&token, MapOp::Insert { key, value: i * 7 });
            }
            0u64 // same return type as the reader threads
        }));
    }
    for r in 0..READERS {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            let token = store.register(WRITERS + r);
            let mut hits = 0u64;
            for i in 0..RECORDS_PER_WRITER {
                let key = ((i as usize % WRITERS) as u64) << 32 | i;
                if let MapResp::Value(Some(_)) = store.execute(&token, MapOp::Get { key }) {
                    hits += 1;
                }
            }
            hits
        }));
    }
    for h in handles {
        let _ = h.join().unwrap();
    }

    let token = store.register(WRITERS + READERS);
    let ingested = total_len(&store, &token);
    let tails = store.completed_tails();
    println!(
        "ingested {ingested} records across {WRITERS} writers, \
         spread over {SHARDS} shard logs: {tails:?}"
    );
    assert_eq!(ingested, WRITERS as u64 * RECORDS_PER_WRITER);

    // Pull the plug: ONE consistent cut freezes every shard's NVM image
    // simultaneously — then recover all shards on "reboot".
    let (crash_token, image) = store.simulate_crash();
    drop(store);
    let store = ShardedStore::recover(crash_token, image, assignment, config(), route);
    for s in 0..store.shards() {
        // Each recovered shard is a valid red-black tree.
        store.shard(s).with_replica(0, |t| t.check_invariants());
    }
    let token = store.register(0);
    let recovered = total_len(&store, &token);
    println!(
        "after crash + recovery (epoch {}): {recovered} records (expected {ingested})",
        store.epoch()
    );
    assert_eq!(
        recovered, ingested,
        "durable store lost acknowledged writes"
    );

    // Keep serving after recovery — keys still route to their home shard.
    let resp = store.execute(&token, MapOp::Get { key: 0 });
    println!("post-recovery read of key 0 → {resp:?}");
}
