//! Crash recovery, side by side: PREP-Buffered vs PREP-Durable.
//!
//! Runs the same workload against both durability levels, pulls the power
//! (simulated) mid-run, recovers, and reports what each level lost. The
//! sequential object is an operation *recorder*, so the recovered state is
//! literally the surviving prefix of the linearization order.
//!
//! ```text
//! cargo run -p prep-bench --release --example crash_recovery
//! ```

use prep_seqds::recorder::{assert_prefix, Recorder, RecorderOp};
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PmemRuntime, PrepConfig, PrepUc};

fn config(level: DurabilityLevel) -> PrepConfig {
    PrepConfig::new(level)
        .with_log_size(1_024)
        .with_epsilon(100)
        // Crash simulation on, latency model off (we demo semantics here).
        .with_runtime(PmemRuntime::for_crash_tests())
}

fn demo(level: DurabilityLevel) {
    let assignment = Topology::new(2, 2, 1).assign_workers(1);
    let prep = PrepUc::new(Recorder::new(), assignment.clone(), config(level));
    let token = prep.register(0);

    const OPS: u64 = 450;
    let mut completed = Vec::new();
    for i in 0..OPS {
        prep.execute(&token, RecorderOp::Record(i));
        completed.push(i);
    }

    // Power failure. The crash image is a consistent cut of NVM.
    let (crash_token, image) = prep.simulate_crash();
    let bound = prep.loss_bound();
    drop(prep); // everything volatile is gone

    let recovered = PrepUc::recover(crash_token, image, assignment, config(level));
    let history = recovered.with_replica(0, |r| r.history().to_vec());

    // The recovered state is a prefix of the completed operations...
    let kept = assert_prefix(&history, &completed);
    let lost = completed.len() - kept;
    println!(
        "{level:?}: completed {} updates, recovered {kept}, lost {lost} (bound: {bound})",
        completed.len()
    );
    assert!(lost as u64 <= bound);
    if level == DurabilityLevel::Durable {
        assert_eq!(lost, 0, "durable linearizability: nothing may be lost");
    }

    // ...and the recovered object keeps working.
    let token = recovered.register(0);
    recovered.execute(&token, RecorderOp::Record(999_999));
    let count = recovered.with_replica(0, |r| r.count());
    assert_eq!(count as usize, kept + 1);
    println!("{level:?}: resumed after recovery; history length now {count}");
}

fn main() {
    demo(DurabilityLevel::Buffered);
    demo(DurabilityLevel::Durable);
    println!("crash-recovery demo complete");
}
