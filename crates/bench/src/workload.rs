//! Workload generators matching the paper's micro-benchmarks (§6).
//!
//! * **Map workloads**: keys drawn uniformly from a range; a read
//!   percentage r means r% `Get`, with the remaining updates split evenly
//!   between `Insert` and `Remove`. Structures are prefilled to 50% of the
//!   key range ("In each test we prefill the data structure to 50%
//!   capacity").
//! * **Pair workloads** (Figures 1c, 4, 5): 100% updates, each worker
//!   alternating an add (enqueue/push) with a remove (dequeue/pop), which
//!   keeps the structure size roughly stationary.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use prep_seqds::hashmap::{HashMap, MapOp};
use prep_seqds::pqueue::{PqOp, PriorityQueue};
use prep_seqds::queue::{Queue, QueueOp};
use prep_seqds::rbtree::RbTree;
use prep_seqds::stack::{Stack, StackOp};

/// A per-worker stream of map operations.
pub struct MapOpGen {
    rng: SmallRng,
    read_pct: u32,
    key_range: u64,
}

impl MapOpGen {
    /// Creates a generator for worker `worker` (distinct seed per worker so
    /// streams are independent but reproducible).
    pub fn new(read_pct: u32, key_range: u64, worker: usize) -> Self {
        assert!(read_pct <= 100);
        MapOpGen {
            rng: SmallRng::seed_from_u64(0x5EED_0000 + worker as u64),
            read_pct,
            key_range,
        }
    }

    /// Next operation.
    pub fn next_op(&mut self) -> MapOp {
        let roll = self.rng.gen_range(0..100);
        let key = self.rng.gen_range(0..self.key_range);
        if roll < self.read_pct {
            MapOp::Get { key }
        } else if roll % 2 == 0 {
            MapOp::Insert {
                key,
                value: key ^ 0xABCD,
            }
        } else {
            MapOp::Remove { key }
        }
    }
}

/// A YCSB-style Zipfian key sampler (Gray et al.'s method).
///
/// The paper's own workloads are uniform (§6: "keys were accessed according
/// to a uniform distribution"); this generator is an *extension* used by
/// the skew benches, motivated by the paper's discussion of NAP (§2.3),
/// which targets Zipfian access patterns on NUMA machines.
pub struct ZipfianGen {
    rng: SmallRng,
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

impl ZipfianGen {
    /// Creates a sampler over `[0, n)` with skew `theta` (YCSB default
    /// 0.99; 0 would be uniform) for worker `worker`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta` is not in `(0, 1)`.
    pub fn new(n: u64, theta: f64, worker: usize) -> Self {
        assert!(n > 0, "need a nonempty key range");
        assert!(
            (0.0..1.0).contains(&theta) && theta > 0.0,
            "theta must be in (0,1)"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        ZipfianGen {
            rng: SmallRng::seed_from_u64(0x21F0_5EED ^ worker as u64),
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan),
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Samples the next key; key 0 is the hottest.
    pub fn next_key(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }
}

/// Prefills a hashmap to 50% of `key_range` (even keys), as the paper does.
pub fn prefilled_hashmap(key_range: u64) -> HashMap {
    let mut m = HashMap::with_buckets((key_range / 2) as usize);
    for k in (0..key_range).step_by(2) {
        m.insert(k, k ^ 0xABCD);
    }
    m
}

/// Prefills a red-black tree to 50% of `key_range` (even keys).
pub fn prefilled_rbtree(key_range: u64) -> RbTree {
    let mut t = RbTree::new();
    for k in (0..key_range).step_by(2) {
        t.insert(k, k ^ 0xABCD);
    }
    t
}

/// Per-worker enqueue/dequeue pair stream for the FIFO queue (Figure 1c).
pub struct QueuePairGen {
    rng: SmallRng,
    enqueue_next: bool,
}

impl QueuePairGen {
    /// Creates the generator for worker `worker`.
    pub fn new(worker: usize) -> Self {
        QueuePairGen {
            rng: SmallRng::seed_from_u64(0xF1F0_0000 + worker as u64),
            enqueue_next: true,
        }
    }

    /// Next operation (alternates enqueue/dequeue).
    pub fn next_op(&mut self) -> QueueOp {
        self.enqueue_next = !self.enqueue_next;
        if !self.enqueue_next {
            QueueOp::Enqueue(self.rng.gen())
        } else {
            QueueOp::Dequeue
        }
    }
}

/// Prefills a FIFO queue with `items` elements.
pub fn prefilled_queue(items: u64) -> Queue {
    let mut q = Queue::new();
    for i in 0..items {
        q.enqueue(i);
    }
    q
}

/// Per-worker enqueue/dequeue pair stream for the priority queue (Fig. 4).
pub struct PqPairGen {
    rng: SmallRng,
    enqueue_next: bool,
}

impl PqPairGen {
    /// Creates the generator for worker `worker`.
    pub fn new(worker: usize) -> Self {
        PqPairGen {
            rng: SmallRng::seed_from_u64(0x9900_0000 + worker as u64),
            enqueue_next: true,
        }
    }

    /// Next operation (alternates enqueue/dequeue).
    pub fn next_op(&mut self) -> PqOp {
        self.enqueue_next = !self.enqueue_next;
        if !self.enqueue_next {
            PqOp::Enqueue(self.rng.gen())
        } else {
            PqOp::Dequeue
        }
    }
}

/// Prefills a priority queue with `items` random elements.
pub fn prefilled_pqueue(items: u64) -> PriorityQueue {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut pq = PriorityQueue::new();
    for _ in 0..items {
        pq.enqueue(rng.gen());
    }
    pq
}

/// Per-worker push/pop pair stream for the stack (Figure 5).
pub struct StackPairGen {
    rng: SmallRng,
    push_next: bool,
}

impl StackPairGen {
    /// Creates the generator for worker `worker`.
    pub fn new(worker: usize) -> Self {
        StackPairGen {
            rng: SmallRng::seed_from_u64(0x57AC_0000 + worker as u64),
            push_next: true,
        }
    }

    /// Next operation (alternates push/pop).
    pub fn next_op(&mut self) -> StackOp {
        self.push_next = !self.push_next;
        if !self.push_next {
            StackOp::Push(self.rng.gen())
        } else {
            StackOp::Pop
        }
    }
}

/// Prefills a stack with `items` elements.
pub fn prefilled_stack(items: u64) -> Stack {
    let mut s = Stack::new();
    for i in 0..items {
        s.push(i);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_gen_respects_read_percentage_roughly() {
        let mut g = MapOpGen::new(90, 1000, 0);
        let mut reads = 0;
        const N: usize = 10_000;
        for _ in 0..N {
            if matches!(g.next_op(), MapOp::Get { .. }) {
                reads += 1;
            }
        }
        let pct = reads as f64 / N as f64;
        assert!((0.85..0.95).contains(&pct), "read fraction {pct}");
    }

    #[test]
    fn map_gen_zero_and_hundred_percent() {
        let mut g = MapOpGen::new(0, 100, 1);
        assert!((0..100).all(|_| !matches!(g.next_op(), MapOp::Get { .. })));
        let mut g = MapOpGen::new(100, 100, 2);
        assert!((0..100).all(|_| matches!(g.next_op(), MapOp::Get { .. })));
    }

    #[test]
    fn prefill_is_half_capacity() {
        let m = prefilled_hashmap(1000);
        assert_eq!(m.len(), 500);
        let t = prefilled_rbtree(1000);
        assert_eq!(t.len(), 500);
        t.check_invariants();
    }

    #[test]
    fn pair_generators_alternate() {
        let mut g = QueuePairGen::new(0);
        assert!(matches!(g.next_op(), QueueOp::Enqueue(_)));
        assert!(matches!(g.next_op(), QueueOp::Dequeue));
        assert!(matches!(g.next_op(), QueueOp::Enqueue(_)));
        let mut g = StackPairGen::new(0);
        assert!(matches!(g.next_op(), StackOp::Push(_)));
        assert!(matches!(g.next_op(), StackOp::Pop));
        let mut g = PqPairGen::new(0);
        assert!(matches!(g.next_op(), PqOp::Enqueue(_)));
        assert!(matches!(g.next_op(), PqOp::Dequeue));
    }

    #[test]
    fn zipfian_is_skewed_and_in_range() {
        let mut g = ZipfianGen::new(1_000, 0.99, 0);
        let mut counts = vec![0u64; 1_000];
        const N: u64 = 50_000;
        for _ in 0..N {
            let k = g.next_key();
            assert!(k < 1_000);
            counts[k as usize] += 1;
        }
        // With theta = 0.99, the hottest key draws a large share (~1/zetan
        // ≈ 13% for n=1000) and vastly more than a middling key.
        assert!(
            counts[0] as f64 > 0.05 * N as f64,
            "hot key share too small: {}",
            counts[0]
        );
        assert!(counts[0] > 50 * counts[500].max(1));
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn zipfian_rejects_bad_theta() {
        ZipfianGen::new(10, 1.5, 0);
    }

    #[test]
    fn workers_get_distinct_streams() {
        let mut a = MapOpGen::new(50, 1 << 20, 0);
        let mut b = MapOpGen::new(50, 1 << 20, 1);
        let sa: Vec<MapOp> = (0..50).map(|_| a.next_op()).collect();
        let sb: Vec<MapOp> = (0..50).map(|_| b.next_op()).collect();
        assert_ne!(sa, sb);
    }
}
