//! Figure 5: stack, 100% update workload (push/pop pairs).
//!
//! (a) 500 items, (b) ~50k items, both with the large ε. The interesting
//! shape here: the stack is tiny, so CX-PUC's address-range flush of the
//! whole (small) replica is cheap while PREP pays full WBINVD cost — the
//! one setting where CX-PUC is competitive (§6 "Stack").

use std::sync::Arc;

use prep_cx::CxConfig;
use prep_uc::{DurabilityLevel, PrepConfig};

use crate::figures::{bench_runtime, stack_pairs, thread_sweep, topology};
use crate::report;
use crate::targets::{run_cx, run_prep};
use crate::workload::prefilled_stack;
use crate::RunOpts;

/// Runs the Figure 5 panels.
pub fn run(opts: &RunOpts) {
    let topo = topology(opts);
    let (_, eps_large) = opts.epsilons();
    report::banner("Figure 5", "stack, 100% updates (push+pop pairs)");
    let panels: [(u64, &str); 2] = if opts.full {
        [(500, "a:500-items"), (50_000, "b:50k-items")]
    } else {
        [(500, "a:500-items"), (20_000, "b:20k-items")]
    };

    for (items, label) in panels {
        for &threads in &thread_sweep(opts) {
            for (level, name) in [
                (DurabilityLevel::Buffered, "PREP-Buffered"),
                (DurabilityLevel::Durable, "PREP-Durable"),
            ] {
                let cfg = PrepConfig::new(level)
                    .with_log_size(opts.log_size())
                    .with_epsilon(eps_large)
                    .with_runtime(bench_runtime(opts));
                let cell = run_prep(
                    prefilled_stack(items),
                    cfg,
                    topo,
                    threads,
                    opts.seconds,
                    stack_pairs(),
                );
                report::row(label, name, &cell);
            }
            let rt = bench_runtime(opts);
            let cell = run_cx(
                prefilled_stack(items),
                CxConfig::persistent(threads, Arc::clone(&rt)),
                threads,
                opts.seconds,
                stack_pairs(),
            );
            report::row(label, "CX-PUC", &cell);
        }
    }
}
