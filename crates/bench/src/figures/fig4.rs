//! Figure 4: priority queue, 100% update workload (enqueue/dequeue pairs).
//!
//! (a) ~50k items with ε = 1000; (b) ~500k items with ε = 10000. Series:
//! PREP-Buffered, PREP-Durable, CX-PUC.

use std::sync::Arc;

use prep_cx::CxConfig;
use prep_uc::{DurabilityLevel, PrepConfig};

use crate::figures::{bench_runtime, pq_pairs, thread_sweep, topology};
use crate::report;
use crate::targets::{run_cx, run_prep};
use crate::workload::prefilled_pqueue;
use crate::RunOpts;

/// Runs the Figure 4 panels.
pub fn run(opts: &RunOpts) {
    let topo = topology(opts);
    report::banner(
        "Figure 4",
        "priority queue, 100% updates (enqueue+dequeue pairs)",
    );
    let panels: [(u64, u64, &str); 2] = if opts.full {
        [
            (50_000, 1_000, "a:50k-items-e1000"),
            (500_000, 10_000, "b:500k-items-e10000"),
        ]
    } else {
        [
            (2_000, 256, "a:2k-items-e256"),
            (20_000, 1_024, "b:20k-items-e1024"),
        ]
    };

    for (items, eps, label) in panels {
        for &threads in &thread_sweep(opts) {
            for (level, name) in [
                (DurabilityLevel::Buffered, "PREP-Buffered"),
                (DurabilityLevel::Durable, "PREP-Durable"),
            ] {
                let cfg = PrepConfig::new(level)
                    .with_log_size(opts.log_size())
                    .with_epsilon(eps)
                    .with_runtime(bench_runtime(opts));
                let cell = run_prep(
                    prefilled_pqueue(items),
                    cfg,
                    topo,
                    threads,
                    opts.seconds,
                    pq_pairs(),
                );
                report::row(label, name, &cell);
            }
            let rt = bench_runtime(opts);
            let cell = run_cx(
                prefilled_pqueue(items),
                CxConfig::persistent(threads, Arc::clone(&rt)),
                threads,
                opts.seconds,
                pq_pairs(),
            );
            report::row(label, "CX-PUC", &cell);
        }
    }
}
