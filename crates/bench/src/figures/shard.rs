//! Extension figure: shard-count scaling — `prep-shard` hashmap throughput
//! at a fixed thread count as the store is partitioned over 1, 2, and 4
//! independent PREP-UC shards.
//!
//! One PREP-UC serializes every update through one log; partitioning adds
//! logs (and persistence threads), so update throughput should rise with
//! shard count until the worker threads, not the logs, are the bottleneck.
//! Each shard runs its own cost-only runtime here, so the per-shard rows
//! show how evenly the router spreads flush/fence work across partitions.

use prep_uc::{DurabilityLevel, PrepConfig};

use crate::figures::{bench_runtime, map_stream, thread_sweep, topology};
use crate::report;
use crate::targets::run_sharded;
use crate::workload::prefilled_hashmap;
use crate::RunOpts;

/// Shard counts swept (the acceptance sweep: 1, 2, 4).
pub fn shard_sweep() -> Vec<usize> {
    vec![1, 2, 4]
}

/// Runs the shard-count sweep.
pub fn run(opts: &RunOpts) {
    let topo = topology(opts);
    let keys = opts.key_range();
    // Fixed thread count (the sweep variable is shards): the largest of the
    // requested thread counts, so the logs are actually contended.
    let threads = *thread_sweep(opts).last().expect("non-empty thread sweep");
    report::shard_banner(
        "Extension",
        "shard-count scaling: sharded PREP hashmap, 50% read-only, fixed threads",
    );
    for shards in shard_sweep() {
        for (level, name) in [
            (DurabilityLevel::Buffered, "SHARD-Buffered"),
            (DurabilityLevel::Durable, "SHARD-Durable"),
        ] {
            let cfg = PrepConfig::new(level)
                .with_log_size(opts.log_size())
                .with_epsilon(opts.epsilons().0)
                .with_runtime(bench_runtime(opts));
            let cell = run_sharded(
                prefilled_hashmap(keys),
                shards,
                cfg,
                topo,
                threads,
                opts.seconds,
                map_stream(50, keys),
                |op| op.key().unwrap_or(0),
            );
            let panel = format!("shards={shards}");
            report::shard_summary_row(
                &panel,
                name,
                threads,
                cell.m.ops_per_sec(),
                cell.total_updates(),
                cell.flushes_per_update(),
                cell.fences_per_update(),
            );
            for (s, lane) in cell.shards.iter().enumerate() {
                report::shard_lane_row(
                    &panel,
                    name,
                    s,
                    lane.updates,
                    lane.flushes_per_update(),
                    lane.fences_per_update(),
                );
            }
        }
    }
}
