//! Beyond-paper extension: PREP's bounded log vs ONLL's unbounded one.
//!
//! §4.1 motivates PREP's checkpointed design: persisting *only* a log means
//! "unboundedly many operations to recover after a crash". The ONLL-style
//! baseline (`prep-onll`) is exactly that design point — cheaper per-update
//! persistence (one uncontended line + fence), but recovery replays the
//! object's entire lifetime. This driver measures both sides of the trade:
//!
//! * **recovery**: wall-clock recovery time and replayed-op counts after
//!   identical workloads of growing lifetime (the structure's *live size*
//!   is constant — churn on the same keys);
//! * **throughput**: update-heavy throughput of the two durable designs.

use std::sync::Arc;
use std::time::Instant;

use prep_onll::OnllUc;
use prep_pmem::PmemRuntime;
use prep_seqds::hashmap::{HashMap, MapOp};
use prep_uc::{DurabilityLevel, PrepConfig, PrepUc};

use crate::figures::{bench_runtime, map_stream, thread_sweep, topology};
use crate::report;
use crate::targets::run_prep;
use crate::workload::prefilled_hashmap;
use crate::RunOpts;

/// Runs the extension experiments.
pub fn run(opts: &RunOpts) {
    recovery_scaling(opts);
    throughput(opts);
}

fn recovery_scaling(opts: &RunOpts) {
    println!();
    println!("== Extension A: recovery cost vs object lifetime (PREP-Durable vs ONLL)");
    println!(
        "{:<14} {:>12} {:>16} {:>14} {:>16} {:>14}",
        "lifetime_ops",
        "live_keys",
        "prep_replay_ops",
        "prep_rec_ms",
        "onll_replay_ops",
        "onll_rec_ms"
    );
    let lifetimes: &[u64] = if opts.full {
        &[10_000, 100_000, 1_000_000]
    } else {
        &[1_000, 5_000, 20_000]
    };
    const KEYS: u64 = 64; // tiny live set: churn, not growth
    for &lifetime in lifetimes {
        // PREP-Durable: checkpointed; recovery replays at most the persisted
        // log window past the stable snapshot.
        let asg = prep_topology::Topology::new(2, 2, 1).assign_workers(1);
        let cfg = PrepConfig::new(DurabilityLevel::Durable)
            .with_log_size(4096)
            .with_epsilon(256)
            .with_runtime(PmemRuntime::for_crash_tests());
        let prep = PrepUc::new(HashMap::new(), asg.clone(), cfg);
        let t = prep.register(0);
        for i in 0..lifetime {
            let key = i % KEYS;
            if i % 2 == 0 {
                prep.execute(&t, MapOp::Insert { key, value: i });
            } else {
                prep.execute(&t, MapOp::Remove { key });
            }
        }
        let (token, image) = prep.simulate_crash();
        let prep_replay = image
            .log_entries
            .iter()
            .filter(|(idx, _)| {
                *idx >= image.stable_snapshot().local_tail && *idx < image.completed_tail
            })
            .count();
        let cfg = PrepConfig::new(DurabilityLevel::Durable)
            .with_log_size(4096)
            .with_epsilon(256)
            .with_runtime(PmemRuntime::for_crash_tests());
        let t0 = Instant::now();
        let recovered = PrepUc::recover(token, image, asg, cfg);
        let prep_ms = t0.elapsed().as_secs_f64() * 1e3;
        let live = recovered.with_replica(0, |m| m.len());
        drop(recovered);
        drop(prep);

        // ONLL: full-history replay.
        let rt = PmemRuntime::for_crash_tests();
        let onll = OnllUc::new(HashMap::new(), 1, Arc::clone(&rt));
        for i in 0..lifetime {
            let key = i % KEYS;
            if i % 2 == 0 {
                onll.execute(0, MapOp::Insert { key, value: i });
            } else {
                onll.execute(0, MapOp::Remove { key });
            }
        }
        let (token, image) = onll.simulate_crash();
        let onll_replay = image.total_entries();
        let t0 = Instant::now();
        let (_obj, replayed) = OnllUc::recover(token, &image, HashMap::new());
        let onll_ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(replayed as usize, onll_replay);

        println!(
            "{:<14} {:>12} {:>16} {:>14.2} {:>16} {:>14.2}",
            lifetime, live, prep_replay, prep_ms, onll_replay, onll_ms
        );
    }
    println!(
        "# PREP's replay window is bounded by the persisted-log horizon; ONLL's \
         equals the object's lifetime."
    );
}

fn throughput(opts: &RunOpts) {
    let topo = topology(opts);
    let keys = opts.key_range();
    let (_, eps_large) = opts.epsilons();
    report::banner(
        "Extension B",
        "durable-linearizable throughput: PREP-Durable vs ONLL",
    );
    for read_pct in [90u32, 0] {
        for &threads in &thread_sweep(opts) {
            let cfg = PrepConfig::new(DurabilityLevel::Durable)
                .with_log_size(opts.log_size())
                .with_epsilon(eps_large)
                .with_runtime(bench_runtime(opts));
            let cell = run_prep(
                prefilled_hashmap(keys),
                cfg,
                topo,
                threads,
                opts.seconds,
                map_stream(read_pct, keys),
            );
            report::row(&format!("{read_pct}r"), "PREP-Durable", &cell);

            // ONLL cell (manual: it is not a SequentialObject adapter).
            let rt = bench_runtime(opts);
            let onll = Arc::new(OnllUc::new(
                prefilled_hashmap(keys),
                threads,
                Arc::clone(&rt),
            ));
            let before = rt.stats().snapshot();
            let gen = map_stream(read_pct, keys);
            let onll_ref = &onll;
            let gen_ref = &gen;
            let m = crate::runner::measure(
                threads,
                std::time::Duration::from_secs_f64(opts.seconds),
                move |w| {
                    let mut ops = gen_ref(w);
                    let onll = Arc::clone(onll_ref);
                    Box::new(move || {
                        onll.execute(w, ops());
                    })
                },
            );
            let stats = rt.stats().snapshot().delta_since(&before);
            report::row(
                &format!("{read_pct}r"),
                "ONLL",
                &crate::targets::CellResult {
                    m,
                    stats,
                    reads: Default::default(),
                },
            );
        }
    }
}
