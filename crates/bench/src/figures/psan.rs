//! Sanitizer-overhead figure (repo extension, no paper counterpart).
//!
//! The `prep-psan` tracer piggybacks on every instrumented persist call
//! (`PmemRuntime::{trace_store, clflushopt_at, publish_clflush, …}`). Two
//! costs matter:
//!
//! * **tracing off** (production default): every hook is a relaxed atomic
//!   load and an early return — must be within noise of a build without
//!   the sanitizer at all;
//! * **tracing on** (`PREP_PSAN` / CI's `psan` job): each persist event is
//!   pushed onto a mutex-guarded trace — the price of running the whole
//!   test suite under the rule engine.
//!
//! One durable Recorder workload per thread count, measured both ways,
//! with the relative slowdown and the trace volume reported.

use std::sync::Arc;

use prep_seqds::recorder::{Recorder, RecorderOp};
use prep_uc::{DurabilityLevel, PrepConfig};

use crate::figures::{bench_runtime, thread_sweep, topology};
use crate::report;
use crate::targets::{run_prep, CellResult, OpStream};
use crate::RunOpts;

/// Per-worker stream of distinct Record ops.
fn record_stream() -> impl Fn(usize) -> OpStream<RecorderOp> + Sync {
    |w| {
        let mut i = 0u64;
        Box::new(move || {
            i += 1;
            RecorderOp::Record((w as u64) << 32 | i)
        })
    }
}

fn run_cell(opts: &RunOpts, threads: usize, traced: bool) -> (CellResult, usize) {
    let rt = bench_runtime(opts);
    if traced {
        rt.psan_enable();
    }
    let (eps_small, _) = opts.epsilons();
    let cfg = PrepConfig::new(DurabilityLevel::Durable)
        .with_log_size(opts.log_size())
        .with_epsilon(eps_small)
        .with_runtime(Arc::clone(&rt));
    let cell = run_prep(
        Recorder::new(),
        cfg,
        topology(opts),
        threads,
        opts.seconds,
        &record_stream(),
    );
    (cell, rt.psan_event_count())
}

/// Runs the sanitizer-overhead comparison.
pub fn run(opts: &RunOpts) {
    report::banner(
        "Psan",
        "persistence-ordering sanitizer overhead: durable recorder, \
         tracing off vs on (events = trace volume)",
    );
    for &threads in &thread_sweep(opts) {
        let (off, _) = run_cell(opts, threads, false);
        let (on, events) = run_cell(opts, threads, true);
        report::row("recorder-durable", "psan-off", &off);
        report::row("recorder-durable", "psan-on", &on);
        let off_rate = off.m.ops_per_sec();
        let on_rate = on.m.ops_per_sec();
        let overhead = if off_rate > 0.0 {
            (off_rate - on_rate) / off_rate * 100.0
        } else {
            0.0
        };
        let per_op = if on.m.total_ops == 0 {
            0.0
        } else {
            events as f64 / on.m.total_ops as f64
        };
        println!(
            "  -> tracing overhead {overhead:+.1}% \
             ({events} events, {per_op:.2} events/op)"
        );
    }
}
