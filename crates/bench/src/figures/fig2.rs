//! Figure 2: PUC throughput on sets with 1M keys — PREP-Buffered vs
//! PREP-Durable vs CX-PUC.
//!
//! (a) resizable hashmap, (b) red-black tree; the grid crosses
//! {90%, 50% read-only} × {small ε, large ε} (the paper's columns use
//! ε = 100 and ε = 10000 = 1% of the log).

use std::sync::Arc;

use prep_cx::CxConfig;
use prep_seqds::hashmap::MapOp;
use prep_seqds::SequentialObject;
use prep_uc::{DurabilityLevel, PrepConfig};

use crate::figures::{bench_runtime, map_stream, thread_sweep, topology};
use crate::report;
use crate::targets::{run_cx, run_prep};
use crate::workload::{prefilled_hashmap, prefilled_rbtree};
use crate::RunOpts;

fn prep_cfg(opts: &RunOpts, level: DurabilityLevel, eps: u64) -> PrepConfig {
    PrepConfig::new(level)
        .with_log_size(opts.log_size())
        .with_epsilon(eps)
        .with_runtime(bench_runtime(opts))
}

/// Runs one (structure, workload, ε) panel across the thread sweep.
fn panel<T, F>(opts: &RunOpts, label: &str, eps: u64, read_pct: u32, mk: F)
where
    T: SequentialObject<Op = MapOp>,
    F: Fn() -> T,
{
    let topo = topology(opts);
    let keys = opts.key_range();
    for &threads in &thread_sweep(opts) {
        let cell = run_prep(
            mk(),
            prep_cfg(opts, DurabilityLevel::Buffered, eps),
            topo,
            threads,
            opts.seconds,
            map_stream(read_pct, keys),
        );
        report::row(label, "PREP-Buffered", &cell);
        let cell = run_prep(
            mk(),
            prep_cfg(opts, DurabilityLevel::Durable, eps),
            topo,
            threads,
            opts.seconds,
            map_stream(read_pct, keys),
        );
        report::row(label, "PREP-Durable", &cell);
        let rt = bench_runtime(opts);
        let cell = run_cx(
            mk(),
            CxConfig::persistent(threads, Arc::clone(&rt)),
            threads,
            opts.seconds,
            map_stream(read_pct, keys),
        );
        report::row(label, "CX-PUC", &cell);
    }
}

/// Runs the Figure 2 grid.
pub fn run(opts: &RunOpts) {
    let (eps_small, eps_large) = opts.epsilons();
    report::banner(
        "Figure 2",
        "PUCs on 1M-key sets: PREP-Buffered vs PREP-Durable vs CX-PUC",
    );
    let keys = opts.key_range();
    let want = |name: &str| {
        opts.ds_filter
            .as_deref()
            .is_none_or(|f| f.eq_ignore_ascii_case(name))
    };

    if want("hashmap") {
        for (read_pct, eps) in [
            (90, eps_small),
            (90, eps_large),
            (50, eps_small),
            (50, eps_large),
        ] {
            let label = format!("a:hash-{read_pct}r-e{eps}");
            panel(opts, &label, eps, read_pct, || prefilled_hashmap(keys));
        }
    }
    if want("rbtree") {
        for (read_pct, eps) in [
            (90, eps_small),
            (90, eps_large),
            (50, eps_small),
            (50, eps_large),
        ] {
            let label = format!("b:rbt-{read_pct}r-e{eps}");
            panel(opts, &label, eps, read_pct, || prefilled_rbtree(keys));
        }
    }
}
