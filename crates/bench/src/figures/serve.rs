//! Network-service tail-latency figure (repo extension over `prep-serve`).
//!
//! Every other figure drives the store through in-process function calls —
//! closed-loop by construction. This one measures what a *client* sees: an
//! in-process `prep-serve` instance is shot with `prep-loadgen`'s
//! open-loop engine (fixed arrival schedule, latency from scheduled send
//! time, so queueing delay is charged, not hidden), sweeping offered load
//! × ack level {buffered, durable} over a buffered-durability store. The
//! headline columns are p50/p99/p999: buffered acks return at apply time,
//! durable acks wait for the covering checkpoint, and the gap between the
//! two distributions is the price of crash-survivability per request.
//!
//! A final crash cell injects `ADMIN CRASH` mid-run and reports the
//! client-observed recovery time-to-first-response.
//!
//! Caveat: server, load generator, and persistence threads all share this
//! machine — on a single-CPU VM the tails include scheduler noise, and
//! loopback TCP is the transport, not a NIC (see EXPERIMENTS.md § serve).
//!
//! Records `BENCH_serve.json` in the working directory — the
//! perf-trajectory baseline future sessions diff against.

use prep_loadgen::keys::KeyMix;
use prep_loadgen::run::{run as loadgen_run, RunConfig, RunReport};
use prep_serve::proto::AckLevel;
use prep_serve::server::{ServeConfig, Server};

use crate::RunOpts;

struct Record {
    rate: f64,
    ack: &'static str,
    report: RunReport,
}

fn server_config() -> ServeConfig {
    ServeConfig {
        shards: 2,
        executors_per_shard: 2,
        conn_threads: 2,
        queue_depth: 256,
        epsilon: 64,
        log_size: 4096,
        crash_sim: false,
        ..ServeConfig::default()
    }
}

fn load_config(addr: String, rate: f64, ack: AckLevel, duration_ms: u64) -> RunConfig {
    RunConfig {
        addr,
        conns: 2,
        rate,
        duration_ms,
        warmup_ms: (duration_ms / 5).min(500),
        keys: 16_384,
        mix: KeyMix::Zipfian { theta: 0.99 },
        get_fraction: 0.5,
        ack,
        seed: 42,
        preload: 4_096,
        arrival: prep_loadgen::Arrival::Fixed,
        crash_at_ms: None,
        shutdown: false,
    }
}

const US: f64 = 1_000.0;

fn row(rate: f64, ack: &str, r: &RunReport) {
    println!(
        "{:>10.0} {:<9} {:>10.0} {:>8} {:>6} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
        rate,
        ack,
        r.achieved_rate(),
        r.completed,
        r.shed,
        r.hist.percentile(0.50) as f64 / US,
        r.hist.percentile(0.99) as f64 / US,
        r.hist.percentile(0.999) as f64 / US,
        r.hist.max() as f64 / US,
    );
}

/// Runs the serve tail-latency sweep plus the crash-under-load cell.
pub fn run(opts: &RunOpts) {
    let rates: &[f64] = if opts.full {
        &[5_000.0, 20_000.0, 50_000.0]
    } else {
        &[2_000.0, 8_000.0]
    };
    let duration_ms = ((opts.seconds * 1_000.0) as u64).max(400);

    println!();
    println!(
        "== Serve: open-loop tail latency over prep-serve \
         (offered load x ack level, buffered store, zipfian 50% GET)"
    );
    println!(
        "{:>10} {:<9} {:>10} {:>8} {:>6} {:>9} {:>9} {:>9} {:>9}",
        "offered/s", "ack", "achieved", "done", "shed", "p50us", "p99us", "p999us", "maxus"
    );

    let mut records = Vec::new();
    for &rate in rates {
        for (ack, name) in [
            (AckLevel::Buffered, "buffered"),
            (AckLevel::Durable, "durable"),
        ] {
            let server = Server::start(server_config(), "127.0.0.1:0").expect("start server");
            let cfg = load_config(server.local_addr().to_string(), rate, ack, duration_ms);
            let report = loadgen_run(&cfg).expect("loadgen run");
            server.shutdown();
            row(rate, name, &report);
            records.push(Record {
                rate,
                ack: name,
                report,
            });
        }
    }

    // Crash-under-load: durable acks against a crash-sim store, with the
    // recovery outage landing mid-window.
    let crash_rate = rates[0];
    let server = Server::start(
        ServeConfig {
            crash_sim: true,
            ..server_config()
        },
        "127.0.0.1:0",
    )
    .expect("start crash server");
    let mut cfg = load_config(
        server.local_addr().to_string(),
        crash_rate,
        AckLevel::Durable,
        duration_ms.max(800),
    );
    cfg.crash_at_ms = Some(cfg.duration_ms / 3);
    let crash_report = loadgen_run(&cfg).expect("crash run");
    let shut = server.shutdown();
    let ttfr_us = crash_report
        .crash
        .as_ref()
        .and_then(|p| p.ttfr_ns())
        .map(|ns| ns as f64 / US);
    println!();
    match ttfr_us {
        Some(t) => println!(
            "-- crash under load at {crash_rate:.0}/s: recovery time-to-first-response {t:.1} us \
             ({} requests shed during the outage, {} crash cycles)",
            crash_report.shed, shut.crashes
        ),
        None => println!("-- crash under load: no post-crash response observed"),
    }

    write_json(opts, &records, &crash_report, ttfr_us);
}

/// Hand-rolled JSON dump (no serde in the dependency closure), matching
/// the other BENCH_*.json baselines: flat fields, one object per cell.
fn write_json(opts: &RunOpts, records: &[Record], crash: &RunReport, ttfr_us: Option<f64>) {
    let mut out = String::from("{\n  \"bench\": \"serve\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n  \"latency_model\": \"off\",\n  \"cells\": [\n",
        if opts.full { "full" } else { "quick" },
    ));
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"offered_rate\": {:.0}, \"ack\": \"{}\", \"achieved_rate\": {:.0}, \
             \"completed\": {}, \"shed\": {}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
             \"p999_us\": {:.1}}}{}\n",
            r.rate,
            r.ack,
            r.report.achieved_rate(),
            r.report.completed,
            r.report.shed,
            r.report.hist.percentile(0.50) as f64 / US,
            r.report.hist.percentile(0.99) as f64 / US,
            r.report.hist.percentile(0.999) as f64 / US,
            sep
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"crash\": {{\"ttfr_us\": {}, \"shed\": {}, \"completed\": {}}}\n",
        ttfr_us.map_or_else(|| String::from("null"), |t| format!("{t:.1}")),
        crash.shed,
        crash.completed
    ));
    out.push_str("}\n");
    let path = "BENCH_serve.json";
    match std::fs::write(path, out) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
