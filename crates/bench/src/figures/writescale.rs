//! Write-path scaling figure (repo extension, anchored to CNR's multi-log
//! partitioning — NrOS, OSDI'21 — applied to this repo's persistent logs).
//!
//! A single PREP-UC log serializes every update through one combiner, so
//! write throughput is flat in the thread count. The multi-log
//! construction (`prep_uc::MultiLogUc`) partitions commuting single-key
//! updates across L independent persistent logs, each with its own
//! combiner and persistence batching. This figure sweeps
//! threads × logs {1, 2, 4} × write ratio {50%, 100%} on the hashmap
//! under buffered durability; the `logs=1` column is the single-log
//! baseline, measured through the same engine so the per-log
//! combine-round counters (`cr=[..]`) are comparable across columns —
//! every column's counters must all be non-zero, proving all L combiners
//! actually ran rather than one log absorbing the workload.
//!
//! Caveat: on a single-CPU VM the per-log combiners timeslice instead of
//! running in parallel, so multi-log speedups understate real-hardware
//! behavior — the counters still show the work fanning out (see
//! EXPERIMENTS.md § writescale).
//!
//! Also records the sweep as `BENCH_writescale.json` in the working
//! directory — the perf-trajectory baseline future sessions diff against.

use prep_uc::{DurabilityLevel, PrepConfig};

use crate::figures::{bench_runtime, map_stream, thread_sweep};
use crate::report;
use crate::targets::{run_multilog, MultiLogCell};
use crate::workload::prefilled_hashmap;
use crate::RunOpts;

const LOGS: [usize; 3] = [1, 2, 4];
const WRITE_PCTS: [u32; 2] = [50, 100];

struct Record {
    write_pct: u32,
    logs: usize,
    threads: usize,
    cell: MultiLogCell,
}

/// Runs the write-scaling sweep.
pub fn run(opts: &RunOpts) {
    let keys = opts.key_range();
    let (_, eps) = opts.epsilons();
    report::banner(
        "Writescale",
        "write scaling past one combiner: threads x logs x write ratio \
         (multi-log PREP, buffered, hashmap)",
    );

    let mut records: Vec<Record> = Vec::new();
    for write_pct in WRITE_PCTS {
        for threads in thread_sweep(opts) {
            for logs in LOGS {
                let cfg = PrepConfig::new(DurabilityLevel::Buffered)
                    .with_log_size(opts.log_size())
                    .with_epsilon(eps)
                    .with_runtime(bench_runtime(opts));
                let cell = run_multilog(
                    prefilled_hashmap(keys),
                    logs,
                    |op: &prep_seqds::hashmap::MapOp| op.key(),
                    |_, resps| resps.into_iter().next().expect("nonempty fold"),
                    cfg,
                    threads,
                    opts.seconds,
                    &map_stream(100 - write_pct, keys),
                );
                report::row(
                    &format!("hashmap-{write_pct}w"),
                    &format!("logs={logs}"),
                    &cell.as_cell(),
                );
                println!(
                    "      ct={:?} cr={:?}",
                    cell.lane_completed, cell.lane_rounds
                );
                records.push(Record {
                    write_pct,
                    logs,
                    threads,
                    cell,
                });
            }
        }
    }

    print_ratio_summary(&records);
    write_json(opts, &records);
}

/// Prints, per (write ratio, threads) cell, each log count's throughput
/// ratio over the single-log baseline — the figure's headline numbers.
fn print_ratio_summary(records: &[Record]) {
    println!();
    println!("-- speedup vs logs=1 (total throughput ratio)");
    let mut panels: Vec<(u32, usize)> = records.iter().map(|r| (r.write_pct, r.threads)).collect();
    panels.dedup();
    for (write_pct, threads) in panels {
        let per = |logs: usize| {
            records
                .iter()
                .find(|r| r.write_pct == write_pct && r.threads == threads && r.logs == logs)
                .map(|r| r.cell.m.ops_per_sec())
        };
        let Some(base) = per(1) else {
            continue;
        };
        let ratio = |ops: f64| {
            if base > 0.0 {
                ops / base
            } else {
                f64::INFINITY
            }
        };
        if let (Some(two), Some(four)) = (per(2), per(4)) {
            println!(
                "{write_pct:>3}% writes  {threads:>3} threads  2 logs {:>6.2}x  4 logs {:>6.2}x",
                ratio(two),
                ratio(four)
            );
        }
    }
}

/// Hand-rolled JSON dump (no serde in the dependency closure): one object
/// per cell, per-log counter vectors inline.
fn write_json(opts: &RunOpts, records: &[Record]) {
    let vec_json = |v: &[u64]| {
        let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
        format!("[{}]", items.join(", "))
    };
    let mut out = String::from("{\n  \"bench\": \"writescale\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n  \"seconds_per_cell\": {},\n  \"durability\": \"buffered\",\n  \"cells\": [\n",
        if opts.full { "full" } else { "quick" },
        opts.seconds
    ));
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"write_pct\": {}, \"logs\": {}, \"threads\": {}, \
             \"total_ops\": {}, \"ops_per_sec\": {:.0}, \
             \"lane_completed\": {}, \"lane_combine_rounds\": {}}}{}\n",
            r.write_pct,
            r.logs,
            r.threads,
            r.cell.m.total_ops,
            r.cell.m.ops_per_sec(),
            vec_json(&r.cell.lane_completed),
            vec_json(&r.cell.lane_rounds),
            sep
        ));
    }
    out.push_str("  ]\n}\n");
    let path = "BENCH_writescale.json";
    match std::fs::write(path, out) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
