//! Read-path scaling figure (repo extension, anchored to NR §3's
//! distributed reader-writer lock and this repo's optimistic seqlock
//! read path).
//!
//! The paper's headline workloads are 90%-read (Fig. 1a/1b, Fig. 2,
//! Fig. 6), so the replica read path is the throughput-critical section.
//! This figure sweeps threads × read ratio {90%, 100%} × read-path mode
//! {centralized `RwSpinLock`, distributed `DistRwLock`, lock-free
//! `Optimistic`, self-tuning `Adaptive`} on the prefilled hashmap under
//! volatile NR (no latency model — the read path is the only variable).
//! With the distributed lock a caught-up reader touches only its own
//! cacheline-padded slot (one RMW + one store); an optimistic reader
//! touches *no* shared line at all — two loads of the replica seqlock
//! version bracket the read, and validation failure falls back to the
//! slot path. Adaptive starts on the slot path and migrates per the
//! observed read/write mix.
//!
//! Caveat: on a single-CPU VM the kernel timeslices the "concurrent"
//! readers, so the centralized line never actually ping-pongs between cores
//! and the measured gaps understate real-hardware behavior (see
//! EXPERIMENTS.md § readscale). The counter columns make the path taken
//! visible: `opt` counts validated optimistic reads, `vfail` seqlock
//! validation failures, `slow` locked reads that missed the
//! zero-contention fast path.
//!
//! Also records the sweep as `BENCH_readscale.json` in the working
//! directory — the perf-trajectory baseline future sessions diff against.

use prep_nr::FairnessMode;

use crate::figures::{map_stream, thread_sweep, topology};
use crate::report;
use crate::targets::{run_nr_fair, CellResult};
use crate::workload::prefilled_hashmap;
use crate::RunOpts;

const LOCKS: [(FairnessMode, &str); 4] = [
    (FairnessMode::ThroughputCentralized, "RwSpinLock"),
    (FairnessMode::Throughput, "DistRwLock"),
    (FairnessMode::Optimistic, "Optimistic"),
    (FairnessMode::Adaptive, "Adaptive"),
];

const READ_PCTS: [u32; 2] = [90, 100];

struct Record {
    read_pct: u32,
    lock: &'static str,
    threads: usize,
    cell: CellResult,
}

/// Runs the read-scaling sweep.
pub fn run(opts: &RunOpts) {
    let topo = topology(opts);
    let keys = opts.key_range(); // 1M keys at full scale (paper hashmap)
    report::banner(
        "Readscale",
        "read-path scaling: threads x read ratio x read-path mode \
         (volatile NR, hashmap, latency model off)",
    );

    let mut records: Vec<Record> = Vec::new();
    for read_pct in READ_PCTS {
        for threads in thread_sweep(opts) {
            for (fairness, lname) in LOCKS {
                let cell = run_nr_fair(
                    prefilled_hashmap(keys),
                    topo,
                    opts.log_size(),
                    fairness,
                    threads,
                    opts.seconds,
                    &map_stream(read_pct, keys),
                );
                report::row(&format!("hashmap-{read_pct}r"), lname, &cell);
                println!(
                    "      opt={} vfail={} slow={}",
                    cell.reads.fast_optimistic,
                    cell.reads.validation_failures,
                    cell.reads.slow_paths
                );
                records.push(Record {
                    read_pct,
                    lock: lname,
                    threads,
                    cell,
                });
            }
        }
    }

    print_ratio_summary(&records);
    write_json(opts, &records);
}

/// Prints, per (read ratio, threads) cell, each mode's throughput ratio
/// over the centralized `RwSpinLock` baseline — the figure's headline
/// numbers.
fn print_ratio_summary(records: &[Record]) {
    println!();
    println!("-- speedup vs RwSpinLock (read throughput ratio)");
    let mut panels: Vec<(u32, usize)> = records.iter().map(|r| (r.read_pct, r.threads)).collect();
    panels.dedup();
    for (read_pct, threads) in panels {
        let per = |lock: &str| {
            records
                .iter()
                .find(|r| r.read_pct == read_pct && r.threads == threads && r.lock == lock)
                .map(|r| r.cell.m.ops_per_sec())
        };
        let Some(central) = per("RwSpinLock") else {
            continue;
        };
        let ratio = |ops: f64| {
            if central > 0.0 {
                ops / central
            } else {
                f64::INFINITY
            }
        };
        let (dist, opt, adapt) = (per("DistRwLock"), per("Optimistic"), per("Adaptive"));
        if let (Some(dist), Some(opt), Some(adapt)) = (dist, opt, adapt) {
            println!(
                "{read_pct:>3}% reads  {threads:>3} threads  dist {:>6.2}x  opt {:>6.2}x  adapt {:>6.2}x",
                ratio(dist),
                ratio(opt),
                ratio(adapt)
            );
        }
    }
}

/// Hand-rolled JSON dump (no serde in the dependency closure): one object
/// per cell, flat fields only.
fn write_json(opts: &RunOpts, records: &[Record]) {
    let mut out = String::from("{\n  \"bench\": \"readscale\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n  \"seconds_per_cell\": {},\n  \"latency_model\": \"off\",\n  \"cells\": [\n",
        if opts.full { "full" } else { "quick" },
        opts.seconds
    ));
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"read_pct\": {}, \"lock\": \"{}\", \"threads\": {}, \
             \"total_ops\": {}, \"ops_per_sec\": {:.0}, \
             \"read_fast_optimistic\": {}, \"read_validation_failures\": {}, \
             \"read_slow_paths\": {}}}{}\n",
            r.read_pct,
            r.lock,
            r.threads,
            r.cell.m.total_ops,
            r.cell.m.ops_per_sec(),
            r.cell.reads.fast_optimistic,
            r.cell.reads.validation_failures,
            r.cell.reads.slow_paths,
            sep
        ));
    }
    out.push_str("  ]\n}\n");
    let path = "BENCH_readscale.json";
    match std::fs::write(path, out) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
