//! Read-path scaling figure (repo extension, anchored to NR §3's
//! distributed reader-writer lock).
//!
//! The paper's headline workloads are 90%-read (Fig. 1a/1b, Fig. 2,
//! Fig. 6), so the replica read path is the throughput-critical section.
//! This figure sweeps threads × read ratio {90%, 100%} × replica-lock
//! implementation {centralized `RwSpinLock`, distributed `DistRwLock`} on
//! the prefilled hashmap under volatile NR (no latency model — the lock is
//! the only variable), and reports the distributed/centralized throughput
//! ratio per cell. With the distributed lock, a caught-up reader touches
//! only its own cacheline-padded slot; the centralized baseline bounces one
//! shared line between every reader.
//!
//! Caveat: on a single-CPU VM the kernel timeslices the "concurrent"
//! readers, so the centralized line never actually ping-pongs between cores
//! and the measured gap understates real-hardware behavior (see
//! EXPERIMENTS.md § readscale). The slow-path counter column shows how many
//! reads missed the zero-contention fast path.
//!
//! Also records the sweep as `BENCH_readscale.json` in the working
//! directory — the perf-trajectory baseline future sessions diff against.

use prep_nr::FairnessMode;

use crate::figures::{map_stream, thread_sweep, topology};
use crate::report;
use crate::targets::{run_nr_fair, CellResult};
use crate::workload::prefilled_hashmap;
use crate::RunOpts;

const LOCKS: [(FairnessMode, &str); 2] = [
    (FairnessMode::ThroughputCentralized, "RwSpinLock"),
    (FairnessMode::Throughput, "DistRwLock"),
];

const READ_PCTS: [u32; 2] = [90, 100];

struct Record {
    read_pct: u32,
    lock: &'static str,
    threads: usize,
    cell: CellResult,
}

/// Runs the read-scaling sweep.
pub fn run(opts: &RunOpts) {
    let topo = topology(opts);
    let keys = opts.key_range(); // 1M keys at full scale (paper hashmap)
    report::banner(
        "Readscale",
        "read-path scaling: threads x read ratio x replica lock \
         (volatile NR, hashmap, latency model off)",
    );

    let mut records: Vec<Record> = Vec::new();
    for read_pct in READ_PCTS {
        for threads in thread_sweep(opts) {
            for (fairness, lname) in LOCKS {
                let cell = run_nr_fair(
                    prefilled_hashmap(keys),
                    topo,
                    opts.log_size(),
                    fairness,
                    threads,
                    opts.seconds,
                    &map_stream(read_pct, keys),
                );
                report::row(&format!("hashmap-{read_pct}r"), lname, &cell);
                records.push(Record {
                    read_pct,
                    lock: lname,
                    threads,
                    cell,
                });
            }
        }
    }

    print_ratio_summary(&records);
    write_json(opts, &records);
}

/// Prints, per (read ratio, threads) cell, the DistRwLock / RwSpinLock
/// throughput ratio — the figure's headline number.
fn print_ratio_summary(records: &[Record]) {
    println!();
    println!("-- DistRwLock speedup vs RwSpinLock (read throughput ratio)");
    let mut panels: Vec<(u32, usize)> = records.iter().map(|r| (r.read_pct, r.threads)).collect();
    panels.dedup();
    for (read_pct, threads) in panels {
        let per = |lock: &str| {
            records
                .iter()
                .find(|r| r.read_pct == read_pct && r.threads == threads && r.lock == lock)
                .map(|r| r.cell.m.ops_per_sec())
        };
        if let (Some(central), Some(dist)) = (per("RwSpinLock"), per("DistRwLock")) {
            let ratio = if central > 0.0 {
                dist / central
            } else {
                f64::INFINITY
            };
            println!("{read_pct:>3}% reads  {threads:>3} threads  {ratio:>8.2}x");
        }
    }
}

/// Hand-rolled JSON dump (no serde in the dependency closure): one object
/// per cell, flat fields only.
fn write_json(opts: &RunOpts, records: &[Record]) {
    let mut out = String::from("{\n  \"bench\": \"readscale\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n  \"seconds_per_cell\": {},\n  \"latency_model\": \"off\",\n  \"cells\": [\n",
        if opts.full { "full" } else { "quick" },
        opts.seconds
    ));
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"read_pct\": {}, \"lock\": \"{}\", \"threads\": {}, \
             \"total_ops\": {}, \"ops_per_sec\": {:.0}}}{}\n",
            r.read_pct,
            r.lock,
            r.threads,
            r.cell.m.total_ops,
            r.cell.m.ops_per_sec(),
            sep
        ));
    }
    out.push_str("  ]\n}\n");
    let path = "BENCH_readscale.json";
    match std::fs::write(path, out) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
