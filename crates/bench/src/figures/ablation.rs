//! Ablations for the design choices DESIGN.md calls out.
//!
//! 1. **WBINVD vs address-range flush** (§6 "Stack"): range-flushing the
//!    replica should win for a tiny stack and lose for a large hashmap.
//! 2. **Per-batch vs per-entry fencing** in the durable log (§4.1): the
//!    single-fence-per-batch scheme should beat fence-per-entry on
//!    update-heavy workloads.
//! 3. **ε backpressure**: the flush-boundary gate trades throughput for the
//!    `ε + β − 1` loss bound; measured via the Figure 3 ε sweep
//!    (`fig3::run`); the correctness side lives in the crash test suite.
//!
//! (The fourth DESIGN.md ablation — one persistent replica instead of two —
//! is a *correctness* ablation: see `tests/crash_recovery.rs`,
//! `one_persistent_replica_design_would_recover_torn_state`.)

use prep_uc::{DurabilityLevel, FlushStrategy, PrepConfig};

use crate::figures::{bench_runtime, map_stream, stack_pairs, topology};
use crate::report;
use crate::targets::run_prep;
use crate::workload::{prefilled_hashmap, prefilled_stack};
use crate::RunOpts;

/// Runs the ablation benches.
pub fn run(opts: &RunOpts) {
    let topo = topology(opts);
    let threads = *crate::figures::thread_sweep(opts).last().unwrap();
    let (_, eps_large) = opts.epsilons();
    let keys = opts.key_range();

    report::banner(
        "Ablation A",
        "replica write-back: WBINVD vs address-range flush",
    );
    for (strategy, name) in [
        (FlushStrategy::Wbinvd, "WBINVD"),
        (FlushStrategy::RangeFlush, "RangeFlush"),
    ] {
        // Tiny structure: a 500-item stack.
        let cfg = PrepConfig::new(DurabilityLevel::Buffered)
            .with_log_size(opts.log_size())
            .with_epsilon(eps_large)
            .with_flush_strategy(strategy)
            .with_runtime(bench_runtime(opts));
        let cell = run_prep(
            prefilled_stack(500),
            cfg,
            topo,
            threads,
            opts.seconds,
            stack_pairs(),
        );
        report::row("tiny:stack-500", name, &cell);

        // Large structure: the full-size hashmap, update-heavy.
        let cfg = PrepConfig::new(DurabilityLevel::Buffered)
            .with_log_size(opts.log_size())
            .with_epsilon(eps_large)
            .with_flush_strategy(strategy)
            .with_runtime(bench_runtime(opts));
        let cell = run_prep(
            prefilled_hashmap(keys),
            cfg,
            topo,
            threads,
            opts.seconds,
            map_stream(0, keys),
        );
        report::row("large:hashmap-0r", name, &cell);
    }

    report::banner(
        "Ablation C",
        "liveness mode: throughput (CAS + writer-pref locks) vs starvation-free \
         (ticket lock + phase-fair locks), §4.2",
    );
    for (fairness, name) in [
        (prep_uc::FairnessMode::Throughput, "throughput"),
        (prep_uc::FairnessMode::StarvationFree, "starvation-free"),
    ] {
        let cfg = PrepConfig::new(DurabilityLevel::Buffered)
            .with_log_size(opts.log_size())
            .with_epsilon(eps_large)
            .with_fairness(fairness)
            .with_runtime(bench_runtime(opts));
        let cell = run_prep(
            prefilled_hashmap(keys),
            cfg,
            topo,
            threads,
            opts.seconds,
            map_stream(50, keys),
        );
        report::row("hashmap-50r", name, &cell);
    }

    report::banner(
        "Ablation B",
        "durable log fencing: one fence per batch vs per entry",
    );
    for (per_entry, name) in [(false, "per-batch"), (true, "per-entry")] {
        let mut cfg = PrepConfig::new(DurabilityLevel::Durable)
            .with_log_size(opts.log_size())
            .with_epsilon(eps_large)
            .with_runtime(bench_runtime(opts));
        if per_entry {
            cfg = cfg.with_fence_per_entry();
        }
        let cell = run_prep(
            prefilled_hashmap(keys),
            cfg,
            topo,
            threads,
            opts.seconds,
            map_stream(0, keys),
        );
        report::row("hashmap-0r", name, &cell);
    }
}
