//! Incremental-checkpoint figure (repo extension, anchored to the paper's
//! §6 WBINVD-vs-range-flush discussion).
//!
//! Sweeps structure size × write skew × flush strategy on the hashmap and
//! reports **checkpoint traffic**: bytes and cachelines written back per
//! completed operation. The claim under test: with `DirtyLines` the
//! checkpoint cost scales with the *write set* accrued between flush
//! boundaries, not with the structure — so a 100k-key map whose updates
//! touch 1% of the keyspace should checkpoint ≥ 10× fewer bytes per op
//! than `Wbinvd`/`RangeFlush`, and a Zipfian workload (hot lines dedup
//! within an interval) should beat uniform at equal update rates.
//!
//! Also records the sweep as `BENCH_checkpoint.json` in the working
//! directory — the perf-trajectory baseline future sessions diff against.

use prep_seqds::hashmap::MapOp;
use prep_uc::{DurabilityLevel, FlushStrategy, PrepConfig};

use crate::figures::{bench_runtime, map_stream, thread_sweep, topology};
use crate::report;
use crate::targets::{run_prep, CellResult, OpStream};
use crate::workload::{prefilled_hashmap, ZipfianGen};
use crate::RunOpts;

/// Zipfian (θ = 0.99) update-only stream: alternating insert/remove on
/// skew-sampled keys, so a few hot cachelines absorb most writes.
fn zipf_updates(keys: u64) -> impl Fn(usize) -> OpStream<MapOp> + Sync {
    move |w| {
        let mut g = ZipfianGen::new(keys, 0.99, w);
        let mut insert_next = true;
        Box::new(move || {
            let key = g.next_key();
            let op = if insert_next {
                MapOp::Insert {
                    key,
                    value: key ^ 0xABCD,
                }
            } else {
                MapOp::Remove { key }
            };
            insert_next = !insert_next;
            op
        })
    }
}

/// One measured cell of the sweep, kept for the JSON dump.
struct Record {
    keys: u64,
    skew: &'static str,
    strategy: &'static str,
    threads: usize,
    cell: CellResult,
}

/// Checkpoint bytes written back per completed operation.
fn ckpt_bytes_per_op(cell: &CellResult) -> f64 {
    if cell.m.total_ops == 0 {
        0.0
    } else {
        cell.stats.checkpoint_bytes as f64 / cell.m.total_ops as f64
    }
}

/// Cachelines written back per checkpoint.
fn lines_per_ckpt(cell: &CellResult) -> f64 {
    if cell.stats.checkpoints == 0 {
        0.0
    } else {
        cell.stats.checkpoint_lines as f64 / cell.stats.checkpoints as f64
    }
}

/// Runs the checkpoint-traffic sweep.
pub fn run(opts: &RunOpts) {
    let topo = topology(opts);
    let threads = *thread_sweep(opts).last().unwrap();
    // Small ε: frequent checkpoints keep each interval's write set small —
    // exactly the regime where incremental flushing should dominate.
    let (eps_small, _) = opts.epsilons();
    let sizes: &[u64] = if opts.full {
        &[10_000, 100_000, 1_000_000]
    } else {
        &[10_000, 100_000]
    };

    report::checkpoint_banner(
        "Checkpoint",
        "incremental checkpointing: write-back traffic per op, \
         structure size x write skew x flush strategy (hashmap, 100% updates)",
    );

    let mut records: Vec<Record> = Vec::new();
    for &keys in sizes {
        let ws = (keys / 100).max(64); // 1% working set
        for (skew, gen) in [
            ("uniform", map_stream(0, keys)),
            ("ws-1pct", map_stream(0, ws)),
        ] {
            for (strategy, sname) in STRATEGIES {
                let cell = run_cell(opts, topo, threads, eps_small, keys, strategy, &gen);
                report::checkpoint_row(&format!("hashmap-{keys}"), sname, skew, &cell);
                records.push(Record {
                    keys,
                    skew,
                    strategy: sname,
                    threads,
                    cell,
                });
            }
        }
        // Zipfian needs its own generator type; same cell shape.
        let gen = zipf_updates(keys);
        for (strategy, sname) in STRATEGIES {
            let cell = run_cell(opts, topo, threads, eps_small, keys, strategy, &gen);
            report::checkpoint_row(&format!("hashmap-{keys}"), sname, "zipf-0.99", &cell);
            records.push(Record {
                keys,
                skew: "zipf-0.99",
                strategy: sname,
                threads,
                cell,
            });
        }
    }

    print_reduction_summary(&records);
    write_json(opts, &records);
}

const STRATEGIES: [(FlushStrategy, &str); 3] = [
    (FlushStrategy::Wbinvd, "WBINVD"),
    (FlushStrategy::RangeFlush, "RangeFlush"),
    (FlushStrategy::DirtyLines, "DirtyLines"),
];

fn run_cell(
    opts: &RunOpts,
    topo: prep_topology::Topology,
    threads: usize,
    epsilon: u64,
    keys: u64,
    strategy: FlushStrategy,
    gen: &(impl Fn(usize) -> OpStream<MapOp> + Sync),
) -> CellResult {
    let cfg = PrepConfig::new(DurabilityLevel::Buffered)
        .with_log_size(opts.log_size())
        .with_epsilon(epsilon)
        .with_flush_strategy(strategy)
        .with_runtime(bench_runtime(opts));
    run_prep(
        prefilled_hashmap(keys),
        cfg,
        topo,
        threads,
        opts.seconds,
        gen,
    )
}

/// Prints, per (size, skew) panel, how many × fewer checkpoint bytes/op
/// `DirtyLines` writes than `Wbinvd` — the figure's headline number.
fn print_reduction_summary(records: &[Record]) {
    println!();
    println!("-- DirtyLines reduction vs WBINVD (checkpoint bytes/op)");
    let mut panels: Vec<(u64, &'static str)> = records.iter().map(|r| (r.keys, r.skew)).collect();
    panels.dedup();
    for (keys, skew) in panels {
        let per = |strategy: &str| {
            records
                .iter()
                .find(|r| r.keys == keys && r.skew == skew && r.strategy == strategy)
                .map(|r| ckpt_bytes_per_op(&r.cell))
        };
        if let (Some(wb), Some(dl)) = (per("WBINVD"), per("DirtyLines")) {
            let ratio = if dl > 0.0 { wb / dl } else { f64::INFINITY };
            println!("hashmap-{keys:<9} {skew:<10} {ratio:>8.1}x");
        }
    }
}

/// Hand-rolled JSON dump (no serde in the dependency closure): one object
/// per cell, flat fields only.
fn write_json(opts: &RunOpts, records: &[Record]) {
    let mut out = String::from("{\n  \"bench\": \"checkpoint\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n  \"seconds_per_cell\": {},\n  \"cells\": [\n",
        if opts.full { "full" } else { "quick" },
        opts.seconds
    ));
    for (i, r) in records.iter().enumerate() {
        let sep = if i + 1 == records.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"keys\": {}, \"skew\": \"{}\", \"strategy\": \"{}\", \
             \"threads\": {}, \"total_ops\": {}, \"ops_per_sec\": {:.0}, \
             \"checkpoints\": {}, \"checkpoint_bytes\": {}, \
             \"checkpoint_lines\": {}, \"ckpt_bytes_per_op\": {:.2}, \
             \"lines_per_ckpt\": {:.2}, \"flushes_per_op\": {:.4}}}{}\n",
            r.keys,
            r.skew,
            r.strategy,
            r.threads,
            r.cell.m.total_ops,
            r.cell.m.ops_per_sec(),
            r.cell.stats.checkpoints,
            r.cell.stats.checkpoint_bytes,
            r.cell.stats.checkpoint_lines,
            ckpt_bytes_per_op(&r.cell),
            lines_per_ckpt(&r.cell),
            r.cell.flushes_per_op(),
            sep
        ));
    }
    out.push_str("  ]\n}\n");
    let path = "BENCH_checkpoint.json";
    match std::fs::write(path, out) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}
