//! Figure 6: PREP-UC hashmap vs the hand-crafted SOFT hashtable
//! (SOFT-1kB = 1000 buckets, SOFT-10kB = 10000 buckets), 90% and 50%
//! read-only, 1M keys, ε = 10000.
//!
//! Expected shape (§6): SOFT wins — it persists exactly the modified words
//! (one line + fence per update) while black-box PREP pays the log and
//! WBINVD machinery; the gap widens with update rate.

use prep_uc::{DurabilityLevel, PrepConfig};

use crate::figures::{bench_runtime, map_stream, thread_sweep, topology};
use crate::report;
use crate::targets::{run_prep, run_soft};
use crate::workload::prefilled_hashmap;
use crate::RunOpts;

/// Runs the Figure 6 sweep.
pub fn run(opts: &RunOpts) {
    let topo = topology(opts);
    let keys = opts.key_range();
    let (_, eps_large) = opts.epsilons();
    report::banner("Figure 6", "PREP hashmap vs hand-crafted SOFT hashtable");
    let (b_small, b_large) = if opts.full {
        (1_000, 10_000)
    } else {
        (64, 512)
    };

    for read_pct in [90u32, 50] {
        for &threads in &thread_sweep(opts) {
            for (level, name) in [
                (DurabilityLevel::Buffered, "PREP-Buffered"),
                (DurabilityLevel::Durable, "PREP-Durable"),
            ] {
                let cfg = PrepConfig::new(level)
                    .with_log_size(opts.log_size())
                    .with_epsilon(eps_large)
                    .with_runtime(bench_runtime(opts));
                let cell = run_prep(
                    prefilled_hashmap(keys),
                    cfg,
                    topo,
                    threads,
                    opts.seconds,
                    map_stream(read_pct, keys),
                );
                report::row(&format!("{read_pct}r"), name, &cell);
            }
            let cell = run_soft(
                b_small,
                keys,
                read_pct,
                bench_runtime(opts),
                threads,
                opts.seconds,
            );
            report::row(&format!("{read_pct}r"), "SOFT-1kB", &cell);
            let cell = run_soft(
                b_large,
                keys,
                read_pct,
                bench_runtime(opts),
                threads,
                opts.seconds,
            );
            report::row(&format!("{read_pct}r"), "SOFT-10kB", &cell);
        }
    }
}
