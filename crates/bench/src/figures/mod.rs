//! One driver per paper figure (see DESIGN.md's per-experiment index).

pub mod ablation;
pub mod checkpoint;
pub mod extension;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod psan;
pub mod readscale;
pub mod serve;
pub mod shard;
pub mod writescale;

use std::sync::Arc;

use prep_pmem::{LatencyModel, PmemRuntime};
use prep_seqds::hashmap::MapOp;
use prep_seqds::pqueue::PqOp;
use prep_seqds::queue::QueueOp;
use prep_seqds::stack::StackOp;
use prep_topology::Topology;

use crate::targets::OpStream;
use crate::workload::{MapOpGen, PqPairGen, QueuePairGen, StackPairGen};
use crate::RunOpts;

/// Topology for a run: the paper machine at full scale; a 2-node, 4-core
/// model at quick scale so small thread counts still span two NUMA nodes.
pub fn topology(opts: &RunOpts) -> Topology {
    if opts.full {
        Topology::paper_machine()
    } else {
        Topology::new(2, 4, 1)
    }
}

/// Thread counts clamped to the topology's worker capacity.
pub fn thread_sweep(opts: &RunOpts) -> Vec<usize> {
    let max = topology(opts).max_workers();
    let mut out: Vec<usize> = opts
        .threads
        .iter()
        .copied()
        .map(|t| t.clamp(1, max))
        .collect();
    out.dedup();
    out
}

/// Persistence cost model for a run (full: Optane-calibrated; quick: the
/// same model scaled down so sub-second trials still complete whole persist
/// cycles).
pub fn latency(opts: &RunOpts) -> LatencyModel {
    if opts.full {
        LatencyModel::optane()
    } else {
        LatencyModel::optane_scaled(8)
    }
}

/// A fresh cost-only runtime for one measurement cell.
pub fn bench_runtime(opts: &RunOpts) -> Arc<PmemRuntime> {
    PmemRuntime::for_benchmarks(latency(opts))
}

/// Uniform-key map op stream factory.
pub fn map_stream(read_pct: u32, key_range: u64) -> impl Fn(usize) -> OpStream<MapOp> + Sync {
    move |w| {
        let mut g = MapOpGen::new(read_pct, key_range, w);
        Box::new(move || g.next_op())
    }
}

/// Enqueue/dequeue pair stream factory (FIFO queue).
pub fn queue_pairs() -> impl Fn(usize) -> OpStream<QueueOp> + Sync {
    |w| {
        let mut g = QueuePairGen::new(w);
        Box::new(move || g.next_op())
    }
}

/// Enqueue/dequeue pair stream factory (priority queue).
pub fn pq_pairs() -> impl Fn(usize) -> OpStream<PqOp> + Sync {
    |w| {
        let mut g = PqPairGen::new(w);
        Box::new(move || g.next_op())
    }
}

/// Push/pop pair stream factory (stack).
pub fn stack_pairs() -> impl Fn(usize) -> OpStream<StackOp> + Sync {
    |w| {
        let mut g = StackPairGen::new(w);
        Box::new(move || g.next_op())
    }
}
