//! Figure 3: the effect of ε — PREP-UC hashmap throughput, 90% read-only,
//! across ε values (at paper scale: 100, 1000, 10000, 100000 on a 1M log).

use prep_uc::{DurabilityLevel, PrepConfig};

use crate::figures::{bench_runtime, map_stream, thread_sweep, topology};
use crate::report;
use crate::targets::run_prep;
use crate::workload::prefilled_hashmap;
use crate::RunOpts;

/// ε values swept at each scale.
pub fn epsilon_sweep(opts: &RunOpts) -> Vec<u64> {
    if opts.full {
        vec![100, 1_000, 10_000, 100_000]
    } else {
        vec![16, 64, 256, 1_024]
    }
}

/// Runs the Figure 3 sweep.
pub fn run(opts: &RunOpts) {
    let topo = topology(opts);
    let keys = opts.key_range();
    report::banner("Figure 3", "effect of epsilon: PREP hashmap, 90% read-only");
    for eps in epsilon_sweep(opts) {
        for &threads in &thread_sweep(opts) {
            for (level, name) in [
                (DurabilityLevel::Buffered, "PREP-Buffered"),
                (DurabilityLevel::Durable, "PREP-Durable"),
            ] {
                let cfg = PrepConfig::new(level)
                    .with_log_size(opts.log_size())
                    .with_epsilon(eps)
                    .with_runtime(bench_runtime(opts));
                let cell = run_prep(
                    prefilled_hashmap(keys),
                    cfg,
                    topo,
                    threads,
                    opts.seconds,
                    map_stream(90, keys),
                );
                report::row(&format!("eps={eps}"), name, &cell);
            }
        }
    }
}
