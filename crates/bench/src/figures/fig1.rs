//! Figure 1: throughput of **volatile** UCs — PREP-V (node replication with
//! persistence removed) vs a global-lock UC.
//!
//! (a) resizable hashmap, 90% read-only, 1M keys;
//! (b) red-black tree, 90% read-only, 1M keys;
//! (c) FIFO queue, 100% updates, enqueue/dequeue pairs.

use crate::figures::{map_stream, queue_pairs, thread_sweep, topology};
use crate::report;
use crate::targets::{run_gl, run_nr};
use crate::workload::{prefilled_hashmap, prefilled_queue, prefilled_rbtree};
use crate::RunOpts;

/// Runs the Figure 1 sweep.
pub fn run(opts: &RunOpts) {
    let topo = topology(opts);
    let keys = opts.key_range();
    let log = opts.log_size();
    report::banner(
        "Figure 1",
        "volatile UCs: PREP-V (node replication) vs Global Lock",
    );

    for &threads in &thread_sweep(opts) {
        // (a) hashmap, 90% read.
        let cell = run_nr(
            prefilled_hashmap(keys),
            topo,
            log,
            threads,
            opts.seconds,
            map_stream(90, keys),
        );
        report::row("a:hashmap-90r", "PREP-V", &cell);
        let cell = run_gl(
            prefilled_hashmap(keys),
            threads,
            opts.seconds,
            map_stream(90, keys),
        );
        report::row("a:hashmap-90r", "GL", &cell);

        // (b) red-black tree, 90% read.
        let cell = run_nr(
            prefilled_rbtree(keys),
            topo,
            log,
            threads,
            opts.seconds,
            map_stream(90, keys),
        );
        report::row("b:rbtree-90r", "PREP-V", &cell);
        let cell = run_gl(
            prefilled_rbtree(keys),
            threads,
            opts.seconds,
            map_stream(90, keys),
        );
        report::row("b:rbtree-90r", "GL", &cell);

        // (c) FIFO queue, 100% update pairs.
        let items = keys / 2;
        let cell = run_nr(
            prefilled_queue(items),
            topo,
            log,
            threads,
            opts.seconds,
            queue_pairs(),
        );
        report::row("c:queue-pairs", "PREP-V", &cell);
        let cell = run_gl(prefilled_queue(items), threads, opts.seconds, queue_pairs());
        report::row("c:queue-pairs", "GL", &cell);
    }
}
