//! Tabular output for the figure drivers.

use crate::targets::CellResult;

/// Prints a figure's title banner.
pub fn banner(fig: &str, description: &str) {
    println!();
    println!("== {fig}: {description}");
    println!(
        "{:<22} {:<14} {:>7} {:>14} {:>12} {:>10} {:>10} {:>8}",
        "panel", "series", "threads", "ops/sec", "total_ops", "flush/op", "fence/op", "wbinvd"
    );
}

/// Prints one measurement row.
pub fn row(panel: &str, series: &str, cell: &CellResult) {
    println!(
        "{:<22} {:<14} {:>7} {:>14.0} {:>12} {:>10.3} {:>10.3} {:>8}",
        panel,
        series,
        cell.m.threads,
        cell.m.ops_per_sec(),
        cell.m.total_ops,
        cell.flushes_per_op(),
        cell.fences_per_op(),
        cell.stats.wbinvd,
    );
}

/// Formats ops/sec compactly for summaries (e.g. "1.25M").
pub fn human_rate(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1e6 {
        format!("{:.2}M", ops_per_sec / 1e6)
    } else if ops_per_sec >= 1e3 {
        format!("{:.1}k", ops_per_sec / 1e3)
    } else {
        format!("{ops_per_sec:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_rate_picks_suffixes() {
        assert_eq!(human_rate(12.0), "12");
        assert_eq!(human_rate(1_500.0), "1.5k");
        assert_eq!(human_rate(2_500_000.0), "2.50M");
    }
}
