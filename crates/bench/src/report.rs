//! Tabular output for the figure drivers, and the [`Phase`] accounting
//! helper every measurement window uses.

use std::sync::Arc;

use prep_pmem::{PmemRuntime, PmemStatsSnapshot};

use crate::targets::CellResult;

/// The HDR-style log-bucketed histogram the serve figure reports
/// percentiles from — re-exported so figure drivers and external callers
/// aggregate latency through one type (it merges, so per-connection
/// histograms fold into a run-wide one).
pub use prep_loadgen::LatencyHistogram;

/// Persistence accounting for one measurement phase: snapshots a runtime's
/// counters at construction and yields the per-field delta on demand via
/// [`PmemStatsSnapshot::delta`]. Replaces the hand-rolled
/// `before`/`delta_since` pairs at every adapter call site — and per-shard
/// accounting is just one `Phase` per shard runtime.
#[derive(Debug)]
pub struct Phase {
    runtime: Arc<PmemRuntime>,
    start: PmemStatsSnapshot,
}

impl Phase {
    /// Starts accounting against `runtime` now.
    pub fn start(runtime: &Arc<PmemRuntime>) -> Self {
        Phase {
            runtime: Arc::clone(runtime),
            start: runtime.stats().snapshot(),
        }
    }

    /// The persistence work done since [`Phase::start`] (non-consuming, so
    /// a driver can sample mid-phase and at the end).
    pub fn finish(&self) -> PmemStatsSnapshot {
        self.runtime.stats().snapshot().delta(&self.start)
    }
}

/// Prints a figure's title banner.
pub fn banner(fig: &str, description: &str) {
    println!();
    println!("== {fig}: {description}");
    println!(
        "{:<22} {:<14} {:>7} {:>14} {:>12} {:>10} {:>10} {:>8}",
        "panel", "series", "threads", "ops/sec", "total_ops", "flush/op", "fence/op", "wbinvd"
    );
}

/// Prints one measurement row.
pub fn row(panel: &str, series: &str, cell: &CellResult) {
    println!(
        "{:<22} {:<14} {:>7} {:>14.0} {:>12} {:>10.3} {:>10.3} {:>8}",
        panel,
        series,
        cell.m.threads,
        cell.m.ops_per_sec(),
        cell.m.total_ops,
        cell.flushes_per_op(),
        cell.fences_per_op(),
        cell.stats.wbinvd,
    );
}

/// Prints the checkpoint figure's title banner (write-back traffic
/// columns).
pub fn checkpoint_banner(fig: &str, description: &str) {
    println!();
    println!("== {fig}: {description}");
    println!(
        "{:<16} {:<12} {:<10} {:>7} {:>12} {:>8} {:>14} {:>11} {:>9}",
        "panel",
        "series",
        "skew",
        "threads",
        "ops/sec",
        "ckpts",
        "ckpt_bytes/op",
        "lines/ckpt",
        "flush/op"
    );
}

/// Prints one checkpoint-sweep measurement row.
pub fn checkpoint_row(panel: &str, series: &str, skew: &str, cell: &CellResult) {
    let bytes_per_op = if cell.m.total_ops == 0 {
        0.0
    } else {
        cell.stats.checkpoint_bytes as f64 / cell.m.total_ops as f64
    };
    let lines_per_ckpt = if cell.stats.checkpoints == 0 {
        0.0
    } else {
        cell.stats.checkpoint_lines as f64 / cell.stats.checkpoints as f64
    };
    println!(
        "{:<16} {:<12} {:<10} {:>7} {:>12.0} {:>8} {:>14.1} {:>11.1} {:>9.3}",
        panel,
        series,
        skew,
        cell.m.threads,
        cell.m.ops_per_sec(),
        cell.stats.checkpoints,
        bytes_per_op,
        lines_per_ckpt,
        cell.flushes_per_op(),
    );
}

/// Prints the shard-sweep figure's title banner (per-shard columns).
pub fn shard_banner(fig: &str, description: &str) {
    println!();
    println!("== {fig}: {description}");
    println!(
        "{:<10} {:<16} {:>7} {:>6} {:>14} {:>12} {:>10} {:>10}",
        "panel", "series", "threads", "shard", "ops/sec", "updates", "flush/op", "fence/op"
    );
}

/// Prints a shard sweep's whole-store summary row.
pub fn shard_summary_row(
    panel: &str,
    series: &str,
    threads: usize,
    ops_per_sec: f64,
    total_updates: u64,
    flushes_per_update: f64,
    fences_per_update: f64,
) {
    println!(
        "{:<10} {:<16} {:>7} {:>6} {:>14.0} {:>12} {:>10.3} {:>10.3}",
        panel,
        series,
        threads,
        "all",
        ops_per_sec,
        total_updates,
        flushes_per_update,
        fences_per_update,
    );
}

/// Prints one shard's accounting row within a sweep cell.
pub fn shard_lane_row(
    panel: &str,
    series: &str,
    shard: usize,
    updates: u64,
    flushes_per_update: f64,
    fences_per_update: f64,
) {
    println!(
        "{:<10} {:<16} {:>7} {:>6} {:>14} {:>12} {:>10.3} {:>10.3}",
        panel, series, "", shard, "", updates, flushes_per_update, fences_per_update,
    );
}

/// Formats ops/sec compactly for summaries (e.g. "1.25M").
pub fn human_rate(ops_per_sec: f64) -> String {
    if ops_per_sec >= 1e6 {
        format!("{:.2}M", ops_per_sec / 1e6)
    } else if ops_per_sec >= 1e3 {
        format!("{:.1}k", ops_per_sec / 1e3)
    } else {
        format!("{ops_per_sec:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_rate_picks_suffixes() {
        assert_eq!(human_rate(12.0), "12");
        assert_eq!(human_rate(1_500.0), "1.5k");
        assert_eq!(human_rate(2_500_000.0), "2.50M");
    }
}
