//! Benchmark harness for the PREP-UC reproduction.
//!
//! Everything needed to regenerate the paper's evaluation (§6): workload
//! generators matching the paper's micro-benchmarks ([`workload`]), a
//! thread-sweep measurement runner ([`runner`]), target adapters for every
//! system under test ([`targets`]), and one driver per paper figure
//! ([`figures`]).
//!
//! The CLI binary (`cargo run -p prep-bench --release -- <figN|all>`)
//! prints, for each figure, the same series the paper plots — throughput in
//! operations per second against worker-thread count — plus the persistence
//! counters that explain the shape (flushes/op, fences/op, WBINVDs).
//!
//! Two scales:
//! * **quick** (default): small structures, short trials, few threads —
//!   finishes in minutes on a laptop and preserves every qualitative
//!   relationship (who wins, crossovers).
//! * **`--full`**: the paper's parameters (1M keys, 1M-entry log, 10 s
//!   trials, thread sweep to 95). Budget hours, and note the reproduction
//!   machine is CPU-oversubscribed (see EXPERIMENTS.md).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod figures;
pub mod report;
pub mod runner;
pub mod targets;
pub mod workload;

/// Options shared by all figure drivers.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Paper-scale parameters instead of quick-scale.
    pub full: bool,
    /// Worker-thread counts to sweep.
    pub threads: Vec<usize>,
    /// Seconds per measurement cell.
    pub seconds: f64,
    /// Optional data-structure filter for Figure 2 (`hashmap` / `rbtree`).
    pub ds_filter: Option<String>,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            full: false,
            threads: vec![1, 2, 4, 8],
            seconds: 0.3,
            ds_filter: None,
        }
    }
}

impl RunOpts {
    /// Paper-scale options.
    pub fn full() -> Self {
        RunOpts {
            full: true,
            threads: vec![1, 8, 16, 24, 36, 48, 60, 72, 84, 95],
            seconds: 10.0,
            ds_filter: None,
        }
    }

    /// Key range for map figures.
    pub fn key_range(&self) -> u64 {
        if self.full {
            1_000_000
        } else {
            16_384
        }
    }

    /// Shared-log capacity.
    pub fn log_size(&self) -> u64 {
        if self.full {
            1 << 20
        } else {
            8_192
        }
    }

    /// The paper's "small" and "large" ε for this scale (100 and 10000 at
    /// paper scale — 10000 is 1% of the log, quick scale keeps that ratio).
    pub fn epsilons(&self) -> (u64, u64) {
        if self.full {
            (100, 10_000)
        } else {
            (16, 1_024)
        }
    }
}
