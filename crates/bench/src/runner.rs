//! The thread-sweep measurement runner.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// One measurement cell's result.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock measurement window.
    pub elapsed: Duration,
    /// Operations completed across all workers.
    pub total_ops: u64,
}

impl Measurement {
    /// Throughput in operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.total_ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// Runs `threads` workers for `duration` against per-worker op closures and
/// returns aggregate throughput.
///
/// `make_worker(w)` is invoked **on worker `w`'s own thread** (so thread
/// registration, token acquisition, and RNG seeding happen in place) and
/// returns the closure executed in a tight loop until the deadline.
///
/// All workers start together (barrier) and stop together (shared flag set
/// by the coordinator after `duration`), like the paper's fixed-time trials.
pub fn measure<'env, F>(threads: usize, duration: Duration, make_worker: F) -> Measurement
where
    F: Fn(usize) -> Box<dyn FnMut() + Send + 'env> + Sync + 'env,
{
    assert!(threads > 0);
    let stop = AtomicBool::new(false);
    let barrier = Barrier::new(threads + 1);
    let mut total_ops = 0u64;
    let mut elapsed = Duration::ZERO;

    std::thread::scope(|s| {
        let stop = &stop;
        let barrier = &barrier;
        let make_worker = &make_worker;
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                s.spawn(move || {
                    let mut op = make_worker(w);
                    barrier.wait();
                    let mut count = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        op();
                        count += 1;
                    }
                    count
                })
            })
            .collect();

        barrier.wait();
        let t0 = Instant::now();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        elapsed = t0.elapsed();
        for h in handles {
            total_ops += h.join().expect("worker panicked");
        }
    });

    Measurement {
        threads,
        elapsed,
        total_ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn counts_every_completed_op() {
        let shared = AtomicU64::new(0);
        let m = measure(3, Duration::from_millis(50), |_w| {
            let shared = &shared;
            Box::new(move || {
                shared.fetch_add(1, Ordering::Relaxed);
            })
        });
        assert_eq!(m.threads, 3);
        assert_eq!(m.total_ops, shared.load(Ordering::Relaxed));
        assert!(m.total_ops > 0);
        assert!(m.ops_per_sec() > 0.0);
    }

    #[test]
    fn make_worker_runs_on_worker_thread() {
        let main_id = std::thread::current().id();
        measure(2, Duration::from_millis(10), move |_| {
            assert_ne!(std::thread::current().id(), main_id);
            Box::new(|| {})
        });
    }

    #[test]
    fn elapsed_is_at_least_requested() {
        let m = measure(1, Duration::from_millis(30), |_| Box::new(|| {}));
        assert!(m.elapsed >= Duration::from_millis(30));
    }
}
