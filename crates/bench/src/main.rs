//! `prep-bench`: regenerate the PREP-UC paper's figures.
//!
//! ```text
//! cargo run -p prep-bench --release -- <figure> [options]
//!
//! figures:  fig1 fig2 fig3 fig4 fig5 fig6 ablation extension shard checkpoint readscale writescale psan serve all
//! options:
//!   --full            paper-scale parameters (1M keys, 10 s trials, 95 threads)
//!   --threads a,b,c   worker-thread sweep (default quick: 1,2,4,7)
//!   --seconds S       seconds per measurement cell
//!   --ds NAME         fig2 only: hashmap | rbtree
//! ```
//!
//! Register the paper's allocator-swap global allocator so persistence-
//! thread allocations land in the persistent arena (§5.1).

use prep_bench::{figures, RunOpts};

#[global_allocator]
static ALLOC: prep_pmem::alloc::SwappableAllocator = prep_pmem::alloc::SwappableAllocator::new();

fn usage() -> ! {
    eprintln!(
        "usage: prep-bench <fig1|fig2|fig3|fig4|fig5|fig6|ablation|extension|shard|checkpoint|readscale|writescale|psan|serve|all> \
         [--full] [--threads a,b,c] [--seconds S] [--ds hashmap|rbtree]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let which = args[0].clone();
    let full = args.iter().any(|a| a == "--full");
    let mut opts = if full {
        RunOpts::full()
    } else {
        RunOpts::default()
    };

    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => {}
            "--threads" => {
                i += 1;
                let list = args.get(i).unwrap_or_else(|| usage());
                opts.threads = list
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--seconds" => {
                i += 1;
                opts.seconds = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--ds" => {
                i += 1;
                opts.ds_filter = Some(args.get(i).unwrap_or_else(|| usage()).clone());
            }
            other => {
                eprintln!("unknown option {other}");
                usage();
            }
        }
        i += 1;
    }

    println!(
        "# prep-bench scale={} threads={:?} seconds={} (single run per cell)",
        if opts.full { "FULL (paper)" } else { "quick" },
        opts.threads,
        opts.seconds
    );
    println!("# note: thread counts are logical workers; see EXPERIMENTS.md for host caveats");

    match which.as_str() {
        "fig1" => figures::fig1::run(&opts),
        "fig2" => figures::fig2::run(&opts),
        "fig3" => figures::fig3::run(&opts),
        "fig4" => figures::fig4::run(&opts),
        "fig5" => figures::fig5::run(&opts),
        "fig6" => figures::fig6::run(&opts),
        "ablation" => figures::ablation::run(&opts),
        "extension" => figures::extension::run(&opts),
        "shard" => figures::shard::run(&opts),
        "checkpoint" => figures::checkpoint::run(&opts),
        "readscale" => figures::readscale::run(&opts),
        "writescale" => figures::writescale::run(&opts),
        "psan" => figures::psan::run(&opts),
        "serve" => figures::serve::run(&opts),
        "all" => {
            figures::fig1::run(&opts);
            figures::fig2::run(&opts);
            figures::fig3::run(&opts);
            figures::fig4::run(&opts);
            figures::fig5::run(&opts);
            figures::fig6::run(&opts);
            figures::ablation::run(&opts);
            figures::extension::run(&opts);
            figures::shard::run(&opts);
            figures::checkpoint::run(&opts);
            figures::readscale::run(&opts);
            figures::writescale::run(&opts);
            figures::psan::run(&opts);
            figures::serve::run(&opts);
        }
        _ => usage(),
    }
}
