//! Adapters that run one measurement cell against each system under test.

use std::sync::Arc;
use std::time::Duration;

use prep_cx::{CxConfig, CxUc};
use prep_nr::{FairnessMode, GlobalLockUc, NodeReplicated, NoopHooks};
use prep_pmem::{PmemRuntime, PmemStatsSnapshot};
use prep_seqds::SequentialObject;
use prep_soft::SoftHashMap;
use prep_topology::Topology;
use prep_uc::{LaneRouter, MultiLogUc, PrepConfig, PrepUc};

use prep_shard::ShardedStore;

use crate::report::Phase;
use crate::runner::{measure, Measurement};
use crate::workload::MapOpGen;

/// Read-path counters captured from the construction after a cell's
/// window (zero for targets that do not expose them).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReadPathCounters {
    /// Validated optimistic lock-free reads (zero RMWs, zero shared
    /// stores each).
    pub fast_optimistic: u64,
    /// Optimistic reads that failed seqlock validation and fell back to
    /// the locked path.
    pub validation_failures: u64,
    /// Locked reads that missed the zero-contention fast path.
    pub slow_paths: u64,
}

/// A measurement plus the persistence-counter delta it generated.
#[derive(Debug, Clone, Copy)]
pub struct CellResult {
    /// Throughput measurement.
    pub m: Measurement,
    /// Persistence ops performed during the window (zero for volatile
    /// targets).
    pub stats: PmemStatsSnapshot,
    /// Read-path counters (populated by [`run_nr_fair`]; zero elsewhere).
    pub reads: ReadPathCounters,
}

impl CellResult {
    fn volatile(m: Measurement) -> Self {
        CellResult {
            m,
            stats: PmemStatsSnapshot::default(),
            reads: ReadPathCounters::default(),
        }
    }

    /// Flush instructions per completed operation.
    pub fn flushes_per_op(&self) -> f64 {
        if self.m.total_ops == 0 {
            0.0
        } else {
            self.stats.total_flushes() as f64 / self.m.total_ops as f64
        }
    }

    /// Fences per completed operation.
    pub fn fences_per_op(&self) -> f64 {
        if self.m.total_ops == 0 {
            0.0
        } else {
            self.stats.sfence as f64 / self.m.total_ops as f64
        }
    }
}

/// A per-worker operation stream: an owned closure yielding operations.
pub type OpStream<O> = Box<dyn FnMut() -> O + Send>;

/// Runs one cell against PREP-UC (buffered or durable per `cfg`).
pub fn run_prep<T, G>(
    obj: T,
    cfg: PrepConfig,
    topo: Topology,
    threads: usize,
    secs: f64,
    gen: G,
) -> CellResult
where
    T: SequentialObject,
    G: Fn(usize) -> OpStream<T::Op> + Sync,
{
    let rt = Arc::clone(&cfg.runtime);
    let asg = topo.assign_workers(threads);
    let prep = PrepUc::new(obj, asg, cfg);
    let phase = Phase::start(&rt);
    let prep_ref = &prep;
    let m = measure(threads, Duration::from_secs_f64(secs), move |w| {
        let token = prep_ref.register(w);
        let mut ops = gen(w);
        Box::new(move || {
            prep_ref.execute(&token, ops());
        })
    });
    let stats = phase.finish();
    let reads = ReadPathCounters {
        fast_optimistic: prep.read_fast_optimistic(),
        validation_failures: prep.read_validation_failures(),
        slow_paths: prep.read_slow_paths(),
    };
    drop(prep);
    CellResult { m, stats, reads }
}

/// Runs one cell against volatile NR-UC (the paper's PREP-V).
pub fn run_nr<T, G>(
    obj: T,
    topo: Topology,
    log_size: u64,
    threads: usize,
    secs: f64,
    gen: G,
) -> CellResult
where
    T: SequentialObject,
    G: Fn(usize) -> OpStream<T::Op> + Sync,
{
    let asg = topo.assign_workers(threads);
    let nr = NodeReplicated::new(obj, asg, log_size);
    let nr_ref = &nr;
    let m = measure(threads, Duration::from_secs_f64(secs), move |w| {
        let token = nr_ref.register(w);
        let mut ops = gen(w);
        Box::new(move || {
            nr_ref.execute(&token, ops());
        })
    });
    CellResult::volatile(m)
}

/// Runs one cell against volatile NR with an explicit [`FairnessMode`] —
/// the readscale figure's knob for sweeping replica-lock implementations
/// (distributed vs centralized vs phase-fair).
pub fn run_nr_fair<T, G>(
    obj: T,
    topo: Topology,
    log_size: u64,
    fairness: FairnessMode,
    threads: usize,
    secs: f64,
    gen: G,
) -> CellResult
where
    T: SequentialObject,
    G: Fn(usize) -> OpStream<T::Op> + Sync,
{
    let asg = topo.assign_workers(threads);
    let nr = NodeReplicated::with_hooks_and_fairness(obj, asg, log_size, NoopHooks, fairness);
    let nr_ref = &nr;
    let m = measure(threads, Duration::from_secs_f64(secs), move |w| {
        let token = nr_ref.register(w);
        let mut ops = gen(w);
        Box::new(move || {
            nr_ref.execute(&token, ops());
        })
    });
    let reads = ReadPathCounters {
        fast_optimistic: nr.read_fast_optimistic(),
        validation_failures: nr.read_validation_failures(),
        slow_paths: nr.read_slow_paths(),
    };
    let mut cell = CellResult::volatile(m);
    cell.reads = reads;
    cell
}

/// Runs one cell against the global-lock baseline.
pub fn run_gl<T, G>(obj: T, threads: usize, secs: f64, gen: G) -> CellResult
where
    T: SequentialObject,
    G: Fn(usize) -> OpStream<T::Op> + Sync,
{
    let gl = GlobalLockUc::new(obj);
    let m = measure(threads, Duration::from_secs_f64(secs), |w| {
        let mut ops = gen(w);
        let gl = &gl;
        Box::new(move || {
            gl.execute(ops());
        })
    });
    CellResult::volatile(m)
}

/// Runs one cell against CX-UC / CX-PUC.
pub fn run_cx<T, G>(obj: T, cfg: CxConfig, threads: usize, secs: f64, gen: G) -> CellResult
where
    T: SequentialObject,
    G: Fn(usize) -> OpStream<T::Op> + Sync,
{
    let phase = cfg.persistence.as_ref().map(Phase::start);
    let cx = CxUc::new(obj, cfg);
    let m = measure(threads, Duration::from_secs_f64(secs), |w| {
        let mut ops = gen(w);
        let cx = &cx;
        Box::new(move || {
            cx.execute(ops());
        })
    });
    let stats = phase.map(|p| p.finish()).unwrap_or_default();
    let reads = ReadPathCounters {
        fast_optimistic: cx.read_fast_optimistic(),
        validation_failures: cx.read_validation_failures(),
        slow_paths: 0,
    };
    CellResult { m, stats, reads }
}

/// Runs one cell against the SOFT hashtable (Figure 6).
pub fn run_soft(
    buckets: usize,
    key_range: u64,
    read_pct: u32,
    rt: Arc<PmemRuntime>,
    threads: usize,
    secs: f64,
) -> CellResult {
    let soft = SoftHashMap::new(buckets, Arc::clone(&rt));
    for k in (0..key_range).step_by(2) {
        soft.insert(k, k ^ 0xABCD);
    }
    let phase = Phase::start(&rt);
    let m = measure(threads, Duration::from_secs_f64(secs), |w| {
        let mut gen = MapOpGen::new(read_pct, key_range, w);
        let soft = &soft;
        Box::new(move || {
            use prep_seqds::hashmap::MapOp;
            match gen.next_op() {
                MapOp::Get { key } | MapOp::Contains { key } => {
                    soft.contains(key);
                }
                MapOp::Insert { key, value } => {
                    soft.insert(key, value);
                }
                MapOp::Remove { key } => {
                    soft.remove(key);
                }
                MapOp::Len => {
                    soft.len();
                }
            }
        })
    });
    let stats = phase.finish();
    CellResult {
        m,
        stats,
        reads: ReadPathCounters::default(),
    }
}

/// One shard's share of a sharded measurement cell.
#[derive(Debug, Clone, Copy)]
pub struct ShardLane {
    /// Update operations this shard's log completed during the window.
    pub updates: u64,
    /// Persistence ops this shard's own runtime performed during the
    /// window.
    pub stats: PmemStatsSnapshot,
}

impl ShardLane {
    /// Flush instructions per completed update on this shard.
    pub fn flushes_per_update(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.stats.total_flushes() as f64 / self.updates as f64
        }
    }

    /// Fences per completed update on this shard.
    pub fn fences_per_update(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.stats.sfence as f64 / self.updates as f64
        }
    }
}

/// A sharded measurement: whole-store throughput plus one accounting lane
/// per shard.
#[derive(Debug, Clone)]
pub struct ShardCell {
    /// Throughput measurement (all shards together).
    pub m: Measurement,
    /// Per-shard update counts and persistence deltas.
    pub shards: Vec<ShardLane>,
}

impl ShardCell {
    /// Updates completed across all shards.
    pub fn total_updates(&self) -> u64 {
        self.shards.iter().map(|l| l.updates).sum()
    }

    /// Store-wide flushes per update.
    pub fn flushes_per_update(&self) -> f64 {
        let updates = self.total_updates();
        if updates == 0 {
            0.0
        } else {
            let flushes: u64 = self.shards.iter().map(|l| l.stats.total_flushes()).sum();
            flushes as f64 / updates as f64
        }
    }

    /// Store-wide fences per update.
    pub fn fences_per_update(&self) -> f64 {
        let updates = self.total_updates();
        if updates == 0 {
            0.0
        } else {
            let fences: u64 = self.shards.iter().map(|l| l.stats.sfence).sum();
            fences as f64 / updates as f64
        }
    }
}

/// A multi-log measurement: whole-construction throughput plus the
/// per-log interval counters that prove every log's combiner ran.
#[derive(Debug, Clone)]
pub struct MultiLogCell {
    /// Throughput measurement (all logs together).
    pub m: Measurement,
    /// Persistence ops performed during the window.
    pub stats: PmemStatsSnapshot,
    /// Per-log completed updates during the window.
    pub lane_completed: Vec<u64>,
    /// Per-log combine rounds during the window (all non-zero ⇔ every
    /// log's combiner was active).
    pub lane_rounds: Vec<u64>,
}

impl MultiLogCell {
    /// The conventional [`CellResult`] view, for the shared report rows.
    pub fn as_cell(&self) -> CellResult {
        CellResult {
            m: self.m,
            stats: self.stats,
            reads: ReadPathCounters::default(),
        }
    }
}

/// Runs one cell against the multi-log construction
/// (`prep_uc::MultiLogUc`, persistent CNR) with `logs` logs —
/// `logs = 1` is the writescale figure's single-log baseline column,
/// measured through the same engine so the combine-round counters are
/// comparable across columns.
#[allow(clippy::too_many_arguments)] // the workload closures are the API
pub fn run_multilog<T, G>(
    obj: T,
    logs: usize,
    key_of: impl Fn(&T::Op) -> Option<u64> + Send + Sync + 'static,
    fold: impl Fn(&T::Op, Vec<T::Resp>) -> T::Resp + Send + Sync + 'static,
    cfg: PrepConfig,
    threads: usize,
    secs: f64,
    gen: G,
) -> MultiLogCell
where
    T: SequentialObject,
    G: Fn(usize) -> OpStream<T::Op> + Sync,
{
    let rt = Arc::clone(&cfg.runtime);
    let uc = MultiLogUc::new(obj, LaneRouter::by_key(key_of, fold), logs, threads, cfg);
    let before_ct = uc.completed_vector();
    let before_rounds: Vec<u64> = (0..logs).map(|l| uc.combine_rounds(l)).collect();
    let phase = Phase::start(&rt);
    let uc_ref = &uc;
    let m = measure(threads, Duration::from_secs_f64(secs), move |w| {
        let token = uc_ref.register(w);
        let mut ops = gen(w);
        Box::new(move || {
            uc_ref.execute(&token, ops());
        })
    });
    let stats = phase.finish();
    let lane_completed = uc
        .completed_vector()
        .iter()
        .zip(&before_ct)
        .map(|(now, then)| now - then)
        .collect();
    let lane_rounds = (0..logs)
        .map(|l| uc.combine_rounds(l) - before_rounds[l])
        .collect();
    drop(uc);
    MultiLogCell {
        m,
        stats,
        lane_completed,
        lane_rounds,
    }
}

/// Runs one cell against a sharded PREP-UC store
/// (`prep_shard::ShardedStore`) in per-shard-runtime mode, so each shard's
/// flush/fence traffic is attributed to its own counters (one
/// [`Phase`] per shard).
#[allow(clippy::too_many_arguments)] // one knob per sweep dimension, like the other adapters
pub fn run_sharded<T, G>(
    obj: T,
    shards: usize,
    cfg: PrepConfig,
    topo: Topology,
    threads: usize,
    secs: f64,
    gen: G,
    key_fn: impl Fn(&T::Op) -> u64 + Send + Sync + 'static,
) -> ShardCell
where
    T: SequentialObject,
    G: Fn(usize) -> OpStream<T::Op> + Sync,
{
    let asg = topo.assign_workers(threads);
    let store = ShardedStore::with_per_shard_runtimes(obj, shards, asg, cfg, key_fn);
    // One StoreMetrics snapshot replaces the former per-shard Phase + tail
    // bookkeeping; the same struct backs prep-serve's ADMIN STATS verb.
    let before = store.metrics();
    let store_ref = &store;
    let m = measure(threads, Duration::from_secs_f64(secs), move |w| {
        let token = store_ref.register(w);
        let mut ops = gen(w);
        Box::new(move || {
            store_ref.execute(&token, ops());
        })
    });
    let delta = store.metrics().delta(&before);
    let lanes = delta
        .shards
        .iter()
        .map(|s| ShardLane {
            updates: s.completed_tail,
            stats: s.stats,
        })
        .collect();
    ShardCell { m, shards: lanes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{prefilled_hashmap, MapOpGen};
    use prep_pmem::LatencyModel;
    use prep_uc::DurabilityLevel;

    fn quick_topo() -> Topology {
        Topology::new(2, 4, 1)
    }

    fn map_gen(
        read_pct: u32,
        keys: u64,
    ) -> impl Fn(usize) -> OpStream<prep_seqds::hashmap::MapOp> + Sync {
        move |w| {
            let mut g = MapOpGen::new(read_pct, keys, w);
            Box::new(move || g.next_op())
        }
    }

    #[test]
    fn prep_cell_produces_throughput_and_stats() {
        let cfg = prep_uc::PrepConfig::new(DurabilityLevel::Durable)
            .with_log_size(4096)
            .with_epsilon(256)
            .with_runtime(PmemRuntime::for_benchmarks(LatencyModel::off()));
        let cell = run_prep(
            prefilled_hashmap(1024),
            cfg,
            quick_topo(),
            2,
            0.05,
            map_gen(50, 1024),
        );
        assert!(cell.m.total_ops > 0);
        assert!(cell.stats.total_flushes() > 0, "durable must flush");
        assert!(cell.flushes_per_op() > 0.0);
    }

    #[test]
    fn nr_and_gl_cells_are_volatile() {
        let cell = run_nr(
            prefilled_hashmap(512),
            quick_topo(),
            4096,
            2,
            0.05,
            map_gen(90, 512),
        );
        assert!(cell.m.total_ops > 0);
        assert_eq!(cell.stats.total_flushes(), 0);
        let cell = run_gl(prefilled_hashmap(512), 2, 0.05, map_gen(90, 512));
        assert!(cell.m.total_ops > 0);
    }

    #[test]
    fn cx_persistent_cell_flushes_heavily() {
        let rt = PmemRuntime::for_benchmarks(LatencyModel::off());
        let cell = run_cx(
            prefilled_hashmap(512),
            CxConfig::persistent(2, rt),
            2,
            0.05,
            map_gen(0, 512),
        );
        assert!(cell.m.total_ops > 0);
        assert!(
            cell.flushes_per_op() > 1.0,
            "CX-PUC flushes whole replicas: {:?}",
            cell.stats
        );
    }

    #[test]
    fn sharded_cell_attributes_work_to_lanes() {
        let cfg = prep_uc::PrepConfig::new(DurabilityLevel::Durable)
            .with_log_size(4096)
            .with_epsilon(256)
            .with_runtime(PmemRuntime::for_benchmarks(LatencyModel::off()));
        let cell = run_sharded(
            prefilled_hashmap(1024),
            2,
            cfg,
            quick_topo(),
            2,
            0.05,
            map_gen(50, 1024),
            |op| op.key().unwrap_or(0),
        );
        assert!(cell.m.total_ops > 0);
        assert_eq!(cell.shards.len(), 2);
        assert!(cell.total_updates() > 0);
        assert!(
            cell.shards.iter().all(|l| l.updates > 0),
            "uniform keys must load both shards: {:?}",
            cell.shards
        );
        assert!(cell.flushes_per_update() > 0.0, "durable must flush");
        assert!(
            cell.shards.iter().all(|l| l.stats.total_flushes() > 0),
            "each shard's own runtime must see its flushes"
        );
    }

    #[test]
    fn multilog_cell_drives_every_log() {
        let cfg = prep_uc::PrepConfig::new(DurabilityLevel::Buffered)
            .with_log_size(4096)
            .with_epsilon(256)
            .with_runtime(PmemRuntime::for_benchmarks(LatencyModel::off()));
        let cell = run_multilog(
            prefilled_hashmap(1024),
            4,
            |op: &prep_seqds::hashmap::MapOp| op.key(),
            |_, resps| resps.into_iter().next().expect("nonempty fold"),
            cfg,
            2,
            0.05,
            map_gen(0, 1024), // 100% writes: the commuting workload
        );
        assert!(cell.m.total_ops > 0);
        assert_eq!(cell.lane_completed.len(), 4);
        assert_eq!(
            cell.lane_completed.iter().sum::<u64>(),
            cell.m.total_ops,
            "every write lands in exactly one log"
        );
        assert!(
            cell.lane_rounds.iter().all(|&r| r > 0),
            "all four combiners must run: {:?}",
            cell.lane_rounds
        );
    }

    #[test]
    fn soft_cell_flushes_at_most_once_per_op() {
        let rt = PmemRuntime::for_benchmarks(LatencyModel::off());
        let cell = run_soft(64, 512, 0, rt, 2, 0.05);
        assert!(cell.m.total_ops > 0);
        assert!(
            cell.flushes_per_op() <= 1.01,
            "SOFT flushes one line per successful update: {}",
            cell.flushes_per_op()
        );
    }
}
