//! Read-path microbench: single-reader op cost through each replica-lock
//! implementation, plus the raw lock acquire/release cost. Complements the
//! `prep-bench -- readscale` figure (which sweeps threads) with a stable
//! criterion baseline for the uncontended fast path — the case the
//! distributed lock must not regress while it removes shared-line traffic.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use prep_bench::workload::{prefilled_hashmap, MapOpGen};
use prep_nr::{FairnessMode, NodeReplicated, NoopHooks};
use prep_sync::{DistRwLock, ReaderId, RwSpinLock, SeqVersion};
use prep_topology::Topology;

const KEYS: u64 = 8_192;
const BATCH: u64 = 100;

fn nr_reads(c: &mut Criterion, fairness: FairnessMode, name: &str) {
    let mut g = c.benchmark_group("readscale/hashmap-100r");
    g.throughput(Throughput::Elements(BATCH));
    g.sample_size(20);
    g.bench_function(name, |b| {
        let asg = Topology::new(2, 4, 1).assign_workers(1);
        let nr = NodeReplicated::with_hooks_and_fairness(
            prefilled_hashmap(KEYS),
            asg,
            8_192,
            NoopHooks,
            fairness,
        );
        let token = nr.register(0);
        let mut gen = MapOpGen::new(100, KEYS, 0);
        b.iter(|| {
            for _ in 0..BATCH {
                nr.execute(&token, gen.next_op());
            }
        });
    });
    g.finish();
}

fn bench_nr_read_path(c: &mut Criterion) {
    nr_reads(c, FairnessMode::Throughput, "NR-DistRwLock");
    nr_reads(c, FairnessMode::ThroughputCentralized, "NR-RwSpinLock");
    nr_reads(c, FairnessMode::Optimistic, "NR-Optimistic");
    nr_reads(c, FairnessMode::Adaptive, "NR-Adaptive");
}

fn bench_raw_locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("readscale/raw-read-acquire");
    g.throughput(Throughput::Elements(BATCH));
    g.sample_size(20);

    g.bench_function("DistRwLock-slot", |b| {
        let lock = DistRwLock::new(0u64, 4);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..BATCH {
                acc = acc.wrapping_add(*lock.read(ReaderId::Slot(0)));
            }
            acc
        });
    });

    g.bench_function("DistRwLock-shared", |b| {
        let lock = DistRwLock::new(0u64, 4);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..BATCH {
                acc = acc.wrapping_add(*lock.read(ReaderId::Shared));
            }
            acc
        });
    });

    g.bench_function("RwSpinLock", |b| {
        let lock = RwSpinLock::new(0u64);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..BATCH {
                acc = acc.wrapping_add(*lock.read());
            }
            acc
        });
    });

    g.bench_function("SeqVersion-validated-read", |b| {
        let version = SeqVersion::new();
        let data = 7u64;
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..BATCH {
                if let Some(snap) = version.read_begin() {
                    let v = data;
                    if version.validate(snap) {
                        acc = acc.wrapping_add(v);
                    }
                }
            }
            acc
        });
    });

    g.finish();
}

criterion_group!(benches, bench_nr_read_path, bench_raw_locks);
criterion_main!(benches);
