//! Figure 3 family: the ε trade-off — PREP-Buffered per-op cost as the
//! flush boundary step varies (smaller ε → more frequent WBINVDs → slower,
//! but a tighter post-crash loss bound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use prep_bench::workload::{prefilled_hashmap, MapOpGen};
use prep_pmem::{LatencyModel, PmemRuntime};
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PrepConfig, PrepUc};

const KEYS: u64 = 8_192;
const BATCH: u64 = 100;

fn bench_epsilon(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3/epsilon-sweep-0r");
    g.throughput(Throughput::Elements(BATCH));
    g.sample_size(15);

    for eps in [16u64, 64, 256, 1_024] {
        g.bench_with_input(BenchmarkId::new("PREP-Buffered", eps), &eps, |b, &eps| {
            let cfg = PrepConfig::new(DurabilityLevel::Buffered)
                .with_log_size(8_192)
                .with_epsilon(eps)
                .with_runtime(PmemRuntime::for_benchmarks(LatencyModel::optane_scaled(8)));
            let asg = Topology::new(2, 4, 1).assign_workers(1);
            let prep = PrepUc::new(prefilled_hashmap(KEYS), asg, cfg);
            let token = prep.register(0);
            // 0% reads: every op hits the log, maximizing ε sensitivity.
            let mut gen = MapOpGen::new(0, KEYS, 0);
            b.iter(|| {
                for _ in 0..BATCH {
                    prep.execute(&token, gen.next_op());
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_epsilon);
criterion_main!(benches);
