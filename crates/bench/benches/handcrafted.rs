//! Figure 6 family: black-box PUC vs hand-crafted persistence — the PREP
//! hashmap against the SOFT hashtable (which flushes exactly one line per
//! update and nothing on reads).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use prep_bench::workload::{prefilled_hashmap, MapOpGen};
use prep_pmem::{LatencyModel, PmemRuntime};
use prep_seqds::hashmap::MapOp;
use prep_soft::SoftHashMap;
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PrepConfig, PrepUc};

const KEYS: u64 = 8_192;
const BATCH: u64 = 100;

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6/hashmap-50r");
    g.throughput(Throughput::Elements(BATCH));
    g.sample_size(15);

    g.bench_function("PREP-Buffered", |b| {
        let cfg = PrepConfig::new(DurabilityLevel::Buffered)
            .with_log_size(8_192)
            .with_epsilon(1_024)
            .with_runtime(PmemRuntime::for_benchmarks(LatencyModel::optane_scaled(8)));
        let asg = Topology::new(2, 4, 1).assign_workers(1);
        let prep = PrepUc::new(prefilled_hashmap(KEYS), asg, cfg);
        let token = prep.register(0);
        let mut gen = MapOpGen::new(50, KEYS, 0);
        b.iter(|| {
            for _ in 0..BATCH {
                prep.execute(&token, gen.next_op());
            }
        });
    });

    for (buckets, name) in [(64usize, "SOFT-small"), (512, "SOFT-large")] {
        g.bench_function(name, |b| {
            let rt = PmemRuntime::for_benchmarks(LatencyModel::optane_scaled(8));
            let soft = SoftHashMap::new(buckets, rt);
            for k in (0..KEYS).step_by(2) {
                soft.insert(k, k);
            }
            let mut gen = MapOpGen::new(50, KEYS, 0);
            b.iter(|| {
                for _ in 0..BATCH {
                    match gen.next_op() {
                        MapOp::Get { key } | MapOp::Contains { key } => {
                            soft.contains(key);
                        }
                        MapOp::Insert { key, value } => {
                            soft.insert(key, value);
                        }
                        MapOp::Remove { key } => {
                            soft.remove(key);
                        }
                        MapOp::Len => {
                            soft.len();
                        }
                    }
                }
            });
        });
    }

    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
