//! Ablation benches for DESIGN.md's called-out design choices:
//! replica write-back strategy (WBINVD vs range flush, small vs large
//! structure) and durable-log fencing (per batch vs per entry).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use prep_bench::workload::{prefilled_hashmap, prefilled_stack, MapOpGen, StackPairGen};
use prep_pmem::{LatencyModel, PmemRuntime};
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, FlushStrategy, PrepConfig, PrepUc};

const KEYS: u64 = 8_192;
const BATCH: u64 = 100;

fn rt() -> std::sync::Arc<PmemRuntime> {
    PmemRuntime::for_benchmarks(LatencyModel::optane_scaled(8))
}

fn bench_flush_strategy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/flush-strategy");
    g.throughput(Throughput::Elements(BATCH));
    g.sample_size(15);

    for (strategy, sname) in [
        (FlushStrategy::Wbinvd, "wbinvd"),
        (FlushStrategy::RangeFlush, "range-flush"),
    ] {
        // Tiny structure: range flush should win.
        g.bench_function(format!("stack-500/{sname}"), |b| {
            let cfg = PrepConfig::new(DurabilityLevel::Buffered)
                .with_log_size(8_192)
                .with_epsilon(256)
                .with_flush_strategy(strategy)
                .with_runtime(rt());
            let asg = Topology::new(2, 4, 1).assign_workers(1);
            let prep = PrepUc::new(prefilled_stack(500), asg, cfg);
            let token = prep.register(0);
            let mut gen = StackPairGen::new(0);
            b.iter(|| {
                for _ in 0..BATCH {
                    prep.execute(&token, gen.next_op());
                }
            });
        });

        // Large structure: WBINVD's flat cost should win.
        g.bench_function(format!("hashmap-8k/{sname}"), |b| {
            let cfg = PrepConfig::new(DurabilityLevel::Buffered)
                .with_log_size(8_192)
                .with_epsilon(256)
                .with_flush_strategy(strategy)
                .with_runtime(rt());
            let asg = Topology::new(2, 4, 1).assign_workers(1);
            let prep = PrepUc::new(prefilled_hashmap(KEYS), asg, cfg);
            let token = prep.register(0);
            let mut gen = MapOpGen::new(0, KEYS, 0);
            b.iter(|| {
                for _ in 0..BATCH {
                    prep.execute(&token, gen.next_op());
                }
            });
        });
    }
    g.finish();
}

fn bench_fence_granularity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/fence-granularity");
    g.throughput(Throughput::Elements(BATCH));
    g.sample_size(15);

    for (per_entry, name) in [(false, "per-batch"), (true, "per-entry")] {
        g.bench_function(name, |b| {
            let mut cfg = PrepConfig::new(DurabilityLevel::Durable)
                .with_log_size(8_192)
                .with_epsilon(1_024)
                .with_runtime(rt());
            if per_entry {
                cfg = cfg.with_fence_per_entry();
            }
            let asg = Topology::new(2, 4, 1).assign_workers(1);
            let prep = PrepUc::new(prefilled_hashmap(KEYS), asg, cfg);
            let token = prep.register(0);
            let mut gen = MapOpGen::new(0, KEYS, 0);
            b.iter(|| {
                for _ in 0..BATCH {
                    prep.execute(&token, gen.next_op());
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_flush_strategy, bench_fence_granularity);
criterion_main!(benches);
