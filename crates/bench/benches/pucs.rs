//! Figure 2/4/5 family: persistent UCs — PREP-Buffered vs PREP-Durable vs
//! CX-PUC, per-op cost on the paper's three structure shapes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use prep_bench::workload::{
    prefilled_hashmap, prefilled_pqueue, prefilled_stack, MapOpGen, PqPairGen, StackPairGen,
};
use prep_cx::{CxConfig, CxUc};
use prep_pmem::{LatencyModel, PmemRuntime};
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, PrepConfig, PrepUc};

const KEYS: u64 = 8_192;
const BATCH: u64 = 100;

fn cfg(level: DurabilityLevel) -> PrepConfig {
    PrepConfig::new(level)
        .with_log_size(8_192)
        .with_epsilon(1_024)
        .with_runtime(PmemRuntime::for_benchmarks(LatencyModel::optane_scaled(8)))
}

fn bench_hashmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/hashmap-50r");
    g.throughput(Throughput::Elements(BATCH));
    g.sample_size(15);

    for (level, name) in [
        (DurabilityLevel::Buffered, "PREP-Buffered"),
        (DurabilityLevel::Durable, "PREP-Durable"),
    ] {
        g.bench_function(name, |b| {
            let asg = Topology::new(2, 4, 1).assign_workers(1);
            let prep = PrepUc::new(prefilled_hashmap(KEYS), asg, cfg(level));
            let token = prep.register(0);
            let mut gen = MapOpGen::new(50, KEYS, 0);
            b.iter(|| {
                for _ in 0..BATCH {
                    prep.execute(&token, gen.next_op());
                }
            });
        });
    }

    g.bench_function("CX-PUC", |b| {
        let rt = PmemRuntime::for_benchmarks(LatencyModel::optane_scaled(8));
        let cx = CxUc::new(prefilled_hashmap(KEYS), CxConfig::persistent(1, rt));
        let mut gen = MapOpGen::new(50, KEYS, 0);
        b.iter(|| {
            for _ in 0..BATCH {
                cx.execute(gen.next_op());
            }
        });
    });

    g.finish();
}

fn bench_pqueue(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4/pqueue-pairs");
    g.throughput(Throughput::Elements(BATCH));
    g.sample_size(15);

    for (level, name) in [
        (DurabilityLevel::Buffered, "PREP-Buffered"),
        (DurabilityLevel::Durable, "PREP-Durable"),
    ] {
        g.bench_function(name, |b| {
            let asg = Topology::new(2, 4, 1).assign_workers(1);
            let prep = PrepUc::new(prefilled_pqueue(2_000), asg, cfg(level));
            let token = prep.register(0);
            let mut gen = PqPairGen::new(0);
            b.iter(|| {
                for _ in 0..BATCH {
                    prep.execute(&token, gen.next_op());
                }
            });
        });
    }
    g.finish();
}

fn bench_stack(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5/stack-pairs");
    g.throughput(Throughput::Elements(BATCH));
    g.sample_size(15);

    for (level, name) in [
        (DurabilityLevel::Buffered, "PREP-Buffered"),
        (DurabilityLevel::Durable, "PREP-Durable"),
    ] {
        g.bench_function(name, |b| {
            let asg = Topology::new(2, 4, 1).assign_workers(1);
            let prep = PrepUc::new(prefilled_stack(500), asg, cfg(level));
            let token = prep.register(0);
            let mut gen = StackPairGen::new(0);
            b.iter(|| {
                for _ in 0..BATCH {
                    prep.execute(&token, gen.next_op());
                }
            });
        });
    }

    g.bench_function("CX-PUC", |b| {
        let rt = PmemRuntime::for_benchmarks(LatencyModel::optane_scaled(8));
        let cx = CxUc::new(prefilled_stack(500), CxConfig::persistent(1, rt));
        let mut gen = StackPairGen::new(0);
        b.iter(|| {
            for _ in 0..BATCH {
                cx.execute(gen.next_op());
            }
        });
    });

    g.finish();
}

criterion_group!(benches, bench_hashmap, bench_pqueue, bench_stack);
criterion_main!(benches);
