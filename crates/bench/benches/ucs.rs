//! Figure 1 family: volatile universal constructions — PREP-V (node
//! replication) vs the global-lock UC, single-worker op cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use prep_bench::workload::{prefilled_hashmap, MapOpGen};
use prep_nr::{GlobalLockUc, NodeReplicated};
use prep_topology::Topology;

const KEYS: u64 = 8_192;
const BATCH: u64 = 100;

fn bench_volatile_ucs(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1/hashmap-90r");
    g.throughput(Throughput::Elements(BATCH));
    g.sample_size(20);

    g.bench_function("PREP-V", |b| {
        let asg = Topology::new(2, 4, 1).assign_workers(1);
        let nr = NodeReplicated::new(prefilled_hashmap(KEYS), asg, 8_192);
        let token = nr.register(0);
        let mut gen = MapOpGen::new(90, KEYS, 0);
        b.iter(|| {
            for _ in 0..BATCH {
                nr.execute(&token, gen.next_op());
            }
        });
    });

    g.bench_function("GlobalLock", |b| {
        let gl = GlobalLockUc::new(prefilled_hashmap(KEYS));
        let mut gen = MapOpGen::new(90, KEYS, 0);
        b.iter(|| {
            for _ in 0..BATCH {
                gl.execute(gen.next_op());
            }
        });
    });

    g.finish();
}

criterion_group!(benches, bench_volatile_ucs);
criterion_main!(benches);
