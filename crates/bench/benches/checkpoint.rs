//! Incremental-checkpointing micro-bench: end-to-end update throughput on a
//! large prefilled hashmap under each replica write-back strategy, with a
//! small ε so checkpoints dominate the persistence thread's work. The
//! `DirtyLines` series pays one CLFLUSHOPT per distinct dirty line per
//! checkpoint instead of writing the whole replica back; the narrow
//! working-set and Zipfian cases are where that gap is widest.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use prep_bench::workload::{prefilled_hashmap, MapOpGen, ZipfianGen};
use prep_pmem::{LatencyModel, PmemRuntime};
use prep_seqds::hashmap::MapOp;
use prep_topology::Topology;
use prep_uc::{DurabilityLevel, FlushStrategy, PrepConfig, PrepUc};

const KEYS: u64 = 100_000;
const BATCH: u64 = 100;

fn prep(strategy: FlushStrategy) -> PrepUc<prep_seqds::hashmap::HashMap> {
    let cfg = PrepConfig::new(DurabilityLevel::Buffered)
        .with_log_size(8_192)
        .with_epsilon(64)
        .with_flush_strategy(strategy)
        .with_runtime(PmemRuntime::for_benchmarks(LatencyModel::optane_scaled(8)));
    let asg = Topology::new(2, 4, 1).assign_workers(1);
    PrepUc::new(prefilled_hashmap(KEYS), asg, cfg)
}

fn bench_checkpoint_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint/flush-strategy");
    g.throughput(Throughput::Elements(BATCH));
    g.sample_size(15);

    for (strategy, sname) in [
        (FlushStrategy::Wbinvd, "wbinvd"),
        (FlushStrategy::RangeFlush, "range-flush"),
        (FlushStrategy::DirtyLines, "dirty-lines"),
    ] {
        // Updates over the full keyspace: dirty set per ε-interval is still
        // tiny next to the 100k-key structure.
        g.bench_function(format!("hashmap-100k-uniform/{sname}"), |b| {
            let prep = prep(strategy);
            let token = prep.register(0);
            let mut gen = MapOpGen::new(0, KEYS, 0);
            b.iter(|| {
                for _ in 0..BATCH {
                    prep.execute(&token, gen.next_op());
                }
            });
        });

        // Zipfian updates: hot lines dedupe inside a checkpoint interval.
        g.bench_function(format!("hashmap-100k-zipf/{sname}"), |b| {
            let prep = prep(strategy);
            let token = prep.register(0);
            let mut zipf = ZipfianGen::new(KEYS, 0.99, 0);
            let mut insert_next = true;
            b.iter(|| {
                for _ in 0..BATCH {
                    let key = zipf.next_key();
                    let op = if insert_next {
                        MapOp::Insert {
                            key,
                            value: key ^ 0xABCD,
                        }
                    } else {
                        MapOp::Remove { key }
                    };
                    insert_next = !insert_next;
                    prep.execute(&token, op);
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_checkpoint_strategies);
criterion_main!(benches);
