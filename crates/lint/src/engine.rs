//! The lint engine: file discovery, model building, rule dispatch, and
//! `lint:allow` suppression.
//!
//! Suppression is deliberately narrow: only a
//! `// lint:allow(<rule>[, <rule>…]): <reason>` comment attached to one
//! of the lines a finding spans silences it, and the reason is
//! mandatory — a reason-less allow suppresses nothing *and* earns its
//! own [`rules::LINT_ALLOW_REASON`] finding, so the escape hatch cannot
//! rot into an unexplained mute button.

use std::fs;
use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::diag::{rules, Diagnostic};
use crate::model::FileModel;
use crate::rules as rule_mods;

/// One parsed `lint:allow` comment.
#[derive(Debug)]
struct Allow {
    /// Line the comment governs (attachment semantics: trailing comments
    /// govern their own line; comment-only lines govern the next code
    /// line).
    anchor_line: u32,
    /// Physical position of the comment itself, for diagnostics.
    line: u32,
    col: u32,
    /// Rule ids named inside the parentheses.
    rules: Vec<String>,
    /// Whether a non-empty reason follows the closing `):`.
    has_reason: bool,
    /// The reason text itself (recorded on suppressed findings).
    reason: String,
}

/// Extracts every `lint:allow(...)` from a file's comments.
fn collect_allows(model: &FileModel<'_>) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &model.comments {
        // A directive must *start* the comment — prose that merely
        // mentions the syntax (like this crate's docs) is not a
        // directive.
        let Some(after) = c.text.strip_prefix("lint:allow(") else {
            continue;
        };
        let Some(close) = after.find(')') else {
            // Malformed — treat as reason-less so it gets flagged rather
            // than silently ignored.
            out.push(Allow {
                anchor_line: c.anchor_line,
                line: c.line,
                col: c.col,
                rules: vec![],
                has_reason: false,
                reason: String::new(),
            });
            continue;
        };
        let names: Vec<String> = after[..close]
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let rest = after[close + 1..].trim_start();
        let reason = rest
            .strip_prefix(':')
            .map(|r| r.trim().to_string())
            .unwrap_or_default();
        let has_reason = !reason.is_empty();
        out.push(Allow {
            anchor_line: c.anchor_line,
            line: c.line,
            col: c.col,
            rules: names,
            has_reason,
            reason,
        });
    }
    out
}

/// Lints already-loaded sources, returning **every** finding — a
/// suppressed one carries the allow's reason in
/// [`Diagnostic::suppressed_by`] instead of being dropped. This feeds
/// `--json` (the CI baseline wants to see suppressions) and the tests.
pub fn lint_files_all(files: &[(String, String)], cfg: &Config) -> Vec<Diagnostic> {
    let models: Vec<(String, FileModel<'_>)> = files
        .iter()
        .filter(|(p, _)| !cfg.exclude.iter().any(|e| p.contains(e.as_str())))
        .map(|(p, src)| (p.clone(), FileModel::build(src)))
        .collect();

    let mut diags = Vec::new();
    for (path, model) in &models {
        diags.extend(rule_mods::run_file_rules(path, model, cfg));
    }
    rule_mods::unsafety::run_crates(&models, cfg, &mut diags);
    rule_mods::run_workspace_rules(&models, cfg, &mut diags);

    // Suppression pass: mark, never drop.
    for (path, model) in &models {
        let allows = collect_allows(model);
        for a in &allows {
            if !a.has_reason {
                diags.push(
                    Diagnostic::new(
                        path,
                        a.line,
                        a.col,
                        rules::LINT_ALLOW_REASON,
                        "lint:allow without a reason — suppression is refused".to_string(),
                    )
                    .suggest("write // lint:allow(<rule>): <why this finding is acceptable>"),
                );
            }
        }
        for d in diags.iter_mut().filter(|d| &d.path == path) {
            if let Some(a) = allows.iter().find(|a| {
                a.has_reason
                    && a.rules.iter().any(|r| r == d.rule)
                    && a.anchor_line >= d.line
                    && a.anchor_line <= d.end_line
            }) {
                d.suppressed_by = Some(a.reason.clone());
            }
        }
    }

    diags.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    diags
}

/// Lints already-loaded sources. `files` holds `(workspace-relative
/// path, contents)` pairs; paths use forward slashes. This is the
/// test-facing entry point — no filesystem involved. Suppressed
/// findings are dropped; use [`lint_files_all`] to see them.
pub fn lint_files(files: &[(String, String)], cfg: &Config) -> Vec<Diagnostic> {
    lint_files_all(files, cfg)
        .into_iter()
        .filter(|d| d.suppressed_by.is_none())
        .collect()
}

/// Recursively collects `.rs` files under an include directory.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative forward-slash form of `path` under `root`.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn load_workspace(root: &Path, cfg: &Config) -> Result<Vec<(String, String)>, String> {
    let mut paths = Vec::new();
    for inc in &cfg.include {
        let dir = root.join(inc);
        if dir.is_dir() {
            collect_rs(&dir, &mut paths)?;
        }
    }
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for p in paths {
        let src = fs::read_to_string(&p).map_err(|e| format!("reading {}: {e}", p.display()))?;
        files.push((rel(root, &p), src));
    }
    Ok(files)
}

/// Lints the workspace rooted at `root`: walks `cfg.include`, loads each
/// `.rs` file, and runs every rule.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<Vec<Diagnostic>, String> {
    Ok(lint_files(&load_workspace(root, cfg)?, cfg))
}

/// [`lint_workspace`], but suppressed findings are kept and marked (see
/// [`lint_files_all`]).
pub fn lint_workspace_all(root: &Path, cfg: &Config) -> Result<Vec<Diagnostic>, String> {
    Ok(lint_files_all(&load_workspace(root, cfg)?, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_files(&[(path.to_string(), src.to_string())], &Config::default())
    }

    #[test]
    fn reasoned_allow_suppresses_named_rule_only() {
        let src = "fn f(x: &AtomicUsize) {\n    // lint:allow(atomic-seqcst): SB pair with writer scan\n    x.load(Ordering::SeqCst);\n}\n";
        let d = one("crates/sync/src/x.rs", src);
        assert!(!d.iter().any(|d| d.rule == rules::ATOMIC_SEQCST), "{d:?}");
        // The allow names atomic-seqcst, not atomic-ordering, so a
        // different rule at the same site would still fire — here there
        // is none, and no reason-less finding either.
        assert!(!d.iter().any(|d| d.rule == rules::LINT_ALLOW_REASON));
    }

    #[test]
    fn reasonless_allow_is_rejected_and_does_not_suppress() {
        let src = "fn f(x: &AtomicUsize) {\n    // lint:allow(atomic-seqcst)\n    x.load(Ordering::SeqCst);\n}\n";
        let d = one("crates/sync/src/x.rs", src);
        assert!(d.iter().any(|d| d.rule == rules::ATOMIC_SEQCST), "{d:?}");
        assert!(d.iter().any(|d| d.rule == rules::LINT_ALLOW_REASON));
    }

    #[test]
    fn trailing_allow_governs_its_own_line() {
        let src = "fn f(x: &AtomicUsize) {\n    x.load(Ordering::SeqCst); // lint:allow(atomic-seqcst): measured, load-bearing\n}\n";
        let d = one("crates/sync/src/x.rs", src);
        assert!(!d.iter().any(|d| d.rule == rules::ATOMIC_SEQCST), "{d:?}");
    }

    #[test]
    fn excluded_paths_are_skipped() {
        let src = "fn f(x: &AtomicUsize) { x.load(Ordering::SeqCst); }\n";
        let d = one("crates/lint/tests/fixtures/x.rs", src);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn output_is_sorted() {
        let src = "fn g(x: &AtomicUsize) {\n    x.store(1, Ordering::Release);\n    x.load(Ordering::Acquire);\n}\n";
        let d = one("crates/sync/src/x.rs", src);
        let lines: Vec<u32> = d.iter().map(|d| d.line).collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
    }
}
