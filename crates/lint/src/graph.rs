//! Workspace call graph.
//!
//! Builds a whole-workspace view over the per-file [`FileModel`]s: every
//! `fn` becomes a node (with its owning `impl` type and trait recorded),
//! and every call site resolves to a set of candidate callees. Resolution
//! is deliberately *conservative over-approximation*, in this order:
//!
//! 1. method calls whose receiver names `self`, a typed parameter, or a
//!    struct field resolve by the receiver's declared type;
//! 2. receivers typed by a trait (`Box<dyn ReplicaLock<T>>`) fan out to
//!    every implementing type's method plus the trait's default methods;
//! 3. `Type::assoc(…)` paths resolve through the impl registry;
//! 4. anything still unresolved falls back to *every* same-name method in
//!    the workspace (never silently to nothing).
//!
//! The graph answers two questions for [`crate::flow`]: "which functions
//! can this call reach?" (summaries propagate bottom-up over the SCC
//! condensation, so recursion terminates) and "what type is this
//! receiver?" (lock classes and ranks key off it).

use std::collections::{BTreeMap, BTreeSet};

use crate::model::{CallSite, FileModel};

/// One function node.
#[derive(Debug)]
pub struct FnNode {
    /// Index of the owning file in the input slice.
    pub file: usize,
    /// Index into that file's `fns`.
    pub fx: usize,
    pub name: String,
    /// Implementing type when the fn sits inside an `impl` block.
    pub owner_ty: Option<String>,
    /// Trait the impl block implements, or the defining trait for a
    /// default method.
    pub owner_trait: Option<String>,
}

/// One outgoing call edge of a function.
#[derive(Debug, Clone)]
pub struct CallEdge {
    /// Index into the owning file's `calls`.
    pub call: usize,
    /// Candidate callees (indices into [`Graph::fns`]); empty means the
    /// callee is external to the analyzed set.
    pub targets: Vec<usize>,
}

/// Receiver resolution result (see [`Graph::resolve_recv`]).
#[derive(Debug, Default)]
pub struct RecvInfo {
    /// Field hits `(file, struct, field, type text)` when the receiver
    /// names a struct field.
    pub fields: Vec<(usize, String, String, String)>,
    /// Candidate head type names the receiver may have.
    pub tys: Vec<String>,
    /// The receiver named something with a declared type (`self`, a typed
    /// parameter, a field) — even if no candidate survived. Distinguishes
    /// "typed but not a lock" from "nobody knows".
    pub resolved: bool,
}

/// The workspace call graph over a set of file models.
pub struct Graph<'m, 'a> {
    pub files: &'m [(String, FileModel<'a>)],
    pub fns: Vec<FnNode>,
    /// Outgoing calls per fn, in source (byte) order.
    pub calls: Vec<Vec<CallEdge>>,
    /// trait name → implementing type names.
    pub trait_impls: BTreeMap<String, Vec<String>>,
    by_owner: BTreeMap<(String, String), Vec<usize>>,
    by_name_methods: BTreeMap<String, Vec<usize>>,
    by_name_free: BTreeMap<String, Vec<usize>>,
    trait_defaults: BTreeMap<(String, String), Vec<usize>>,
    type_names: BTreeSet<String>,
    trait_names: BTreeSet<String>,
    /// struct name → (file, field, ty) for workspace-wide field lookup.
    fields_by_name: BTreeMap<String, Vec<(usize, String, String)>>,
}

impl<'m, 'a> Graph<'m, 'a> {
    pub fn build(files: &'m [(String, FileModel<'a>)]) -> Self {
        let mut g = Graph {
            files,
            fns: Vec::new(),
            calls: Vec::new(),
            trait_impls: BTreeMap::new(),
            by_owner: BTreeMap::new(),
            by_name_methods: BTreeMap::new(),
            by_name_free: BTreeMap::new(),
            trait_defaults: BTreeMap::new(),
            type_names: BTreeSet::new(),
            trait_names: BTreeSet::new(),
            fields_by_name: BTreeMap::new(),
        };
        for (fi, (_, m)) in files.iter().enumerate() {
            for s in &m.structs {
                g.type_names.insert(s.name.clone());
                for f in &s.fields {
                    g.fields_by_name.entry(f.name.clone()).or_default().push((
                        fi,
                        s.name.clone(),
                        f.ty.clone(),
                    ));
                }
            }
            for t in &m.traits {
                g.trait_names.insert(t.name.clone());
            }
            for i in &m.impls {
                g.type_names.insert(i.ty.clone());
                if let Some(tr) = &i.trait_name {
                    let v = g.trait_impls.entry(tr.clone()).or_default();
                    if !v.contains(&i.ty) {
                        v.push(i.ty.clone());
                    }
                }
            }
        }
        for (fi, (_, m)) in files.iter().enumerate() {
            for (fx, f) in m.fns.iter().enumerate() {
                let id = g.fns.len();
                let owner = m.impl_at(f.byte);
                let (owner_ty, owner_trait) = match owner {
                    Some(i) => (Some(i.ty.clone()), i.trait_name.clone()),
                    None => (None, m.trait_at(f.byte).map(|t| t.name.clone())),
                };
                if f.has_self || owner_ty.is_some() {
                    g.by_name_methods
                        .entry(f.name.clone())
                        .or_default()
                        .push(id);
                } else if owner_trait.is_none() {
                    g.by_name_free.entry(f.name.clone()).or_default().push(id);
                }
                if let Some(ty) = &owner_ty {
                    g.by_owner
                        .entry((ty.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
                if owner_ty.is_none() {
                    if let Some(tr) = &owner_trait {
                        g.trait_defaults
                            .entry((tr.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                    }
                }
                g.fns.push(FnNode {
                    file: fi,
                    fx,
                    name: f.name.clone(),
                    owner_ty,
                    owner_trait,
                });
            }
        }
        g.calls = vec![Vec::new(); g.fns.len()];
        let ids: Vec<usize> = (0..g.fns.len()).collect();
        for &id in &ids {
            let node = &g.fns[id];
            let (fi, fx) = (node.file, node.fx);
            let m = &files[fi].1;
            let body = m.fns[fx].body.clone();
            let mut edges = Vec::new();
            for (ci, c) in m.calls.iter().enumerate() {
                if !body.contains(&c.byte) {
                    continue;
                }
                // Attribute to the innermost containing fn only.
                let innermost = m
                    .fns
                    .iter()
                    .enumerate()
                    .filter(|(_, h)| h.body.contains(&c.byte))
                    .min_by_key(|(_, h)| h.body.len())
                    .map(|(j, _)| j);
                if innermost != Some(fx) {
                    continue;
                }
                let targets = g.resolve_call(fi, Some(id), c);
                edges.push(CallEdge { call: ci, targets });
            }
            g.calls[id] = edges;
        }
        g
    }

    /// Graph node id of file `fi`'s `fx`-th fn.
    pub fn fn_id(&self, fi: usize, fx: usize) -> Option<usize> {
        self.fns.iter().position(|n| n.file == fi && n.fx == fx)
    }

    /// Head type-name candidates mentioned in a type's source text:
    /// identifiers that name a workspace struct/impl target/trait, or
    /// look like a lock type. `Box < dyn ReplicaLock < T > >` →
    /// `["ReplicaLock"]`.
    pub fn type_candidates(&self, ty: &str) -> Vec<String> {
        let mut out = Vec::new();
        for w in ty.split_whitespace() {
            if !w
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
            {
                continue;
            }
            if (self.type_names.contains(w) || self.trait_names.contains(w) || w.ends_with("Lock"))
                && !out.contains(&w.to_string())
            {
                out.push(w.to_string());
            }
        }
        out
    }

    /// Whether `name` is a workspace trait.
    pub fn is_trait(&self, name: &str) -> bool {
        self.trait_names.contains(name)
    }

    /// Resolves a method call's receiver: field hits and candidate type
    /// names. `enclosing` is the graph id of the fn containing the call.
    pub fn resolve_recv(&self, fi: usize, enclosing: Option<usize>, call: &CallSite) -> RecvInfo {
        let mut info = RecvInfo::default();
        let Some(recv) = call.recv.as_deref() else {
            return info;
        };
        if recv == "self" {
            if let Some(e) = enclosing {
                if let Some(ty) = &self.fns[e].owner_ty {
                    info.tys.push(ty.clone());
                    info.resolved = true;
                } else if let Some(tr) = &self.fns[e].owner_trait {
                    info.tys.push(tr.clone());
                    info.resolved = true;
                }
            }
            return info;
        }
        // A typed parameter of the enclosing fn shadows fields.
        if let Some(e) = enclosing {
            let node = &self.fns[e];
            let f = &self.files[node.file].1.fns[node.fx];
            if let Some(p) = f.params.iter().find(|p| p.name == recv) {
                info.tys = self.type_candidates(&p.ty);
                info.resolved = true;
                return info;
            }
        }
        // Struct fields: same file first, then workspace-wide.
        let m = &self.files[fi].1;
        for s in &m.structs {
            for fld in &s.fields {
                if fld.name == recv {
                    info.fields
                        .push((fi, s.name.clone(), fld.name.clone(), fld.ty.clone()));
                }
            }
        }
        if info.fields.is_empty() {
            if let Some(hits) = self.fields_by_name.get(recv) {
                for (hf, hs, hty) in hits {
                    info.fields
                        .push((*hf, hs.clone(), recv.to_string(), hty.clone()));
                }
            }
        }
        for (_, _, _, ty) in &info.fields {
            for c in self.type_candidates(ty) {
                if !info.tys.contains(&c) {
                    info.tys.push(c);
                }
            }
        }
        info.resolved = !info.fields.is_empty();
        info
    }

    /// Candidate callee fns a type name's method resolves to (trait
    /// receivers fan out over every impl).
    fn owned_methods(&self, ty: &str, method: &str, out: &mut Vec<usize>) {
        if let Some(v) = self.by_owner.get(&(ty.to_string(), method.to_string())) {
            out.extend(v.iter().copied());
        }
        if self.trait_names.contains(ty) {
            if let Some(impls) = self.trait_impls.get(ty) {
                for imp in impls {
                    if let Some(v) = self.by_owner.get(&(imp.clone(), method.to_string())) {
                        out.extend(v.iter().copied());
                    }
                }
            }
            if let Some(v) = self
                .trait_defaults
                .get(&(ty.to_string(), method.to_string()))
            {
                out.extend(v.iter().copied());
            }
        }
    }

    /// Resolves a call site to candidate callees.
    fn resolve_call(&self, fi: usize, enclosing: Option<usize>, call: &CallSite) -> Vec<usize> {
        let m = &self.files[fi].1;
        let mut out = Vec::new();
        if call.is_method {
            let info = self.resolve_recv(fi, enclosing, call);
            for ty in &info.tys {
                self.owned_methods(ty, &call.method, &mut out);
            }
            if out.is_empty() && !info.resolved {
                // Conservative fallback: every same-name method — but
                // only for receivers nobody could type. A receiver whose
                // declared type simply is not a workspace type (an
                // `AtomicU64` field, a `TcpStream` param) is an external
                // call, and fanning it out to every same-name method
                // would thread call edges through unrelated crates.
                if let Some(v) = self.by_name_methods.get(&call.method) {
                    out.extend(v.iter().copied());
                }
            }
        } else {
            // `Type::assoc(…)` paths resolve through the impl registry.
            let mut qualified = false;
            if let Some(k) = m.sig_at_byte(call.byte) {
                if k >= 2 && m.txt(k - 1) == ":" && m.txt(k - 2) == ":" {
                    qualified = true;
                    if k >= 3 {
                        let head = m.txt(k - 3);
                        self.owned_methods(head, &call.method, &mut out);
                    }
                }
            }
            if !qualified {
                if let Some(v) = self.by_name_free.get(&call.method) {
                    out.extend(v.iter().copied());
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Strongly connected components of the call graph, in reverse
    /// topological order (callees before callers), via iterative Tarjan.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let n = self.fns.len();
        let succ: Vec<Vec<usize>> = (0..n)
            .map(|v| {
                let mut s: Vec<usize> = self.calls[v]
                    .iter()
                    .flat_map(|e| e.targets.iter().copied())
                    .collect();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next = 0usize;
        let mut out: Vec<Vec<usize>> = Vec::new();
        // Explicit DFS frames: (node, next-successor position).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            frames.push((start, 0));
            index[start] = next;
            low[start] = next;
            next += 1;
            stack.push(start);
            on_stack[start] = true;
            while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
                if *pos < succ[v].len() {
                    let w = succ[v][*pos];
                    *pos += 1;
                    if index[w] == usize::MAX {
                        index[w] = next;
                        low[w] = next;
                        next += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(p, _)) = frames.last() {
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        out.push(comp);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models(srcs: &[(&str, &str)]) -> Vec<(String, FileModel<'static>)> {
        srcs.iter()
            .map(|(p, s)| {
                let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
                (p.to_string(), FileModel::build(leaked))
            })
            .collect()
    }

    #[test]
    fn resolves_self_field_and_trait_calls() {
        let files = models(&[
            (
                "crates/sync/src/lock.rs",
                "pub struct TicketLock { next: u64 }\n\
                 pub trait ReplicaLock<T> { fn with_write(&self); }\n\
                 pub struct DistRwLock<T> { x: T }\n\
                 impl<T> ReplicaLock<T> for DistRwLock<T> {\n\
                     fn with_write(&self) { self.write(); }\n\
                 }\n\
                 impl<T> DistRwLock<T> { pub fn write(&self) {} }\n\
                 impl TicketLock { pub fn lock(&self) {} }\n",
            ),
            (
                "crates/nr/src/uc.rs",
                "pub struct Uc { gate: TicketLock, lock: Box<dyn ReplicaLock<u64>> }\n\
                 impl Uc {\n\
                     pub fn go(&self) { self.gate.lock(); self.lock.with_write(); }\n\
                 }\n",
            ),
        ]);
        let g = Graph::build(&files);
        let go = g.fns.iter().position(|f| f.name == "go").unwrap();
        assert_eq!(g.fns[go].owner_ty.as_deref(), Some("Uc"));
        let edges = &g.calls[go];
        assert_eq!(edges.len(), 2);
        // gate.lock() → TicketLock::lock.
        let lock_tgts = &edges[0].targets;
        assert_eq!(lock_tgts.len(), 1);
        assert_eq!(g.fns[lock_tgts[0]].owner_ty.as_deref(), Some("TicketLock"));
        // lock.with_write() → the trait impl on DistRwLock.
        let ww_tgts = &edges[1].targets;
        assert_eq!(ww_tgts.len(), 1);
        assert_eq!(g.fns[ww_tgts[0]].owner_ty.as_deref(), Some("DistRwLock"));
        // …whose body's self.write() resolves within the impl.
        let ww = ww_tgts[0];
        let w_tgts = &g.calls[ww][0].targets;
        assert_eq!(w_tgts.len(), 1);
        assert_eq!(g.fns[w_tgts[0]].name, "write");
    }

    #[test]
    fn sccs_put_callees_first_and_group_cycles() {
        let files = models(&[(
            "crates/core/src/x.rs",
            "fn a() { b(); }\nfn b() { c(); a(); }\nfn c() {}\n",
        )]);
        let g = Graph::build(&files);
        let sccs = g.sccs();
        let name_of = |id: usize| g.fns[id].name.clone();
        let pos = |n: &str| {
            sccs.iter()
                .position(|c| c.iter().any(|&id| name_of(id) == n))
                .unwrap()
        };
        // c is a leaf; a and b form a cycle and share a component.
        assert!(pos("c") < pos("a"));
        assert_eq!(pos("a"), pos("b"));
        let ab = &sccs[pos("a")];
        assert_eq!(ab.len(), 2);
    }
}
