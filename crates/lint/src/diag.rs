//! Diagnostics: machine-readable findings with positions, rule ids,
//! messages, and suggestions.

use std::fmt;

/// Stable rule identifiers (the strings `// lint:allow(<rule>)` names).
pub mod rules {
    /// Atomic access with an explicit `Ordering` but no `// ord:`
    /// justification.
    pub const ATOMIC_ORDERING: &str = "atomic-ordering";
    /// `SeqCst` without justification — ordering-by-default smell.
    pub const ATOMIC_SEQCST: &str = "atomic-seqcst";
    /// `Relaxed` on a pointer-publishing store.
    pub const ATOMIC_RELAXED_PUBLISH: &str = "atomic-relaxed-publish";
    /// `fence`/`compiler_fence` call without a `// ord:` justification.
    pub const ATOMIC_FENCE_ORDERING: &str = "atomic-fence-ordering";
    /// Unpadded atomic field in a `Sync`-shared struct.
    pub const CACHELINE_PADDING: &str = "cacheline-padding";
    /// Persist primitive called without a psan trace hook in scope.
    pub const PERSIST_HOOK: &str = "persist-hook";
    /// `unsafe` site without an attached `// SAFETY:` comment.
    pub const UNSAFE_MISSING_SAFETY: &str = "unsafe-missing-safety";
    /// Unsafe-free crate without `#![forbid(unsafe_code)]`.
    pub const UNSAFE_MISSING_FORBID: &str = "unsafe-missing-forbid";
    /// Unsafe-using crate without `#![deny(unsafe_op_in_unsafe_fn)]`.
    pub const UNSAFE_MISSING_DENY: &str = "unsafe-missing-deny";
    /// Configured forbidden API used outside its allowed paths.
    pub const FORBIDDEN_API: &str = "forbidden-api";
    /// `lint:allow` without a mandatory reason.
    pub const LINT_ALLOW_REASON: &str = "lint-allow-reason";
    /// Lower-level lock acquired while a higher-level lock is held
    /// (inter-procedural; levels come from `// lock-level:` comments).
    pub const LOCK_ORDER: &str = "lock-order";
    /// Cycle in the acquired-while-holding graph — static deadlock.
    pub const LOCK_ORDER_CYCLE: &str = "lock-order-cycle";
    /// Lock type acquired in scope without a declared `// lock-level:`.
    pub const LOCK_ORDER_UNRANKED: &str = "lock-order-unranked";
    /// A path from an NVM store reaches a publish site without an
    /// intervening flush + fence (psan rule 1, checked on all paths).
    pub const FLUSH_BEFORE_PUBLISH: &str = "flush-before-publish";

    /// Every rule id, for `--list-rules`.
    pub const ALL: &[&str] = &[
        ATOMIC_ORDERING,
        ATOMIC_SEQCST,
        ATOMIC_RELAXED_PUBLISH,
        ATOMIC_FENCE_ORDERING,
        CACHELINE_PADDING,
        PERSIST_HOOK,
        UNSAFE_MISSING_SAFETY,
        UNSAFE_MISSING_FORBID,
        UNSAFE_MISSING_DENY,
        FORBIDDEN_API,
        LINT_ALLOW_REASON,
        LOCK_ORDER,
        LOCK_ORDER_CYCLE,
        LOCK_ORDER_UNRANKED,
        FLUSH_BEFORE_PUBLISH,
    ];
}

/// Rationale paragraphs for `--explain <rule-id>`.
pub fn explain(rule: &str) -> Option<&'static str> {
    EXPLANATIONS
        .iter()
        .find(|(r, _)| *r == rule)
        .map(|(_, text)| *text)
}

const EXPLANATIONS: &[(&str, &str)] = &[
    (
        rules::ATOMIC_ORDERING,
        "Every atomic access that names an explicit Ordering must carry a `// ord: <why>` \
         justification on the lines it spans (or directly above). The ordering *is* the \
         protocol: an unexplained Acquire/Release pair is a protocol nobody can review.",
    ),
    (
        rules::ATOMIC_SEQCST,
        "SeqCst used \"to be safe\" hides whether the total order is load-bearing. It usually \
         guards a store->load (store-buffering) pair; name that pair in a `// ord:` comment, \
         or downgrade to Acquire/Release and let the comment say why that suffices.",
    ),
    (
        rules::ATOMIC_RELAXED_PUBLISH,
        "A Relaxed store that publishes a pointer lets consumers observe the pointee before \
         its initialization is visible. Publish with Release (and pair the consumer load \
         with Acquire), or carry an explicit lint:allow with the argument.",
    ),
    (
        rules::ATOMIC_FENCE_ORDERING,
        "A standalone fence synchronizes accesses that are not visible at the call site, \
         which makes it *more* protocol-critical than a per-access ordering. The `// ord:` \
         comment must name the accesses the fence orders and what they pair with.",
    ),
    (
        rules::CACHELINE_PADDING,
        "An unpadded atomic field in a Sync-shared struct invites false sharing: two hot \
         counters on one line serialize every core that touches either (paper section 5.1). \
         Wrap the field in CachePadded, or justify sharing with `// shared-line: <why>`.",
    ),
    (
        rules::PERSIST_HOOK,
        "The addressed persist primitives (flush_range, clflushopt_at, wbinvd, nvm_write) \
         record their own flush events, but the *stores they persist* are plain writes the \
         sanitizer only sees through trace hooks. A persist path without a hook silently \
         escapes every psan ordering rule.",
    ),
    (
        rules::UNSAFE_MISSING_SAFETY,
        "Every unsafe site must state the invariant that makes it sound in an attached \
         `// SAFETY:` comment. The comment is the audit trail; unsafe without it is \
         unreviewable.",
    ),
    (
        rules::UNSAFE_MISSING_FORBID,
        "A crate with no unsafe code should say so enforceably: `#![forbid(unsafe_code)]` \
         at the crate root turns the property into a compile error instead of a habit.",
    ),
    (
        rules::UNSAFE_MISSING_DENY,
        "A crate that uses unsafe should carry `#![deny(unsafe_op_in_unsafe_fn)]` so every \
         unsafe operation sits in an explicit unsafe block with its own SAFETY comment, \
         even inside unsafe fns.",
    ),
    (
        rules::FORBIDDEN_API,
        "Some std APIs are banned per-path by lint.toml: wall-clock reads outside the \
         latency model skew the emulated NVM timings, blocking std locks belong to the \
         Mutex-UC baseline only, and bare thread::sleep bypasses the Waiter's spin budget.",
    ),
    (
        rules::LINT_ALLOW_REASON,
        "`lint:allow(<rule>)` without a reason suppresses nothing and is itself a finding. \
         The mandatory `: <reason>` keeps the escape hatch from rotting into an \
         unexplained mute button.",
    ),
    (
        rules::LOCK_ORDER,
        "Locks declare a hierarchy level with `// lock-level: <n> <why>` on the lock type, \
         the field, or the acquire site (gate=0, lane combiner locks=1, replica locks=2, \
         combiner slot flags=3; mirrored in lint.toml [lock-order] ranks). Acquiring a \
         lower level while holding a higher one — directly or through any chain of calls — \
         breaks the partial order that makes the multilog protocol deadlock-free: two \
         threads taking the same pair in opposite rank order can block each other forever. \
         The diagnostic chain shows the inter-procedural path from the holding acquire to \
         the violating one.",
    ),
    (
        rules::LOCK_ORDER_CYCLE,
        "A cycle among same-level locks in the acquired-while-holding graph is a static \
         deadlock: thread 1 holds A wanting B while thread 2 holds B wanting A, and rank \
         monotonicity cannot rule it out because the ranks are equal. Break the cycle by \
         ordering the acquisitions consistently, or split the level with finer \
         `// lock-level:` declarations on the fields involved.",
    ),
    (
        rules::LOCK_ORDER_UNRANKED,
        "A lock type acquired inside the scoped paths without any declared `// lock-level:` \
         (and no [lock-order] rank) is invisible to the hierarchy check — every inversion \
         through it goes unreported. Declare its level where the type or field is defined.",
    ),
    (
        rules::FLUSH_BEFORE_PUBLISH,
        "psan rule 1, checked statically on *all* paths instead of only executed traces: \
         between an NVM store and any publish site (completedTail/selector/emptyBit \
         stores marked `// publishes: <what>`, or fused publish primitives) there must be \
         a flush of the span AND an sfence on every path. A publish that races ahead of \
         its data's writeback is exactly the recovery bug NVTraverse calls out: after a \
         crash the published pointer is durable but the journey it promises is not.",
    ),
];

/// One step of an inter-procedural chain: `fn-name (path:line)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainStep {
    pub func: String,
    pub path: String,
    pub line: u32,
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Rule id (one of [`rules`]).
    pub rule: &'static str,
    pub message: String,
    /// Concrete fix the developer can apply.
    pub suggestion: Option<String>,
    /// Last line of the flagged construct — `lint:allow` comments attached
    /// anywhere in `line..=end_line` suppress the finding.
    pub end_line: u32,
    /// Inter-procedural call chain from the reporting function to the
    /// site (empty for intra-procedural findings).
    pub chain: Vec<ChainStep>,
    /// Reason text of the `lint:allow` that suppressed this finding, if
    /// any — populated only by the `*_all` engine entry points.
    pub suppressed_by: Option<String>,
}

impl Diagnostic {
    pub fn new(
        path: &str,
        line: u32,
        col: u32,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            path: path.to_string(),
            line,
            col,
            rule,
            message: message.into(),
            suggestion: None,
            end_line: line,
            chain: Vec::new(),
            suppressed_by: None,
        }
    }

    pub fn suggest(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }

    pub fn span_to(mut self, end_line: u32) -> Self {
        self.end_line = end_line.max(self.line);
        self
    }

    pub fn with_chain(mut self, chain: Vec<ChainStep>) -> Self {
        self.chain = chain;
        self
    }
}

impl fmt::Display for Diagnostic {
    /// `file:line:col: [rule-id] message` — one finding per line, grep-
    /// and editor-friendly; the suggestion follows indented.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )?;
        if !self.chain.is_empty() {
            let steps: Vec<String> = self
                .chain
                .iter()
                .map(|s| format!("{} ({}:{})", s.func, s.path, s.line))
                .collect();
            write!(f, "\n    chain: {}", steps.join(" -> "))?;
        }
        if let Some(s) = &self.suggestion {
            write!(f, "\n    suggestion: {s}")?;
        }
        Ok(())
    }
}
