//! Diagnostics: machine-readable findings with positions, rule ids,
//! messages, and suggestions.

use std::fmt;

/// Stable rule identifiers (the strings `// lint:allow(<rule>)` names).
pub mod rules {
    /// Atomic access with an explicit `Ordering` but no `// ord:`
    /// justification.
    pub const ATOMIC_ORDERING: &str = "atomic-ordering";
    /// `SeqCst` without justification — ordering-by-default smell.
    pub const ATOMIC_SEQCST: &str = "atomic-seqcst";
    /// `Relaxed` on a pointer-publishing store.
    pub const ATOMIC_RELAXED_PUBLISH: &str = "atomic-relaxed-publish";
    /// `fence`/`compiler_fence` call without a `// ord:` justification.
    pub const ATOMIC_FENCE_ORDERING: &str = "atomic-fence-ordering";
    /// Unpadded atomic field in a `Sync`-shared struct.
    pub const CACHELINE_PADDING: &str = "cacheline-padding";
    /// Persist primitive called without a psan trace hook in scope.
    pub const PERSIST_HOOK: &str = "persist-hook";
    /// `unsafe` site without an attached `// SAFETY:` comment.
    pub const UNSAFE_MISSING_SAFETY: &str = "unsafe-missing-safety";
    /// Unsafe-free crate without `#![forbid(unsafe_code)]`.
    pub const UNSAFE_MISSING_FORBID: &str = "unsafe-missing-forbid";
    /// Unsafe-using crate without `#![deny(unsafe_op_in_unsafe_fn)]`.
    pub const UNSAFE_MISSING_DENY: &str = "unsafe-missing-deny";
    /// Configured forbidden API used outside its allowed paths.
    pub const FORBIDDEN_API: &str = "forbidden-api";
    /// `lint:allow` without a mandatory reason.
    pub const LINT_ALLOW_REASON: &str = "lint-allow-reason";

    /// Every rule id, for `--list-rules`.
    pub const ALL: &[&str] = &[
        ATOMIC_ORDERING,
        ATOMIC_SEQCST,
        ATOMIC_RELAXED_PUBLISH,
        ATOMIC_FENCE_ORDERING,
        CACHELINE_PADDING,
        PERSIST_HOOK,
        UNSAFE_MISSING_SAFETY,
        UNSAFE_MISSING_FORBID,
        UNSAFE_MISSING_DENY,
        FORBIDDEN_API,
        LINT_ALLOW_REASON,
    ];
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Rule id (one of [`rules`]).
    pub rule: &'static str,
    pub message: String,
    /// Concrete fix the developer can apply.
    pub suggestion: Option<String>,
    /// Last line of the flagged construct — `lint:allow` comments attached
    /// anywhere in `line..=end_line` suppress the finding.
    pub end_line: u32,
}

impl Diagnostic {
    pub fn new(
        path: &str,
        line: u32,
        col: u32,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            path: path.to_string(),
            line,
            col,
            rule,
            message: message.into(),
            suggestion: None,
            end_line: line,
        }
    }

    pub fn suggest(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }

    pub fn span_to(mut self, end_line: u32) -> Self {
        self.end_line = end_line.max(self.line);
        self
    }
}

impl fmt::Display for Diagnostic {
    /// `file:line:col: [rule-id] message` — one finding per line, grep-
    /// and editor-friendly; the suggestion follows indented.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n    suggestion: {s}")?;
        }
        Ok(())
    }
}
