//! `lint.toml` — declarative rule configuration.
//!
//! The parser handles the small TOML subset the config actually uses
//! (`[section]` headers, string / string-array / bool / integer values,
//! `#` comments, multi-line arrays) with no dependencies, mirroring how
//! the vendored shims keep this workspace building offline.
//!
//! [`Config::default`] encodes the workspace policy; `lint.toml` at the
//! repo root overrides per key, so tests can run against the defaults
//! while CI runs whatever the checked-in file says.

use std::collections::BTreeMap;

/// A parsed TOML value (subset).
#[derive(Debug, Clone, PartialEq)]
pub enum TomlValue {
    Str(String),
    List(Vec<String>),
    Bool(bool),
    Int(i64),
}

/// Parses the supported TOML subset into `(section, key) → value`.
/// Unparseable lines are reported, not silently dropped.
pub fn parse_toml(text: &str) -> Result<BTreeMap<(String, String), TomlValue>, String> {
    let mut out = BTreeMap::new();
    let mut section = String::new();
    let mut pending: Option<(String, String)> = None; // multi-line array
    for (ln, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        let line = line.trim();
        if let Some((key, acc)) = pending.take() {
            let acc = format!("{acc} {line}");
            if balanced(&acc) {
                out.insert(
                    (section.clone(), key),
                    parse_value(&acc).map_err(|e| format!("line {}: {e}", ln + 1))?,
                );
            } else {
                pending = Some((key, acc));
            }
            continue;
        }
        if line.is_empty() {
            continue;
        }
        if let Some(h) = line.strip_prefix('[') {
            section = h
                .strip_suffix(']')
                .ok_or_else(|| format!("line {}: unterminated section header", ln + 1))?
                .trim()
                .to_string();
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {}: expected `key = value`", ln + 1))?;
        let key = key.trim().to_string();
        let value = value.trim();
        if value.starts_with('[') && !balanced(value) {
            pending = Some((key, value.to_string()));
            continue;
        }
        out.insert(
            (section.clone(), key),
            parse_value(value).map_err(|e| format!("line {}: {e}", ln + 1))?,
        );
    }
    if let Some((key, _)) = pending {
        return Err(format!("unterminated array for key `{key}`"));
    }
    Ok(out)
}

/// Strips a `#` comment, respecting string quotes.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Whether brackets and quotes in an accumulating array value balance.
fn balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0 && !in_str
}

fn parse_value(v: &str) -> Result<TomlValue, String> {
    let v = v.trim();
    if let Some(s) = v.strip_prefix('"') {
        let s = s
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string: {v}"))?;
        return Ok(TomlValue::Str(s.to_string()));
    }
    if v == "true" {
        return Ok(TomlValue::Bool(true));
    }
    if v == "false" {
        return Ok(TomlValue::Bool(false));
    }
    if let Some(inner) = v.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated array: {v}"))?;
        let mut items = Vec::new();
        for item in split_items(inner) {
            match parse_value(&item)? {
                TomlValue::Str(s) => items.push(s),
                other => return Err(format!("array items must be strings, got {other:?}")),
            }
        }
        return Ok(TomlValue::List(items));
    }
    v.parse::<i64>()
        .map(TomlValue::Int)
        .map_err(|_| format!("unsupported value: {v}"))
}

/// Splits array items on commas outside quotes.
fn split_items(s: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                if !cur.trim().is_empty() {
                    items.push(cur.trim().to_string());
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        items.push(cur.trim().to_string());
    }
    items
}

/// Scope of a path-restricted rule.
#[derive(Debug, Clone)]
pub struct RuleScope {
    /// Path prefixes the rule applies to (workspace-relative).
    pub paths: Vec<String>,
    /// Path substrings exempt from the rule (coarse allowlist; prefer
    /// `// lint:allow(rule): reason` for site-level exemptions).
    pub allow: Vec<String>,
}

impl RuleScope {
    pub fn applies(&self, path: &str) -> bool {
        self.paths.iter().any(|p| path.starts_with(p.as_str()))
            && !self.allow.iter().any(|a| path.contains(a.as_str()))
    }
}

/// One forbidden-API entry.
#[derive(Debug, Clone)]
pub struct ForbiddenEntry {
    /// Entry name (for messages), e.g. `instant-now`.
    pub name: String,
    /// `::`-separated identifier chain to match, e.g. `Instant::now`.
    /// Matches both direct paths and `use` trees (`std::sync::{…, Mutex}`).
    pub pattern: String,
    pub scope: RuleScope,
    /// Human reason the API is banned here.
    pub message: String,
    pub suggestion: String,
    /// Whether matches inside test code count (default: no).
    pub include_tests: bool,
}

/// Lock-order (static hierarchy / deadlock) configuration.
#[derive(Debug, Clone)]
pub struct LockOrderConfig {
    pub scope: RuleScope,
    /// Methods that acquire a lock when called on a lock-classed
    /// receiver (`lock`, `try_lock`, `read`, `write`, …). Recognition is
    /// receiver-type-driven: a bare `stream.write(buf)` never counts.
    pub acquire_methods: Vec<String>,
    /// Type-level rank fallbacks (`TypeName = level`) mirroring the
    /// `// lock-level: <n> <why>` declarations in source; a source
    /// comment on the type, field, or acquire site always wins.
    pub ranks: Vec<(String, u32)>,
}

/// Flush-before-publish (persist-path dataflow) configuration. The four
/// effect classes mirror `PmemRuntime`'s primitive semantics.
#[derive(Debug, Clone)]
pub struct FlushPublishConfig {
    pub scope: RuleScope,
    /// Calls that dirty NVM state (plain stores the runtime traces).
    pub stores: Vec<String>,
    /// Calls that enqueue a writeback (async: still need a fence).
    pub flushes: Vec<String>,
    /// Store-buffer drains: flushed state becomes durable.
    pub fences: Vec<String>,
    /// Serializing whole-cache writebacks (`wbinvd`): everything durable.
    pub full_persists: Vec<String>,
    /// Fused store+sync-flush primitives: no effect on *surrounding*
    /// dirty state.
    pub neutral: Vec<String>,
    /// Calls that are publish sites by themselves (their dependencies
    /// must already be durable), in addition to `// publishes:` markers.
    pub publishes: Vec<String>,
}

/// Full lint configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Directories (workspace-relative) scanned for `.rs` files.
    pub include: Vec<String>,
    /// Path substrings skipped entirely.
    pub exclude: Vec<String>,
    pub ordering: RuleScope,
    pub padding: RuleScope,
    pub persist: RuleScope,
    /// Persist primitives that must not escape the sanitizer.
    pub persist_primitives: Vec<String>,
    /// Trace hooks that satisfy coverage.
    pub persist_hooks: Vec<String>,
    pub unsafety: RuleScope,
    pub forbidden: Vec<ForbiddenEntry>,
    pub lock_order: LockOrderConfig,
    pub flush_publish: FlushPublishConfig,
}

impl Default for Config {
    /// The workspace policy. `lint.toml` overrides any of it; keeping the
    /// defaults here means the known-bad test suite is independent of the
    /// checked-in file.
    fn default() -> Self {
        let hot = |crates: &[&str]| -> Vec<String> {
            crates.iter().map(|c| format!("crates/{c}/src")).collect()
        };
        Config {
            include: vec!["crates".into()],
            exclude: vec!["crates/lint/tests".into()],
            // The ordering audit covers every hot-path crate the paper's
            // protocol runs through (ISSUE 5: nr, sync, pmem, core, cx,
            // shard) plus the network service, whose pipeline state
            // machine (queue depths, drain barriers, ack watermarks) is
            // all explicit atomics. crates/mc stays out of scope on
            // purpose: the model checker consumes `Ordering` values as
            // data (its cell shims and engine match on every ordering),
            // so per-site `ord:` justifications there would be noise.
            ordering: RuleScope {
                paths: hot(&["nr", "sync", "pmem", "core", "cx", "shard", "serve"]),
                allow: vec![],
            },
            // Padding discipline where §5.1-style false sharing bites:
            // the log, the locks, the runtime counters, and CX's replica
            // versions plus optimistic-read counters.
            padding: RuleScope {
                paths: hot(&["nr", "sync", "pmem", "cx"]),
                allow: vec![],
            },
            // Persist-hook coverage where PmemRuntime primitives are
            // driven (nr itself only sees hooks, but stays in scope so
            // new direct calls cannot sneak in).
            persist: RuleScope {
                paths: hot(&["nr", "core", "shard", "cx"]),
                allow: vec![],
            },
            persist_primitives: ["flush_range", "clflushopt_at", "wbinvd", "nvm_write"]
                .map(String::from)
                .to_vec(),
            persist_hooks: [
                "trace_store",
                "trace_publish",
                "trace_recovery_read",
                "persist_clflush_at",
                "publish_clflush",
            ]
            .map(String::from)
            .to_vec(),
            unsafety: RuleScope {
                paths: vec!["crates".into()],
                allow: vec![],
            },
            // The lock hierarchy mirrors the PR 9 multilog protocol:
            // cross-log gate (0) → lane combiner locks (1) → replica
            // locks (2) → combiner batch-slot flags (3). Field and site
            // `// lock-level:` comments refine these type defaults.
            lock_order: LockOrderConfig {
                scope: RuleScope {
                    paths: hot(&["nr", "sync", "core", "cx", "shard", "serve"]),
                    allow: vec![],
                },
                acquire_methods: [
                    "lock",
                    "try_lock",
                    "read",
                    "write",
                    "try_read",
                    "try_write",
                    "with_read",
                    "with_write",
                ]
                .map(String::from)
                .to_vec(),
                ranks: vec![
                    ("TicketLock".into(), 0),
                    ("TryLock".into(), 1),
                    ("ReplicaLock".into(), 2),
                    ("DistRwLock".into(), 2),
                    ("RwSpinLock".into(), 2),
                    ("PhaseFairRwLock".into(), 2),
                    ("StrongTryRwLock".into(), 2),
                ],
            },
            // psan rule 1 at lint time: on every path from an NVM store
            // to a publish site there is a flush of the span and an
            // sfence. Effect classes match PmemRuntime's contracts.
            flush_publish: FlushPublishConfig {
                scope: RuleScope {
                    paths: hot(&["nr", "core", "shard", "cx"]),
                    allow: vec![],
                },
                stores: ["nvm_write", "trace_store"].map(String::from).to_vec(),
                flushes: ["flush_range", "clflushopt_at", "clflushopt", "clflush"]
                    .map(String::from)
                    .to_vec(),
                fences: ["sfence"].map(String::from).to_vec(),
                full_persists: ["wbinvd"].map(String::from).to_vec(),
                neutral: ["persist_clflush_at", "trace_recovery_read"]
                    .map(String::from)
                    .to_vec(),
                publishes: ["publish_clflush"].map(String::from).to_vec(),
            },
            forbidden: vec![
                ForbiddenEntry {
                    name: "instant-now".into(),
                    pattern: "Instant::now".into(),
                    scope: RuleScope {
                        // prep-serve deliberately has no allow entry: the
                        // server must stay Instant-free (its latency story
                        // is the simulated-NVM cost model). The loadgen
                        // timer (crates/loadgen/src/clock.rs) is in scope
                        // too and carries site-level reasoned allows.
                        paths: vec!["crates".into()],
                        allow: vec!["crates/pmem/src/latency.rs".into(), "crates/bench".into()],
                    },
                    message: "Instant::now outside the latency model: wall-clock reads in \
                              instrumented paths skew the emulated NVM timings"
                        .into(),
                    suggestion: "route timing through prep_pmem::latency (see charge_ns), or \
                                 justify with // lint:allow(forbidden-api): <reason>"
                        .into(),
                    include_tests: false,
                },
                ForbiddenEntry {
                    name: "std-mutex".into(),
                    pattern: "std::sync::Mutex".into(),
                    scope: RuleScope {
                        paths: vec![
                            "crates/nr/src".into(),
                            "crates/sync/src".into(),
                            "crates/core/src".into(),
                            "crates/cx/src".into(),
                            "crates/shard/src".into(),
                            "crates/serve/src".into(),
                            "crates/loadgen/src".into(),
                        ],
                        allow: vec!["crates/nr/src/global_lock.rs".into()],
                    },
                    message: "std::sync::Mutex in a hot-path crate: blocking locks belong to \
                              the Mutex-UC baseline (global_lock.rs), not the replicated path"
                        .into(),
                    suggestion: "use a prep-sync lock, or justify with \
                                 // lint:allow(forbidden-api): <reason>"
                        .into(),
                    include_tests: false,
                },
                ForbiddenEntry {
                    name: "std-rwlock".into(),
                    pattern: "std::sync::RwLock".into(),
                    scope: RuleScope {
                        paths: vec![
                            "crates/nr/src".into(),
                            "crates/sync/src".into(),
                            "crates/core/src".into(),
                            "crates/cx/src".into(),
                            "crates/shard/src".into(),
                            "crates/serve/src".into(),
                            "crates/loadgen/src".into(),
                        ],
                        allow: vec![],
                    },
                    message: "std::sync::RwLock in a hot-path crate: replica locks go through \
                              the ReplicaLock trait (DistRwLock/RwSpinLock/PhaseFairRwLock)"
                        .into(),
                    suggestion: "use a prep-sync lock, or justify with \
                                 // lint:allow(forbidden-api): <reason>"
                        .into(),
                    include_tests: false,
                },
                ForbiddenEntry {
                    name: "thread-sleep".into(),
                    pattern: "thread::sleep".into(),
                    scope: RuleScope {
                        paths: vec![
                            "crates/nr/src".into(),
                            "crates/sync/src".into(),
                            "crates/core/src".into(),
                            "crates/cx/src".into(),
                            "crates/shard/src".into(),
                            "crates/pmem/src".into(),
                            "crates/serve/src".into(),
                            "crates/loadgen/src".into(),
                        ],
                        allow: vec![
                            "crates/sync/src/waiter.rs".into(),
                            "crates/pmem/src/latency.rs".into(),
                        ],
                    },
                    message: "thread::sleep in a hot-path crate: polite waiting goes through \
                              prep_sync::Waiter (spin budget, then sleep)"
                        .into(),
                    suggestion: "use prep_sync::Waiter, or justify with \
                                 // lint:allow(forbidden-api): <reason>"
                        .into(),
                    include_tests: false,
                },
            ],
        }
    }
}

impl Config {
    /// Loads the defaults, then applies overrides from `lint.toml` text.
    pub fn from_toml(text: &str) -> Result<Self, String> {
        let kv = parse_toml(text)?;
        let mut cfg = Config::default();
        let list =
            |kv: &BTreeMap<(String, String), TomlValue>, s: &str, k: &str| -> Option<Vec<String>> {
                match kv.get(&(s.to_string(), k.to_string())) {
                    Some(TomlValue::List(v)) => Some(v.clone()),
                    Some(TomlValue::Str(v)) => Some(vec![v.clone()]),
                    _ => None,
                }
            };
        if let Some(v) = list(&kv, "workspace", "include") {
            cfg.include = v;
        }
        if let Some(v) = list(&kv, "workspace", "exclude") {
            cfg.exclude = v;
        }
        for (scope, name) in [
            (&mut cfg.ordering, "atomic-ordering"),
            (&mut cfg.padding, "cacheline-padding"),
            (&mut cfg.persist, "persist-hook"),
            (&mut cfg.unsafety, "unsafe-safety"),
        ] {
            if let Some(v) = list(&kv, name, "paths") {
                scope.paths = v;
            }
            if let Some(v) = list(&kv, name, "allow") {
                scope.allow = v;
            }
        }
        if let Some(v) = list(&kv, "persist-hook", "primitives") {
            cfg.persist_primitives = v;
        }
        if let Some(v) = list(&kv, "persist-hook", "hooks") {
            cfg.persist_hooks = v;
        }
        if let Some(v) = list(&kv, "lock-order", "paths") {
            cfg.lock_order.scope.paths = v;
        }
        if let Some(v) = list(&kv, "lock-order", "allow") {
            cfg.lock_order.scope.allow = v;
        }
        if let Some(v) = list(&kv, "lock-order", "acquire-methods") {
            cfg.lock_order.acquire_methods = v;
        }
        if let Some(v) = list(&kv, "lock-order", "ranks") {
            let mut ranks = Vec::new();
            for item in &v {
                let (ty, n) = item
                    .split_once('=')
                    .ok_or_else(|| format!("[lock-order] rank `{item}`: expected `Type = n`"))?;
                let n: u32 = n
                    .trim()
                    .parse()
                    .map_err(|_| format!("[lock-order] rank `{item}`: level must be an integer"))?;
                ranks.push((ty.trim().to_string(), n));
            }
            cfg.lock_order.ranks = ranks;
        }
        if let Some(v) = list(&kv, "flush-publish", "paths") {
            cfg.flush_publish.scope.paths = v;
        }
        if let Some(v) = list(&kv, "flush-publish", "allow") {
            cfg.flush_publish.scope.allow = v;
        }
        if let Some(v) = list(&kv, "flush-publish", "stores") {
            cfg.flush_publish.stores = v;
        }
        if let Some(v) = list(&kv, "flush-publish", "flushes") {
            cfg.flush_publish.flushes = v;
        }
        if let Some(v) = list(&kv, "flush-publish", "fences") {
            cfg.flush_publish.fences = v;
        }
        if let Some(v) = list(&kv, "flush-publish", "full-persists") {
            cfg.flush_publish.full_persists = v;
        }
        if let Some(v) = list(&kv, "flush-publish", "neutral") {
            cfg.flush_publish.neutral = v;
        }
        if let Some(v) = list(&kv, "flush-publish", "publishes") {
            cfg.flush_publish.publishes = v;
        }
        // Forbidden entries: any `[forbidden.<name>]` section replaces the
        // default entry of that name (or adds a new one).
        let forbidden_sections: std::collections::BTreeSet<String> = kv
            .keys()
            .filter_map(|(s, _)| s.strip_prefix("forbidden.").map(String::from))
            .collect();
        for name in forbidden_sections {
            let section = format!("forbidden.{name}");
            let get_str = |k: &str| -> Option<String> {
                match kv.get(&(section.clone(), k.to_string())) {
                    Some(TomlValue::Str(v)) => Some(v.clone()),
                    _ => None,
                }
            };
            let pattern = match get_str("pattern") {
                Some(p) => p,
                None => return Err(format!("[{section}] needs a `pattern`")),
            };
            let default = cfg.forbidden.iter().find(|e| e.name == name).cloned();
            let entry = ForbiddenEntry {
                name: name.clone(),
                scope: RuleScope {
                    paths: list(&kv, &section, "paths")
                        .or_else(|| default.as_ref().map(|d| d.scope.paths.clone()))
                        .unwrap_or_else(|| vec!["crates".into()]),
                    allow: list(&kv, &section, "allow-paths")
                        .or_else(|| default.as_ref().map(|d| d.scope.allow.clone()))
                        .unwrap_or_default(),
                },
                message: get_str("message")
                    .or_else(|| default.as_ref().map(|d| d.message.clone()))
                    .unwrap_or_else(|| format!("use of forbidden API `{pattern}`")),
                suggestion: get_str("suggestion")
                    .or_else(|| default.as_ref().map(|d| d.suggestion.clone()))
                    .unwrap_or_else(|| {
                        "justify with // lint:allow(forbidden-api): <reason>".into()
                    }),
                include_tests: match kv.get(&(section.clone(), "include-tests".to_string())) {
                    Some(TomlValue::Bool(b)) => *b,
                    _ => default.as_ref().map(|d| d.include_tests).unwrap_or(false),
                },
                pattern,
            };
            cfg.forbidden.retain(|e| e.name != name);
            cfg.forbidden.push(entry);
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_comments() {
        let kv = parse_toml(
            "# header\n[workspace]\ninclude = [\"crates\"] # trailing\n\n[atomic-ordering]\npaths = [\n  \"a\",\n  \"b, with comma\",\n]\nflag = true\nn = 3\n",
        )
        .unwrap();
        assert_eq!(
            kv[&("workspace".into(), "include".into())],
            TomlValue::List(vec!["crates".into()])
        );
        assert_eq!(
            kv[&("atomic-ordering".into(), "paths".into())],
            TomlValue::List(vec!["a".into(), "b, with comma".into()])
        );
        assert_eq!(
            kv[&("atomic-ordering".into(), "flag".into())],
            TomlValue::Bool(true)
        );
        assert_eq!(
            kv[&("atomic-ordering".into(), "n".into())],
            TomlValue::Int(3)
        );
    }

    #[test]
    fn overrides_apply_over_defaults() {
        let cfg = Config::from_toml(
            "[atomic-ordering]\npaths = [\"crates/x/src\"]\n\n[forbidden.instant-now]\npattern = \"Instant::now\"\nallow-paths = [\"crates/only-here\"]\n",
        )
        .unwrap();
        assert_eq!(cfg.ordering.paths, vec!["crates/x/src"]);
        let e = cfg
            .forbidden
            .iter()
            .find(|e| e.name == "instant-now")
            .unwrap();
        assert_eq!(e.scope.allow, vec!["crates/only-here"]);
        // Untouched defaults survive.
        assert!(cfg.forbidden.iter().any(|e| e.name == "thread-sleep"));
        assert!(!cfg.padding.paths.is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_toml("key without equals\n").is_err());
        assert!(parse_toml("[unclosed\n").is_err());
        assert!(Config::from_toml("[forbidden.x]\nmessage = \"no pattern\"\n").is_err());
    }

    #[test]
    fn scope_matching() {
        let s = RuleScope {
            paths: vec!["crates/nr/src".into()],
            allow: vec!["global_lock".into()],
        };
        assert!(s.applies("crates/nr/src/log.rs"));
        assert!(!s.applies("crates/nr/tests/x.rs"));
        assert!(!s.applies("crates/nr/src/global_lock.rs"));
    }
}
