//! Per-function dataflow summaries over the workspace call graph.
//!
//! Two analyses share the bottom-up SCC propagation from
//! [`crate::graph`]:
//!
//! * **Lock summaries** — which lock classes a function (transitively)
//!   acquires, plus every *acquired-while-holding* edge with the call
//!   chain that produces it. Lock identity and level come from
//!   `// lock-level: <n> <why>` comments on the lock type, the field, or
//!   the acquire site (lint.toml `[lock-order] ranks` provides type-level
//!   fallbacks). Acquire recognition is receiver-type-driven; a receiver
//!   nobody can type only counts when every workspace candidate for the
//!   method agrees on a single ranked class.
//! * **Effect summaries** — the NVM store/flush/fence/publish state a
//!   function's body moves through, as a transfer function over the
//!   three-point lattice `Clean < Flushed < Dirty` (join = dirtier). The
//!   walker follows `if`/`else`, `match` arms, and loops (two-pass
//!   fixpoint), so "flush on only one branch" joins to Dirty and is
//!   caught. Publish sites (a `// publishes: <what>` marker, or a fused
//!   publish primitive) demand `Clean`: `Dirty` is a missing flush,
//!   `Flushed` a missing fence.
//!
//! Approximations, on purpose: guards are assumed held to the end of
//! their innermost enclosing block (closure-based acquires to the end of
//! the call); a guard returned out of a helper is counted as an acquire
//! but not as held in the caller; effects in call arguments apply after
//! the outer call's effect; conservative call-graph fan-out can attribute
//! a callee's effects to more callers than can reach it at runtime.
//! `// lint:allow` carries the escape hatch, as everywhere else.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::diag::ChainStep;
use crate::graph::Graph;
use crate::model::{CallSite, FileModel};

// ---------------------------------------------------------------------
// Lock ranks and classes
// ---------------------------------------------------------------------

/// Declared lock levels: from `// lock-level:` comments on types and
/// fields, with config `ranks` as type-level fallbacks.
#[derive(Debug, Default)]
pub struct LockRanks {
    /// type name → level.
    pub types: BTreeMap<String, u32>,
    /// (struct name, field name) → level.
    pub fields: BTreeMap<(String, String), u32>,
    /// `lock-level:` comments whose rationale text is missing:
    /// (file, line, col).
    pub missing_why: Vec<(usize, u32, u32)>,
}

/// Parses `lock-level: <n> <why>` comment text → (level, has_why).
fn parse_level(text: &str) -> Option<(u32, bool)> {
    let rest = text.strip_prefix("lock-level:")?.trim_start();
    let num: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    let n: u32 = num.parse().ok()?;
    let why = rest[num.len()..].trim();
    Some((n, !why.is_empty()))
}

impl LockRanks {
    pub fn build(files: &[(String, FileModel<'_>)], cfg: &Config) -> Self {
        let mut r = LockRanks::default();
        for (ty, n) in &cfg.lock_order.ranks {
            r.types.insert(ty.clone(), *n);
        }
        for (fi, (_, m)) in files.iter().enumerate() {
            // Every lock-level comment is checked for a rationale once,
            // wherever it sits (type, field, or acquire site).
            for c in &m.comments {
                if let Some((_, has_why)) = parse_level(&c.text) {
                    if !has_why {
                        r.missing_why.push((fi, c.line, c.col));
                    }
                }
            }
            for s in &m.structs {
                for c in m.anns(s.line, s.line) {
                    if let Some((n, _)) = parse_level(&c.text) {
                        r.types.insert(s.name.clone(), n);
                    }
                }
                for f in &s.fields {
                    for c in m.anns(f.line, f.line) {
                        if let Some((n, _)) = parse_level(&c.text) {
                            r.fields.insert((s.name.clone(), f.name.clone()), n);
                        }
                    }
                }
            }
            for t in &m.traits {
                for c in m.anns(t.line, t.line) {
                    if let Some((n, _)) = parse_level(&c.text) {
                        r.types.insert(t.name.clone(), n);
                    }
                }
            }
        }
        r
    }
}

/// One recognized lock acquisition site.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Class identity for the hierarchy graph (`TicketLock`,
    /// `MultiLaneReplicated.gate`, or a synthesized site id).
    pub class: String,
    pub rank: u32,
    /// Shared (reader-side) acquisition — shared self-edges are not
    /// deadlocks.
    pub shared: bool,
    /// Acquire cannot block (`try_*` / `compare_exchange`): it creates a
    /// held extent when it succeeds but can never complete a deadlock
    /// cycle, because failure returns instead of waiting.
    pub noblock: bool,
    pub byte: usize,
    /// Byte offset the guard is conservatively held until.
    pub extent_end: usize,
    pub line: u32,
    pub col: u32,
    pub end_line: u32,
}

/// What a call site means to the lock analysis.
enum LockSite {
    Acquire {
        class: String,
        rank: u32,
        shared: bool,
        noblock: bool,
    },
    Unranked {
        ty: String,
    },
    None,
}

/// One acquired-while-holding edge, with provenance.
#[derive(Debug, Clone)]
pub struct HeldEdge {
    pub held_class: String,
    pub held_rank: u32,
    pub acq_class: String,
    pub acq_rank: u32,
    pub acq_shared: bool,
    /// Every known acquire site of the inner class is non-blocking.
    pub acq_noblock: bool,
    pub held_shared: bool,
    /// Site of the violating (inner) event, in the holding fn.
    pub file: usize,
    pub line: u32,
    pub col: u32,
    pub end_line: u32,
    /// Call chain from the holding fn to the acquire.
    pub chain: Vec<ChainStep>,
}

/// Lock analysis results over the whole workspace.
#[derive(Debug, Default)]
pub struct LockAnalysis {
    /// Per-fn transitive acquire sets: class → representative chain.
    pub acquires: Vec<BTreeMap<String, Vec<ChainStep>>>,
    /// Every acquired-while-holding edge (first occurrence per class
    /// pair).
    pub edges: Vec<HeldEdge>,
    /// Unranked lock acquisitions: (file, line, col, end_line, type).
    pub unranked: Vec<(usize, u32, u32, u32, String)>,
    pub ranks: LockRanks,
}

/// Innermost brace block (byte extent end) containing `byte` within the
/// fn body spanning sig tokens `lo..hi`.
fn enclosing_block_end(m: &FileModel<'_>, lo: usize, hi: usize, byte: usize) -> usize {
    let mut best: Option<(usize, usize)> = None; // (span, end byte)
    let mut stack: Vec<usize> = Vec::new();
    for k in lo..hi {
        match m.txt(k) {
            "{" => stack.push(k),
            "}" => {
                if let Some(open) = stack.pop() {
                    let (ob, cb) = (m.byte(open), m.byte(k));
                    if ob < byte && byte < cb {
                        let span = cb - ob;
                        if best.map(|(s, _)| span < s).unwrap_or(true) {
                            best = Some((span, cb));
                        }
                    }
                }
            }
            _ => {}
        }
    }
    best.map(|(_, e)| e).unwrap_or(usize::MAX)
}

impl LockAnalysis {
    pub fn run(graph: &Graph<'_, '_>, cfg: &Config) -> Self {
        let ranks = LockRanks::build(graph.files, cfg);
        let nfns = graph.fns.len();
        let mut acq_sites: Vec<Vec<Acquire>> = vec![Vec::new(); nfns];
        let mut unranked: Vec<(usize, u32, u32, u32, String)> = Vec::new();
        let mut seen_unranked: BTreeSet<(usize, u32)> = BTreeSet::new();
        // Per-fn: call idx → acquire position (terminal calls).
        let mut acquire_call: Vec<BTreeMap<usize, usize>> = vec![BTreeMap::new(); nfns];

        for id in 0..nfns {
            let node = &graph.fns[id];
            let (fi, fx) = (node.file, node.fx);
            let m = &graph.files[fi].1;
            let fnitem = &m.fns[fx];
            for edge in &graph.calls[id] {
                let call = &m.calls[edge.call];
                if m.in_test(call.byte) || fnitem.test_attr {
                    continue;
                }
                match classify(graph, cfg, &ranks, fi, id, call, &edge.targets) {
                    LockSite::Acquire {
                        class,
                        rank,
                        shared,
                        noblock,
                    } => {
                        let closure_held = matches!(
                            call.method.as_str(),
                            "with_read" | "with_write" | "read_with" | "write_with"
                        );
                        let extent_end = if closure_held {
                            // Held for the duration of the call itself.
                            let last = call.args.end.min(m.sig_len().saturating_sub(1));
                            m.byte(last) + 1
                        } else {
                            let lo = m.sig_at_byte(fnitem.body.start).unwrap_or(0);
                            let hi = (lo..m.sig_len())
                                .find(|&k| m.byte(k) >= fnitem.body.end)
                                .unwrap_or(m.sig_len());
                            enclosing_block_end(m, lo, hi, call.byte).min(fnitem.body.end)
                        };
                        acquire_call[id].insert(edge.call, acq_sites[id].len());
                        acq_sites[id].push(Acquire {
                            class,
                            rank,
                            shared,
                            noblock,
                            byte: call.byte,
                            extent_end,
                            line: call.line,
                            col: call.col,
                            end_line: call.end_line,
                        });
                    }
                    LockSite::Unranked { ty } => {
                        if seen_unranked.insert((fi, call.line)) {
                            unranked.push((fi, call.line, call.col, call.end_line, ty));
                        }
                    }
                    LockSite::None => {}
                }
            }
        }

        // Bottom-up propagation of transitive acquire sets.
        let mut acquires: Vec<BTreeMap<String, Vec<ChainStep>>> = vec![BTreeMap::new(); nfns];
        let sccs = graph.sccs();
        for comp in &sccs {
            // Iterate the component until the sets stop growing (sets
            // only grow, and classes are finite, so this terminates).
            loop {
                let mut changed = false;
                for &id in comp {
                    let node = &graph.fns[id];
                    let (fi, fx) = (node.file, node.fx);
                    let m = &graph.files[fi].1;
                    let frame = |line: u32| ChainStep {
                        func: node.name.clone(),
                        path: graph.files[fi].0.clone(),
                        line,
                    };
                    let mut add: Vec<(String, Vec<ChainStep>)> = Vec::new();
                    for a in &acq_sites[id] {
                        if !acquires[id].contains_key(&a.class) {
                            add.push((a.class.clone(), vec![frame(a.line)]));
                        }
                    }
                    for edge in &graph.calls[id] {
                        if acquire_call[id].contains_key(&edge.call) {
                            continue; // terminal: counted as a site above
                        }
                        let call = &m.calls[edge.call];
                        if m.in_test(call.byte) || m.fns[fx].test_attr {
                            continue;
                        }
                        for &t in &edge.targets {
                            for (class, chain) in &acquires[t] {
                                if !acquires[id].contains_key(class)
                                    && !add.iter().any(|(c, _)| c == class)
                                {
                                    let mut full = vec![frame(call.line)];
                                    full.extend(chain.iter().cloned());
                                    add.push((class.clone(), full));
                                }
                            }
                        }
                    }
                    if !add.is_empty() {
                        changed = true;
                        for (c, chain) in add {
                            acquires[id].entry(c).or_insert(chain);
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }

        // Acquired-while-holding edges.
        let mut edges: Vec<HeldEdge> = Vec::new();
        let mut seen_edges: BTreeSet<(String, String)> = BTreeSet::new();
        for id in 0..nfns {
            let node = &graph.fns[id];
            let (fi, fx) = (node.file, node.fx);
            let m = &graph.files[fi].1;
            // Rank / sharedness / blocking-ness of a class, over every
            // known acquire site of it: blocking if any site blocks.
            let class_rank = |class: &str| -> Option<(u32, bool, bool)> {
                let mut hit: Option<(u32, bool, bool)> = None;
                for a in acq_sites.iter().flatten().filter(|a| a.class == class) {
                    let h = hit.get_or_insert((a.rank, a.shared, a.noblock));
                    h.1 = h.1 && a.shared;
                    h.2 = h.2 && a.noblock;
                }
                hit
            };
            for a in &acq_sites[id] {
                // Later direct acquires inside the held extent.
                for b in &acq_sites[id] {
                    if b.byte <= a.byte || b.byte >= a.extent_end {
                        continue;
                    }
                    if seen_edges.insert((a.class.clone(), b.class.clone())) {
                        edges.push(HeldEdge {
                            held_class: a.class.clone(),
                            held_rank: a.rank,
                            acq_class: b.class.clone(),
                            acq_rank: b.rank,
                            acq_shared: b.shared,
                            acq_noblock: b.noblock,
                            held_shared: a.shared,
                            file: fi,
                            line: b.line,
                            col: b.col,
                            end_line: b.end_line,
                            chain: vec![ChainStep {
                                func: node.name.clone(),
                                path: graph.files[fi].0.clone(),
                                line: b.line,
                            }],
                        });
                    }
                }
                // Calls inside the held extent: everything the callee
                // transitively acquires is acquired while holding.
                for edge in &graph.calls[id] {
                    if acquire_call[id].contains_key(&edge.call) {
                        continue;
                    }
                    let call = &m.calls[edge.call];
                    if call.byte <= a.byte || call.byte >= a.extent_end {
                        continue;
                    }
                    if m.in_test(call.byte) || m.fns[fx].test_attr {
                        continue;
                    }
                    for &t in &edge.targets {
                        for (class, chain) in &acquires[t] {
                            if !seen_edges.insert((a.class.clone(), class.clone())) {
                                continue;
                            }
                            let (acq_rank, acq_shared, acq_noblock) =
                                class_rank(class).unwrap_or((u32::MAX, false, false));
                            let mut full = vec![ChainStep {
                                func: node.name.clone(),
                                path: graph.files[fi].0.clone(),
                                line: call.line,
                            }];
                            full.extend(chain.iter().cloned());
                            edges.push(HeldEdge {
                                held_class: a.class.clone(),
                                held_rank: a.rank,
                                acq_class: class.clone(),
                                acq_rank,
                                acq_shared,
                                acq_noblock,
                                held_shared: a.shared,
                                file: fi,
                                line: call.line,
                                col: call.col,
                                end_line: call.end_line,
                                chain: full,
                            });
                        }
                    }
                }
            }
        }

        LockAnalysis {
            acquires,
            edges,
            unranked,
            ranks,
        }
    }
}

/// Classifies a call site for the lock analysis.
fn classify(
    graph: &Graph<'_, '_>,
    cfg: &Config,
    ranks: &LockRanks,
    fi: usize,
    enclosing: usize,
    call: &CallSite,
    targets: &[usize],
) -> LockSite {
    let m = &graph.files[fi].1;
    let is_acquire_name = cfg.lock_order.acquire_methods.contains(&call.method);
    let is_cas = call.method.starts_with("compare_exchange");
    if !is_acquire_name && !is_cas {
        return LockSite::None;
    }
    let shared = call.method.contains("read");
    let noblock = call.method.starts_with("try_") || is_cas;
    // A `// lock-level:` on the acquire's own lines wins outright and
    // names a per-site class: the comment asserts which lock *instance*
    // this is, which receiver resolution could not establish (that is
    // what the override is for).
    if let Some(rank) = site_rank_override(m, call) {
        return LockSite::Acquire {
            class: format!("{}:{}", graph.files[fi].0, call.line),
            rank,
            shared,
            noblock,
        };
    }
    let info = if call.is_method {
        graph.resolve_recv(fi, Some(enclosing), call)
    } else {
        Default::default()
    };

    // Field-level class: first ranked (struct, field) hit wins.
    for (_, strukt, field, _) in &info.fields {
        if let Some(&rank) = ranks.fields.get(&(strukt.clone(), field.clone())) {
            return LockSite::Acquire {
                class: format!("{strukt}.{field}"),
                rank,
                shared,
                noblock,
            };
        }
    }
    // CAS only counts on explicitly ranked fields (slot claim flags).
    if is_cas {
        return LockSite::None;
    }
    // Type-level class.
    for ty in &info.tys {
        if let Some(&rank) = ranks.types.get(ty) {
            return LockSite::Acquire {
                class: ty.clone(),
                rank,
                shared,
                noblock,
            };
        }
    }
    // Lock-like but undeclared.
    if let Some(ty) = info.tys.iter().find(|t| t.ends_with("Lock")) {
        return LockSite::Unranked { ty: ty.clone() };
    }
    // Unresolved receiver: only when every workspace candidate for this
    // method agrees on one ranked owner class. A receiver that *resolved*
    // to a non-lock type (a `TcpStream` param, say) never reaches here.
    if call.is_method && !info.resolved && info.tys.is_empty() && info.fields.is_empty() {
        let mut ranked: BTreeSet<&str> = BTreeSet::new();
        for &t in targets {
            if let Some(ty) = graph.fns[t].owner_ty.as_deref() {
                if ranks.types.contains_key(ty) {
                    ranked.insert(ty);
                }
            }
        }
        if ranked.len() == 1 {
            let ty = ranked.iter().next().unwrap().to_string();
            let rank = ranks.types[&ty];
            return LockSite::Acquire {
                class: ty,
                rank,
                shared,
                noblock,
            };
        }
    }
    LockSite::None
}

/// `// lock-level: <n> <why>` attached to the call's own lines.
fn site_rank_override(m: &FileModel<'_>, call: &CallSite) -> Option<u32> {
    m.anns(call.line, call.end_line)
        .find_map(|c| parse_level(&c.text).map(|(n, _)| n))
}

// ---------------------------------------------------------------------
// Flush-before-publish effect analysis
// ---------------------------------------------------------------------

/// Abstract persist state (join = max).
pub const CLEAN: u8 = 0;
pub const FLUSHED: u8 = 1;
pub const DIRTY: u8 = 2;

/// Violation kinds at a publish site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolKind {
    MissingFlush,
    MissingFence,
}

/// One flush-before-publish violation.
#[derive(Debug, Clone)]
pub struct Viol {
    pub kind: ViolKind,
    /// Publish site.
    pub file: usize,
    pub line: u32,
    pub col: u32,
    pub end_line: u32,
    /// What the site publishes (the `// publishes:` text or the method).
    pub what: String,
    /// The store that left the state dirty, when known.
    pub store: Option<(usize, u32)>,
    /// Chain from the reporting fn to the publish.
    pub chain: Vec<ChainStep>,
}

fn viol_key(v: &Viol) -> (ViolKind, usize, u32) {
    (v.kind, v.file, v.line)
}

/// Per-function effect summary: exit state and violations for each of
/// the three entry states.
#[derive(Debug, Clone)]
pub struct EffectSummary {
    pub exit: [u8; 3],
    pub viols: [Vec<Viol>; 3],
}

impl Default for EffectSummary {
    fn default() -> Self {
        EffectSummary {
            exit: [CLEAN, FLUSHED, DIRTY],
            viols: [Vec::new(), Vec::new(), Vec::new()],
        }
    }
}

/// Effect analysis results.
#[derive(Debug, Default)]
pub struct EffectAnalysis {
    pub summaries: Vec<EffectSummary>,
}

/// Tracked walker state: abstract level plus the dirtying store site.
#[derive(Debug, Clone, Copy)]
struct PState {
    lvl: u8,
    store: Option<(usize, u32)>,
}

fn join(a: PState, b: PState) -> PState {
    if b.lvl > a.lvl {
        b
    } else if a.lvl > b.lvl {
        a
    } else {
        PState {
            lvl: a.lvl,
            store: a.store.or(b.store),
        }
    }
}

struct Walker<'g, 'm, 'a> {
    graph: &'g Graph<'m, 'a>,
    cfg: &'g Config,
    summaries: &'g [EffectSummary],
    /// Current fn context.
    fnid: usize,
    fi: usize,
    m: &'m FileModel<'a>,
    /// call byte → (call idx, targets).
    calls: BTreeMap<usize, (usize, Vec<usize>)>,
    /// Violations found this run.
    viols: Vec<Viol>,
    /// States at `return` statements.
    exits: Vec<PState>,
}

impl Walker<'_, '_, '_> {
    fn frame(&self, line: u32) -> ChainStep {
        ChainStep {
            func: self.graph.fns[self.fnid].name.clone(),
            path: self.graph.files[self.fi].0.clone(),
            line,
        }
    }

    /// First `{` at paren/bracket depth 0 in `k..hi`.
    fn brace_after(&self, mut k: usize, hi: usize) -> Option<usize> {
        let mut depth = 0i32;
        while k < hi {
            match self.m.txt(k) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => return Some(k),
                _ => {}
            }
            k += 1;
        }
        None
    }

    /// Walks sig tokens `lo..hi`, returning the fallthrough state.
    fn walk(&mut self, mut k: usize, hi: usize, mut st: PState) -> PState {
        while k < hi {
            match self.m.txt(k) {
                "if" => {
                    let (out, nk) = self.walk_if(k, hi, st);
                    st = out;
                    k = nk;
                }
                "match" => {
                    let (out, nk) = self.walk_match(k, hi, st);
                    st = out;
                    k = nk;
                }
                "loop" | "while" | "for" => {
                    if let Some(open) = self.brace_after(k + 1, hi) {
                        let close = self.m.matching(open).min(hi);
                        let st_h = self.walk(k + 1, open, st);
                        let once = self.walk(open + 1, close, st_h);
                        let st_j = join(st_h, once);
                        let twice = self.walk(open + 1, close, st_j);
                        st = join(st_j, twice);
                        k = close + 1;
                    } else {
                        k += 1;
                    }
                }
                "return" => {
                    self.exits.push(st);
                    k += 1;
                }
                _ => {
                    if let Some((ci, targets)) = self.calls.get(&self.m.byte(k)).cloned() {
                        st = self.apply_call(ci, &targets, st);
                    }
                    k += 1;
                }
            }
        }
        st
    }

    /// `if cond { … } [else if … | else { … }]` — returns (join of
    /// branch exits, resume index).
    fn walk_if(&mut self, k: usize, hi: usize, st: PState) -> (PState, usize) {
        let Some(open) = self.brace_after(k + 1, hi) else {
            return (st, k + 1);
        };
        let st_cond = self.walk(k + 1, open, st);
        let close = self.m.matching(open).min(hi);
        let then_out = self.walk(open + 1, close, st_cond);
        if close + 1 < hi && self.m.txt(close + 1) == "else" {
            if close + 2 < hi && self.m.txt(close + 2) == "if" {
                let (else_out, nk) = self.walk_if(close + 2, hi, st_cond);
                (join(then_out, else_out), nk)
            } else if close + 2 < hi && self.m.txt(close + 2) == "{" {
                let ec = self.m.matching(close + 2).min(hi);
                let else_out = self.walk(close + 3, ec, st_cond);
                (join(then_out, else_out), ec + 1)
            } else {
                (join(then_out, st_cond), close + 1)
            }
        } else {
            (join(then_out, st_cond), close + 1)
        }
    }

    /// `match scrutinee { pat => arm, … }` — every arm walks from the
    /// scrutinee state; the result joins all arms.
    fn walk_match(&mut self, k: usize, hi: usize, st: PState) -> (PState, usize) {
        let Some(open) = self.brace_after(k + 1, hi) else {
            return (st, k + 1);
        };
        let st_s = self.walk(k + 1, open, st);
        let close = self.m.matching(open).min(hi);
        let mut out: Option<PState> = None;
        let mut j = open + 1;
        while j < close {
            // Find the arm's `=>` at depth 0 (relative to the body).
            let mut depth = 0i32;
            let mut arrow = None;
            let mut p = j;
            while p < close {
                match self.m.txt(p) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    ">" if depth == 0 && p > j && self.m.txt(p - 1) == "=" => {
                        arrow = Some(p);
                        break;
                    }
                    _ => {}
                }
                p += 1;
            }
            let Some(arrow) = arrow else { break };
            let start = arrow + 1;
            let (arm_out, nj) = if start < close && self.m.txt(start) == "{" {
                let ac = self.m.matching(start).min(close);
                (self.walk(start + 1, ac, st_s), ac + 1)
            } else {
                // Scan to the arm-separating comma.
                let mut depth = 0i32;
                let mut e = start;
                while e < close {
                    match self.m.txt(e) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    e += 1;
                }
                (self.walk(start, e, st_s), e + 1)
            };
            out = Some(match out {
                Some(o) => join(o, arm_out),
                None => arm_out,
            });
            j = nj.max(j + 1);
        }
        (out.unwrap_or(st_s), close + 1)
    }

    /// Applies one call's effect to the state.
    fn apply_call(&mut self, ci: usize, targets: &[usize], st: PState) -> PState {
        let call = &self.m.calls[ci];
        if self.m.in_test(call.byte) {
            return st;
        }
        let fp = &self.cfg.flush_publish;
        let name = call.method.as_str();
        // Publish check first: a marker can sit on any effect call.
        let marker = self.m.anns(call.line, call.end_line).find_map(|c| {
            c.text
                .strip_prefix("publishes:")
                .map(|w| w.trim().to_string())
        });
        let is_publish = marker.is_some() || fp.publishes.contains(&call.method);
        if is_publish {
            let what = marker.unwrap_or_else(|| call.method.clone());
            let kind = match st.lvl {
                DIRTY => Some(ViolKind::MissingFlush),
                FLUSHED => Some(ViolKind::MissingFence),
                _ => None,
            };
            if let Some(kind) = kind {
                let v = Viol {
                    kind,
                    file: self.fi,
                    line: call.line,
                    col: call.col,
                    end_line: call.end_line,
                    what,
                    store: st.store,
                    chain: vec![self.frame(call.line)],
                };
                if !self.viols.iter().any(|w| viol_key(w) == viol_key(&v)) {
                    self.viols.push(v);
                }
            }
            return st;
        }
        if fp.stores.contains(&call.method) {
            return PState {
                lvl: DIRTY,
                store: Some((self.fi, call.line)),
            };
        }
        if fp.flushes.contains(&call.method) {
            return PState {
                lvl: if st.lvl == DIRTY { FLUSHED } else { st.lvl },
                store: st.store,
            };
        }
        if fp.fences.contains(&call.method) {
            return if st.lvl == FLUSHED {
                PState {
                    lvl: CLEAN,
                    store: None,
                }
            } else {
                st
            };
        }
        if fp.full_persists.contains(&call.method) {
            return PState {
                lvl: CLEAN,
                store: None,
            };
        }
        if fp.neutral.contains(&call.method) || name.is_empty() {
            return st;
        }
        // Plain call: apply callee summaries.
        let mut out = st;
        for &t in targets {
            let s = &self.summaries[t];
            let callee_exit = PState {
                lvl: s.exit[st.lvl as usize],
                store: if s.exit[st.lvl as usize] > CLEAN {
                    st.store.or(Some((self.fi, call.line)))
                } else {
                    None
                },
            };
            out = join(out, callee_exit);
            // Materialize entry-conditional violations: those the callee
            // reports at this entry state but not when entered Clean
            // (those are already reported in the callee itself).
            let clean_keys: BTreeSet<_> = s.viols[CLEAN as usize].iter().map(viol_key).collect();
            for v in &s.viols[st.lvl as usize] {
                if clean_keys.contains(&viol_key(v)) {
                    continue;
                }
                let mut chained = v.clone();
                let mut chain = vec![self.frame(call.line)];
                chain.extend(v.chain.iter().cloned());
                chained.chain = chain;
                chained.store = chained.store.or(st.store);
                if !self.viols.iter().any(|w| viol_key(w) == viol_key(&chained)) {
                    self.viols.push(chained);
                }
            }
        }
        // The callee may have cleaned everything on every target.
        if !targets.is_empty() {
            let all_exit = targets
                .iter()
                .map(|&t| self.summaries[t].exit[st.lvl as usize])
                .max()
                .unwrap_or(st.lvl);
            if all_exit < out.lvl {
                out = PState {
                    lvl: all_exit,
                    store: if all_exit > CLEAN { out.store } else { None },
                };
            }
        }
        out
    }
}

impl EffectAnalysis {
    pub fn run(graph: &Graph<'_, '_>, cfg: &Config) -> Self {
        let nfns = graph.fns.len();
        let mut summaries: Vec<EffectSummary> = vec![EffectSummary::default(); nfns];
        let sccs = graph.sccs();
        for comp in &sccs {
            // Fixpoint within the component: exits only move up the
            // (finite) lattice and violation sets only grow, bounded by
            // the number of publish sites, so this terminates.
            let mut rounds = 0usize;
            loop {
                let mut changed = false;
                for &id in comp {
                    let node = &graph.fns[id];
                    let (fi, fx) = (node.file, node.fx);
                    let m = &graph.files[fi].1;
                    let fnitem = &m.fns[fx];
                    if fnitem.test_attr || m.in_test(fnitem.byte) {
                        continue;
                    }
                    let calls: BTreeMap<usize, (usize, Vec<usize>)> = graph.calls[id]
                        .iter()
                        .map(|e| (m.calls[e.call].byte, (e.call, e.targets.clone())))
                        .collect();
                    let lo = m.sig_at_byte(fnitem.body.start).unwrap_or(0);
                    let hi = (lo..m.sig_len())
                        .find(|&k| m.byte(k) >= fnitem.body.end)
                        .unwrap_or(m.sig_len());
                    let mut new = EffectSummary::default();
                    for entry in [CLEAN, FLUSHED, DIRTY] {
                        let mut w = Walker {
                            graph,
                            cfg,
                            summaries: &summaries,
                            fnid: id,
                            fi,
                            m,
                            calls: calls.clone(),
                            viols: Vec::new(),
                            exits: Vec::new(),
                        };
                        let fall = w.walk(
                            lo,
                            hi,
                            PState {
                                lvl: entry,
                                store: None,
                            },
                        );
                        let exit = w.exits.iter().fold(fall, |acc, &e| join(acc, e));
                        new.exit[entry as usize] = exit.lvl;
                        new.viols[entry as usize] = w.viols;
                    }
                    // Monotone update: join with the previous summary.
                    let old = &mut summaries[id];
                    for e in 0..3 {
                        if new.exit[e] > old.exit[e] {
                            old.exit[e] = new.exit[e];
                            changed = true;
                        }
                        let keys: BTreeSet<_> = old.viols[e].iter().map(viol_key).collect();
                        for v in new.viols[e].drain(..) {
                            if !keys.contains(&viol_key(&v)) {
                                old.viols[e].push(v);
                                changed = true;
                            }
                        }
                    }
                }
                rounds += 1;
                if !changed || rounds > comp.len() * 4 + 4 {
                    break;
                }
            }
        }
        EffectAnalysis { summaries }
    }
}
