//! prep-lint CLI.
//!
//! ```text
//! cargo run -p prep-lint -- --deny            # lint the workspace, exit 1 on findings
//! cargo run -p prep-lint -- --list-rules      # print every rule id
//! cargo run -p prep-lint -- path/to/file.rs   # lint specific files
//! ```
//!
//! The workspace root is `--root <dir>` if given, else the nearest
//! ancestor of the current directory containing `lint.toml` (falling
//! back to `Cargo.toml` with a `[workspace]` table), so the binary works
//! from any subdirectory. `--config <file>` overrides the config path.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use prep_lint::{lint_files, lint_workspace, rule_ids, Config};

struct Args {
    deny: bool,
    list_rules: bool,
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        list_rules: false,
        root: None,
        config: None,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?))
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?))
            }
            "--help" | "-h" => {
                println!(
                    "prep-lint: static analysis for PREP-UC concurrency & persistence invariants\n\
                     \n\
                     usage: prep-lint [--deny] [--root DIR] [--config FILE] [--list-rules] [FILES…]\n\
                     \n\
                     --deny        exit 1 if any finding is reported\n\
                     --root DIR    workspace root (default: nearest ancestor with lint.toml)\n\
                     --config FILE lint.toml to load (default: <root>/lint.toml)\n\
                     --list-rules  print every rule id and exit\n\
                     FILES         lint only these files (workspace-relative or absolute)"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag: {other}")),
            other => args.files.push(PathBuf::from(other)),
        }
    }
    Ok(args)
}

/// Nearest ancestor of `start` that looks like the workspace root.
fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("lint.toml").is_file() {
            return Some(d);
        }
        if let Ok(manifest) = std::fs::read_to_string(d.join("Cargo.toml")) {
            if manifest.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if args.list_rules {
        for r in rule_ids::ALL {
            println!("{r}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    let cwd = std::env::current_dir().map_err(|e| format!("current_dir: {e}"))?;
    let root = match &args.root {
        Some(r) => r.clone(),
        None => find_root(&cwd).ok_or("no lint.toml or [workspace] Cargo.toml found above cwd")?,
    };
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| root.join("lint.toml"));
    let cfg = if config_path.is_file() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("reading {}: {e}", config_path.display()))?;
        Config::from_toml(&text).map_err(|e| format!("{}: {e}", config_path.display()))?
    } else {
        Config::default()
    };

    let diags = if args.files.is_empty() {
        lint_workspace(&root, &cfg)?
    } else {
        let mut files = Vec::new();
        for f in &args.files {
            let abs = if f.is_absolute() {
                f.clone()
            } else {
                cwd.join(f)
            };
            let rel = abs
                .strip_prefix(&root)
                .unwrap_or(&abs)
                .to_string_lossy()
                .replace('\\', "/");
            let src = std::fs::read_to_string(&abs)
                .map_err(|e| format!("reading {}: {e}", abs.display()))?;
            files.push((rel, src));
        }
        lint_files(&files, &cfg)
    };

    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("prep-lint: clean");
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("prep-lint: {} finding(s)", diags.len());
        Ok(if args.deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        })
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("prep-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
