//! prep-lint CLI.
//!
//! ```text
//! cargo run -p prep-lint -- --deny            # lint the workspace, exit 1 on findings
//! cargo run -p prep-lint -- --json            # JSON-lines output (suppressions included)
//! cargo run -p prep-lint -- --explain RULE    # print a rule's rationale
//! cargo run -p prep-lint -- --list-rules      # print every rule id
//! cargo run -p prep-lint -- path/to/file.rs   # lint specific files
//! ```
//!
//! The workspace root is `--root <dir>` if given, else the nearest
//! ancestor of the current directory containing `lint.toml` (falling
//! back to `Cargo.toml` with a `[workspace]` table), so the binary works
//! from any subdirectory. `--config <file>` overrides the config path.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use prep_lint::{
    diag, lint_files, lint_files_all, lint_workspace, lint_workspace_all, rule_ids, Config,
    Diagnostic,
};

struct Args {
    deny: bool,
    list_rules: bool,
    json: bool,
    explain: Option<String>,
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny: false,
        list_rules: false,
        json: false,
        explain: None,
        root: None,
        config: None,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--json" => args.json = true,
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain needs a rule id")?);
            }
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?))
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?))
            }
            "--help" | "-h" => {
                println!(
                    "prep-lint: static analysis for PREP-UC concurrency & persistence invariants\n\
                     \n\
                     usage: prep-lint [--deny] [--json] [--root DIR] [--config FILE]\n\
                     \x20                [--list-rules] [--explain RULE] [FILES…]\n\
                     \n\
                     --deny         exit 1 if any finding is reported\n\
                     --json         one JSON object per finding (suppressed ones included,\n\
                     \x20               marked with their allow reason); --deny still counts\n\
                     \x20               only unsuppressed findings\n\
                     --explain RULE print the rationale behind a rule id and exit\n\
                     --root DIR     workspace root (default: nearest ancestor with lint.toml)\n\
                     --config FILE  lint.toml to load (default: <root>/lint.toml)\n\
                     --list-rules   print every rule id and exit\n\
                     FILES          lint only these files (workspace-relative or absolute)"
                );
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag: {other}")),
            other => args.files.push(PathBuf::from(other)),
        }
    }
    Ok(args)
}

/// Nearest ancestor of `start` that looks like the workspace root.
fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("lint.toml").is_file() {
            return Some(d);
        }
        if let Ok(manifest) = std::fs::read_to_string(d.join("Cargo.toml")) {
            if manifest.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Minimal JSON string escaping (the subset `String` needs).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One finding as a single JSON line (stable key order).
fn json_line(d: &Diagnostic) -> String {
    let mut out = String::new();
    out.push('{');
    out.push_str(&format!("\"file\":{}", json_str(&d.path)));
    out.push_str(&format!(",\"line\":{}", d.line));
    out.push_str(&format!(",\"col\":{}", d.col));
    out.push_str(&format!(",\"end_line\":{}", d.end_line));
    out.push_str(&format!(",\"rule\":{}", json_str(d.rule)));
    out.push_str(&format!(",\"message\":{}", json_str(&d.message)));
    if let Some(s) = &d.suggestion {
        out.push_str(&format!(",\"suggestion\":{}", json_str(s)));
    }
    if !d.chain.is_empty() {
        out.push_str(",\"chain\":[");
        for (i, step) in d.chain.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"fn\":{},\"file\":{},\"line\":{}}}",
                json_str(&step.func),
                json_str(&step.path),
                step.line
            ));
        }
        out.push(']');
    }
    if let Some(r) = &d.suppressed_by {
        out.push_str(&format!(",\"suppressed_by\":{}", json_str(r)));
    }
    out.push('}');
    out
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    if args.list_rules {
        for r in rule_ids::ALL {
            println!("{r}");
        }
        return Ok(ExitCode::SUCCESS);
    }
    if let Some(rule) = &args.explain {
        return match diag::explain(rule) {
            Some(text) => {
                println!("{rule}\n\n{text}");
                Ok(ExitCode::SUCCESS)
            }
            None => Err(format!(
                "unknown rule id `{rule}` — see --list-rules for the full set"
            )),
        };
    }

    let cwd = std::env::current_dir().map_err(|e| format!("current_dir: {e}"))?;
    let root = match &args.root {
        Some(r) => r.clone(),
        None => find_root(&cwd).ok_or("no lint.toml or [workspace] Cargo.toml found above cwd")?,
    };
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| root.join("lint.toml"));
    let cfg = if config_path.is_file() {
        let text = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("reading {}: {e}", config_path.display()))?;
        Config::from_toml(&text).map_err(|e| format!("{}: {e}", config_path.display()))?
    } else {
        Config::default()
    };

    let diags = if args.files.is_empty() {
        if args.json {
            lint_workspace_all(&root, &cfg)?
        } else {
            lint_workspace(&root, &cfg)?
        }
    } else {
        let mut files = Vec::new();
        for f in &args.files {
            let abs = if f.is_absolute() {
                f.clone()
            } else {
                cwd.join(f)
            };
            let rel = abs
                .strip_prefix(&root)
                .unwrap_or(&abs)
                .to_string_lossy()
                .replace('\\', "/");
            let src = std::fs::read_to_string(&abs)
                .map_err(|e| format!("reading {}: {e}", abs.display()))?;
            files.push((rel, src));
        }
        if args.json {
            lint_files_all(&files, &cfg)
        } else {
            lint_files(&files, &cfg)
        }
    };

    if args.json {
        for d in &diags {
            println!("{}", json_line(d));
        }
    } else {
        for d in &diags {
            println!("{d}");
        }
    }
    // `--deny` gates on *active* findings only; `--json` additionally
    // prints the suppressed ones for the baseline diff.
    let active = diags.iter().filter(|d| d.suppressed_by.is_none()).count();
    if active == 0 {
        eprintln!("prep-lint: clean");
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!("prep-lint: {active} finding(s)");
        Ok(if args.deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        })
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("prep-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
