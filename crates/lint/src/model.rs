//! Lightweight per-file item model.
//!
//! Built from the token stream of [`crate::lexer`], this recovers just
//! enough structure for the rules: function spans, struct fields with
//! their type text, `#[cfg(test)]` / `#[test]` spans, unsafe sites, call
//! sites with argument spans, and comment *attachment* — which code line
//! each comment annotates, so `// ord:` / `// shared-line:` /
//! `// SAFETY:` / `// lint:allow(...)` justifications can be matched to
//! the constructs they cover.
//!
//! It is deliberately not a parser: brace/paren matching over significant
//! tokens plus a handful of keyword-triggered recognizers. That is enough
//! to be exact about *where* things are (positions come straight from
//! token spans) without chasing the full grammar.

use std::ops::Range;

use crate::lexer::{lex, LineMap, TokKind, Token};

/// A comment with the line it annotates.
///
/// A trailing comment (code earlier on the same line) anchors to its own
/// line; a comment-only line anchors to the next line holding code, so a
/// block of comment lines above an item all annotate that item.
#[derive(Debug)]
pub struct CommentAnn {
    /// Line whose code this comment annotates (1-based).
    pub anchor_line: u32,
    /// Line the comment itself starts on.
    pub line: u32,
    /// Column of the comment start.
    pub col: u32,
    /// Comment content, delimiters stripped, trimmed.
    pub text: String,
}

/// What kind of construct an `unsafe` keyword introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    Block,
    Fn,
    Impl,
    Trait,
    Other,
}

/// One `unsafe` site.
#[derive(Debug)]
pub struct UnsafeSite {
    pub kind: UnsafeKind,
    pub byte: usize,
    pub line: u32,
    pub col: u32,
}

/// One declared parameter of a `fn` item.
#[derive(Debug)]
pub struct ParamItem {
    pub name: String,
    /// Source text of the declared type, whitespace-normalized (same
    /// convention as [`FieldItem::ty`]).
    pub ty: String,
}

/// One `fn` item (free, inherent, trait method — anything with a body).
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    /// Byte offset of the name.
    pub byte: usize,
    pub line: u32,
    /// Byte span of the body, braces included.
    pub body: Range<usize>,
    /// Carried a `#[test]`-style attribute directly.
    pub test_attr: bool,
    /// Takes `self` in any form (`self`, `&self`, `&mut self`, `self: …`).
    pub has_self: bool,
    /// Named parameters with their type text (`self` and destructuring
    /// patterns excluded).
    pub params: Vec<ParamItem>,
}

/// One `impl` block: `impl Type { … }` or `impl Trait for Type { … }`.
#[derive(Debug)]
pub struct ImplItem {
    /// The implementing type's head identifier (`DistRwLock` for
    /// `impl<T> ReplicaLock<T> for DistRwLock<T>`).
    pub ty: String,
    /// The implemented trait's head identifier, if any.
    pub trait_name: Option<String>,
    pub byte: usize,
    pub line: u32,
    /// Byte span of the block body, braces included.
    pub body: Range<usize>,
}

/// One `trait` definition with a body.
#[derive(Debug)]
pub struct TraitItem {
    pub name: String,
    pub byte: usize,
    pub line: u32,
    /// Byte span of the body, braces included.
    pub body: Range<usize>,
}

/// One field of a braced struct.
#[derive(Debug)]
pub struct FieldItem {
    pub name: String,
    pub byte: usize,
    pub line: u32,
    pub col: u32,
    /// Source text of the declared type, whitespace-normalized.
    pub ty: String,
}

/// One braced struct definition.
#[derive(Debug)]
pub struct StructItem {
    pub name: String,
    pub byte: usize,
    pub line: u32,
    pub fields: Vec<FieldItem>,
}

/// One call site: `name(...)` or `.name(...)`.
#[derive(Debug)]
pub struct CallSite {
    /// The called identifier (method or function name).
    pub method: String,
    /// Preceded by `.` — a method call.
    pub is_method: bool,
    /// For method calls, the nearest plain identifier the receiver chain
    /// ends in (`self.readers[i].load(..)` → `readers`), used to look a
    /// field's declared type up; `None` when the receiver is an
    /// expression.
    pub recv: Option<String>,
    /// Byte offset of the called identifier.
    pub byte: usize,
    pub line: u32,
    pub col: u32,
    /// Line of the closing parenthesis (calls may span lines).
    pub end_line: u32,
    /// Significant-token index range of the argument list (parens
    /// excluded), into [`FileModel::sig`].
    pub args: Range<usize>,
}

/// The per-file model the rules run over.
pub struct FileModel<'a> {
    pub src: &'a str,
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of significant (non-trivia) tokens.
    pub sig: Vec<usize>,
    pub lines: LineMap,
    pub comments: Vec<CommentAnn>,
    /// Inner attributes (`#![…]`), whitespace-stripped content.
    pub inner_attrs: Vec<String>,
    pub fns: Vec<FnItem>,
    pub structs: Vec<StructItem>,
    pub impls: Vec<ImplItem>,
    pub traits: Vec<TraitItem>,
    pub unsafe_sites: Vec<UnsafeSite>,
    pub calls: Vec<CallSite>,
    /// Byte ranges of `#[cfg(test)] mod … { … }` bodies.
    pub test_spans: Vec<Range<usize>>,
}

impl<'a> FileModel<'a> {
    /// Text of significant token `k` (an index into [`FileModel::sig`]).
    pub fn txt(&self, k: usize) -> &'a str {
        self.tokens[self.sig[k]].text(self.src)
    }

    fn tok(&self, k: usize) -> &Token {
        &self.tokens[self.sig[k]]
    }

    /// Byte offset of significant token `k`.
    pub fn byte(&self, k: usize) -> usize {
        self.tok(k).start
    }

    /// Number of significant tokens.
    pub fn sig_len(&self) -> usize {
        self.sig.len()
    }

    /// Kind of significant token `k`.
    pub fn tok_kind(&self, k: usize) -> TokKind {
        self.tok(k).kind
    }

    /// 1-based `(line, col)` of byte offset `off`.
    pub fn line_col(&self, off: usize) -> (u32, u32) {
        self.lines.line_col(off)
    }

    /// Whether byte offset `off` falls in test code: a `#[cfg(test)]` mod
    /// or a `#[test]`-attributed fn body.
    pub fn in_test(&self, off: usize) -> bool {
        self.test_spans.iter().any(|s| s.contains(&off))
            || self
                .fns
                .iter()
                .any(|f| f.test_attr && f.body.contains(&off))
    }

    /// All comments annotating lines `lo..=hi`.
    pub fn anns(&self, lo: u32, hi: u32) -> impl Iterator<Item = &CommentAnn> {
        self.comments
            .iter()
            .filter(move |c| c.anchor_line >= lo && c.anchor_line <= hi)
    }

    /// Whether some comment annotating lines `lo..=hi` starts with
    /// `marker` (e.g. `"ord:"`, `"SAFETY:"`, `"shared-line:"`).
    pub fn has_marker(&self, lo: u32, hi: u32, marker: &str) -> bool {
        self.anns(lo, hi).any(|c| c.text.starts_with(marker))
    }

    /// The innermost impl block whose body contains byte `off`.
    pub fn impl_at(&self, off: usize) -> Option<&ImplItem> {
        self.impls
            .iter()
            .filter(|i| i.body.contains(&off))
            .min_by_key(|i| i.body.len())
    }

    /// The innermost trait body containing byte `off` (for default
    /// methods).
    pub fn trait_at(&self, off: usize) -> Option<&TraitItem> {
        self.traits
            .iter()
            .filter(|t| t.body.contains(&off))
            .min_by_key(|t| t.body.len())
    }

    /// Index into `sig` of the significant token starting at byte `off`,
    /// if any.
    pub fn sig_at_byte(&self, off: usize) -> Option<usize> {
        self.sig
            .binary_search_by_key(&off, |&i| self.tokens[i].start)
            .ok()
    }

    /// The innermost fn whose body contains byte `off`.
    pub fn fn_at(&self, off: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.contains(&off))
            .min_by_key(|f| f.body.len())
    }

    /// Index (into `sig`) of the token matching the opener at `open`
    /// (`{`/`}`, `(`/`)`, `[`/`]`). Returns `sig.len()` if unbalanced.
    pub fn matching(&self, open: usize) -> usize {
        let (o, c) = match self.txt(open) {
            "{" => ("{", "}"),
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            _ => return open,
        };
        let mut depth = 0usize;
        for k in open..self.sig.len() {
            let t = self.txt(k);
            if t == o {
                depth += 1;
            } else if t == c {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
        }
        self.sig.len()
    }

    /// Builds the model for `src`.
    pub fn build(src: &'a str) -> Self {
        let tokens = lex(src);
        let lines = LineMap::new(src);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_significant())
            .map(|(i, _)| i)
            .collect();

        let comments = attach_comments(src, &tokens, &lines);

        let mut m = FileModel {
            src,
            tokens,
            sig,
            lines,
            comments,
            inner_attrs: Vec::new(),
            fns: Vec::new(),
            structs: Vec::new(),
            impls: Vec::new(),
            traits: Vec::new(),
            unsafe_sites: Vec::new(),
            calls: Vec::new(),
            test_spans: Vec::new(),
        };
        m.scan_items();
        m.scan_calls();
        m
    }

    /// Single linear pass over significant tokens recognizing items. The
    /// pass descends through every brace (bodies, struct literals, blocks)
    /// rather than skipping them, so nested items are found wherever they
    /// hide.
    fn scan_items(&mut self) {
        let n = self.sig.len();
        let mut pending_cfg_test = false;
        let mut pending_test_attr = false;
        let mut k = 0;
        while k < n {
            let t = self.txt(k);
            match t {
                "#" => {
                    let inner = k + 1 < n && self.txt(k + 1) == "!";
                    let open = k + if inner { 2 } else { 1 };
                    if open < n && self.txt(open) == "[" {
                        let close = self.matching(open);
                        let end = if close < n {
                            self.byte(close)
                        } else {
                            self.src.len()
                        };
                        let text: String = self.src[self.tok(open).end..end]
                            .split_whitespace()
                            .collect();
                        if inner {
                            self.inner_attrs.push(text);
                        } else {
                            if text.starts_with("cfg(")
                                && text.contains("test")
                                && !text.contains("not(test")
                            {
                                pending_cfg_test = true;
                            }
                            if text == "test" || text.ends_with("::test") {
                                pending_test_attr = true;
                            }
                        }
                        k = close + 1;
                        continue;
                    }
                    k += 1;
                }
                "mod" => {
                    if pending_cfg_test && k + 2 < n && self.txt(k + 2) == "{" {
                        let close = self.matching(k + 2);
                        let end = if close < n {
                            self.tok(close).end
                        } else {
                            self.src.len()
                        };
                        self.test_spans.push(self.byte(k)..end);
                    }
                    pending_cfg_test = false;
                    pending_test_attr = false;
                    k += 1;
                }
                "fn" => {
                    if k + 1 < n && self.tok(k + 1).kind == TokKind::Ident {
                        let name = self.txt(k + 1).to_string();
                        let byte = self.byte(k + 1);
                        // Find the body `{` (or `;` for a bodiless decl),
                        // tracking () and [] so `[u8; 4]` params don't end
                        // the search early.
                        let mut depth = 0i32;
                        // Angle depth, so a `Fn(…)` bound inside the
                        // generics list is not mistaken for the params.
                        let mut ang = 0i32;
                        let mut j = k + 2;
                        let mut body = None;
                        let mut params_open = None;
                        while j < n {
                            match self.txt(j) {
                                "<" => ang += 1,
                                ">" if ang > 0 && self.txt(j - 1) != "-" => ang -= 1,
                                "(" | "[" => {
                                    if depth == 0
                                        && ang == 0
                                        && params_open.is_none()
                                        && self.txt(j) == "("
                                    {
                                        params_open = Some(j);
                                    }
                                    depth += 1;
                                }
                                ")" | "]" => depth -= 1,
                                "{" if depth == 0 => {
                                    body = Some(j);
                                    break;
                                }
                                ";" if depth == 0 => break,
                                _ => {}
                            }
                            j += 1;
                        }
                        if let Some(open) = body {
                            let close = self.matching(open);
                            let end = if close < n {
                                self.tok(close).end
                            } else {
                                self.src.len()
                            };
                            let (has_self, params) = match params_open {
                                Some(p) => self.parse_params(p + 1, self.matching(p).min(n)),
                                None => (false, Vec::new()),
                            };
                            self.fns.push(FnItem {
                                name,
                                byte,
                                line: self.lines.line_of(byte),
                                body: self.byte(open)..end,
                                test_attr: pending_test_attr,
                                has_self,
                                params,
                            });
                        }
                    }
                    pending_cfg_test = false;
                    pending_test_attr = false;
                    k += 1;
                }
                "struct" => {
                    if k + 1 < n && self.tok(k + 1).kind == TokKind::Ident {
                        let sname = self.txt(k + 1).to_string();
                        let sbyte = self.byte(k + 1);
                        // Skip generics to the body / tuple / unit end.
                        let mut j = k + 2;
                        while j < n && !matches!(self.txt(j), "{" | "(" | ";") {
                            j += 1;
                        }
                        // Unit and tuple structs are still recorded (with
                        // no named fields) so type-level annotations like
                        // `// lock-level:` attach to them.
                        let fields = if j < n && self.txt(j) == "{" {
                            let close = self.matching(j);
                            self.parse_fields(j + 1, close.min(n))
                        } else {
                            Vec::new()
                        };
                        self.structs.push(StructItem {
                            name: sname,
                            byte: sbyte,
                            line: self.lines.line_of(sbyte),
                            fields,
                        });
                    }
                    pending_cfg_test = false;
                    pending_test_attr = false;
                    k += 1;
                }
                "unsafe" => {
                    let kind = match self.txt((k + 1).min(n - 1)) {
                        "{" => UnsafeKind::Block,
                        "fn" => UnsafeKind::Fn,
                        "impl" => UnsafeKind::Impl,
                        "trait" => UnsafeKind::Trait,
                        _ => UnsafeKind::Other,
                    };
                    let byte = self.byte(k);
                    let (line, col) = self.lines.line_col(byte);
                    self.unsafe_sites.push(UnsafeSite {
                        kind,
                        byte,
                        line,
                        col,
                    });
                    k += 1;
                }
                "impl" => {
                    // Only item-position `impl`: `impl Trait` in argument
                    // or return-type position (preceded by `(`, `,`, `:`,
                    // `>`, `&`, …) is a type, not an item.
                    let item_pos =
                        k == 0 || matches!(self.txt(k - 1), ";" | "}" | "{" | "unsafe" | "]");
                    if !item_pos {
                        k += 1;
                        continue;
                    }
                    if let Some((item, resume)) = self.parse_impl_header(k) {
                        self.impls.push(item);
                        k = resume;
                    } else {
                        k += 1;
                    }
                    pending_cfg_test = false;
                    pending_test_attr = false;
                }
                "trait" => {
                    if k + 1 < n && self.tok(k + 1).kind == TokKind::Ident {
                        let name = self.txt(k + 1).to_string();
                        let byte = self.byte(k + 1);
                        // Skip generics / supertrait bounds to the body.
                        let mut j = k + 2;
                        let mut depth = 0i32;
                        while j < n {
                            match self.txt(j) {
                                "(" | "[" => depth += 1,
                                ")" | "]" => depth -= 1,
                                "{" if depth == 0 => break,
                                ";" if depth == 0 => break,
                                _ => {}
                            }
                            j += 1;
                        }
                        if j < n && self.txt(j) == "{" {
                            let close = self.matching(j);
                            let end = if close < n {
                                self.tok(close).end
                            } else {
                                self.src.len()
                            };
                            self.traits.push(TraitItem {
                                name,
                                byte,
                                line: self.lines.line_of(byte),
                                body: self.byte(j)..end,
                            });
                        }
                    }
                    pending_cfg_test = false;
                    pending_test_attr = false;
                    k += 1;
                }
                // Item keywords that consume pending attributes.
                "use" | "static" | "const" | "enum" | "type" | "union" | "macro_rules" => {
                    pending_cfg_test = false;
                    pending_test_attr = false;
                    k += 1;
                }
                ";" | "{" | "}" | "=" => {
                    pending_cfg_test = false;
                    pending_test_attr = false;
                    k += 1;
                }
                _ => k += 1,
            }
        }
    }

    /// Parses the fields of a braced struct body spanning significant
    /// tokens `(start..close)` (exclusive of both braces).
    fn parse_fields(&self, start: usize, close: usize) -> Vec<FieldItem> {
        let mut fields = Vec::new();
        let mut k = start;
        while k < close {
            // Skip field attributes.
            while k < close && self.txt(k) == "#" {
                if k + 1 < close && self.txt(k + 1) == "[" {
                    k = self.matching(k + 1) + 1;
                } else {
                    k += 1;
                }
            }
            // Skip visibility.
            if k < close && self.txt(k) == "pub" {
                k += 1;
                if k < close && self.txt(k) == "(" {
                    k = self.matching(k) + 1;
                }
            }
            if k + 1 >= close || self.tok(k).kind != TokKind::Ident || self.txt(k + 1) != ":" {
                break;
            }
            let name = self.txt(k).to_string();
            let byte = self.byte(k);
            let (line, col) = self.lines.line_col(byte);
            // Type runs to the next comma at depth 0. `<`/`>` are tracked
            // as generic brackets; `->` must not close one.
            let ty_start = k + 2;
            let mut depth = 0i32;
            let mut j = ty_start;
            while j < close {
                match self.txt(j) {
                    "<" => depth += 1,
                    ">" if j > ty_start && self.txt(j - 1) == "-" => {}
                    ">" => depth -= 1,
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "," if depth <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let ty: String = (ty_start..j)
                .map(|p| self.txt(p))
                .collect::<Vec<_>>()
                .join(" ");
            fields.push(FieldItem {
                name,
                byte,
                line,
                col,
                ty,
            });
            k = j + 1;
        }
        fields
    }

    /// Parses one `impl` header starting at significant token `k` (the
    /// `impl` keyword). Returns the item and the token index to resume
    /// scanning at (just past the opening brace, so nested items are
    /// still discovered), or `None` for headers without a brace body.
    fn parse_impl_header(&self, k: usize) -> Option<(ImplItem, usize)> {
        let n = self.sig.len();
        let byte = self.byte(k);
        let mut j = k + 1;
        // Skip the generics list.
        if j < n && self.txt(j) == "<" {
            let mut ang = 1i32;
            j += 1;
            while j < n && ang > 0 {
                match self.txt(j) {
                    "<" => ang += 1,
                    ">" if self.txt(j - 1) != "-" => ang -= 1,
                    _ => {}
                }
                j += 1;
            }
        }
        // Collect the head identifier of a type path: the last depth-0
        // ident before `for` / `where` / `{` (generic arguments and
        // `(`-groups are skipped, so `Box<Slot<T>>` heads at `Box`).
        let head = |j: &mut usize| -> Option<String> {
            let mut last = None;
            let mut ang = 0i32;
            let mut depth = 0i32;
            while *j < n {
                let t = self.txt(*j);
                match t {
                    "<" => ang += 1,
                    ">" if ang > 0 && self.txt(*j - 1) != "-" => ang -= 1,
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "for" | "where" | "{" | ";" if ang == 0 && depth == 0 => break,
                    "dyn" | "mut" | "const" => {}
                    _ if ang == 0 && depth == 0 && self.tok(*j).kind == TokKind::Ident => {
                        last = Some(t.to_string());
                    }
                    _ => {}
                }
                *j += 1;
            }
            last
        };
        let first = head(&mut j)?;
        let (trait_name, ty) = if j < n && self.txt(j) == "for" {
            j += 1;
            (Some(first), head(&mut j)?)
        } else {
            (None, first)
        };
        // Skip a `where` clause to the body brace.
        while j < n && self.txt(j) != "{" {
            if self.txt(j) == ";" {
                return None;
            }
            j += 1;
        }
        if j >= n {
            return None;
        }
        let close = self.matching(j);
        let end = if close < n {
            self.tok(close).end
        } else {
            self.src.len()
        };
        Some((
            ImplItem {
                ty,
                trait_name,
                byte,
                line: self.lines.line_of(byte),
                body: self.byte(j)..end,
            },
            j + 1,
        ))
    }

    /// Parses a fn parameter list spanning significant tokens
    /// `(start..close)` (parens excluded): whether a `self` receiver is
    /// present, plus each `name: Type` pair (patterns are skipped).
    fn parse_params(&self, start: usize, close: usize) -> (bool, Vec<ParamItem>) {
        let mut has_self = false;
        let mut params = Vec::new();
        let mut k = start;
        while k < close {
            // One parameter: tokens to the next depth-0 comma.
            let pstart = k;
            let mut depth = 0i32;
            let mut ang = 0i32;
            while k < close {
                match self.txt(k) {
                    "<" => ang += 1,
                    ">" if ang > 0 && self.txt(k - 1) != "-" => ang -= 1,
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "," if depth == 0 && ang == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            let pend = k;
            k += 1; // past the comma
            if (pstart..pend).any(|p| self.txt(p) == "self") {
                has_self = true;
                continue;
            }
            // `mut name: Type` / `name: Type`; anything fancier (tuple or
            // struct patterns) is skipped.
            let mut p = pstart;
            if p < pend && self.txt(p) == "mut" {
                p += 1;
            }
            if p + 1 < pend && self.tok(p).kind == TokKind::Ident && self.txt(p + 1) == ":" {
                let name = self.txt(p).to_string();
                let ty: String = (p + 2..pend)
                    .map(|q| self.txt(q))
                    .collect::<Vec<_>>()
                    .join(" ");
                params.push(ParamItem { name, ty });
            }
        }
        (has_self, params)
    }

    /// Collects every `name(…)` / `.name(…)` call site.
    fn scan_calls(&mut self) {
        const NOT_CALLS: &[&str] = &[
            "if", "while", "for", "match", "return", "in", "as", "move", "fn", "loop", "else",
            "let", "mut", "ref", "impl", "dyn", "box", "unsafe", "use", "where", "async", "pub",
            "crate",
        ];
        let n = self.sig.len();
        let mut calls = Vec::new();
        for k in 0..n.saturating_sub(1) {
            if self.tok(k).kind != TokKind::Ident || self.txt(k + 1) != "(" {
                continue;
            }
            let name = self.txt(k);
            if NOT_CALLS.contains(&name) {
                continue;
            }
            // `fn name(` is a definition, not a call.
            if k > 0 && self.txt(k - 1) == "fn" {
                continue;
            }
            let is_method = k > 0 && self.txt(k - 1) == ".";
            let recv = if is_method && k >= 2 {
                let mut j = k - 2;
                // Step back over one `[…]` / `(…)` group.
                loop {
                    let t = self.txt(j);
                    if t == "]" || t == ")" {
                        let (open, close) = if t == "]" { ("[", "]") } else { ("(", ")") };
                        let mut depth = 0i32;
                        let mut found = None;
                        let mut p = j;
                        loop {
                            let u = self.txt(p);
                            if u == close {
                                depth += 1;
                            } else if u == open {
                                depth -= 1;
                                if depth == 0 {
                                    found = Some(p);
                                    break;
                                }
                            }
                            if p == 0 {
                                break;
                            }
                            p -= 1;
                        }
                        match found {
                            Some(p) if p > 0 => {
                                j = p - 1;
                                continue;
                            }
                            _ => break None,
                        }
                    }
                    break if self.tok(j).kind == TokKind::Ident {
                        Some(self.txt(j).to_string())
                    } else {
                        None
                    };
                }
            } else {
                None
            };
            let close = self.matching(k + 1);
            let byte = self.byte(k);
            let (line, col) = self.lines.line_col(byte);
            let end_line = if close < n {
                self.lines.line_of(self.byte(close))
            } else {
                line
            };
            calls.push(CallSite {
                method: name.to_string(),
                is_method,
                recv,
                byte,
                line,
                col,
                end_line,
                args: (k + 2)..close.min(n),
            });
        }
        self.calls = calls;
    }
}

/// Computes comment attachment (see [`CommentAnn`]).
fn attach_comments(src: &str, tokens: &[Token], lines: &LineMap) -> Vec<CommentAnn> {
    // For every line, does it hold a significant token? Attribute lines
    // (`#[...]` / `#![...]`) are excluded: a comment above an attribute
    // annotates the item under it, not the attribute, so the cascade must
    // pass through.
    let mut code_lines = std::collections::BTreeSet::new();
    let mut attr_lines = std::collections::BTreeSet::new();
    let sig: Vec<&Token> = tokens.iter().filter(|t| t.is_significant()).collect();
    let mut k = 0;
    while k < sig.len() {
        if sig[k].text(src) == "#"
            && sig
                .get(k + 1)
                .is_some_and(|t| t.text(src) == "[" || t.text(src) == "!")
        {
            // Span the whole attribute (to its closing `]`).
            let mut depth = 0i32;
            let start = sig[k].start;
            let mut end = sig[k].end;
            let mut j = k + 1;
            while j < sig.len() {
                match sig[j].text(src) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            end = sig[j].end;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            for l in lines.line_of(start)..=lines.line_of(end.saturating_sub(1).max(start)) {
                attr_lines.insert(l);
            }
            k = j + 1;
            continue;
        }
        k += 1;
    }
    for t in &sig {
        let lo = lines.line_of(t.start);
        let hi = lines.line_of(t.end.saturating_sub(1).max(t.start));
        for l in lo..=hi {
            if !attr_lines.contains(&l) {
                code_lines.insert(l);
            }
        }
    }
    let mut out = Vec::new();
    for t in tokens {
        let text = match t.kind {
            TokKind::LineComment => t
                .text(src)
                .trim_start_matches('/')
                .trim_start_matches('!')
                .trim(),
            TokKind::BlockComment => t
                .text(src)
                .trim_start_matches("/*")
                .trim_end_matches("*/")
                .trim(),
            _ => continue,
        };
        let (line, col) = lines.line_col(t.start);
        let anchor = if code_lines.contains(&line) {
            line
        } else {
            // Comment-only line: annotate the next code line.
            code_lines.range(line..).next().copied().unwrap_or(line)
        };
        out.push(CommentAnn {
            anchor_line: anchor,
            line,
            col,
            text: text.to_string(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fns_structs_and_test_spans() {
        let src = r#"
pub struct S {
    pub count: CachePadded<AtomicU64>,
    flag: AtomicBool,
}

impl S {
    fn touch(&self) {
        self.flag.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn probe() {
        x.load(Ordering::Relaxed);
    }
}
"#;
        let m = FileModel::build(src);
        assert_eq!(m.structs.len(), 1);
        let s = &m.structs[0];
        assert_eq!(s.name, "S");
        assert_eq!(s.fields.len(), 2);
        assert_eq!(s.fields[0].name, "count");
        assert!(s.fields[0].ty.contains("CachePadded"));
        assert_eq!(s.fields[1].ty, "AtomicBool");
        let touch = m.fns.iter().find(|f| f.name == "touch").unwrap();
        assert!(!m.in_test(touch.byte));
        let probe = m.fns.iter().find(|f| f.name == "probe").unwrap();
        assert!(probe.test_attr);
        assert!(m.in_test(probe.byte));
        let store = m.calls.iter().find(|c| c.method == "store").unwrap();
        assert_eq!(store.recv.as_deref(), Some("flag"));
        assert!(!m.in_test(store.byte));
        let load = m.calls.iter().find(|c| c.method == "load").unwrap();
        assert!(m.in_test(load.byte));
    }

    #[test]
    fn cfg_attr_not_test_is_not_a_test_span() {
        let src = "#[cfg_attr(not(test), allow(dead_code))]\nfn helper() { rt.sfence(); }\n";
        let m = FileModel::build(src);
        let f = m.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(!f.test_attr);
        assert!(!m.in_test(f.body.start + 1));
    }

    #[test]
    fn comment_attachment() {
        let src = "// above\n// also above\nlet x = 1; // trailing\n\nlet y = 2;\n";
        let m = FileModel::build(src);
        let at3: Vec<_> = m.anns(3, 3).map(|c| c.text.clone()).collect();
        assert_eq!(at3, vec!["above", "also above", "trailing"]);
        assert_eq!(m.anns(5, 5).count(), 0);
    }

    #[test]
    fn receiver_through_index_chain() {
        let src = "fn f(&self) { self.readers[i].load(Ordering::SeqCst); }";
        let m = FileModel::build(src);
        let c = m.calls.iter().find(|c| c.method == "load").unwrap();
        assert_eq!(c.recv.as_deref(), Some("readers"));
    }

    #[test]
    fn multiline_call_span() {
        let src = "fn f() {\n    x\n        .compare_exchange(a, b,\n            Ordering::SeqCst, Ordering::Relaxed)\n        .ok();\n}";
        let m = FileModel::build(src);
        let c = m
            .calls
            .iter()
            .find(|c| c.method == "compare_exchange")
            .unwrap();
        assert_eq!(c.line, 3);
        assert_eq!(c.end_line, 4);
    }

    #[test]
    fn unsafe_sites_ignore_strings_and_comments() {
        let src = "// unsafe fn in comment\nlet s = \"unsafe { }\";\nunsafe impl Send for X {}\nfn g() { unsafe { core::hint::unreachable_unchecked() } }";
        let m = FileModel::build(src);
        assert_eq!(m.unsafe_sites.len(), 2);
        assert_eq!(m.unsafe_sites[0].kind, UnsafeKind::Impl);
        assert_eq!(m.unsafe_sites[1].kind, UnsafeKind::Block);
    }

    #[test]
    fn inner_attrs_collected() {
        let src = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\nfn main() {}\n";
        let m = FileModel::build(src);
        assert_eq!(
            m.inner_attrs,
            vec!["forbid(unsafe_code)", "deny(missing_docs)"]
        );
    }
}
