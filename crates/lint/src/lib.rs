//! prep-lint: a workspace static-analysis pass for the concurrency and
//! persistence invariants the PREP-UC design depends on but `rustc`
//! cannot see.
//!
//! The compiler checks types; it does not check that a `SeqCst` is
//! load-bearing, that an atomic field shares a cacheline on purpose,
//! that every persisted store is visible to the persistence sanitizer,
//! or that an `unsafe` block states its invariant. Those are exactly
//! the properties the paper's correctness argument leans on, so this
//! crate machine-checks them:
//!
//! * [`rules::ordering`] — every explicit `Ordering` carries a
//!   `// ord: <why>`; `SeqCst` and relaxed pointer-publishes get
//!   dedicated diagnostics.
//! * [`rules::padding`] — atomic fields in shared structs are
//!   `CachePadded` or justified with `// shared-line: <why>` (§5.1).
//! * [`rules::persist`] — functions driving persist primitives also
//!   trace through the psan hooks (§5 durability, machine-checked).
//! * [`rules::unsafety`] — the lexer-accurate successor to
//!   `ci/check_unsafe.sh`.
//! * [`rules::forbidden`] — configurable API bans (`Instant::now`
//!   outside the latency model, blocking std locks in hot paths,
//!   `thread::sleep` outside `Waiter`).
//! * [`rules::lock_order`] — inter-procedural lock hierarchy over the
//!   workspace call graph ([`graph`]): `// lock-level:` declarations,
//!   rank inversions, static deadlock cycles, undeclared lock types.
//! * [`rules::flush_publish`] — psan rule 1 at lint time: every path
//!   from an NVM store to a publish site passes a flush and an sfence,
//!   propagated through calls by [`flow`] summaries.
//!
//! Findings are suppressed only by `// lint:allow(<rule>): <reason>`
//! with a mandatory reason; the reason-less form is itself a finding.
//! Everything here is dependency-free: a hand-rolled lexer
//! ([`lexer`]), a lightweight item model ([`model`]), and a TOML-subset
//! config parser ([`config`]).

#![forbid(unsafe_code)]

pub mod config;
pub mod diag;
pub mod engine;
pub mod flow;
pub mod graph;
pub mod lexer;
pub mod model;
pub mod rules;

pub use config::Config;
pub use diag::{rules as rule_ids, Diagnostic};
pub use engine::{lint_files, lint_files_all, lint_workspace, lint_workspace_all};
pub use model::FileModel;
