//! Rule 5 — forbidden APIs.
//!
//! Token-sequence matching of configured identifier chains
//! (`Instant::now`, `std::sync::Mutex`, `thread::sleep`, …) against
//! non-test code in each entry's path scope. Matching understands `use`
//! trees, so `use std::sync::{Arc, Mutex}` trips the `std::sync::Mutex`
//! ban — the import is the gateway, catching it there covers every later
//! bare `Mutex::new`.

use crate::config::{Config, ForbiddenEntry};
use crate::diag::{rules, Diagnostic};
use crate::lexer::TokKind;
use crate::model::FileModel;

/// Attempts to match `segs` starting at significant-token index `k`.
/// Returns the index of the token matching the last segment.
fn match_chain(model: &FileModel<'_>, k: usize, segs: &[&str]) -> Option<usize> {
    let n = model.sig_len();
    if k >= n {
        return None;
    }
    let t = model.txt(k);
    if t == "{" {
        // A use-tree group: try each path that starts at depth 1.
        let close = model.matching(k);
        let mut p = k + 1;
        while p < close.min(n) {
            let starts_path =
                model.txt(p.saturating_sub(1)) == "{" || model.txt(p.saturating_sub(1)) == ",";
            if starts_path && model.tok_kind(p) == TokKind::Ident {
                if let Some(hit) = match_chain(model, p, segs) {
                    return Some(hit);
                }
            }
            // Skip nested groups wholesale; their contents are visited
            // via recursion above.
            if model.txt(p) == "{" {
                p = model.matching(p);
            }
            p += 1;
        }
        return None;
    }
    if t != segs[0] {
        return None;
    }
    if segs.len() == 1 {
        return Some(k);
    }
    if k + 3 < n && model.txt(k + 1) == ":" && model.txt(k + 2) == ":" {
        return match_chain(model, k + 3, &segs[1..]);
    }
    None
}

fn run_entry(path: &str, model: &FileModel<'_>, e: &ForbiddenEntry, out: &mut Vec<Diagnostic>) {
    if !e.scope.applies(path) {
        return;
    }
    let segs: Vec<&str> = e.pattern.split("::").collect();
    if segs.is_empty() {
        return;
    }
    let n = model.sig_len();
    for k in 0..n {
        if model.tok_kind(k) != TokKind::Ident || model.txt(k) != segs[0] {
            continue;
        }
        let Some(hit) = match_chain(model, k, &segs) else {
            continue;
        };
        let byte = model.byte(k);
        if !e.include_tests && model.in_test(byte) {
            continue;
        }
        let (line, col) = model.line_col(byte);
        let end_line = model.line_col(model.byte(hit)).0;
        out.push(
            Diagnostic::new(
                path,
                line,
                col,
                rules::FORBIDDEN_API,
                format!("[{}] {}: {}", e.name, e.pattern, e.message),
            )
            .suggest(e.suggestion.clone())
            .span_to(end_line),
        );
    }
}

pub fn run(path: &str, model: &FileModel<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    for e in &cfg.forbidden {
        run_entry(path, model, e, out);
    }
}
