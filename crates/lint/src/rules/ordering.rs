//! Rule 1 — atomic-ordering audit.
//!
//! Every atomic access that names an explicit `Ordering` must carry a
//! `// ord: <why>` justification (same line, the lines the call spans, or
//! the comment block directly above). Two sharper sub-diagnostics:
//!
//! * [`rules::ATOMIC_SEQCST`] — `SeqCst` without justification. The
//!   strongest ordering used "to be safe" hides the actual protocol; it
//!   is either load-bearing (say why: usually a store→load
//!   store-buffering pair, as in `DistRwLock`) or a free downgrade.
//! * [`rules::ATOMIC_RELAXED_PUBLISH`] — `Relaxed` on a store/swap that
//!   publishes a pointer (receiver field typed `AtomicPtr`, or the value
//!   comes from `into_raw`). A relaxed publish lets consumers observe the
//!   pointee before its initialization — this one is reported even when
//!   an `ord:` comment is present, and needs an explicit `lint:allow` to
//!   stand.

use crate::config::Config;
use crate::diag::{rules, Diagnostic};
use crate::model::{CallSite, FileModel};

/// Free functions that take an `Ordering` argument: memory fences. A
/// standalone fence is *more* protocol-critical than a per-access
/// ordering (it synchronizes accesses that are not even visible at the
/// call site), so it gets its own rule id.
pub const FENCE_FUNCTIONS: &[&str] = &["fence", "compiler_fence"];

/// Methods that take explicit `Ordering` arguments on std atomics.
pub const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

const ORDERINGS: &[&str] = &["SeqCst", "AcqRel", "Acquire", "Release", "Relaxed"];

/// The ordering identifiers named in a call's argument list.
fn orderings_in(model: &FileModel<'_>, call: &CallSite) -> Vec<&'static str> {
    let mut found = Vec::new();
    for k in call.args.clone() {
        let t = model.txt(k);
        if let Some(o) = ORDERINGS.iter().find(|o| **o == t) {
            if !found.contains(o) {
                found.push(*o);
            }
        }
    }
    found
}

/// Whether the call's value argument looks like a raw-pointer publish.
fn publishes_pointer(model: &FileModel<'_>, call: &CallSite) -> bool {
    if let Some(recv) = &call.recv {
        let field_is_ptr = model
            .structs
            .iter()
            .flat_map(|s| s.fields.iter())
            .any(|f| &f.name == recv && f.ty.contains("AtomicPtr"));
        if field_is_ptr {
            return true;
        }
    }
    call.args
        .clone()
        .any(|k| model.txt(k).ends_with("into_raw"))
}

pub fn run(path: &str, model: &FileModel<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if !cfg.ordering.applies(path) {
        return;
    }
    for call in &model.calls {
        if !call.is_method && FENCE_FUNCTIONS.contains(&call.method.as_str()) {
            let ords = orderings_in(model, call);
            if ords.is_empty() || model.in_test(call.byte) {
                continue;
            }
            if !model.has_marker(call.line, call.end_line, "ord:") {
                out.push(
                    Diagnostic::new(
                        path,
                        call.line,
                        call.col,
                        rules::ATOMIC_FENCE_ORDERING,
                        format!(
                            "`{}({})` lacks a // ord: justification — a standalone fence \
                             orders accesses invisible at the call site; name them",
                            call.method,
                            ords.join("/")
                        ),
                    )
                    .suggest(
                        "add `// ord: <which accesses this fence orders, and with what>` \
                         at the call",
                    )
                    .span_to(call.end_line),
                );
            }
            continue;
        }
        if !call.is_method || !ATOMIC_METHODS.contains(&call.method.as_str()) {
            continue;
        }
        let ords = orderings_in(model, call);
        if ords.is_empty() || model.in_test(call.byte) {
            continue;
        }
        // Justification may sit on any line the call spans or directly
        // above its first line (comment blocks cascade down).
        let justified = model.has_marker(call.line, call.end_line, "ord:");

        if ords.contains(&"Relaxed")
            && matches!(call.method.as_str(), "store" | "swap")
            && publishes_pointer(model, call)
        {
            out.push(
                Diagnostic::new(
                    path,
                    call.line,
                    call.col,
                    rules::ATOMIC_RELAXED_PUBLISH,
                    format!(
                        "`{}` publishes a pointer with Ordering::Relaxed: consumers may read \
                         the pointee before its initialization is visible",
                        call.method
                    ),
                )
                .suggest(
                    "publish with Ordering::Release (pair the consumer load with Acquire), or \
                     justify with // lint:allow(atomic-relaxed-publish): <reason>",
                )
                .span_to(call.end_line),
            );
        }

        if justified {
            continue;
        }
        if ords.contains(&"SeqCst") {
            out.push(
                Diagnostic::new(
                    path,
                    call.line,
                    call.col,
                    rules::ATOMIC_SEQCST,
                    format!(
                        "`{}` uses Ordering::SeqCst without a // ord: justification — \
                         strongest-by-default hides whether the total order is load-bearing",
                        call.method
                    ),
                )
                .suggest(
                    "add `// ord: <why SeqCst>` naming the store→load pair that needs the \
                     total order, or downgrade to Acquire/Release",
                )
                .span_to(call.end_line),
            );
        } else {
            out.push(
                Diagnostic::new(
                    path,
                    call.line,
                    call.col,
                    rules::ATOMIC_ORDERING,
                    format!(
                        "`{}` with explicit Ordering::{} lacks a // ord: justification",
                        call.method,
                        ords.join("/")
                    ),
                )
                .suggest("add `// ord: <why this ordering is sufficient>` at the call")
                .span_to(call.end_line),
            );
        }
    }
}
