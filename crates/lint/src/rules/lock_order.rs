//! `lock-order` family: static lock hierarchy, deadlock cycles, and
//! undeclared lock levels, over the workspace call graph.
//!
//! Levels come from `// lock-level: <n> <why>` comments (type, field, or
//! acquire site) with `[lock-order] ranks` in lint.toml as type-level
//! fallbacks. The discipline: a thread holding a level-n lock may only
//! acquire locks of level > n. [`crate::flow::LockAnalysis`] supplies the
//! acquired-while-holding edges with their inter-procedural chains; this
//! module turns them into findings:
//!
//! * **lock-order** — an edge acquiring a lower (or equal, different-
//!   class) level while holding a higher one. Equal-level cross-class
//!   edges are legal on their own and handled by the cycle check.
//! * **lock-order-cycle** — a cycle among equal-level edges (a cycle
//!   with any strictly descending edge is already an inversion), or a
//!   re-entrant exclusive acquire of one class. Rank monotonicity cannot
//!   rule these out, so they are reported as static deadlocks.
//! * **lock-order-unranked** — a lock-typed acquire inside the scoped
//!   paths with no declared level anywhere: invisible to both checks.

use std::collections::{BTreeMap, BTreeSet};

use crate::config::Config;
use crate::diag::{rules, Diagnostic};
use crate::flow::LockAnalysis;
use crate::graph::Graph;

pub fn run(
    graph: &Graph<'_, '_>,
    analysis: &LockAnalysis,
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
) {
    let scope = &cfg.lock_order.scope;
    let path_of = |fi: usize| graph.files[fi].0.as_str();

    // Rank inversions.
    for e in &analysis.edges {
        if !scope.applies(path_of(e.file)) {
            continue;
        }
        if e.acq_rank == u32::MAX || e.held_rank == u32::MAX {
            continue; // unranked side — reported by the unranked check
        }
        if e.acq_noblock {
            // A `try_*` acquire fails instead of waiting: it cannot
            // deadlock, so it is exempt from the hierarchy.
            continue;
        }
        if e.acq_rank < e.held_rank {
            let d = Diagnostic::new(
                path_of(e.file),
                e.line,
                e.col,
                rules::LOCK_ORDER,
                format!(
                    "acquires `{}` (level {}) while holding `{}` (level {}) — \
                     lock levels must be acquired in increasing order",
                    e.acq_class, e.acq_rank, e.held_class, e.held_rank
                ),
            )
            .span_to(e.end_line)
            .with_chain(e.chain.clone())
            .suggest(format!(
                "release `{}` first, or move `{}` to a level above {} with a \
                 // lock-level: comment where it is declared",
                e.held_class, e.acq_class, e.held_rank
            ));
            out.push(d);
        }
    }

    // Deadlock cycles among equal-level edges. A cycle that mixes levels
    // must contain a descending edge, which the inversion check already
    // reports, so only equal-level edges can form a *new* deadlock.
    let mut succ: BTreeMap<&str, Vec<(&str, usize)>> = BTreeMap::new();
    for (i, e) in analysis.edges.iter().enumerate() {
        if e.acq_rank != e.held_rank || e.acq_rank == u32::MAX || e.acq_noblock {
            continue;
        }
        if e.held_class == e.acq_class {
            // Re-entrant same-class acquire: deadlock unless both sides
            // are shared (reader-reader); non-blocking inner acquires
            // were already excluded above.
            if e.held_shared && e.acq_shared {
                continue;
            }
            if !scope.applies(path_of(e.file)) {
                continue;
            }
            out.push(
                Diagnostic::new(
                    path_of(e.file),
                    e.line,
                    e.col,
                    rules::LOCK_ORDER_CYCLE,
                    format!(
                        "re-entrant acquire of `{}` while already holding it — \
                         self-deadlock on any exclusive overlap",
                        e.acq_class
                    ),
                )
                .span_to(e.end_line)
                .with_chain(e.chain.clone())
                .suggest(
                    "restructure so the guard is released before re-acquiring, or take \
                     the lock once and pass the guard down"
                        .to_string(),
                ),
            );
            continue;
        }
        succ.entry(e.held_class.as_str())
            .or_default()
            .push((e.acq_class.as_str(), i));
    }
    // For each edge a→b: if b reaches a through equal-level edges, the
    // edge closes a cycle. Report once per unordered class pair.
    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for (from, outs) in &succ {
        for &(to, ei) in outs {
            let mut seen: BTreeSet<&str> = BTreeSet::new();
            let mut stack = vec![to];
            let mut reaches = false;
            while let Some(c) = stack.pop() {
                if c == *from {
                    reaches = true;
                    break;
                }
                if !seen.insert(c) {
                    continue;
                }
                if let Some(next) = succ.get(c) {
                    stack.extend(next.iter().map(|&(n, _)| n));
                }
            }
            if !reaches {
                continue;
            }
            let e = &analysis.edges[ei];
            if !scope.applies(path_of(e.file)) {
                continue;
            }
            let mut key = (from.to_string(), to.to_string());
            if key.0 > key.1 {
                key = (key.1, key.0);
            }
            if !reported.insert(key) {
                continue;
            }
            out.push(
                Diagnostic::new(
                    path_of(e.file),
                    e.line,
                    e.col,
                    rules::LOCK_ORDER_CYCLE,
                    format!(
                        "acquire cycle between `{}` and `{}` (both level {}) — \
                         two threads taking them in opposite orders deadlock",
                        e.held_class, e.acq_class, e.held_rank
                    ),
                )
                .span_to(e.end_line)
                .with_chain(e.chain.clone())
                .suggest(format!(
                    "order the acquisitions consistently, or split the level: give \
                     `{}` and `{}` distinct // lock-level: values",
                    e.held_class, e.acq_class
                )),
            );
        }
    }

    // Unranked lock acquisitions.
    for (fi, line, col, end_line, ty) in &analysis.unranked {
        if !scope.applies(path_of(*fi)) {
            continue;
        }
        out.push(
            Diagnostic::new(
                path_of(*fi),
                *line,
                *col,
                rules::LOCK_ORDER_UNRANKED,
                format!(
                    "`{ty}` acquired without a declared lock level — invisible to the \
                     lock-order and deadlock checks"
                ),
            )
            .span_to(*end_line)
            .suggest(format!(
                "add `// lock-level: <n> <why>` where `{ty}` (or the field holding it) \
                 is declared, or a rank in lint.toml [lock-order]"
            )),
        );
    }

    // Level declarations without a rationale.
    for (fi, line, col) in &analysis.ranks.missing_why {
        if !scope.applies(path_of(*fi)) {
            continue;
        }
        out.push(
            Diagnostic::new(
                path_of(*fi),
                *line,
                *col,
                rules::LOCK_ORDER_UNRANKED,
                "`// lock-level:` without a rationale — the level is part of the \
                 deadlock argument and must say why it holds"
                    .to_string(),
            )
            .suggest("write // lock-level: <n> <why this level fits the hierarchy>"),
        );
    }
}
