//! The declarative rule set.
//!
//! Each rule is a function from (path, [`FileModel`], [`Config`]) to
//! findings; crate-level aggregation (the unsafe audit's per-crate
//! attributes) lives in [`unsafety`]. The engine applies `lint:allow`
//! suppression afterwards, so rules themselves stay oblivious to it.

pub mod flush_publish;
pub mod forbidden;
pub mod lock_order;
pub mod ordering;
pub mod padding;
pub mod persist;
pub mod unsafety;

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::flow::{EffectAnalysis, LockAnalysis};
use crate::graph::Graph;
use crate::model::FileModel;

/// Runs every per-file rule over one file.
pub fn run_file_rules(path: &str, model: &FileModel<'_>, cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    ordering::run(path, model, cfg, &mut out);
    padding::run(path, model, cfg, &mut out);
    persist::run(path, model, cfg, &mut out);
    unsafety::run_file(path, model, cfg, &mut out);
    forbidden::run(path, model, cfg, &mut out);
    out
}

/// Runs the inter-procedural rules over the whole workspace: builds the
/// call graph once, then the lock and effect analyses over it.
pub fn run_workspace_rules(
    models: &[(String, FileModel<'_>)],
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
) {
    let graph = Graph::build(models);
    let locks = LockAnalysis::run(&graph, cfg);
    lock_order::run(&graph, &locks, cfg, out);
    let effects = EffectAnalysis::run(&graph, cfg);
    flush_publish::run(&graph, &effects, cfg, out);
}
