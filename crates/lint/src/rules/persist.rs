//! Rule 3 — persist-hook coverage.
//!
//! Any function driving `PmemRuntime`'s *addressed* persist primitives
//! (`flush_range`, `clflushopt_at`, `wbinvd`, `nvm_write`) must also
//! invoke a psan trace hook (`trace_store`/`trace_publish`/
//! `trace_recovery_read`, or the fused `persist_clflush_at`/
//! `publish_clflush` which trace internally). The primitives record
//! their own flush events, but the *stores they persist* are plain
//! memory writes the sanitizer can only see through the hooks — a
//! persist path without a hook silently escapes every psan ordering
//! rule (the §5 durability argument is only machine-checked where the
//! trace is complete).
//!
//! Span helpers whose callers trace on their behalf (e.g.
//! `HookState::flush_entry_span`) are the intended use of
//! `// lint:allow(persist-hook): <reason>`.

use crate::config::Config;
use crate::diag::{rules, Diagnostic};
use crate::model::FileModel;

pub fn run(path: &str, model: &FileModel<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if !cfg.persist.applies(path) {
        return;
    }
    for (i, f) in model.fns.iter().enumerate() {
        if f.test_attr || model.in_test(f.byte) {
            continue;
        }
        let mut first_prim = None;
        let mut has_hook = false;
        for call in &model.calls {
            if !f.body.contains(&call.byte) {
                continue;
            }
            // Attribute the call to its innermost fn only.
            let innermost = model
                .fns
                .iter()
                .enumerate()
                .filter(|(_, g)| g.body.contains(&call.byte))
                .min_by_key(|(_, g)| g.body.len())
                .map(|(j, _)| j);
            if innermost != Some(i) {
                continue;
            }
            if cfg.persist_primitives.contains(&call.method) {
                first_prim.get_or_insert((call.line, call.col, call.method.clone()));
            }
            if cfg.persist_hooks.contains(&call.method) {
                has_hook = true;
            }
        }
        if let Some((line, col, prim)) = first_prim {
            if !has_hook {
                out.push(
                    Diagnostic::new(
                        path,
                        line,
                        col,
                        rules::PERSIST_HOOK,
                        format!(
                            "`{}` calls persist primitive `{}` but no psan trace hook: the \
                             stores this path persists are invisible to the sanitizer",
                            f.name, prim
                        ),
                    )
                    .suggest(format!(
                        "trace the persisted span first ({}), or justify with \
                         // lint:allow(persist-hook): <reason> if the caller traces",
                        cfg.persist_hooks.join("/")
                    )),
                );
            }
        }
    }
}
