//! `flush-before-publish`: psan rule 1 enforced statically on all paths.
//!
//! [`crate::flow::EffectAnalysis`] computes, per function, where each
//! control-flow path sits in the `Clean < Flushed < Dirty` lattice and
//! which publish sites it reaches in a non-Clean state — including sites
//! reached through calls, with the inter-procedural chain attached. This
//! module turns those violations into findings, deduplicated by publish
//! site (many callers can materialize the same one; the shortest chain
//! wins as the representative).

use std::collections::BTreeMap;

use crate::config::Config;
use crate::diag::{rules, Diagnostic};
use crate::flow::{EffectAnalysis, Viol, ViolKind, CLEAN};
use crate::graph::Graph;

pub fn run(
    graph: &Graph<'_, '_>,
    analysis: &EffectAnalysis,
    cfg: &Config,
    out: &mut Vec<Diagnostic>,
) {
    let scope = &cfg.flush_publish.scope;
    // Best (shortest-chain) violation per publish site.
    let mut best: BTreeMap<(ViolKind, usize, u32), &Viol> = BTreeMap::new();
    for s in &analysis.summaries {
        for v in &s.viols[CLEAN as usize] {
            if !scope.applies(graph.files[v.file].0.as_str()) {
                continue;
            }
            best.entry((v.kind, v.file, v.line))
                .and_modify(|cur| {
                    if v.chain.len() < cur.chain.len() {
                        *cur = v;
                    }
                })
                .or_insert(v);
        }
    }
    for ((kind, fi, _), v) in best {
        let path = graph.files[fi].0.as_str();
        let store = v
            .store
            .map(|(sf, sl)| format!(" (store at {}:{})", graph.files[sf].0, sl))
            .unwrap_or_default();
        let (what_wrong, fix) = match kind {
            ViolKind::MissingFlush => (
                format!(
                    "publish of `{}` is reachable with an unflushed NVM store{store} — \
                     after a crash the publish is durable but its data may not be",
                    v.what
                ),
                "flush the stored span (flush_range/clflushopt_at) and sfence on every \
                 path before the publish",
            ),
            ViolKind::MissingFence => (
                format!(
                    "publish of `{}` is reachable with a flushed but unfenced store{store} — \
                     the writeback may still be in flight when the publish lands",
                    v.what
                ),
                "issue rt.sfence() after the flush, on every path that reaches the publish",
            ),
        };
        out.push(
            Diagnostic::new(path, v.line, v.col, rules::FLUSH_BEFORE_PUBLISH, what_wrong)
                .span_to(v.end_line)
                .with_chain(v.chain.clone())
                .suggest(format!(
                    "{fix}, or justify with // lint:allow(flush-before-publish): <reason>"
                )),
        );
    }
}
