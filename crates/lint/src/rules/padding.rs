//! Rule 2 — cacheline-padding discipline.
//!
//! An atomic field in a `Sync`-shared struct either sits on its own
//! cacheline (`CachePadded<…>`) or carries a `// shared-line: <why>`
//! justification saying why sharing its line is not false sharing (the
//! container is padded, the field is cold, one thread owns the whole
//! struct, …). A struct-level `// shared-line:` comment covers every
//! field (the `StripeCells` idiom: the stripe is padded as a whole).
//!
//! This is the rule that would have caught PR 2's `nr/log.rs` bug
//! statically: log `Entry` atomics sharing lines across combiners cost
//! ~2× on cross-node appends until the entries were `CachePadded`
//! (paper §5.1 discusses exactly this placement).

use crate::config::Config;
use crate::diag::{rules, Diagnostic};
use crate::model::FileModel;

pub fn run(path: &str, model: &FileModel<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if !cfg.padding.applies(path) {
        return;
    }
    for s in &model.structs {
        if model.in_test(s.byte) {
            continue;
        }
        let struct_justified = model.has_marker(s.line, s.line, "shared-line:");
        for f in &s.fields {
            // An atomic type not wrapped in CachePadded anywhere in the
            // declaration. `Atomic` also nets AtomicPtr/AtomicCell-style
            // wrappers, which share lines all the same.
            if !f.ty.contains("Atomic") || f.ty.contains("CachePadded") {
                continue;
            }
            if struct_justified || model.has_marker(f.line, f.line, "shared-line:") {
                continue;
            }
            out.push(
                Diagnostic::new(
                    path,
                    f.line,
                    f.col,
                    rules::CACHELINE_PADDING,
                    format!(
                        "atomic field `{}.{}: {}` is not CachePadded: writers of this field \
                         and of its line-neighbors will false-share",
                        s.name, f.name, f.ty
                    ),
                )
                .suggest(format!(
                    "wrap as `CachePadded<{}>`, or justify with `// shared-line: <why>` \
                     (container already padded / cold field / single-writer line)",
                    f.ty
                )),
            );
        }
    }
}
