//! Rule 4 — unsafe audit (lexer-accurate `ci/check_unsafe.sh` successor).
//!
//! Same policy as the retired shell script, but immune to `unsafe`
//! appearing in strings, comments, or test fixtures, and enforced per
//! *site* rather than per file:
//!
//! * every `unsafe` site (block, fn, impl, trait) carries an attached
//!   `// SAFETY:` comment — trailing, on the lines above, or covering a
//!   contiguous run of `unsafe impl` lines (the Send+Sync pair idiom);
//! * a crate with no unsafe sites declares `#![forbid(unsafe_code)]`;
//! * a crate with unsafe sites declares `#![deny(unsafe_op_in_unsafe_fn)]`.
//!
//! Only `src/` trees count toward a crate's unsafe inventory, matching
//! the old script's scope.

use std::collections::BTreeMap;

use crate::config::Config;
use crate::diag::{rules, Diagnostic};
use crate::model::{FileModel, UnsafeKind};

/// Per-site check: every unsafe site needs an attached `SAFETY:` comment.
pub fn run_file(path: &str, model: &FileModel<'_>, cfg: &Config, out: &mut Vec<Diagnostic>) {
    if !cfg.unsafety.applies(path) || !path.contains("/src/") {
        return;
    }
    let impl_lines: Vec<u32> = model
        .unsafe_sites
        .iter()
        .filter(|s| s.kind == UnsafeKind::Impl)
        .map(|s| s.line)
        .collect();
    for site in &model.unsafe_sites {
        // Test code exercises unsafe APIs under contracts the test itself
        // sets up; per-site comments there are ritual, not information.
        // (The crate-level attribute checks still count test unsafe.)
        if model.in_test(site.byte) {
            continue;
        }
        // A run of consecutive `unsafe impl` lines (Send + Sync) shares
        // one SAFETY comment above the first.
        let mut lo = site.line;
        if site.kind == UnsafeKind::Impl {
            while impl_lines.contains(&(lo - 1)) {
                lo -= 1;
            }
        }
        if model.has_marker(lo, site.line, "SAFETY:") {
            continue;
        }
        // An `unsafe fn` documented with the rustdoc `# Safety` section
        // states its contract in the canonical place.
        if site.kind == UnsafeKind::Fn
            && model
                .anns(lo, site.line)
                .any(|c| c.text.trim_start().starts_with("# Safety"))
        {
            continue;
        }
        out.push(
            Diagnostic::new(
                path,
                site.line,
                site.col,
                rules::UNSAFE_MISSING_SAFETY,
                format!(
                    "unsafe {} without an attached // SAFETY: comment",
                    match site.kind {
                        UnsafeKind::Block => "block",
                        UnsafeKind::Fn => "fn",
                        UnsafeKind::Impl => "impl",
                        UnsafeKind::Trait => "trait",
                        UnsafeKind::Other => "site",
                    }
                ),
            )
            .suggest("state the invariant that makes this sound: // SAFETY: <argument>"),
        );
    }
}

/// Crate-level check over all models, grouped by `crates/<name>/`.
pub fn run_crates(files: &[(String, FileModel<'_>)], cfg: &Config, out: &mut Vec<Diagnostic>) {
    let mut crates: BTreeMap<&str, (bool, Option<&FileModel<'_>>, String)> = BTreeMap::new();
    for (path, model) in files {
        if !cfg.unsafety.applies(path) || !path.contains("/src/") {
            continue;
        }
        let Some(rest) = path.strip_prefix("crates/") else {
            continue;
        };
        let Some((name, _)) = rest.split_once('/') else {
            continue;
        };
        let entry =
            crates
                .entry(name)
                .or_insert((false, None, format!("crates/{name}/src/lib.rs")));
        entry.0 |= !model.unsafe_sites.is_empty();
        if path == &entry.2 {
            entry.1 = Some(model);
        }
    }
    for (name, (has_unsafe, lib, lib_path)) in crates {
        let Some(lib) = lib else { continue };
        let has_attr = |needle: &str| lib.inner_attrs.iter().any(|a| a == needle);
        if !has_unsafe && !has_attr("forbid(unsafe_code)") {
            out.push(
                Diagnostic::new(
                    &lib_path,
                    1,
                    1,
                    rules::UNSAFE_MISSING_FORBID,
                    format!(
                        "crate `{name}` has no unsafe code but lib.rs lacks \
                         #![forbid(unsafe_code)] — none may creep in silently"
                    ),
                )
                .suggest("add `#![forbid(unsafe_code)]` to the crate root"),
            );
        }
        if has_unsafe && !has_attr("deny(unsafe_op_in_unsafe_fn)") {
            out.push(
                Diagnostic::new(
                    &lib_path,
                    1,
                    1,
                    rules::UNSAFE_MISSING_DENY,
                    format!(
                        "crate `{name}` uses unsafe but lib.rs lacks \
                         #![deny(unsafe_op_in_unsafe_fn)]"
                    ),
                )
                .suggest("add `#![deny(unsafe_op_in_unsafe_fn)]` to the crate root"),
            );
        }
    }
}
