//! A string/comment-aware Rust lexer.
//!
//! The whole point of `prep-lint` over the grep scripts it replaces is that
//! rules never fire on (or get fooled by) the contents of string literals
//! and comments: `"unsafe fn"` in a test fixture is a [`TokKind::Str`], not
//! an unsafe site; `// Ordering::SeqCst is wrong here` is a comment, not an
//! atomic access. The lexer therefore classifies every byte of the source
//! into exactly one token and guarantees two invariants the fuzz suite
//! pins down:
//!
//! 1. **Totality** — any byte sequence lexes without panicking (garbage
//!    becomes `Punct`/`Ident` tokens; unterminated literals run to EOF).
//! 2. **Round-trip** — tokens tile the input: token `k` spans
//!    `[tokens[k].start, tokens[k].end)`, spans are contiguous, and
//!    concatenating `src[span]` over all tokens reproduces the source.
//!
//! Handled Rust-isms: nested block comments, raw strings with any hash
//! count (`r##"…"##`, `br#"…"#`, `cr"…"`), raw identifiers (`r#match`),
//! byte/char literals vs lifetimes (`b'x'`, `'\u{1F980}'` vs `'static`),
//! and numeric literals with underscores/suffixes/exponents.

/// Classification of one source span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Horizontal/vertical whitespace run.
    Whitespace,
    /// `// …` (incl. `///` and `//!`) up to, not including, the newline.
    LineComment,
    /// `/* … */`, nesting tracked; unterminated runs to EOF.
    BlockComment,
    /// `"…"`, `b"…"`, `c"…"` with escape handling.
    Str,
    /// `r"…"`, `r#"…"#`, `br##"…"##`, `cr#"…"#` — no escapes, hash-matched.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `'ident` (not followed by a closing quote).
    Lifetime,
    /// Identifier or keyword, incl. raw identifiers (`r#type`).
    Ident,
    /// Numeric literal (int/float, any base, suffixed).
    Num,
    /// Any single other byte (`{`, `:`, `.`, `#`, …).
    Punct,
}

/// One lexed token: a classification plus its byte span in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's text within `src` (the source it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether the token carries meaning for the rules (not whitespace or
    /// a comment).
    pub fn is_significant(&self) -> bool {
        !matches!(
            self.kind,
            TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment
        )
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    is_ident_start(b) || b.is_ascii_digit()
}

/// If `i` starts a (possibly raw/byte) string literal, returns
/// `(content_start, hashes, raw)` where `content_start` points just past
/// the opening quote.
fn string_prefix(b: &[u8], i: usize) -> Option<(usize, usize, bool)> {
    // Longest prefixes first so `br` wins over `b`.
    for prefix in [&b"br"[..], b"cr", b"r", b"b", b"c"] {
        if b.len() >= i + prefix.len() && b[i..i + prefix.len()] == *prefix {
            let raw_capable = prefix.last() == Some(&b'r');
            let mut j = i + prefix.len();
            let mut hashes = 0;
            if raw_capable {
                while j < b.len() && b[j] == b'#' {
                    j += 1;
                    hashes += 1;
                }
            }
            if j < b.len() && b[j] == b'"' {
                return Some((j + 1, hashes, raw_capable));
            }
        }
    }
    None
}

/// Scans a non-raw string body starting just past the opening quote;
/// returns the offset one past the closing quote (or EOF if unterminated).
fn scan_escaped(b: &[u8], mut i: usize, quote: u8) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i = (i + 2).min(b.len()),
            c if c == quote => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Scans a raw string body; the terminator is a quote followed by `hashes`
/// hash signs. Returns the offset one past the terminator (or EOF).
fn scan_raw(b: &[u8], mut i: usize, hashes: usize) -> usize {
    while i < b.len() {
        if b[i] == b'"' {
            let mut k = i + 1;
            let mut seen = 0;
            while seen < hashes && k < b.len() && b[k] == b'#' {
                k += 1;
                seen += 1;
            }
            if seen == hashes {
                return k;
            }
        }
        i += 1;
    }
    i
}

/// Length in bytes of the UTF-8 character starting at `i` (1 for ASCII and
/// for any ill-formed byte — progress is always made).
fn char_len(b: &[u8], i: usize) -> usize {
    let c = b[i];
    let n = if c < 0x80 {
        1
    } else if c >= 0xF0 {
        4
    } else if c >= 0xE0 {
        3
    } else if c >= 0xC0 {
        2
    } else {
        1
    };
    n.min(b.len() - i)
}

/// Lexes `src` completely. See the module docs for the invariants.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < b.len() {
        let start = i;
        let c = b[i];
        let kind = if c.is_ascii_whitespace() {
            while i < b.len() && b[i].is_ascii_whitespace() {
                i += 1;
            }
            TokKind::Whitespace
        } else if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            TokKind::LineComment
        } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1usize;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            TokKind::BlockComment
        } else if c == b'"' {
            i = scan_escaped(b, i + 1, b'"');
            TokKind::Str
        } else if c == b'\'' {
            // Lifetime, char literal, or a stray quote.
            let j = i + 1;
            if j >= b.len() {
                i = j;
                TokKind::Punct
            } else if b[j] == b'\\' {
                i = scan_escaped(b, j, b'\'');
                TokKind::Char
            } else if b[j] == b'\'' {
                // `''` — not valid Rust; treat the first quote as punct.
                i = j;
                TokKind::Punct
            } else {
                let n = char_len(b, j);
                if b.get(j + n) == Some(&b'\'') {
                    i = j + n + 1;
                    TokKind::Char
                } else if is_ident_start(b[j]) {
                    i = j;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    TokKind::Lifetime
                } else {
                    i = j;
                    TokKind::Punct
                }
            }
        } else if let Some((content, hashes, raw)) = string_prefix(b, i) {
            i = if raw {
                scan_raw(b, content, hashes)
            } else {
                scan_escaped(b, content, b'"')
            };
            if raw {
                TokKind::RawStr
            } else {
                TokKind::Str
            }
        } else if c == b'b' && b.get(i + 1) == Some(&b'\'') {
            // Byte char literal b'x'.
            let j = i + 2;
            i = if b.get(j) == Some(&b'\\') {
                scan_escaped(b, j, b'\'')
            } else if j < b.len() {
                let n = char_len(b, j);
                if b.get(j + n) == Some(&b'\'') {
                    j + n + 1
                } else {
                    // `b'lifetime` style — lex `b` as ident, back off.
                    i + 1
                }
            } else {
                j
            };
            if i == start + 1 {
                TokKind::Ident
            } else {
                TokKind::Char
            }
        } else if c == b'r'
            && b.get(i + 1) == Some(&b'#')
            && b.get(i + 2).is_some_and(|&c| is_ident_start(c))
        {
            // Raw identifier r#type.
            i += 2;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            TokKind::Ident
        } else if is_ident_start(c) {
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            TokKind::Ident
        } else if c.is_ascii_digit() {
            i += 1;
            if c == b'0' && matches!(b.get(i), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B')) {
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
            } else {
                while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                    i += 1;
                }
                if b.get(i) == Some(&b'.') && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                        i += 1;
                    }
                }
                if matches!(b.get(i), Some(b'e' | b'E'))
                    && (b.get(i + 1).is_some_and(|d| d.is_ascii_digit())
                        || (matches!(b.get(i + 1), Some(b'+' | b'-'))
                            && b.get(i + 2).is_some_and(|d| d.is_ascii_digit())))
                {
                    i += 2;
                    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                        i += 1;
                    }
                }
                // Type suffix (u64, f32, usize, …).
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
            }
            TokKind::Num
        } else {
            i += char_len(b, i);
            TokKind::Punct
        };
        debug_assert!(i > start, "lexer failed to advance at byte {start}");
        toks.push(Token {
            kind,
            start,
            end: i,
        });
    }
    toks
}

/// Maps byte offsets to 1-based `(line, column)` pairs.
#[derive(Debug)]
pub struct LineMap {
    /// Byte offset at which each line starts; `starts[0] == 0`.
    starts: Vec<usize>,
}

impl LineMap {
    pub fn new(src: &str) -> Self {
        let mut starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineMap { starts }
    }

    /// 1-based line number containing byte `off`.
    pub fn line_of(&self, off: usize) -> u32 {
        self.starts.partition_point(|&s| s <= off) as u32
    }

    /// 1-based `(line, column)` of byte `off` (column counts bytes).
    pub fn line_col(&self, off: usize) -> (u32, u32) {
        let line = self.line_of(off);
        let col = off - self.starts[(line - 1) as usize] + 1;
        (line, col as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Vec<Token> {
        let toks = lex(src);
        let mut pos = 0;
        for t in &toks {
            assert_eq!(t.start, pos, "gap before token at {}", t.start);
            assert!(t.end > t.start);
            pos = t.end;
        }
        assert_eq!(pos, src.len(), "tokens do not tile the source");
        toks
    }

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        roundtrip(src)
            .into_iter()
            .filter(|t| t.kind != TokKind::Whitespace)
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn strings_and_comments_classified() {
        let ks = kinds("let s = \"unsafe fn\"; // unsafe impl\n/* unsafe { */");
        assert!(ks.contains(&(TokKind::Str, "\"unsafe fn\"")));
        assert!(ks.contains(&(TokKind::LineComment, "// unsafe impl")));
        assert!(ks.contains(&(TokKind::BlockComment, "/* unsafe { */")));
        // No Ident token says "unsafe".
        assert!(!ks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && *t == "unsafe"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let ks = kinds(r####"let x = r#"quote " inside"#; let y = r"plain";"####);
        assert!(ks.contains(&(TokKind::RawStr, r###"r#"quote " inside"#"###)));
        assert!(ks.contains(&(TokKind::RawStr, "r\"plain\"")));
        let ks = kinds("br#\"bytes\"#");
        assert_eq!(ks[0].0, TokKind::RawStr);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let s = 'static_; }");
        assert!(ks.contains(&(TokKind::Lifetime, "'a")));
        assert!(ks.contains(&(TokKind::Char, "'x'")));
        assert!(ks.contains(&(TokKind::Char, "'\\n'")));
        assert!(ks.contains(&(TokKind::Lifetime, "'static_")));
    }

    #[test]
    fn byte_and_unicode_chars() {
        let ks = kinds("b'x' b\"s\" '\u{1F980}'");
        assert_eq!(ks[0], (TokKind::Char, "b'x'"));
        assert_eq!(ks[1].0, TokKind::Str);
        assert_eq!(ks[2], (TokKind::Char, "'\u{1F980}'"));
    }

    #[test]
    fn nested_block_comments() {
        let ks = kinds("/* outer /* inner */ still */ after");
        assert_eq!(ks[0].0, TokKind::BlockComment);
        assert_eq!(ks[1], (TokKind::Ident, "after"));
    }

    #[test]
    fn raw_identifiers() {
        let ks = kinds("let r#type = 1; r#\"raw\"#");
        assert!(ks.contains(&(TokKind::Ident, "r#type")));
        assert!(ks.contains(&(TokKind::RawStr, "r#\"raw\"#")));
    }

    #[test]
    fn numbers_with_suffixes_and_ranges() {
        let ks = kinds("0x1F_u64 1_000.5e-3 0..10 1.max(2)");
        assert!(ks.contains(&(TokKind::Num, "0x1F_u64")));
        assert!(ks.contains(&(TokKind::Num, "1_000.5e-3")));
        assert!(ks.contains(&(TokKind::Num, "0")));
        assert!(ks.contains(&(TokKind::Num, "10")));
        assert!(ks.contains(&(TokKind::Num, "1")));
        assert!(ks.contains(&(TokKind::Ident, "max")));
    }

    #[test]
    fn unterminated_literals_run_to_eof() {
        roundtrip("\"never closed");
        roundtrip("r#\"never closed");
        roundtrip("/* never closed");
        roundtrip("'");
        roundtrip("b'");
    }

    #[test]
    fn line_map() {
        let lm = LineMap::new("ab\ncd\n");
        assert_eq!(lm.line_col(0), (1, 1));
        assert_eq!(lm.line_col(1), (1, 2));
        assert_eq!(lm.line_col(3), (2, 1));
        assert_eq!(lm.line_col(5), (2, 3));
    }
}
