//! Table-driven corpus of known-bad sources.
//!
//! Each fixture is a deliberately broken file fed through [`lint_files`]
//! against the default config; the table pins every expected finding —
//! exact rule id, exact 1-based line:col, and a distinctive fragment of
//! the message and suggestion — plus the *total* count, so extra or
//! shifted findings fail too. Fixture paths impersonate real workspace
//! locations because rule scopes are path-keyed.

use prep_lint::{lint_files, Config};

const BAD_ATOMICS: &str = r#"//! Known-bad: explicit orderings with no justification.
use std::sync::atomic::{fence, compiler_fence, AtomicPtr, AtomicU64, Ordering};

pub struct Publisher {
    // shared-line: fixture — padding is not under test here.
    slot: AtomicPtr<u64>,
    // shared-line: fixture — padding is not under test here.
    seq: AtomicU64,
}

impl Publisher {
    pub fn unjustified_load(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    pub fn seqcst_by_default(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    pub fn relaxed_publish(&self, p: *mut u64) {
        self.slot.store(p, Ordering::Relaxed);
    }

    pub fn unjustified_fence(&self) {
        fence(Ordering::Acquire);
    }

    pub fn justified_fence(&self) {
        // ord: fixture — orders the peeked reads above the re-load below.
        compiler_fence(Ordering::Release);
    }
}
"#;

const BAD_PADDING: &str = r#"//! Known-bad: unpadded atomics on a shared struct.
use std::sync::atomic::{AtomicBool, AtomicU64};

pub struct SharedCounters {
    pub hits: AtomicU64,
    pub stop: AtomicBool,
}
"#;

const BAD_PERSIST: &str = r#"//! Known-bad: persist primitives outside the sanitizer's sight.
use prep_pmem::PmemRuntime;

pub fn untraced_flush(rt: &PmemRuntime, base: u64, len: u64) {
    rt.flush_range(base, len, "untraced_flush");
    rt.sfence();
}

pub fn untraced_line(rt: &PmemRuntime, line: u64) {
    rt.clflushopt_at(line * 64, "untraced_line");
}
"#;

const BAD_UNSAFE_LIB: &str = r#"//! Known-bad: unsafe without an audit trail.

pub fn peek(p: *const u64) -> u64 {
    unsafe { *p }
}
"#;

const CLEAN_LIB: &str = r#"//! Known-bad: no unsafe, but nothing keeps it that way.

pub fn id(x: u64) -> u64 {
    x
}
"#;

const BAD_APIS: &str = r#"//! Known-bad: APIs banned on the hot path.
use std::sync::Mutex;
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn nap() {
    std::thread::sleep(std::time::Duration::from_millis(1));
}

pub fn guard(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}
"#;

const BAD_ALLOWS: &str = r#"//! Suppression semantics: reasons are mandatory.
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Gauge {
    // shared-line: fixture — padding is not under test here.
    v: AtomicU64,
}

impl Gauge {
    pub fn suppressed(&self) -> u64 {
        // lint:allow(atomic-ordering): fixture — justified in prose.
        self.v.load(Ordering::Acquire)
    }

    pub fn reasonless(&self) -> u64 {
        // lint:allow(atomic-ordering)
        self.v.load(Ordering::Acquire)
    }
}
"#;

struct Expected {
    path: &'static str,
    line: u32,
    col: u32,
    rule: &'static str,
    /// Substring the message must contain.
    msg: &'static str,
    /// Substring the suggestion must contain.
    sugg: &'static str,
}

const EXPECTED: &[Expected] = &[
    // -- rule family 1: atomic-ordering / atomic-seqcst / atomic-relaxed-publish --
    Expected {
        path: "crates/sync/src/bad_atomics.rs",
        line: 13,
        col: 18,
        rule: "atomic-ordering",
        msg: "`load` with explicit Ordering::Acquire lacks a // ord: justification",
        sugg: "add `// ord: <why this ordering is sufficient>` at the call",
    },
    Expected {
        path: "crates/sync/src/bad_atomics.rs",
        line: 17,
        col: 18,
        rule: "atomic-seqcst",
        msg: "`load` uses Ordering::SeqCst without a // ord: justification",
        sugg: "naming the store\u{2192}load pair",
    },
    Expected {
        path: "crates/sync/src/bad_atomics.rs",
        line: 21,
        col: 19,
        rule: "atomic-relaxed-publish",
        msg: "`store` publishes a pointer with Ordering::Relaxed",
        sugg: "publish with Ordering::Release",
    },
    Expected {
        path: "crates/sync/src/bad_atomics.rs",
        line: 21,
        col: 19,
        rule: "atomic-ordering",
        msg: "`store` with explicit Ordering::Relaxed lacks a // ord: justification",
        sugg: "add `// ord: <why this ordering is sufficient>` at the call",
    },
    Expected {
        path: "crates/sync/src/bad_atomics.rs",
        line: 25,
        col: 9,
        rule: "atomic-fence-ordering",
        msg: "`fence(Acquire)` lacks a // ord: justification",
        sugg: "add `// ord: <which accesses this fence orders, and with what>`",
    },
    // -- rule family 2: cacheline-padding --
    Expected {
        path: "crates/nr/src/bad_padding.rs",
        line: 5,
        col: 9,
        rule: "cacheline-padding",
        msg: "atomic field `SharedCounters.hits: AtomicU64` is not CachePadded",
        sugg: "wrap as `CachePadded<AtomicU64>`",
    },
    Expected {
        path: "crates/nr/src/bad_padding.rs",
        line: 6,
        col: 9,
        rule: "cacheline-padding",
        msg: "atomic field `SharedCounters.stop: AtomicBool` is not CachePadded",
        sugg: "wrap as `CachePadded<AtomicBool>`",
    },
    // -- rule family 3: persist-hook --
    Expected {
        path: "crates/core/src/bad_persist.rs",
        line: 5,
        col: 8,
        rule: "persist-hook",
        msg: "`untraced_flush` calls persist primitive `flush_range` but no psan trace hook",
        sugg: "trace the persisted span first",
    },
    Expected {
        path: "crates/core/src/bad_persist.rs",
        line: 10,
        col: 8,
        rule: "persist-hook",
        msg: "`untraced_line` calls persist primitive `clflushopt_at` but no psan trace hook",
        sugg: "lint:allow(persist-hook): <reason> if the caller traces",
    },
    // -- rule family 4: unsafe audit --
    Expected {
        path: "crates/fixture/src/lib.rs",
        line: 4,
        col: 5,
        rule: "unsafe-missing-safety",
        msg: "unsafe block without an attached // SAFETY: comment",
        sugg: "state the invariant that makes this sound",
    },
    Expected {
        path: "crates/fixture/src/lib.rs",
        line: 1,
        col: 1,
        rule: "unsafe-missing-deny",
        msg: "crate `fixture` uses unsafe but lib.rs lacks",
        sugg: "add `#![deny(unsafe_op_in_unsafe_fn)]` to the crate root",
    },
    Expected {
        path: "crates/clean/src/lib.rs",
        line: 1,
        col: 1,
        rule: "unsafe-missing-forbid",
        msg: "crate `clean` has no unsafe code but lib.rs lacks",
        sugg: "add `#![forbid(unsafe_code)]` to the crate root",
    },
    // -- rule family 5: forbidden-api --
    Expected {
        path: "crates/cx/src/bad_apis.rs",
        line: 2,
        col: 5,
        rule: "forbidden-api",
        msg: "[std-mutex] std::sync::Mutex: std::sync::Mutex in a hot-path crate",
        sugg: "use a prep-sync lock",
    },
    Expected {
        path: "crates/cx/src/bad_apis.rs",
        line: 6,
        col: 5,
        rule: "forbidden-api",
        msg: "[instant-now] Instant::now: Instant::now outside the latency model",
        sugg: "route timing through prep_pmem::latency",
    },
    Expected {
        path: "crates/cx/src/bad_apis.rs",
        line: 10,
        col: 10,
        rule: "forbidden-api",
        msg: "[thread-sleep] thread::sleep: thread::sleep in a hot-path crate",
        sugg: "use prep_sync::Waiter",
    },
    // -- suppression semantics --
    Expected {
        path: "crates/sync/src/allows.rs",
        line: 16,
        col: 9,
        rule: "lint-allow-reason",
        msg: "lint:allow without a reason — suppression is refused",
        sugg: "write // lint:allow(<rule>): <why this finding is acceptable>",
    },
    Expected {
        path: "crates/sync/src/allows.rs",
        line: 17,
        col: 16,
        rule: "atomic-ordering",
        msg: "`load` with explicit Ordering::Acquire lacks a // ord: justification",
        sugg: "",
    },
];

fn corpus() -> Vec<(String, String)> {
    [
        ("crates/sync/src/bad_atomics.rs", BAD_ATOMICS),
        ("crates/nr/src/bad_padding.rs", BAD_PADDING),
        ("crates/core/src/bad_persist.rs", BAD_PERSIST),
        ("crates/fixture/src/lib.rs", BAD_UNSAFE_LIB),
        ("crates/clean/src/lib.rs", CLEAN_LIB),
        ("crates/cx/src/bad_apis.rs", BAD_APIS),
        ("crates/sync/src/allows.rs", BAD_ALLOWS),
    ]
    .into_iter()
    .map(|(p, s)| (p.to_string(), s.to_string()))
    .collect()
}

#[test]
fn every_expected_finding_is_reported_exactly() {
    let diags = lint_files(&corpus(), &Config::default());
    let pretty = || {
        diags
            .iter()
            .map(|d| format!("{d}"))
            .collect::<Vec<_>>()
            .join("\n")
    };

    for e in EXPECTED {
        let hits: Vec<_> = diags
            .iter()
            .filter(|d| d.path == e.path && d.line == e.line && d.col == e.col && d.rule == e.rule)
            .collect();
        assert_eq!(
            hits.len(),
            1,
            "expected exactly one [{}] at {}:{}:{}, got {} — all findings:\n{}",
            e.rule,
            e.path,
            e.line,
            e.col,
            hits.len(),
            pretty()
        );
        let d = hits[0];
        assert!(
            d.message.contains(e.msg),
            "[{}] {}:{}: message {:?} missing fragment {:?}",
            e.rule,
            e.path,
            e.line,
            d.message,
            e.msg
        );
        if !e.sugg.is_empty() {
            let sugg = d.suggestion.as_deref().unwrap_or("");
            assert!(
                sugg.contains(e.sugg),
                "[{}] {}:{}: suggestion {:?} missing fragment {:?}",
                e.rule,
                e.path,
                e.line,
                sugg,
                e.sugg
            );
        }
    }

    assert_eq!(
        diags.len(),
        EXPECTED.len(),
        "unexpected extra findings:\n{}",
        pretty()
    );
}

/// The reasoned allow in `allows.rs` must actually suppress: no finding of
/// any kind on its line.
#[test]
fn reasoned_allow_suppresses_only_its_line() {
    let diags = lint_files(&corpus(), &Config::default());
    assert!(
        !diags
            .iter()
            .any(|d| d.path == "crates/sync/src/allows.rs" && d.line == 12),
        "the reasoned lint:allow on line 11 should have suppressed line 12"
    );
    // ...while the identical call under the reason-less allow is kept.
    assert!(diags
        .iter()
        .any(|d| d.path == "crates/sync/src/allows.rs" && d.line == 17));
}

/// Display format pin: `file:line:col: [rule-id] message`, suggestion
/// indented beneath.
#[test]
fn diagnostic_display_format() {
    let diags = lint_files(&corpus(), &Config::default());
    let d = diags
        .iter()
        .find(|d| d.rule == "cacheline-padding")
        .expect("padding finding present");
    let shown = format!("{d}");
    assert!(shown.starts_with("crates/nr/src/bad_padding.rs:5:9: [cacheline-padding] "));
    assert!(shown.contains("\n    suggestion: "));
}

/// A corpus with every fixture fixed the way each suggestion says must be
/// clean — the rules accept their own medicine.
#[test]
fn suggested_fixes_lint_clean() {
    let fixed = vec![
        (
            "crates/sync/src/good_atomics.rs".to_string(),
            r#"use std::sync::atomic::{AtomicU64, Ordering};
use crossbeam_utils::CachePadded;

pub struct Gauge {
    v: CachePadded<AtomicU64>,
}

impl Gauge {
    pub fn read(&self) -> u64 {
        // ord: Acquire pairs with the writer's Release publish.
        self.v.load(Ordering::Acquire)
    }
}
"#
            .to_string(),
        ),
        (
            "crates/core/src/good_persist.rs".to_string(),
            r#"use prep_pmem::PmemRuntime;

pub fn traced_flush(rt: &PmemRuntime, base: u64, len: u64) {
    rt.trace_store(base, len, "traced_flush");
    rt.flush_range(base, len, "traced_flush");
}
"#
            .to_string(),
        ),
    ];
    let diags = lint_files(&fixed, &Config::default());
    assert!(
        diags.is_empty(),
        "fixed corpus should be clean, got:\n{}",
        diags
            .iter()
            .map(|d| format!("{d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
