//! Property fuzz for the workspace analyses (`graph` + `flow`) over
//! randomly generated call graphs — cycles, self-recursion, and branchy
//! bodies included. The properties:
//!
//! * **Totality / termination** — `Graph::build`, `LockAnalysis::run`,
//!   and `EffectAnalysis::run` finish on arbitrary call structure (the
//!   SCC fixpoints must converge even on recursion).
//! * **Monotone lock propagation** — a caller's transitive acquire set
//!   contains every callee's, for every non-acquire call edge.
//! * **Monotone effect summaries** — a dirtier entry state yields a
//!   dirtier (or equal) exit state and a superset of violation sites.
//! * **Chains** — every inter-procedural diagnostic carries a non-empty
//!   chain whose head is a generated function.
//!
//! Mirrors `lexer_fuzz.rs`: build sources from a small grammar, feed
//! them through the public API, assert invariants — never exact output.

use proptest::collection::vec;
use proptest::prelude::*;

use prep_lint::flow::{EffectAnalysis, LockAnalysis};
use prep_lint::graph::Graph;
use prep_lint::{lint_files, Config, FileModel};

/// One generated statement: (kind, target, branched). `target` indexes
/// the lock palette or the function list, whichever the kind uses;
/// `branched != 0` wraps the statement in `if flag { … }` to exercise
/// branch joins.
type Stmt = (u8, usize, u8);

const N_LOCKS: usize = 4;

fn render(bodies: &[Vec<Stmt>]) -> String {
    let mut src = String::from("//! Fuzz-generated call graph.\n\npub struct Guard;\n\n");
    for l in 0..N_LOCKS {
        src.push_str(&format!(
            "// lock-level: {l} fuzz — tier {l} of the generated hierarchy\n\
             pub struct L{l};\n\
             impl L{l} {{\n    pub fn lock(&self) -> Guard {{\n        Guard\n    }}\n}}\n\n"
        ));
    }
    src.push_str("pub struct App {\n");
    for l in 0..N_LOCKS {
        src.push_str(&format!("    l{l}: L{l},\n"));
    }
    src.push_str("}\n\n");
    for (i, body) in bodies.iter().enumerate() {
        src.push_str(&format!(
            "pub fn f{i}(app: &App, rt: &PmemRuntime, flag: bool) {{\n"
        ));
        for (k, &(kind, target, branched)) in body.iter().enumerate() {
            let stmt = match kind {
                0 => format!("let _g{k} = app.l{}.lock();", target % N_LOCKS),
                1 => format!("f{}(app, rt, flag);", target % bodies.len()),
                2 => "rt.trace_store(0, 8);\n        rt.nvm_write(0, 1);".to_string(),
                3 => "rt.flush_range(0, 8, \"fuzz\");".to_string(),
                4 => "rt.sfence();".to_string(),
                _ => "rt.publish_clflush(0, \"fuzz\");".to_string(),
            };
            if branched != 0 {
                src.push_str(&format!("    if flag {{\n        {stmt}\n    }}\n"));
            } else {
                src.push_str(&format!("    {stmt}\n"));
            }
        }
        src.push_str("}\n\n");
    }
    src
}

fn program_strategy() -> impl Strategy<Value = Vec<Vec<Stmt>>> {
    vec(vec((0u8..6, 0usize..8, 0u8..2), 0..6), 1..7)
}

proptest! {
    #[test]
    fn analyses_terminate_and_stay_monotone(bodies in program_strategy()) {
        let src = render(&bodies);
        let files = vec![(
            "crates/core/src/fuzz_gen.rs".to_string(),
            FileModel::build(&src),
        )];
        let cfg = Config::default();
        let graph = Graph::build(&files);
        let locks = LockAnalysis::run(&graph, &cfg);
        let effects = EffectAnalysis::run(&graph, &cfg);

        // Monotone lock propagation over every resolved, non-acquire
        // call edge (acquire calls are terminal by design).
        for (id, edges) in graph.calls.iter().enumerate() {
            let m = &graph.files[graph.fns[id].file].1;
            for e in edges {
                if m.calls[e.call].method != "lock" {
                    for &t in &e.targets {
                        for class in locks.acquires[t].keys() {
                            prop_assert!(
                                locks.acquires[id].contains_key(class),
                                "f{id} misses callee class {class}"
                            );
                        }
                    }
                }
            }
        }

        // Every held-edge chain is non-empty and rooted in a generated fn.
        for e in &locks.edges {
            prop_assert!(!e.chain.is_empty());
            prop_assert!(e.chain[0].func.starts_with('f'));
        }

        // Effect summaries: dirtier entry ⇒ dirtier-or-equal exit, and a
        // superset of violation sites (Clean=0 < Flushed=1 < Dirty=2).
        for s in &effects.summaries {
            prop_assert!(s.exit[0] <= s.exit[1] && s.exit[1] <= s.exit[2]);
            // Site superset, not kind-for-kind: a dirtier entry can
            // upgrade a MissingFence at a site to a MissingFlush.
            for lo in 0..2usize {
                for v in &s.viols[lo] {
                    prop_assert!(
                        s.viols[lo + 1]
                            .iter()
                            .any(|w| w.file == v.file && w.line == v.line),
                        "viol at {}:{} present for entry {} but not {}",
                        v.file, v.line, lo, lo + 1
                    );
                }
            }
            for v in s.viols.iter().flatten() {
                prop_assert!(!v.chain.is_empty());
            }
        }
    }

    #[test]
    fn end_to_end_diagnostics_always_carry_chains(bodies in program_strategy()) {
        let src = render(&bodies);
        let files = vec![("crates/core/src/fuzz_gen.rs".to_string(), src)];
        let diags = lint_files(&files, &Config::default());
        for d in &diags {
            if matches!(
                d.rule,
                "lock-order" | "lock-order-cycle" | "flush-before-publish"
            ) {
                prop_assert!(!d.chain.is_empty(), "{d}");
                prop_assert!(d.chain[0].func.starts_with('f'), "{d}");
            }
        }
    }
}
