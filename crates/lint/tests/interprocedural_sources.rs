//! Table-driven corpus of known-bad *inter-procedural* sources.
//!
//! Companion to `known_bad_sources.rs`, exercising the workspace rules
//! that need the call graph: `lock-order` / `lock-order-cycle` /
//! `lock-order-unranked` over declared lock levels, and
//! `flush-before-publish` over the NVM effect lattice. Every fixture
//! finding pins the exact rule id, 1-based line:col, message and
//! suggestion fragments, and — new here — the inter-procedural chain as
//! a sequence of function names, plus the total count so extra or
//! shifted findings fail too.

use prep_lint::{lint_files, Config};

/// Lock-order fixtures. A three-tier fixture hierarchy (gate=1, data=2,
/// peers=3) declared with `// lock-level:` comments, plus an undeclared
/// lock and a reasonless declaration.
const BAD_LOCKS: &str = r#"//! Known-bad: lock hierarchy violations across calls.

pub struct Guard;

// lock-level: 1 fixture — gate tier of the fixture hierarchy
pub struct GateLock;
impl GateLock {
    pub fn lock(&self) -> Guard {
        Guard
    }
}

// lock-level: 2 fixture — data tier, taken inside the gate
pub struct DataLock;
impl DataLock {
    pub fn lock(&self) -> Guard {
        Guard
    }
    pub fn try_lock(&self) -> Option<Guard> {
        None
    }
}

// lock-level: 3 fixture — left peer of the equal-level pair
pub struct LeftLock;
impl LeftLock {
    pub fn lock(&self) -> Guard {
        Guard
    }
}

// lock-level: 3 fixture — right peer of the equal-level pair
pub struct RightLock;
impl RightLock {
    pub fn lock(&self) -> Guard {
        Guard
    }
}

// lock-level: 5 fixture — held across the call hop
pub struct HopHighLock;
impl HopHighLock {
    pub fn lock(&self) -> Guard {
        Guard
    }
}

// lock-level: 4 fixture — acquired inside the hop callee
pub struct HopLowLock;
impl HopLowLock {
    pub fn lock(&self) -> Guard {
        Guard
    }
}

pub struct StrayLock;
impl StrayLock {
    pub fn lock(&self) -> Guard {
        Guard
    }
}

pub struct App {
    gate: GateLock,
    data: DataLock,
    left: LeftLock,
    right: RightLock,
    hop_high: HopHighLock,
    hop_low: HopLowLock,
    stray: StrayLock,
}

impl App {
    pub fn direct_inversion(&self) {
        let _d = self.data.lock();
        let _g = self.gate.lock();
    }

    pub fn hop_inversion(&self) {
        let _h = self.hop_high.lock();
        self.take_hop_low();
    }

    fn take_hop_low(&self) {
        let _l = self.hop_low.lock();
    }

    pub fn left_then_right(&self) {
        let _l = self.left.lock();
        let _r = self.right.lock();
    }

    pub fn right_then_left(&self) {
        let _r = self.right.lock();
        let _l = self.left.lock();
    }

    pub fn reentrant(&self) {
        let _a = self.gate.lock();
        let _b = self.gate.lock();
    }

    pub fn unranked(&self) {
        let _s = self.stray.lock();
    }

    pub fn clean_order(&self) {
        let _g = self.gate.lock();
        let _d = self.data.lock();
        if let Some(_again) = self.data.try_lock() {
            // try-acquire: non-blocking, exempt from the hierarchy.
        }
    }
}
"#;

/// A reasonless level declaration, kept in its own file so the missing-
/// rationale finding has a unique site.
const BAD_LEVEL_WHY: &str = r#"//! Known-bad: a lock level with no rationale.

// lock-level: 4
pub struct MysteryLock;
impl MysteryLock {
    pub fn lock(&self) {}
}
"#;

/// Flush-before-publish fixtures. `trace_store` doubles as the psan
/// hook (so `persist-hook` stays quiet) and as a store in the effect
/// lattice.
const BAD_PUBLISH: &str = r#"//! Known-bad: publishes reachable with unpersisted stores.
use prep_pmem::PmemRuntime;

pub fn store_publish_no_flush(rt: &PmemRuntime) {
    rt.trace_store(0, 8);
    rt.nvm_write(0, 1);
    rt.publish_clflush(64, "no_flush_root");
}

pub fn store_flush_no_fence(rt: &PmemRuntime) {
    rt.trace_store(0, 8);
    rt.nvm_write(0, 1);
    rt.flush_range(0, 8, "fixture");
    rt.publish_clflush(64, "no_fence_root");
}

pub fn flush_one_branch(rt: &PmemRuntime, fast: bool) {
    rt.trace_store(0, 8);
    rt.nvm_write(0, 1);
    if fast {
        rt.flush_range(0, 8, "fixture");
        rt.sfence();
    }
    rt.publish_clflush(64, "branch_root");
}

pub fn hop_store_then_publish(rt: &PmemRuntime) {
    write_root(rt);
    rt.publish_clflush(64, "hop_root");
}

fn write_root(rt: &PmemRuntime) {
    rt.trace_store(0, 8);
    rt.nvm_write(0, 1);
}

pub fn clean_publish(rt: &PmemRuntime) {
    rt.trace_store(0, 8);
    rt.nvm_write(0, 1);
    rt.flush_range(0, 8, "fixture");
    rt.sfence();
    rt.publish_clflush(64, "clean_root");
}
"#;

struct Expected {
    path: &'static str,
    line: u32,
    col: u32,
    rule: &'static str,
    /// Substring the message must contain.
    msg: &'static str,
    /// Substring the suggestion must contain.
    sugg: &'static str,
    /// Exact function names along the reported chain (empty = any).
    chain: &'static [&'static str],
}

const EXPECTED: &[Expected] = &[
    // -- lock-order family --
    Expected {
        path: "crates/cx/src/bad_locks.rs",
        line: 76,
        col: 28,
        rule: "lock-order",
        msg: "acquires `GateLock` (level 1) while holding `DataLock` (level 2)",
        sugg: "release `DataLock` first",
        chain: &["direct_inversion"],
    },
    Expected {
        path: "crates/cx/src/bad_locks.rs",
        line: 81,
        col: 14,
        rule: "lock-order",
        msg: "acquires `HopLowLock` (level 4) while holding `HopHighLock` (level 5)",
        sugg: "move `HopLowLock` to a level above 5",
        chain: &["hop_inversion", "take_hop_low"],
    },
    Expected {
        path: "crates/cx/src/bad_locks.rs",
        line: 90,
        col: 29,
        rule: "lock-order-cycle",
        msg: "acquire cycle between `LeftLock` and `RightLock` (both level 3)",
        sugg: "give `LeftLock` and `RightLock` distinct // lock-level: values",
        chain: &["left_then_right"],
    },
    Expected {
        path: "crates/cx/src/bad_locks.rs",
        line: 100,
        col: 28,
        rule: "lock-order-cycle",
        msg: "re-entrant acquire of `GateLock` while already holding it",
        sugg: "take the lock once and pass the guard down",
        chain: &["reentrant"],
    },
    Expected {
        path: "crates/cx/src/bad_locks.rs",
        line: 104,
        col: 29,
        rule: "lock-order-unranked",
        msg: "`StrayLock` acquired without a declared lock level",
        sugg: "add `// lock-level: <n> <why>` where `StrayLock`",
        chain: &[],
    },
    Expected {
        path: "crates/sync/src/bad_level_why.rs",
        line: 3,
        col: 1,
        rule: "lock-order-unranked",
        msg: "`// lock-level:` without a rationale",
        sugg: "write // lock-level: <n> <why this level fits the hierarchy>",
        chain: &[],
    },
    // -- flush-before-publish family --
    Expected {
        path: "crates/core/src/bad_publish.rs",
        line: 7,
        col: 8,
        rule: "flush-before-publish",
        msg: "unflushed NVM store (store at crates/core/src/bad_publish.rs:6)",
        sugg: "flush the stored span (flush_range/clflushopt_at) and sfence",
        chain: &["store_publish_no_flush"],
    },
    Expected {
        path: "crates/core/src/bad_publish.rs",
        line: 14,
        col: 8,
        rule: "flush-before-publish",
        msg: "flushed but unfenced store (store at crates/core/src/bad_publish.rs:12)",
        sugg: "issue rt.sfence() after the flush",
        chain: &["store_flush_no_fence"],
    },
    Expected {
        path: "crates/core/src/bad_publish.rs",
        line: 24,
        col: 8,
        rule: "flush-before-publish",
        msg: "unflushed NVM store (store at crates/core/src/bad_publish.rs:19)",
        sugg: "flush the stored span",
        chain: &["flush_one_branch"],
    },
    Expected {
        path: "crates/core/src/bad_publish.rs",
        line: 29,
        col: 8,
        rule: "flush-before-publish",
        msg: "unflushed NVM store (store at crates/core/src/bad_publish.rs:28)",
        sugg: "flush the stored span",
        chain: &["hop_store_then_publish"],
    },
];

fn corpus() -> Vec<(String, String)> {
    [
        ("crates/cx/src/bad_locks.rs", BAD_LOCKS),
        ("crates/sync/src/bad_level_why.rs", BAD_LEVEL_WHY),
        ("crates/core/src/bad_publish.rs", BAD_PUBLISH),
    ]
    .into_iter()
    .map(|(p, s)| (p.to_string(), s.to_string()))
    .collect()
}

#[test]
fn every_expected_finding_is_reported_exactly() {
    let diags = lint_files(&corpus(), &Config::default());
    let pretty = || {
        diags
            .iter()
            .map(|d| format!("{d}"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    for e in EXPECTED {
        let hit = diags
            .iter()
            .find(|d| d.path == e.path && d.line == e.line && d.col == e.col && d.rule == e.rule);
        let Some(d) = hit else {
            panic!(
                "expected {}:{}:{} [{}] — not reported.\nall findings:\n{}",
                e.path,
                e.line,
                e.col,
                e.rule,
                pretty()
            );
        };
        assert!(
            d.message.contains(e.msg),
            "message for {}:{} [{}] missing {:?}: got {:?}",
            e.path,
            e.line,
            e.rule,
            e.msg,
            d.message
        );
        if !e.sugg.is_empty() {
            let s = d.suggestion.as_deref().unwrap_or("");
            assert!(
                s.contains(e.sugg),
                "suggestion for {}:{} [{}] missing {:?}: got {:?}",
                e.path,
                e.line,
                e.rule,
                e.sugg,
                s
            );
        }
        if !e.chain.is_empty() {
            let got: Vec<&str> = d.chain.iter().map(|c| c.func.as_str()).collect();
            assert_eq!(
                got, e.chain,
                "chain for {}:{} [{}]: got {:?}",
                e.path, e.line, e.rule, got
            );
        }
    }
    assert_eq!(
        diags.len(),
        EXPECTED.len(),
        "extra findings beyond the pinned table:\n{}",
        pretty()
    );
}

/// Regression: `impl FnMut() -> bool` in *argument position* is a type,
/// not an `impl` item. Mistaking it for one used to derail the item scan
/// past the `#[cfg(test)]` module, losing the test span — and then the
/// explicit orderings below leaked out as findings.
const IMPL_ARG_FIXTURE: &str = r#"//! Fixture: impl Trait in argument position.

pub fn spin_until(mut cond: impl FnMut() -> bool) {
    while !cond() {}
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn spins() {
        let flag = AtomicBool::new(true);
        assert!(flag.load(Ordering::Acquire));
        super::spin_until(|| flag.load(Ordering::Acquire));
    }
}
"#;

#[test]
fn impl_in_argument_position_keeps_test_spans() {
    let files = vec![(
        "crates/sync/src/impl_arg.rs".to_string(),
        IMPL_ARG_FIXTURE.to_string(),
    )];
    let diags = lint_files(&files, &Config::default());
    assert!(
        diags.is_empty(),
        "test-module findings leaked: {:?}",
        diags.iter().map(|d| format!("{d}")).collect::<Vec<_>>()
    );
}

/// Regression: a receiver with a *declared but non-workspace* type (an
/// `AtomicU64` field, a socket, …) must not fall back to every same-name
/// workspace method. That fan-out used to route `seq.load(..)` into an
/// unrelated `load` that takes locks, fabricating inversion chains.
const EXTERNAL_RECV_FIXTURE: &str = r#"//! Fixture: typed-but-external receivers get no same-name fan-out.
use std::sync::atomic::{AtomicU64, Ordering};

pub struct Guard;

// lock-level: 1 fixture — inner tier
pub struct InnerLock;
impl InnerLock {
    pub fn lock(&self) -> Guard {
        Guard
    }
}

// lock-level: 2 fixture — outer tier
pub struct OuterLock;
impl OuterLock {
    pub fn lock(&self) -> Guard {
        Guard
    }
}

pub struct Cellish {
    inner: InnerLock,
}
impl Cellish {
    pub fn load(&self) -> Guard {
        self.inner.lock()
    }
}

pub struct Counter {
    seq: AtomicU64,
    outer: OuterLock,
}
impl Counter {
    pub fn bump(&self) -> u64 {
        let _o = self.outer.lock();
        // ord: fixture — monotonic counter, any ordering works.
        self.seq.load(Ordering::Relaxed)
    }
}
"#;

#[test]
fn external_receiver_does_not_fan_out_by_name() {
    let files = vec![(
        "crates/core/src/ext_recv.rs".to_string(),
        EXTERNAL_RECV_FIXTURE.to_string(),
    )];
    let diags = lint_files(&files, &Config::default());
    assert!(
        diags.is_empty(),
        "fabricated chain through Cellish::load: {:?}",
        diags.iter().map(|d| format!("{d}")).collect::<Vec<_>>()
    );
}

/// A site-level `// lock-level:` asserts the *instance* at that acquire
/// is a different rung than its type's default: it synthesizes a
/// per-site class instead of re-ranking the whole type.
const SITE_OVERRIDE_FIXTURE: &str = r#"//! Fixture: per-site level override.

pub struct Guard;

// lock-level: 0 fixture — the global gate tier
pub struct GateLock;
impl GateLock {
    pub fn lock(&self) -> Guard {
        Guard
    }
}

// lock-level: 1 fixture — combiner tier
pub struct ComboLock;
impl ComboLock {
    pub fn lock(&self) -> Guard {
        Guard
    }
}

pub struct App {
    combo: ComboLock,
    reserve: GateLock,
}
impl App {
    pub fn reserve(&self) -> Guard {
        let _c = self.combo.lock();
        // lock-level: 2 fixture — this gate instance only ever nests
        // inside the combiner lock, unlike its type's level-0 default
        self.reserve.lock()
    }
}
"#;

#[test]
fn site_level_override_reclassifies_one_acquire() {
    let path = "crates/nr/src/site_override.rs".to_string();
    let diags = lint_files(
        &[(path.clone(), SITE_OVERRIDE_FIXTURE.to_string())],
        &Config::default(),
    );
    assert!(
        diags.is_empty(),
        "site override ignored: {:?}",
        diags.iter().map(|d| format!("{d}")).collect::<Vec<_>>()
    );

    // Without the override the same acquire is a plain level-0 GateLock
    // taken under the level-1 combiner: an inversion.
    let stripped: String = SITE_OVERRIDE_FIXTURE
        .lines()
        .filter(|l| {
            !l.trim_start().starts_with("// lock-level: 2 fixture")
                && !l.trim_start().starts_with("// inside the combiner")
        })
        .collect::<Vec<_>>()
        .join("\n");
    let diags = lint_files(&[(path, stripped)], &Config::default());
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "lock-order" && d.message.contains("acquires `GateLock` (level 0)")),
        "inversion not detected without the override: {:?}",
        diags.iter().map(|d| format!("{d}")).collect::<Vec<_>>()
    );
}
