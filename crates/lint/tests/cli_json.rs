//! End-to-end tests of the prep-lint binary: `--json` output shape,
//! suppression marking, `--deny` exit codes, and `--explain`.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_prep-lint"))
}

#[test]
fn explain_prints_rationale_and_rejects_unknown_ids() {
    let out = bin().args(["--explain", "lock-order"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("lock-order"), "got: {text}");
    assert!(text.len() > 80, "rationale suspiciously short: {text}");

    let bad = bin().args(["--explain", "no-such-rule"]).output().unwrap();
    assert!(!bad.status.success());
}

/// A throwaway workspace: one unranked lock acquired twice, the second
/// site suppressed with a reasoned allow.
const FIXTURE: &str = r#"//! CLI fixture.

pub struct Guard;

pub struct StrayLock;
impl StrayLock {
    pub fn lock(&self) -> Guard {
        Guard
    }
}

pub struct App {
    s: StrayLock,
}

impl App {
    pub fn one(&self) -> Guard {
        self.s.lock()
    }

    pub fn two(&self) -> Guard {
        // lint:allow(lock-order-unranked): fixture — suppressed on purpose
        self.s.lock()
    }
}
"#;

fn fixture_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("prep-lint-cli-{tag}-{}", std::process::id()));
    let src = dir.join("crates/cx/src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(dir.join("lint.toml"), "").unwrap();
    std::fs::write(src.join("bad.rs"), FIXTURE).unwrap();
    dir
}

#[test]
fn json_lines_include_suppressed_findings_and_deny_ignores_them() {
    let root = fixture_root("json");
    let out = bin()
        .args(["--json", "--root", root.to_str().unwrap()])
        .output()
        .unwrap();
    let text = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = text.lines().filter(|l| !l.is_empty()).collect();
    assert_eq!(lines.len(), 2, "expected both sites in --json: {text}");
    for l in &lines {
        assert!(l.starts_with("{\"file\":"), "not a JSON object: {l}");
        assert!(l.ends_with('}'), "not a JSON object: {l}");
        assert!(l.contains("\"rule\":\"lock-order-unranked\""), "{l}");
        assert!(l.contains("\"line\":"), "{l}");
        assert!(l.contains("\"col\":"), "{l}");
    }
    let suppressed: Vec<&&str> = lines
        .iter()
        .filter(|l| l.contains("\"suppressed_by\":\"fixture — suppressed on purpose\""))
        .collect();
    assert_eq!(
        suppressed.len(),
        1,
        "exactly one marked suppression: {text}"
    );

    // --deny counts only the unsuppressed finding: still a failure.
    let deny = bin()
        .args(["--deny", "--root", root.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!deny.status.success());

    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn deny_passes_once_every_finding_is_suppressed_or_fixed() {
    let root = fixture_root("deny");
    let fixed = FIXTURE.replace(
        "    pub fn one(&self) -> Guard {\n        self.s.lock()",
        "    pub fn one(&self) -> Guard {\n        // lint:allow(lock-order-unranked): fixture — now also justified\n        self.s.lock()",
    );
    std::fs::write(root.join("crates/cx/src/bad.rs"), fixed).unwrap();
    let deny = bin()
        .args(["--deny", "--root", root.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        deny.status.success(),
        "stdout: {}",
        String::from_utf8_lossy(&deny.stdout)
    );
    std::fs::remove_dir_all(&root).ok();
}
