//! Property fuzz for the lexer's two advertised invariants (see
//! `lexer.rs` module docs): totality (never panics, any input) and
//! round-trip (token spans are non-empty, contiguous, and tile the input
//! exactly). Also drives [`FileModel::build`] over the same inputs, since
//! every rule trusts the model not to choke on hostile sources.

use proptest::collection::vec;
use proptest::prelude::*;

use prep_lint::lexer::{lex, LineMap};
use prep_lint::FileModel;

/// Checks the tiling invariant over an arbitrary source.
fn assert_tiles(src: &str) -> proptest::test_runner::TestCaseResult {
    let tokens = lex(src);
    let mut cursor = 0usize;
    let mut rebuilt = String::with_capacity(src.len());
    for t in &tokens {
        prop_assert_eq!(
            t.start,
            cursor,
            "gap or overlap before token at {}",
            t.start
        );
        prop_assert!(t.end > t.start, "empty token span at {}", t.start);
        prop_assert!(t.end <= src.len(), "token runs past EOF");
        prop_assert!(
            src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
            "token span splits a UTF-8 character at {}..{}",
            t.start,
            t.end
        );
        rebuilt.push_str(t.text(src));
        cursor = t.end;
    }
    prop_assert_eq!(cursor, src.len(), "tokens do not reach EOF");
    prop_assert_eq!(rebuilt.as_str(), src, "concatenated spans != source");

    // LineMap agrees with the tiling: every span start maps to a valid
    // 1-based position, monotonically non-decreasing in line.
    let lines = LineMap::new(src);
    let mut prev_line = 1u32;
    for t in &tokens {
        let (line, col) = lines.line_col(t.start);
        prop_assert!(line >= prev_line, "line numbers went backwards");
        prop_assert!(col >= 1, "columns are 1-based");
        prev_line = line;
    }
    Ok(())
}

/// Rust-ish fragments, biased toward the constructs the lexer special-
/// cases — including unterminated and degenerate forms.
const FRAGMENTS: &[&str] = &[
    "fn f() {}",
    "unsafe { *p }",
    "// line comment\n",
    "/* block /* nested */ */",
    "/* unterminated",
    "\"string with // not a comment\"",
    "\"unterminated string\n",
    "r#\"raw \" string\"#",
    "r##\"raw with # inside\"##",
    "br#\"bytes\"#",
    "cr\"c raw\"",
    "r#match",
    "'a'",
    "b'\\n'",
    "'static",
    "'\\u{1F980}'",
    "0x_fe_u64",
    "1_000.5e-3f32",
    "Ordering::SeqCst",
    "self.v.load(Ordering::Acquire)",
    "// SAFETY: fixture\n",
    "// lint:allow(atomic-ordering)\n",
    "#[cfg(test)]",
    "#![forbid(unsafe_code)]",
    "let 🦀 = \"🦀\";",
    "\\",
    "\"",
    "'",
    "r#\"",
    "r#",
    "b",
    "/",
    "//",
    "/*",
    "\n\n",
    "\t ",
    "ключ",
];

proptest! {
    /// Totality + round-trip over arbitrary (lossy-decoded) byte soup.
    #[test]
    fn arbitrary_bytes_lex_and_tile(bytes in vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_tiles(&src)?;
        // The full model (comments, items, test spans) must also survive.
        let _ = FileModel::build(&src);
    }

    /// Same invariants over concatenations of adversarial Rust fragments —
    /// these hit the raw-string/char/lifetime/nesting paths far more often
    /// than uniform bytes do.
    #[test]
    fn rust_like_fragments_lex_and_tile(picks in vec(0..FRAGMENTS.len(), 0..48)) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        assert_tiles(&src)?;
        let _ = FileModel::build(&src);
    }

    /// Truncating any valid source at an arbitrary char boundary must still
    /// lex totally (unterminated literals run to EOF by contract).
    #[test]
    fn truncation_never_panics(picks in vec(0..FRAGMENTS.len(), 0..16), cut in any::<u16>()) {
        let full: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let mut at = (cut as usize) % (full.len() + 1);
        while !full.is_char_boundary(at) {
            at -= 1;
        }
        assert_tiles(&full[..at])?;
    }
}
