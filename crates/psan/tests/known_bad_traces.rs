//! Table-driven suite of known-bad traces: each case seeds one specific
//! ordering bug and asserts the sanitizer reports exactly the expected
//! violation kind. A final set of clean traces pins down the rules'
//! *non*-firing behavior (per-thread fences, WBINVD, byte granularity).

use prep_psan::{check_trace, Event, EventKind, PublishTag, ViolationKind};

fn ev(seq: u64, thread: u64, kind: EventKind) -> Event {
    Event {
        seq,
        thread,
        kind,
        site: "known_bad_traces",
    }
}

fn store(seq: u64, thread: u64, addr: u64, len: u64) -> Event {
    ev(
        seq,
        thread,
        EventKind::Store {
            addr,
            len,
            durable: false,
        },
    )
}

fn flush(seq: u64, thread: u64, addr: u64) -> Event {
    ev(seq, thread, EventKind::FlushLine { addr, sync: false })
}

fn fence(seq: u64, thread: u64) -> Event {
    ev(seq, thread, EventKind::Fence)
}

fn publish(seq: u64, thread: u64, addr: u64, deps: Vec<(u64, u64)>, tag: PublishTag) -> Event {
    ev(
        seq,
        thread,
        EventKind::Publish {
            addr,
            len: 1,
            deps,
            tag,
            durable: false,
        },
    )
}

struct Case {
    name: &'static str,
    trace: Vec<Event>,
    expect: &'static [ViolationKind],
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "missing_fence: payload flushed but publish issued before the sfence",
            trace: vec![
                store(0, 1, 0, 32),
                flush(1, 1, 0),
                publish(2, 1, 64, vec![(0, 32)], PublishTag::LogEntry),
                flush(3, 1, 64),
                fence(4, 1),
            ],
            expect: &[ViolationKind::MissingFence],
        },
        Case {
            name: "version_publish_unfenced: replica bytes flushed but the \
                   version-style publish (seqlock write_end analogue) is \
                   issued before the draining sfence",
            trace: vec![
                // A combiner mutates the replica inside its version bracket,
                // flushes the dirty lines, then publishes the even version
                // word that readers trust — but before the fence drains the
                // flushes, so a crash could persist the publish without the
                // replica bytes it covers.
                store(0, 1, 0, 128),
                flush(1, 1, 0),
                flush(2, 1, 64),
                publish(3, 1, 4096, vec![(0, 128)], PublishTag::CheckpointMarker),
                flush(4, 1, 4096),
                fence(5, 1),
            ],
            expect: &[ViolationKind::MissingFence],
        },
        Case {
            name: "flush_after_publish: payload flush issued only after the emptyBit store",
            trace: vec![
                store(0, 1, 0, 32),
                publish(1, 1, 64, vec![(0, 32)], PublishTag::LogEntry),
                flush(2, 1, 0),
                flush(3, 1, 64),
                fence(4, 1),
            ],
            expect: &[ViolationKind::FlushAfterPublish],
        },
        Case {
            name: "missing_flush: payload never flushed at all",
            trace: vec![
                store(0, 1, 0, 32),
                publish(1, 1, 64, vec![(0, 32)], PublishTag::LogEntry),
                flush(2, 1, 64),
                fence(3, 1),
            ],
            expect: &[ViolationKind::MissingFlush],
        },
        Case {
            name: "tail_before_entry: completedTail persisted before a covered log entry",
            trace: vec![
                // Entry 0 durable, entry 1 (bytes 64..128) only flushed.
                store(0, 1, 0, 64),
                flush(1, 1, 0),
                fence(2, 1),
                store(3, 1, 64, 64),
                flush(4, 1, 64),
                // completedTail covers both entries but entry 1 is unfenced.
                publish(5, 1, 4096, vec![(0, 128)], PublishTag::CompletedTail),
                fence(6, 1),
            ],
            expect: &[ViolationKind::TailBeforeEntry],
        },
        Case {
            name: "stale_recovery_read: recovery reads bytes dirty at the crash cut",
            trace: vec![
                store(0, 1, 0, 16),
                ev(1, 1, EventKind::CrashCut { id: 1 }),
                ev(
                    2,
                    1,
                    EventKind::RecoveryRead {
                        addr: 0,
                        len: 16,
                        cut: 1,
                    },
                ),
            ],
            expect: &[ViolationKind::StaleRecoveryRead],
        },
        Case {
            name: "stale_recovery_read: flushed-but-unfenced at the cut is still stale",
            trace: vec![
                store(0, 1, 0, 16),
                flush(1, 1, 0),
                ev(2, 1, EventKind::CrashCut { id: 1 }),
                ev(
                    3,
                    1,
                    EventKind::RecoveryRead {
                        addr: 8,
                        len: 4,
                        cut: 1,
                    },
                ),
            ],
            expect: &[ViolationKind::StaleRecoveryRead],
        },
        Case {
            name: "multilog missing_fence: cut-vector checkpoint covers log A's \
                   drained bytes but log B's flush has no draining sfence",
            trace: vec![
                // Log A's entry bytes are fully drained before the cut.
                store(0, 1, 0, 32),
                flush(1, 1, 0),
                fence(2, 1),
                // Log B's entry bytes are flushed but the combiner skips
                // the sfence before selecting the cut vector, so the
                // selector can go durable while B's bytes are in flight.
                store(3, 1, 1024, 32),
                flush(4, 1, 1024),
                publish(
                    5,
                    1,
                    4096,
                    vec![(0, 32), (1024, 32)],
                    PublishTag::CheckpointMarker,
                ),
                flush(6, 1, 4096),
                fence(7, 1),
            ],
            expect: &[ViolationKind::MissingFence],
        },
        Case {
            name: "multilog stale_recovery_read: recovery reads log B past its cut tail",
            trace: vec![
                // Log B entry 0 durable, its completedTail covers it: clean.
                store(0, 1, 1024, 16),
                flush(1, 1, 1024),
                fence(2, 1),
                publish(3, 1, 2048, vec![(1024, 16)], PublishTag::CompletedTail),
                flush(4, 1, 2048),
                fence(5, 1),
                // Entry 1 lands past B's completedTail and is still dirty
                // at the crash; recovery must replay only up to the cut
                // tail, but reads the over-tail entry anyway.
                store(6, 1, 1040, 16),
                ev(7, 1, EventKind::CrashCut { id: 1 }),
                ev(
                    8,
                    1,
                    EventKind::RecoveryRead {
                        addr: 1040,
                        len: 16,
                        cut: 1,
                    },
                ),
            ],
            expect: &[ViolationKind::StaleRecoveryRead],
        },
        Case {
            name: "redundant_flush: same line flushed twice in one epoch, no store between",
            trace: vec![
                store(0, 1, 0, 8),
                flush(1, 1, 0),
                fence(2, 1),
                flush(3, 1, 8), // same line as addr 0
                fence(4, 1),
            ],
            expect: &[ViolationKind::RedundantFlush],
        },
        Case {
            // Two combiners' adjacent log batches share a boundary line;
            // each thread stores its half, thread 2's flush lands first and
            // covers both stores, thread 1 still flushes for its own store.
            // Unavoidable without cross-thread coordination → not reported.
            name: "clean: cross-thread re-flush of a shared boundary line is not redundant",
            trace: vec![
                store(0, 1, 0, 8), // thread 1's batch tail
                store(1, 2, 8, 8), // thread 2's batch head, same line
                flush(2, 2, 8),
                fence(3, 2),
                flush(4, 1, 0), // line already clean, but cleaned by t2
                fence(5, 1),
            ],
            expect: &[],
        },
        Case {
            // The same-thread rule still fires through an interleaved
            // foreign flush: t1 cleans the line, t2 re-flushes (benign),
            // t1 flushes again with no store anywhere since its own flush.
            name: "redundant_flush: same-thread re-flush after a foreign benign flush",
            trace: vec![
                store(0, 1, 0, 8),
                flush(1, 1, 0),
                fence(2, 1),
                flush(3, 2, 8), // foreign flush of the clean line: benign
                flush(4, 2, 8), // t2 again, right after its own: redundant
                fence(5, 2),
            ],
            expect: &[ViolationKind::RedundantFlush],
        },
        Case {
            name: "cross_thread_fence: a fence on another thread does not drain my flushes",
            trace: vec![
                store(0, 1, 0, 8),
                flush(1, 1, 0),
                fence(2, 2), // thread 2's fence — irrelevant to thread 1
                publish(3, 1, 64, vec![(0, 8)], PublishTag::LogEntry),
                flush(4, 1, 64),
                fence(5, 1),
            ],
            expect: &[ViolationKind::MissingFence],
        },
        Case {
            name: "clean: flush + fence before publish",
            trace: vec![
                store(0, 1, 0, 32),
                flush(1, 1, 0),
                fence(2, 1),
                publish(3, 1, 64, vec![(0, 32)], PublishTag::LogEntry),
                flush(4, 1, 64),
                fence(5, 1),
            ],
            expect: &[],
        },
        Case {
            name: "clean: wbinvd makes everything durable",
            trace: vec![
                store(0, 1, 0, 4096),
                ev(1, 1, EventKind::Wbinvd),
                publish(2, 1, 8192, vec![(0, 4096)], PublishTag::CheckpointMarker),
                flush(3, 1, 8192),
                fence(4, 1),
            ],
            expect: &[],
        },
        Case {
            name: "clean: epoch boundary resets the redundant-flush lint",
            trace: vec![
                store(0, 1, 0, 8),
                flush(1, 1, 0),
                fence(2, 1),
                ev(3, 1, EventKind::Epoch),
                flush(4, 1, 0), // new epoch: not redundant
                fence(5, 1),
            ],
            expect: &[],
        },
        Case {
            name: "clean: byte granularity — durable neighbor on a shared line stays durable",
            trace: vec![
                // Entry payload bytes 0..8 made durable, emptyBit published.
                store(0, 1, 0, 8),
                flush(1, 1, 0),
                fence(2, 1),
                publish(3, 1, 8, vec![(0, 8)], PublishTag::LogEntry),
                flush(4, 1, 8),
                fence(5, 1),
                // Next entry dirties bytes 9..17 on the SAME line, then
                // completedTail publishes only the first entry's bytes.
                store(6, 1, 9, 8),
                publish(7, 1, 4096, vec![(0, 9)], PublishTag::CompletedTail),
                fence(8, 1),
            ],
            expect: &[],
        },
        Case {
            name: "clean: recovery reads only bytes durable at the cut",
            trace: vec![
                store(0, 1, 0, 16),
                flush(1, 1, 0),
                fence(2, 1),
                store(3, 1, 64, 16), // dirty, but never read by recovery
                ev(4, 1, EventKind::CrashCut { id: 1 }),
                ev(
                    5,
                    1,
                    EventKind::RecoveryRead {
                        addr: 0,
                        len: 16,
                        cut: 1,
                    },
                ),
            ],
            expect: &[],
        },
        Case {
            name: "clean: store+clflush pair is durable on issue",
            trace: vec![
                ev(
                    0,
                    1,
                    EventKind::Store {
                        addr: 0,
                        len: 8,
                        durable: true,
                    },
                ),
                publish(1, 1, 64, vec![(0, 8)], PublishTag::Other),
                flush(2, 1, 64),
                fence(3, 1),
            ],
            expect: &[],
        },
    ]
}

#[test]
fn known_bad_traces_each_yield_the_expected_violation_kind() {
    for case in cases() {
        let violations = check_trace(&case.trace);
        let kinds: Vec<ViolationKind> = violations.iter().map(|v| v.kind).collect();
        assert_eq!(
            kinds, case.expect,
            "case `{}` reported {:#?}",
            case.name, violations
        );
    }
}

#[test]
fn violation_chains_name_the_store_and_the_trigger() {
    let trace = vec![
        store(0, 1, 0, 32),
        flush(1, 1, 0),
        publish(2, 1, 64, vec![(0, 32)], PublishTag::LogEntry),
        fence(3, 1),
    ];
    let violations = check_trace(&trace);
    assert_eq!(violations.len(), 1);
    let v = &violations[0];
    // Chain: the store, its (unfenced) flush, the publish trigger.
    let seqs: Vec<u64> = v.chain.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![0, 1, 2]);
    assert!(
        v.message.contains("flushed but not fenced"),
        "{}",
        v.message
    );
    let report = prep_psan::format_violations(&violations);
    assert!(report.contains("missing-fence"), "{report}");
    assert!(report.contains("known_bad_traces"), "{report}");
}

#[test]
fn multilog_cut_vector_bisection_pinpoints_the_undrained_log() {
    // Two-log cut-vector checkpoint: log A's bytes are drained, log B's
    // are flushed but unfenced when the selector goes durable. The report
    // must blame log B's range, and the bisected window must be exactly
    // the instants between the durable selector and the fence that
    // finally drains B.
    let trace = vec![
        store(0, 1, 0, 8), // log A entry
        flush(1, 1, 0),
        fence(2, 1),          // A drained
        store(3, 1, 1024, 8), // log B entry
        flush(4, 1, 1024),    // never fenced before the selector
        ev(
            5,
            1,
            EventKind::Publish {
                addr: 4096,
                len: 8,
                deps: vec![(0, 8), (1024, 8)],
                tag: PublishTag::CheckpointMarker,
                durable: true,
            },
        ),
        fence(6, 1),
    ];
    let violations = check_trace(&trace);
    assert_eq!(violations.len(), 1, "{violations:#?}");
    let v = &violations[0];
    assert_eq!(v.kind, ViolationKind::MissingFence);
    // Log B's bytes, not log A's.
    assert_eq!(v.range, (1024, 1032));
    // Crash instants 6..7: after the durable selector, before B's fence.
    assert_eq!(v.crash_window, Some((6, 7)));
    assert_eq!(prep_psan::crash_window(&trace, 5), Some((6, 7)));
}

#[test]
fn multilog_over_tail_recovery_read_names_the_store_cut_and_read() {
    // Same shape as the table's multilog stale_recovery_read case, with
    // the chain and the clean per-log completedTail pinned down.
    let trace = vec![
        store(0, 1, 1024, 16),
        flush(1, 1, 1024),
        fence(2, 1),
        publish(3, 1, 2048, vec![(1024, 16)], PublishTag::CompletedTail),
        flush(4, 1, 2048),
        fence(5, 1),
        store(6, 1, 1040, 16),
        ev(7, 1, EventKind::CrashCut { id: 1 }),
        ev(
            8,
            1,
            EventKind::RecoveryRead {
                addr: 1040,
                len: 16,
                cut: 1,
            },
        ),
    ];
    let violations = check_trace(&trace);
    assert_eq!(violations.len(), 1, "{violations:#?}");
    let v = &violations[0];
    assert_eq!(v.kind, ViolationKind::StaleRecoveryRead);
    assert_eq!(v.range, (1040, 1056));
    // Chain: the over-tail store, the cut, the offending read.
    let seqs: Vec<u64> = v.chain.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![6, 7, 8]);
    // The per-log completedTail publish itself is clean — its dep was
    // durable before it, so no divergent crash window exists.
    assert_eq!(prep_psan::crash_window(&trace, 3), None);
}

#[test]
fn bisection_reports_a_window_only_when_a_divergent_cut_exists() {
    // Publish made durable synchronously while the dep is still pending:
    // cutting between the publish and the fence loses the dep.
    let trace = vec![
        store(0, 1, 0, 8),
        flush(1, 1, 0),
        ev(
            2,
            1,
            EventKind::Publish {
                addr: 64,
                len: 8,
                deps: vec![(0, 8)],
                tag: PublishTag::CompletedTail,
                durable: true,
            },
        ),
        fence(3, 1),
    ];
    let violations = check_trace(&trace);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].crash_window, Some((3, 4)));
    // Explicit API: same answer.
    assert_eq!(prep_psan::crash_window(&trace, 2), Some((3, 4)));
    // Non-publish events have no window.
    assert_eq!(prep_psan::crash_window(&trace, 0), None);
}
