//! The rule engine: replays an event trace against the ordering rules and
//! reports violations with full store→flush→fence chains.
//!
//! Durability state is tracked **byte-granular** in an interval map. Line
//! granularity would be wrong here: log entries pack many per-index byte
//! ranges into shared cachelines, so a later entry's payload store would
//! appear to "undo" the durability of an earlier, already-persisted entry
//! and produce false `TailBeforeEntry` reports. Flushes, by contrast, are
//! expanded to full line spans — flushing a line persists every byte on
//! it, exactly as the hardware does (flushes only ever make *more* bytes
//! durable, so the expansion is sound).

use std::collections::{BTreeMap, HashMap};

use crate::trace::{fmt_addr, Event, EventKind, PublishTag, Region, CACHE_LINE};

/// Classification of an ordering violation. The first four are rule 1/2
/// failures distinguished by *why* the published bytes were not durable;
/// the last two are rules 3 and 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Published bytes were never flushed before the publish store, and no
    /// later flush covers them either.
    MissingFlush,
    /// Published bytes were flushed, but the issuing thread's fence had
    /// not executed when the publish store was issued.
    MissingFence,
    /// Published bytes were still dirty at the publish store; the flush
    /// covering them was issued only *after* the publish.
    FlushAfterPublish,
    /// `completedTail` was published before every log byte at or below it
    /// was durable (rule 2, the `completedTail` specialization of rule 1).
    TailBeforeEntry,
    /// Recovery read bytes whose latest store was not durable at the
    /// crash cut it recovers from (rule 3).
    StaleRecoveryRead,
    /// A thread flushed a line it had already flushed within the same
    /// checkpoint epoch, with no intervening store to it by any thread
    /// (rule 4 — a performance lint). Scoped to the *same* thread
    /// re-flushing: when adjacent log batches of two combiners share a
    /// boundary cacheline, each thread legitimately flushes the line for
    /// its own store, and whichever flush lands second finds the line
    /// already clean — that interleaving is unavoidable without
    /// cross-thread coordination and costs nothing on hardware, so it is
    /// not reported.
    RedundantFlush,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ViolationKind::MissingFlush => "missing-flush",
            ViolationKind::MissingFence => "missing-fence",
            ViolationKind::FlushAfterPublish => "flush-after-publish",
            ViolationKind::TailBeforeEntry => "tail-before-entry",
            ViolationKind::StaleRecoveryRead => "stale-recovery-read",
            ViolationKind::RedundantFlush => "redundant-flush",
        };
        f.write_str(s)
    }
}

/// One rule failure: what broke, where, and the event chain proving it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired.
    pub kind: ViolationKind,
    /// Sequence number of the triggering event (the publish store, the
    /// recovery read, or the redundant flush).
    pub seq: u64,
    /// Call site of the triggering event.
    pub site: &'static str,
    /// The offending byte range `[start, end)`.
    pub range: (u64, u64),
    /// The proving event chain, in trace order: the last store to the
    /// offending range, its flush (if one was issued), and the trigger.
    pub chain: Vec<Event>,
    /// For publish-ordering violations: the crash-point bisection result —
    /// the half-open window of event indices `[a, b)` such that a crash
    /// cut taken there observes the publish durable but its dependency
    /// not, i.e. recovery diverges. `None` when no such instant exists in
    /// this trace (a later fence closed the race before the publish ever
    /// became durable), in which case the report is still a real ordering
    /// bug — the window merely happened to be empty *on this schedule*.
    pub crash_window: Option<(u64, u64)>,
    /// Human-readable one-line description.
    pub message: String,
}

/// Durability of one byte interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SegState {
    /// Stored, not yet flushed.
    Dirty,
    /// Flushed with `CLFLUSHOPT`; durable after `thread`'s next fence.
    Pending { thread: u64, flush_seq: u64 },
    /// Flushed and fenced (or stored with a synchronous `CLFLUSH`).
    Durable,
}

impl SegState {
    fn describe(&self) -> &'static str {
        match self {
            SegState::Dirty => "dirty (never flushed)",
            SegState::Pending { .. } => "flushed but not fenced",
            SegState::Durable => "durable",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Seg {
    end: u64,
    store_seq: u64,
    state: SegState,
}

/// Byte-granular interval map from address to durability state. Bytes
/// never stored are implicitly durable (NVM holds whatever it holds; only
/// *written* bytes can be lost in a cache).
#[derive(Default)]
struct SegMap {
    segs: BTreeMap<u64, Seg>,
}

impl SegMap {
    /// Splits the segment containing `pos` (if any) so `pos` becomes a
    /// segment boundary.
    fn split_at(&mut self, pos: u64) {
        if let Some((&start, &seg)) = self.segs.range(..pos).next_back() {
            if seg.end > pos {
                self.segs.insert(start, Seg { end: pos, ..seg });
                self.segs.insert(pos, seg);
            }
        }
    }

    fn store(&mut self, addr: u64, len: u64, seq: u64, durable: bool) {
        if len == 0 {
            return;
        }
        let end = addr + len;
        self.split_at(addr);
        self.split_at(end);
        let covered: Vec<u64> = self.segs.range(addr..end).map(|(&k, _)| k).collect();
        for k in covered {
            self.segs.remove(&k);
        }
        let state = if durable {
            SegState::Durable
        } else {
            SegState::Dirty
        };
        self.segs.insert(
            addr,
            Seg {
                end,
                store_seq: seq,
                state,
            },
        );
    }

    /// Applies a flush covering every line overlapping `[addr, addr+len)`.
    fn flush(&mut self, addr: u64, len: u64, sync: bool, thread: u64, seq: u64) {
        let start = addr / CACHE_LINE * CACHE_LINE;
        let end = (addr + len.max(1)).div_ceil(CACHE_LINE) * CACHE_LINE;
        self.split_at(start);
        self.split_at(end);
        for seg in self.segs.range_mut(start..end).map(|(_, s)| s) {
            seg.state = match seg.state {
                SegState::Dirty if sync => SegState::Durable,
                SegState::Dirty => SegState::Pending {
                    thread,
                    flush_seq: seq,
                },
                SegState::Pending { .. } if sync => SegState::Durable,
                // A re-flush of an already-pending interval keeps the
                // original flush identity; it still needs a fence.
                pending @ SegState::Pending { .. } => pending,
                SegState::Durable => SegState::Durable,
            };
        }
    }

    /// `SFENCE` by `thread`: that thread's pending flushes complete.
    fn fence(&mut self, thread: u64) {
        for seg in self.segs.values_mut() {
            if matches!(seg.state, SegState::Pending { thread: t, .. } if t == thread) {
                seg.state = SegState::Durable;
            }
        }
    }

    /// `WBINVD`: every line in the system is written back.
    fn wbinvd(&mut self) {
        for seg in self.segs.values_mut() {
            seg.state = SegState::Durable;
        }
    }

    /// First non-durable sub-interval overlapping `[addr, addr+len)`, as
    /// `(start, end, store_seq, state)`.
    fn first_not_durable(&self, addr: u64, len: u64) -> Option<(u64, u64, u64, SegState)> {
        let end = addr.saturating_add(len);
        let scan_from = self
            .segs
            .range(..=addr)
            .next_back()
            .map(|(&k, _)| k)
            .unwrap_or(addr);
        for (&start, seg) in self.segs.range(scan_from..end) {
            if seg.end <= addr {
                continue;
            }
            if seg.state != SegState::Durable {
                return Some((start.max(addr), seg.end.min(end), seg.store_seq, seg.state));
            }
        }
        None
    }

    fn all_durable(&self, ranges: &[(u64, u64)]) -> bool {
        ranges
            .iter()
            .all(|&(a, l)| self.first_not_durable(a, l).is_none())
    }

    /// Every non-durable segment — the snapshot taken at a crash cut.
    fn not_durable(&self) -> Vec<(u64, u64, u64, SegState)> {
        self.segs
            .iter()
            .filter(|(_, s)| s.state != SegState::Durable)
            .map(|(&k, s)| (k, s.end, s.store_seq, s.state))
            .collect()
    }
}

/// Cacheline start addresses spanned by `[addr, addr+len)`.
fn line_span(addr: u64, len: u64) -> impl Iterator<Item = u64> {
    let first = addr / CACHE_LINE;
    let last = (addr + len.max(1)).div_ceil(CACHE_LINE);
    (first..last).map(|l| l * CACHE_LINE)
}

/// Redundant-flush lint state for one cacheline (rule 4).
#[derive(Clone, Copy, PartialEq, Eq)]
enum LintLine {
    /// Stored to since the last flush — the next flush is useful.
    Dirty,
    /// Clean; the recorded thread issued the flush that cleaned it. Only a
    /// re-flush by that same thread is reported: a *different* thread
    /// flushing a clean line is the benign adjacent-batch interleaving
    /// (both threads stored to a shared boundary line, one flush covered
    /// both stores, the other thread still owes a flush for its own store).
    CleanedBy(u64),
}

/// Checks a trace with no region labels (addresses print raw).
pub fn check_trace(events: &[Event]) -> Vec<Violation> {
    check_trace_with_regions(events, &[])
}

/// Checks a trace; `regions` are used only to label addresses in reports.
pub(crate) fn check_trace_with_regions(events: &[Event], regions: &[Region]) -> Vec<Violation> {
    let mut map = SegMap::default();
    // Redundant-flush lint: line → dirty / cleaned-by-thread (see
    // [`LintLine`] for why the cleaning thread matters).
    let mut flushed_lines: HashMap<u64, LintLine> = HashMap::new();
    // Crash cut id → (cut event seq, non-durable segments at the cut).
    type CutSnapshot = (u64, Vec<(u64, u64, u64, SegState)>);
    let mut cuts: HashMap<u64, CutSnapshot> = HashMap::new();
    let mut out = Vec::new();

    let lint_store = |flushed: &mut HashMap<u64, LintLine>, addr: u64, len: u64| {
        for line in line_span(addr, len) {
            flushed.insert(line, LintLine::Dirty);
        }
    };
    let lint_flush = |flushed: &mut HashMap<u64, LintLine>,
                      out: &mut Vec<Violation>,
                      ev: &Event,
                      addr: u64,
                      len: u64,
                      report: bool| {
        for line in line_span(addr, len) {
            let prev = flushed.insert(line, LintLine::CleanedBy(ev.thread));
            if prev == Some(LintLine::CleanedBy(ev.thread)) && report {
                out.push(Violation {
                    kind: ViolationKind::RedundantFlush,
                    seq: ev.seq,
                    site: ev.site,
                    range: (line, line + CACHE_LINE),
                    chain: vec![ev.clone()],
                    crash_window: None,
                    message: format!(
                        "line {} flushed again by thread {} at {} (seq {}) with no store since \
                         the same thread's last flush in this epoch",
                        fmt_addr(regions, line),
                        ev.thread,
                        ev.site,
                        ev.seq
                    ),
                });
            }
        }
    };

    for ev in events {
        match &ev.kind {
            EventKind::Store { addr, len, durable } => {
                lint_store(&mut flushed_lines, *addr, *len);
                if *durable {
                    // The paired CLFLUSH counts as the line's flush.
                    lint_flush(&mut flushed_lines, &mut out, ev, *addr, *len, false);
                }
                map.store(*addr, *len, ev.seq, *durable);
            }
            EventKind::Publish {
                addr,
                len,
                deps,
                tag,
                durable,
            } => {
                // Rules 1/2: every published byte must be durable *now* —
                // once this store is issued, the dirty publish line can
                // reach NVM spontaneously at any moment.
                for &(daddr, dlen) in deps {
                    let Some((s, e, store_seq, state)) = map.first_not_durable(daddr, dlen) else {
                        continue;
                    };
                    let kind = match (tag, state) {
                        (PublishTag::CompletedTail, _) => ViolationKind::TailBeforeEntry,
                        (_, SegState::Pending { .. }) => ViolationKind::MissingFence,
                        (_, SegState::Dirty) => {
                            if flush_after(events, ev.seq, s, e) {
                                ViolationKind::FlushAfterPublish
                            } else {
                                ViolationKind::MissingFlush
                            }
                        }
                        (_, SegState::Durable) => {
                            unreachable!("first_not_durable returned durable")
                        }
                    };
                    let mut chain = Vec::new();
                    if let Some(store_ev) = events.get(store_seq as usize) {
                        chain.push(store_ev.clone());
                    }
                    if let SegState::Pending { flush_seq, .. } = state {
                        if let Some(flush_ev) = events.get(flush_seq as usize) {
                            chain.push(flush_ev.clone());
                        }
                    }
                    chain.push(ev.clone());
                    out.push(Violation {
                        kind,
                        seq: ev.seq,
                        site: ev.site,
                        range: (s, e),
                        chain,
                        crash_window: crash_window(events, ev.seq),
                        message: format!(
                            "{tag} published at {} (seq {}) while dependency bytes [{}, {}) \
                             were {} — last store at seq {}",
                            ev.site,
                            ev.seq,
                            fmt_addr(regions, s),
                            fmt_addr(regions, e),
                            state.describe(),
                            store_seq
                        ),
                    });
                    break; // one report per publish event
                }
                lint_store(&mut flushed_lines, *addr, *len);
                if *durable {
                    lint_flush(&mut flushed_lines, &mut out, ev, *addr, *len, false);
                }
                map.store(*addr, *len, ev.seq, *durable);
            }
            EventKind::FlushLine { addr, sync } => {
                lint_flush(&mut flushed_lines, &mut out, ev, *addr, 1, true);
                map.flush(*addr, 1, *sync, ev.thread, ev.seq);
            }
            EventKind::FlushRange { addr, len } => {
                lint_flush(&mut flushed_lines, &mut out, ev, *addr, *len, true);
                map.flush(*addr, *len, false, ev.thread, ev.seq);
            }
            EventKind::Fence => map.fence(ev.thread),
            EventKind::Wbinvd => {
                map.wbinvd();
                // An epoch-scale writeback; restart the lint window.
                flushed_lines.clear();
            }
            EventKind::Epoch => flushed_lines.clear(),
            EventKind::CrashCut { id } => {
                cuts.insert(*id, (ev.seq, map.not_durable()));
            }
            EventKind::RecoveryRead { addr, len, cut } => {
                // Rule 3: recovery may rely only on bytes durable at the
                // cut. A cut id we never saw means tracing started after
                // the crash — nothing to check against.
                let Some((cut_seq, snapshot)) = cuts.get(cut) else {
                    continue;
                };
                for &(s, e, store_seq, state) in snapshot {
                    let os = s.max(*addr);
                    let oe = e.min(addr.saturating_add(*len));
                    if os >= oe {
                        continue;
                    }
                    let mut chain = Vec::new();
                    if let Some(store_ev) = events.get(store_seq as usize) {
                        chain.push(store_ev.clone());
                    }
                    if let Some(cut_ev) = events.get(*cut_seq as usize) {
                        chain.push(cut_ev.clone());
                    }
                    chain.push(ev.clone());
                    out.push(Violation {
                        kind: ViolationKind::StaleRecoveryRead,
                        seq: ev.seq,
                        site: ev.site,
                        range: (os, oe),
                        chain,
                        crash_window: None,
                        message: format!(
                            "recovery from cut #{cut} read [{}, {}) at {} (seq {}), but those \
                             bytes were {} at the cut — last store at seq {}",
                            fmt_addr(regions, os),
                            fmt_addr(regions, oe),
                            ev.site,
                            ev.seq,
                            state.describe(),
                            store_seq
                        ),
                    });
                    break; // one report per recovery read
                }
            }
        }
    }
    out
}

/// True if some flush after `seq` covers any line of `[start, end)`.
fn flush_after(events: &[Event], seq: u64, start: u64, end: u64) -> bool {
    let line_lo = start / CACHE_LINE * CACHE_LINE;
    let line_hi = end.div_ceil(CACHE_LINE) * CACHE_LINE;
    events
        .iter()
        .skip(seq as usize + 1)
        .any(|ev| match ev.kind {
            EventKind::FlushLine { addr, .. } => {
                let line = addr / CACHE_LINE * CACHE_LINE;
                line >= line_lo && line < line_hi
            }
            EventKind::FlushRange { addr, len } => addr < line_hi && addr + len.max(1) > line_lo,
            EventKind::Wbinvd => true,
            _ => false,
        })
}

/// Seq of the first store/publish at or after `from` overlapping any of
/// `ranges` (an overwrite ends a crash-window search domain: beyond it the
/// range's durability describes a *different* value).
fn next_store_overlap(events: &[Event], from: u64, ranges: &[(u64, u64)]) -> Option<u64> {
    let overlaps = |addr: u64, len: u64| {
        ranges
            .iter()
            .any(|&(a, l)| addr < a.saturating_add(l) && addr.saturating_add(len) > a)
    };
    events[from as usize..].iter().find_map(|ev| match ev.kind {
        EventKind::Store { addr, len, .. } => overlaps(addr, len).then_some(ev.seq),
        EventKind::Publish { addr, len, .. } => overlaps(addr, len).then_some(ev.seq),
        _ => None,
    })
}

/// Replays `events[..k]` and reports whether every range is durable — the
/// bisection oracle: "if the machine lost power after event `k-1`, would
/// these bytes have survived?"
fn ranges_durable_at(events: &[Event], k: u64, ranges: &[(u64, u64)]) -> bool {
    let mut map = SegMap::default();
    for ev in &events[..k as usize] {
        match &ev.kind {
            EventKind::Store { addr, len, durable } => map.store(*addr, *len, ev.seq, *durable),
            EventKind::Publish {
                addr, len, durable, ..
            } => map.store(*addr, *len, ev.seq, *durable),
            EventKind::FlushLine { addr, sync } => map.flush(*addr, 1, *sync, ev.thread, ev.seq),
            EventKind::FlushRange { addr, len } => map.flush(*addr, *len, false, ev.thread, ev.seq),
            EventKind::Fence => map.fence(ev.thread),
            EventKind::Wbinvd => map.wbinvd(),
            _ => {}
        }
    }
    map.all_durable(ranges)
}

/// Binary search for the smallest `k` in `[lo, hi]` with all ranges
/// durable at `k`. Within a domain free of overwrites to `ranges`,
/// durability is monotone in `k` (only flushes and fences touch it), so
/// bisection is exact.
fn first_all_durable(events: &[Event], ranges: &[(u64, u64)], lo: u64, hi: u64) -> Option<u64> {
    if !ranges_durable_at(events, hi, ranges) {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if ranges_durable_at(events, mid, ranges) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// Deterministic crash-point bisection for the publish event at index
/// `publish_seq`: binary-searches crash instants (event indices) for the
/// half-open window `[a, b)` in which a crash makes the publish durable
/// but its dependency not — i.e. recovery would observe the published
/// value and diverge. Returns `None` if the event is not a publish, if the
/// publish never becomes durable before being overwritten, or if the
/// dependency became durable no later than the publish did (the race
/// window was empty on this schedule).
pub fn crash_window(events: &[Event], publish_seq: u64) -> Option<(u64, u64)> {
    let ev = events.get(publish_seq as usize)?;
    let EventKind::Publish {
        addr, len, deps, ..
    } = &ev.kind
    else {
        return None;
    };
    let pub_range = [(*addr, *len)];
    let n = events.len() as u64;
    let lo = publish_seq + 1;
    // Clamp each search to before the next overwrite of its range, where
    // the durability predicate is monotone and bisection is valid.
    let hi_pub = next_store_overlap(events, lo, &pub_range).unwrap_or(n);
    let hi_dep = next_store_overlap(events, lo, deps).unwrap_or(n);
    let first_pub = first_all_durable(events, &pub_range, lo, hi_pub)?;
    // If the dependency never becomes durable in its domain, the window
    // runs to the domain's end.
    let dep_done = first_all_durable(events, deps, lo, hi_dep).unwrap_or(hi_dep);
    (dep_done > first_pub).then_some((first_pub, dep_done))
}

/// Renders violations as a multi-line report (chains indented under each
/// finding).
pub fn format_violations(violations: &[Violation]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "persistence-ordering sanitizer: {} violation(s)",
        violations.len()
    );
    for (i, v) in violations.iter().enumerate() {
        let _ = writeln!(s, "[{}] {}: {}", i + 1, v.kind, v.message);
        if let Some((a, b)) = v.crash_window {
            let _ = writeln!(
                s,
                "    crash bisection: a cut at any event index in [{a}, {b}) loses the \
                 dependency while keeping the publish"
            );
        }
        for ev in &v.chain {
            let _ = writeln!(s, "      {ev}");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, thread: u64, kind: EventKind) -> Event {
        Event {
            seq,
            thread,
            kind,
            site: "test",
        }
    }

    #[test]
    fn segmap_store_flush_fence_lifecycle() {
        let mut m = SegMap::default();
        m.store(0, 8, 0, false);
        assert!(m.first_not_durable(0, 8).is_some());
        m.flush(0, 8, false, 1, 1);
        assert!(matches!(
            m.first_not_durable(0, 8),
            Some((_, _, _, SegState::Pending { thread: 1, .. }))
        ));
        m.fence(2); // wrong thread: still pending
        assert!(m.first_not_durable(0, 8).is_some());
        m.fence(1);
        assert!(m.first_not_durable(0, 8).is_none());
    }

    #[test]
    fn segmap_is_byte_granular_across_a_shared_line() {
        let mut m = SegMap::default();
        m.store(0, 8, 0, true); // durable early entry
        m.store(8, 8, 1, false); // dirty later entry, same line
        assert!(
            m.first_not_durable(0, 8).is_none(),
            "early bytes stay durable"
        );
        assert!(m.first_not_durable(8, 8).is_some());
    }

    #[test]
    fn flush_expands_to_the_full_line() {
        let mut m = SegMap::default();
        m.store(10, 4, 0, false);
        m.flush(60, 1, true, 1, 1); // same line as byte 10
        assert!(m.first_not_durable(10, 4).is_none());
    }

    #[test]
    fn virgin_bytes_are_durable() {
        let m = SegMap::default();
        assert!(m.first_not_durable(0, 1 << 30).is_none());
    }

    #[test]
    fn clean_publish_sequence_has_no_violations() {
        let t = [
            ev(
                0,
                1,
                EventKind::Store {
                    addr: 0,
                    len: 8,
                    durable: false,
                },
            ),
            ev(
                1,
                1,
                EventKind::FlushLine {
                    addr: 0,
                    sync: false,
                },
            ),
            ev(2, 1, EventKind::Fence),
            ev(
                3,
                1,
                EventKind::Publish {
                    addr: 64,
                    len: 1,
                    deps: vec![(0, 8)],
                    tag: PublishTag::LogEntry,
                    durable: false,
                },
            ),
            ev(
                4,
                1,
                EventKind::FlushLine {
                    addr: 64,
                    sync: false,
                },
            ),
            ev(5, 1, EventKind::Fence),
        ];
        assert!(check_trace(&t).is_empty());
    }

    #[test]
    fn crash_window_brackets_the_race() {
        // store, flush (no fence), publish+clflush, much later fence.
        let t = [
            ev(
                0,
                1,
                EventKind::Store {
                    addr: 0,
                    len: 8,
                    durable: false,
                },
            ),
            ev(
                1,
                1,
                EventKind::FlushLine {
                    addr: 0,
                    sync: false,
                },
            ),
            ev(
                2,
                1,
                EventKind::Publish {
                    addr: 64,
                    len: 8,
                    deps: vec![(0, 8)],
                    tag: PublishTag::CompletedTail,
                    durable: true,
                },
            ),
            ev(3, 1, EventKind::Fence),
        ];
        let v = check_trace(&t);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::TailBeforeEntry);
        // Publish durable right after event 2 (index 3); dep durable only
        // after the fence (index 4): a cut at index 3 diverges.
        assert_eq!(v[0].crash_window, Some((3, 4)));
    }

    #[test]
    fn crash_window_empty_when_fence_closes_it() {
        // Async publish: the same fence that makes the dep durable also
        // makes the publish durable — no divergent cut exists.
        let t = [
            ev(
                0,
                1,
                EventKind::Store {
                    addr: 0,
                    len: 8,
                    durable: false,
                },
            ),
            ev(
                1,
                1,
                EventKind::FlushLine {
                    addr: 0,
                    sync: false,
                },
            ),
            ev(
                2,
                1,
                EventKind::Publish {
                    addr: 64,
                    len: 1,
                    deps: vec![(0, 8)],
                    tag: PublishTag::LogEntry,
                    durable: false,
                },
            ),
            ev(
                3,
                1,
                EventKind::FlushLine {
                    addr: 64,
                    sync: false,
                },
            ),
            ev(4, 1, EventKind::Fence),
        ];
        let v = check_trace(&t);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::MissingFence);
        assert_eq!(v[0].crash_window, None);
    }
}
