//! Event model and the per-runtime tracer.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The cacheline size the flush model uses (matches `prep_seqds::CACHE_LINE`).
pub const CACHE_LINE: u64 = 64;

/// What a publish store announces, used to specialize rule reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PublishTag {
    /// A log entry's emptyBit: publishes the entry's payload bytes.
    LogEntry,
    /// `completedTail`: publishes every log byte below the new tail.
    CompletedTail,
    /// `p_activePReplica`: publishes the just-checkpointed replica region.
    CheckpointMarker,
    /// Anything else.
    Other,
}

impl std::fmt::Display for PublishTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PublishTag::LogEntry => "emptyBit",
            PublishTag::CompletedTail => "completedTail",
            PublishTag::CheckpointMarker => "checkpoint marker",
            PublishTag::Other => "publish",
        };
        f.write_str(s)
    }
}

/// One traced persistence action. `addr`/`len` are logical NVM addresses
/// (see [`Region`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A store of `len` bytes at `addr`. `durable` marks a synchronous
    /// store+`CLFLUSH` pair issued as one atomic persist (the pattern for
    /// rarely written metadata cells); such a store is durable on issue.
    Store {
        /// Logical start address.
        addr: u64,
        /// Length in bytes.
        len: u64,
        /// Durable immediately (store+CLFLUSH issued atomically).
        durable: bool,
    },
    /// A *publish* store: once durable, it makes the `deps` byte ranges
    /// semantically reachable by recovery, so they must be durable before
    /// this store is even issued (rule 1).
    Publish {
        /// Logical start address of the publish store.
        addr: u64,
        /// Length of the publish store in bytes.
        len: u64,
        /// Byte ranges `(addr, len)` this store publishes.
        deps: Vec<(u64, u64)>,
        /// What kind of publish this is.
        tag: PublishTag,
        /// Durable immediately (publish+CLFLUSH issued atomically).
        durable: bool,
    },
    /// A flush of the line containing `addr`. `sync` distinguishes
    /// `CLFLUSH` (durable on completion) from `CLFLUSHOPT`/`CLWB`
    /// (durable only after the issuing thread's next fence).
    FlushLine {
        /// Any byte address within the flushed line.
        addr: u64,
        /// True for `CLFLUSH`, false for `CLFLUSHOPT`.
        sync: bool,
    },
    /// An asynchronous flush of every line overlapping `[addr, addr+len)`.
    FlushRange {
        /// Logical start address.
        addr: u64,
        /// Length in bytes.
        len: u64,
    },
    /// An `SFENCE`: all async flushes previously issued **by this event's
    /// thread** become durable.
    Fence,
    /// `WBINVD`: every dirty line in the system becomes durable.
    Wbinvd,
    /// A checkpoint/epoch boundary (resets the redundant-flush lint).
    Epoch,
    /// A crash cut: the durability state at this instant is what recovery
    /// with matching `cut` id may rely on.
    CrashCut {
        /// 1-based crash id, matching `CrashToken::crash_id`.
        id: u64,
    },
    /// Recovery (for crash `cut`) reads `[addr, addr+len)`.
    RecoveryRead {
        /// Logical start address.
        addr: u64,
        /// Length in bytes.
        len: u64,
        /// The crash cut this read recovers from.
        cut: u64,
    },
}

/// A traced event: kind plus global sequence, issuing thread, and the
/// responsible call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Position in the global trace order (0-based).
    pub seq: u64,
    /// Issuing thread (tracer-assigned dense id; fences are per-thread).
    pub thread: u64,
    /// What happened.
    pub kind: EventKind,
    /// The responsible call site (static label, e.g.
    /// `"hooks::persist_batch_payload"`).
    pub site: &'static str,
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{:<5} t{} ", self.seq, self.thread)?;
        match &self.kind {
            EventKind::Store { addr, len, durable } => {
                write!(
                    f,
                    "store{} [{addr:#x}, +{len})",
                    if *durable { "+clflush" } else { "" }
                )?;
            }
            EventKind::Publish {
                addr,
                len,
                deps,
                tag,
                durable,
            } => {
                write!(
                    f,
                    "publish<{tag}>{} [{addr:#x}, +{len}) deps={deps:x?}",
                    if *durable { "+clflush" } else { "" }
                )?;
            }
            EventKind::FlushLine { addr, sync } => {
                write!(
                    f,
                    "{} line {:#x}",
                    if *sync { "clflush" } else { "clflushopt" },
                    addr / CACHE_LINE * CACHE_LINE
                )?;
            }
            EventKind::FlushRange { addr, len } => {
                write!(f, "flush range [{addr:#x}, +{len})")?;
            }
            EventKind::Fence => write!(f, "sfence")?,
            EventKind::Wbinvd => write!(f, "wbinvd")?,
            EventKind::Epoch => write!(f, "epoch boundary")?,
            EventKind::CrashCut { id } => write!(f, "crash cut #{id}")?,
            EventKind::RecoveryRead { addr, len, cut } => {
                write!(f, "recovery(cut #{cut}) reads [{addr:#x}, +{len})")?;
            }
        }
        write!(f, "  @ {}", self.site)
    }
}

/// A logical NVM region handed out by [`Tracer::alloc_region`]. Regions
/// are disjoint and line-aligned; producers derive stable addresses inside
/// them (a region is an *address namespace*, not storage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First logical address of the region (line-aligned).
    pub base: u64,
    /// Region length in bytes.
    pub len: u64,
    /// Human-readable label for violation reports.
    pub label: &'static str,
}

impl Region {
    /// End address (exclusive).
    pub fn end(&self) -> u64 {
        self.base + self.len
    }

    /// True if `addr` falls inside the region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Labels an address with its region for human-readable reports.
pub(crate) fn fmt_addr(regions: &[Region], addr: u64) -> String {
    for r in regions {
        if r.contains(addr) {
            return format!("{}+{:#x}", r.label, addr - r.base);
        }
    }
    format!("{addr:#x}")
}

static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

fn thread_id() -> u64 {
    THREAD_ID.with(|t| {
        let mut id = t.get();
        if id == 0 {
            id = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
            t.set(id);
        }
        id
    })
}

#[derive(Debug, Default)]
struct TracerInner {
    events: Vec<Event>,
    regions: Vec<Region>,
}

/// Per-runtime event collector. Disabled by default: every record call is
/// one relaxed atomic load and an early return, so a construction paying
/// for a tracer it never enables pays (measurably, see `prep-bench --
/// psan`) nothing.
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: AtomicBool,
    inner: Mutex<TracerInner>,
    /// Bump allocator for [`Tracer::alloc_region`]. Starts above 0 so a
    /// zero address is never valid.
    next_base: AtomicU64,
    /// Id of the most recent crash cut (recovery reads attach to it).
    last_cut: AtomicU64,
}

impl Tracer {
    /// A disabled tracer with an empty trace.
    pub fn new() -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(TracerInner::default()),
            next_base: AtomicU64::new(4096),
            last_cut: AtomicU64::new(0),
        }
    }

    /// Switches tracing on (idempotent).
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// True once [`Tracer::enable`] has been called.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Allocates a fresh logical address region (works whether or not
    /// tracing is enabled — callers allocate unconditionally at
    /// construction time so addresses are stable).
    pub fn alloc_region(&self, label: &'static str, len: u64) -> Region {
        let size = len.div_ceil(CACHE_LINE).max(1) * CACHE_LINE;
        // Pad with one guard line so adjacent regions never share a line.
        let base = self
            .next_base
            .fetch_add(size + CACHE_LINE, Ordering::Relaxed);
        let region = Region {
            base,
            len: size,
            label,
        };
        self.inner
            .lock()
            .expect("tracer poisoned")
            .regions
            .push(region);
        region
    }

    /// Appends an event (no-op while disabled). The global order is the
    /// order of these calls; per-thread program order is preserved, and
    /// cross-thread order respects happens-before because producers only
    /// record while executing the traced action.
    #[inline]
    pub fn record(&self, kind: EventKind, site: &'static str) {
        if !self.enabled() {
            return;
        }
        if let EventKind::CrashCut { id } = kind {
            self.last_cut.store(id, Ordering::Release);
        }
        let thread = thread_id();
        let mut inner = self.inner.lock().expect("tracer poisoned");
        let seq = inner.events.len() as u64;
        inner.events.push(Event {
            seq,
            thread,
            kind,
            site,
        });
    }

    /// The most recent crash cut id (0 before any cut).
    pub fn last_cut(&self) -> u64 {
        self.last_cut.load(Ordering::Acquire)
    }

    /// Copies the current trace.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().expect("tracer poisoned").events.clone()
    }

    /// Copies the allocated regions (for report formatting).
    pub fn regions(&self) -> Vec<Region> {
        self.inner.lock().expect("tracer poisoned").regions.clone()
    }

    /// Number of traced events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("tracer poisoned").events.len()
    }

    /// True if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards the trace (regions are kept — addresses stay valid).
    pub fn clear(&self) {
        self.inner.lock().expect("tracer poisoned").events.clear();
    }

    /// Runs the rule engine over the current trace.
    pub fn check(&self) -> Vec<super::Violation> {
        let inner = self.inner.lock().expect("tracer poisoned");
        super::check::check_trace_with_regions(&inner.events, &inner.regions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new();
        t.record(EventKind::Fence, "x");
        assert!(t.is_empty());
        t.enable();
        t.record(EventKind::Fence, "x");
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].seq, 0);
    }

    #[test]
    fn regions_are_disjoint_line_aligned_and_labelled() {
        let t = Tracer::new();
        let a = t.alloc_region("a", 100);
        let b = t.alloc_region("b", 1);
        assert_eq!(a.base % CACHE_LINE, 0);
        assert_eq!(b.base % CACHE_LINE, 0);
        assert!(a.end() < b.base, "guard line between regions");
        assert!(a.contains(a.base + 99));
        assert!(!a.contains(b.base));
        assert_eq!(fmt_addr(&t.regions(), b.base + 3), "b+0x3");
    }

    #[test]
    fn crash_cut_updates_last_cut() {
        let t = Tracer::new();
        t.enable();
        assert_eq!(t.last_cut(), 0);
        t.record(EventKind::CrashCut { id: 7 }, "x");
        assert_eq!(t.last_cut(), 7);
    }

    #[test]
    fn threads_get_distinct_ids() {
        let t = std::sync::Arc::new(Tracer::new());
        t.enable();
        t.record(EventKind::Fence, "main");
        let t2 = std::sync::Arc::clone(&t);
        std::thread::spawn(move || t2.record(EventKind::Fence, "other"))
            .join()
            .unwrap();
        let ev = t.events();
        assert_ne!(ev[0].thread, ev[1].thread);
    }
}
