//! Persistence-ordering sanitizer for the PREP-UC reproduction.
//!
//! PREP-UC's correctness rests on a precise discipline of *which stores
//! reach NVM before which others*: log-entry payloads before their
//! emptyBits, every entry at or below `completedTail` before
//! `completedTail` itself, every replica line before the checkpoint marker
//! `p_activePReplica` (§4.1, §5.2). The cost-model runtime in `prep-pmem`
//! only *counts* `clflushopt`/`sfence` calls — it cannot tell a correctly
//! ordered persist sequence from a missing-fence bug, and such ordering
//! bugs routinely survive end-to-end crash tests because the crash has to
//! land in a narrow window (NVTraverse, Montage — see PAPERS.md).
//!
//! This crate closes that gap with a *dynamic* sanitizer:
//!
//! * a [`Tracer`] collects a globally ordered [`Event`] stream — stores to
//!   logical NVM address ranges, line flushes (sync `CLFLUSH` / async
//!   `CLFLUSHOPT`), `SFENCE`s (which drain only the *issuing thread's*
//!   outstanding async flushes, as on x86), `WBINVD`, checkpoint epochs,
//!   crash cuts, and recovery reads;
//! * [`check_trace`] replays the stream against declarative ordering rules
//!   and reports each failure as a [`Violation`] carrying the full
//!   store→flush→fence event chain and the responsible call sites;
//! * when a rule fires, the checker runs deterministic **crash-point
//!   bisection** ([`crash_window`]): a binary search over crash instants
//!   (event indices) for the window in which a power failure converts the
//!   ordering violation into an observable recovery divergence — the
//!   publish is durable but its dependency is not.
//!
//! The rules (see [`ViolationKind`] for the failure taxonomy):
//!
//! 1. **Publish ordering.** At the instant a *publish* store is issued
//!    (an emptyBit, `completedTail`, `p_activePReplica`), every byte it
//!    publishes must already be durable — flushed *and* fenced. Issuing
//!    the publish earlier is a bug even if a later fence covers both: with
//!    write-back caching, a dirty publish line can reach NVM spontaneously
//!    at any moment after the store.
//! 2. **Tail-before-entry** is the same rule specialized to
//!    `completedTail`, whose dependency is every log byte below it.
//! 3. **Recovery reads.** Recovery may only read addresses whose latest
//!    write was durable at the crash cut.
//! 4. **Redundant-flush lint.** No line is flushed twice within one
//!    checkpoint epoch without an intervening store to it.
//!
//! Addresses are *logical*: producers allocate disjoint [`Region`]s from
//! the tracer's bump allocator and derive stable addresses inside them
//! (e.g. the monotonic log index × entry bytes), so recycled physical
//! slots never alias. The crate has no dependencies and traces nothing
//! until [`Tracer::enable`] — the disabled hot path is one atomic load.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod check;
mod trace;

pub use check::{check_trace, crash_window, format_violations, Violation, ViolationKind};
pub use trace::{Event, EventKind, PublishTag, Region, Tracer, CACHE_LINE};

/// True when the `PREP_PSAN` environment variable asks for the sanitizer
/// (set and neither empty nor `"0"`). `prep-pmem` consults this at runtime
/// construction so the whole test suite can run under the sanitizer
/// without code changes (`PREP_PSAN=1 cargo test`).
pub fn env_enabled() -> bool {
    std::env::var_os("PREP_PSAN").is_some_and(|v| !v.is_empty() && v != "0")
}
