//! A linearizability checker for small concurrent histories.
//!
//! Universal constructions promise linearizability (and PREP-UC's
//! durability conditions are defined on top of it, §2.1), so this crate
//! provides the machinery to *check* it directly rather than only relying
//! on invariant-style tests:
//!
//! * [`HistoryRecorder`] timestamps operation invocations and responses
//!   with a global logical clock while worker threads run against a
//!   construction;
//! * [`check_linearizable`] decides, by Wing–Gong-style backtracking
//!   search, whether a recorded history has *any* linearization: a total
//!   order of the operations that (a) respects real time — if op A's
//!   response preceded op B's invocation, A orders before B — and (b)
//!   makes every recorded response equal what the sequential model returns.
//!
//! The search is exponential in the worst case, so it is meant for focused
//! histories (≤ ~20 operations with small concurrent windows) — the
//! integration tests record many such windows rather than one huge history.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use prep_seqds::SequentialObject;

/// One completed operation in a concurrent history.
#[derive(Debug, Clone)]
pub struct Event<O, R> {
    /// Thread that issued the operation.
    pub thread: usize,
    /// The operation.
    pub op: O,
    /// The response the implementation returned.
    pub resp: R,
    /// Logical timestamp at invocation.
    pub invoke: u64,
    /// Logical timestamp at response (always > `invoke`).
    pub response: u64,
}

/// Records a concurrent history with a global logical clock.
///
/// ```
/// use prep_checker::HistoryRecorder;
/// use prep_seqds::stack::{Stack, StackOp, StackResp};
/// use prep_seqds::SequentialObject;
///
/// let rec = HistoryRecorder::new();
/// let mut s = Stack::new();
/// let t = rec.invoke();
/// let resp = s.apply(&StackOp::Push(1));
/// rec.complete(0, StackOp::Push(1), resp, t);
/// let history = rec.into_history();
/// assert_eq!(history.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct HistoryRecorder<O, R> {
    clock: AtomicU64,
    events: Mutex<Vec<Event<O, R>>>,
}

impl<O, R> HistoryRecorder<O, R> {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        HistoryRecorder {
            clock: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Stamps an invocation; call immediately before executing the op.
    pub fn invoke(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::AcqRel)
    }

    /// Records a completed operation; call immediately after the response
    /// arrives, passing the invocation stamp.
    pub fn complete(&self, thread: usize, op: O, resp: R, invoke: u64) {
        let response = self.clock.fetch_add(1, Ordering::AcqRel);
        self.events.lock().expect("recorder poisoned").push(Event {
            thread,
            op,
            resp,
            invoke,
            response,
        });
    }

    /// Consumes the recorder, returning the history sorted by invocation.
    pub fn into_history(self) -> Vec<Event<O, R>> {
        let mut ev = self.events.into_inner().expect("recorder poisoned");
        ev.sort_by_key(|e| e.invoke);
        ev
    }
}

/// Decides whether `history` is linearizable with respect to the
/// sequential `initial` object.
///
/// # Panics
/// Panics if the history holds more than 63 events (use smaller windows).
pub fn check_linearizable<T>(initial: &T, history: &[Event<T::Op, T::Resp>]) -> bool
where
    T: SequentialObject,
    T::Resp: PartialEq,
{
    assert!(
        history.len() <= 63,
        "history too large for the bitmask search"
    );
    let all: u64 = if history.is_empty() {
        return true;
    } else {
        (1u64 << history.len()) - 1
    };
    dfs(initial, history, 0, all)
}

fn dfs<T>(model: &T, history: &[Event<T::Op, T::Resp>], chosen: u64, all: u64) -> bool
where
    T: SequentialObject,
    T::Resp: PartialEq,
{
    if chosen == all {
        return true;
    }
    for (i, e) in history.iter().enumerate() {
        if chosen & (1 << i) != 0 {
            continue;
        }
        // e may be linearized next iff no *unchosen* f completed before e
        // was invoked (real-time order).
        let minimal = history
            .iter()
            .enumerate()
            .all(|(j, f)| j == i || chosen & (1 << j) != 0 || f.response > e.invoke);
        if !minimal {
            continue;
        }
        let mut next = model.clone_object();
        let got = next.apply(&e.op);
        if got == e.resp && dfs(&next, history, chosen | (1 << i), all) {
            return true;
        }
    }
    false
}

/// Records per-shard concurrent histories stamped by **one** shared
/// logical clock.
///
/// A sharded store (e.g. `prep-shard`) linearizes each shard
/// independently — there is no cross-shard ordering to check — but the
/// histories must still be *recorded* against a single clock: if every
/// shard ran its own clock, an operation's timestamps would be
/// meaningless relative to another shard's, and any later cross-shard
/// analysis (or merging windows for debugging) would be impossible. This
/// recorder therefore shares one `AtomicU64` across all shards and keeps
/// one event list per shard; [`into_histories`](Self::into_histories)
/// yields them separately so each can go through
/// [`check_linearizable`] against its own shard's sequential model.
#[derive(Debug)]
pub struct ShardedHistoryRecorder<O, R> {
    clock: AtomicU64,
    shards: Vec<Mutex<Vec<Event<O, R>>>>,
}

impl<O, R> ShardedHistoryRecorder<O, R> {
    /// Creates a recorder for `shards` independent histories.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a sharded recorder needs at least one shard");
        ShardedHistoryRecorder {
            clock: AtomicU64::new(0),
            shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Number of shards recorded.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Stamps an invocation on the shared clock; call immediately before
    /// executing the op (on whichever shard it routes to).
    pub fn invoke(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::AcqRel)
    }

    /// Records a completed operation on `shard`'s history; call
    /// immediately after the response arrives, passing the invocation
    /// stamp from [`invoke`](Self::invoke).
    pub fn complete(&self, shard: usize, thread: usize, op: O, resp: R, invoke: u64) {
        let response = self.clock.fetch_add(1, Ordering::AcqRel);
        self.shards[shard]
            .lock()
            .expect("recorder poisoned")
            .push(Event {
                thread,
                op,
                resp,
                invoke,
                response,
            });
    }

    /// Consumes the recorder, returning one history per shard, each sorted
    /// by invocation stamp (stamps are globally unique across shards).
    pub fn into_histories(self) -> Vec<Vec<Event<O, R>>> {
        self.shards
            .into_iter()
            .map(|m| {
                let mut ev = m.into_inner().expect("recorder poisoned");
                ev.sort_by_key(|e| e.invoke);
                ev
            })
            .collect()
    }
}

/// Checks every shard's history independently against its own copy of the
/// sequential model: the correctness condition of a sharded store (each
/// shard linearizable; no cross-shard order promised). Returns the index
/// of the first non-linearizable shard, or `Ok(())`.
///
/// # Panics
/// Panics if any shard's history exceeds the 63-event search limit.
pub fn check_sharded_linearizable<T>(
    initial: &T,
    histories: &[Vec<Event<T::Op, T::Resp>>],
) -> Result<(), usize>
where
    T: SequentialObject,
    T::Resp: PartialEq,
{
    for (shard, history) in histories.iter().enumerate() {
        if !check_linearizable(initial, history) {
            return Err(shard);
        }
    }
    Ok(())
}

/// A convenience wrapper: runs `threads` closures that execute operations
/// through `execute` while recording, then returns the history.
///
/// `gen(thread, i)` produces the i-th operation of `thread`; `execute`
/// runs it against the system under test.
pub fn record_concurrent<T, E, G>(
    threads: usize,
    ops_per_thread: usize,
    gen: G,
    execute: E,
) -> Vec<Event<T::Op, T::Resp>>
where
    T: SequentialObject,
    E: Fn(usize, T::Op) -> T::Resp + Sync,
    G: Fn(usize, usize) -> T::Op + Sync,
{
    let rec = HistoryRecorder::new();
    std::thread::scope(|s| {
        for t in 0..threads {
            let rec = &rec;
            let gen = &gen;
            let execute = &execute;
            s.spawn(move || {
                for i in 0..ops_per_thread {
                    let op = gen(t, i);
                    let stamp = rec.invoke();
                    let resp = execute(t, op.clone());
                    rec.complete(t, op, resp, stamp);
                }
            });
        }
    });
    rec.into_history()
}

/// Replays a runtime's persistence-ordering trace through `prep-psan`'s
/// rule engine (see that crate: publish ordering, completedTail,
/// recovery reads, redundant flushes).
///
/// Returns `Err` with the full human-readable report — store → flush →
/// fence event chains and call sites — if any rule is violated. A runtime
/// whose tracer was never enabled has an empty trace and trivially passes;
/// call [`prep_pmem::PmemRuntime::psan_enable`] (or set `PREP_PSAN`)
/// before the execution under test.
pub fn check_persistence_ordering(rt: &prep_pmem::PmemRuntime) -> Result<(), String> {
    let violations = rt.psan_check();
    if violations.is_empty() {
        Ok(())
    } else {
        Err(prep_pmem::psan::format_violations(&violations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prep_seqds::stack::{Stack, StackOp, StackResp};

    fn ev(
        thread: usize,
        op: StackOp,
        resp: StackResp,
        invoke: u64,
        response: u64,
    ) -> Event<StackOp, StackResp> {
        Event {
            thread,
            op,
            resp,
            invoke,
            response,
        }
    }

    #[test]
    fn empty_history_is_linearizable() {
        assert!(check_linearizable(&Stack::new(), &[]));
    }

    #[test]
    fn sequential_history_checks_out() {
        let h = vec![
            ev(0, StackOp::Push(1), StackResp::Ok, 0, 1),
            ev(0, StackOp::Pop, StackResp::Value(Some(1)), 2, 3),
            ev(0, StackOp::Pop, StackResp::Value(None), 4, 5),
        ];
        assert!(check_linearizable(&Stack::new(), &h));
    }

    #[test]
    fn wrong_sequential_response_is_rejected() {
        let h = vec![
            ev(0, StackOp::Push(1), StackResp::Ok, 0, 1),
            // Pop claims 2 was on top — impossible.
            ev(0, StackOp::Pop, StackResp::Value(Some(2)), 2, 3),
        ];
        assert!(!check_linearizable(&Stack::new(), &h));
    }

    #[test]
    fn concurrent_ops_may_reorder() {
        // Two overlapping pushes, then sequential pops seeing 2 before 1:
        // linearizable by ordering Push(1) before Push(2).
        let h = vec![
            ev(0, StackOp::Push(1), StackResp::Ok, 0, 3),
            ev(1, StackOp::Push(2), StackResp::Ok, 1, 2),
            ev(0, StackOp::Pop, StackResp::Value(Some(2)), 4, 5),
            ev(0, StackOp::Pop, StackResp::Value(Some(1)), 6, 7),
        ];
        assert!(check_linearizable(&Stack::new(), &h));
        // And the opposite pop order is also fine (Push(2) first).
        let h2 = vec![
            ev(0, StackOp::Push(1), StackResp::Ok, 0, 3),
            ev(1, StackOp::Push(2), StackResp::Ok, 1, 2),
            ev(0, StackOp::Pop, StackResp::Value(Some(1)), 4, 5),
            ev(0, StackOp::Pop, StackResp::Value(Some(2)), 6, 7),
        ];
        assert!(check_linearizable(&Stack::new(), &h2));
    }

    #[test]
    fn real_time_order_is_enforced() {
        // Push(1) completes strictly before Push(2) begins; pops then claim
        // 1 was pushed after 2 — NOT linearizable.
        let h = vec![
            ev(0, StackOp::Push(1), StackResp::Ok, 0, 1),
            ev(1, StackOp::Push(2), StackResp::Ok, 2, 3),
            ev(0, StackOp::Pop, StackResp::Value(Some(1)), 4, 5),
            ev(0, StackOp::Pop, StackResp::Value(Some(2)), 6, 7),
        ];
        assert!(!check_linearizable(&Stack::new(), &h));
    }

    #[test]
    fn stale_read_is_rejected() {
        // Top runs entirely after Push(7) completed but claims empty.
        let h = vec![
            ev(0, StackOp::Push(7), StackResp::Ok, 0, 1),
            ev(1, StackOp::Top, StackResp::Value(None), 2, 3),
        ];
        assert!(!check_linearizable(&Stack::new(), &h));
    }

    #[test]
    fn deep_sequential_history_completes_quickly() {
        // A long strictly-sequential history has exactly one candidate at
        // every step; the search must be linear, not exponential.
        let mut model = {
            use prep_seqds::SequentialObject;
            let mut s = Stack::new();
            let mut h = Vec::new();
            for i in 0..40u64 {
                let op = if i % 2 == 0 {
                    StackOp::Push(i)
                } else {
                    StackOp::Pop
                };
                let resp = s.apply(&op);
                h.push(ev(0, op, resp, 2 * i, 2 * i + 1));
            }
            h
        };
        assert!(check_linearizable(&Stack::new(), &model));
        // Corrupt the last response: must be rejected.
        model.last_mut().unwrap().resp = StackResp::Value(Some(4242));
        assert!(!check_linearizable(&Stack::new(), &model));
    }

    #[test]
    fn sharded_recorder_shares_one_clock() {
        let rec: ShardedHistoryRecorder<StackOp, StackResp> = ShardedHistoryRecorder::new(2);
        // Interleave ops across shards; stamps must be globally unique and
        // monotone in issue order.
        let t0 = rec.invoke();
        rec.complete(0, 0, StackOp::Push(1), StackResp::Ok, t0);
        let t1 = rec.invoke();
        rec.complete(1, 0, StackOp::Push(2), StackResp::Ok, t1);
        let t2 = rec.invoke();
        rec.complete(0, 0, StackOp::Pop, StackResp::Value(Some(1)), t2);
        let hs = rec.into_histories();
        assert_eq!(hs[0].len(), 2);
        assert_eq!(hs[1].len(), 1);
        // Shard 1's events are stamped between shard 0's: one clock.
        assert!(hs[0][0].response < hs[1][0].invoke);
        assert!(hs[1][0].response < hs[0][1].invoke);
        let mut all: Vec<u64> = hs
            .iter()
            .flatten()
            .flat_map(|e| [e.invoke, e.response])
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 6, "stamps must be globally unique");
        assert_eq!(check_sharded_linearizable(&Stack::new(), &hs), Ok(()));
    }

    #[test]
    fn sharded_check_pinpoints_the_bad_shard() {
        let rec: ShardedHistoryRecorder<StackOp, StackResp> = ShardedHistoryRecorder::new(3);
        let t = rec.invoke();
        rec.complete(0, 0, StackOp::Push(1), StackResp::Ok, t);
        // Shard 1 claims a pop of a value never pushed there (it was pushed
        // on shard 0) — per-shard checking must reject shard 1 even though
        // a merged history could explain it.
        let t = rec.invoke();
        rec.complete(1, 0, StackOp::Pop, StackResp::Value(Some(1)), t);
        let hs = rec.into_histories();
        assert_eq!(check_sharded_linearizable(&Stack::new(), &hs), Err(1));
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shard_recorder_rejected() {
        let _ = ShardedHistoryRecorder::<StackOp, StackResp>::new(0);
    }

    #[test]
    fn recorder_produces_wellformed_history() {
        let rec: HistoryRecorder<StackOp, StackResp> = HistoryRecorder::new();
        let mut s = Stack::new();
        for v in [1u64, 2] {
            let t = rec.invoke();
            let r = {
                use prep_seqds::SequentialObject;
                s.apply(&StackOp::Push(v))
            };
            rec.complete(0, StackOp::Push(v), r, t);
        }
        let h = rec.into_history();
        assert_eq!(h.len(), 2);
        assert!(h[0].invoke < h[0].response);
        assert!(h[0].invoke < h[1].invoke);
        assert!(check_linearizable(&Stack::new(), &h));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use prep_seqds::stack::{Stack, StackOp};
    use prep_seqds::SequentialObject;
    use proptest::prelude::*;

    proptest! {
        /// Any history generated by actually executing ops sequentially is
        /// linearizable (soundness: the checker accepts real executions).
        #[test]
        fn real_sequential_executions_always_accepted(
            ops in proptest::collection::vec((0u8..3, any::<u64>()), 1..20)
        ) {
            let mut s = Stack::new();
            let mut t = 0u64;
            let mut history = Vec::new();
            for (kind, v) in ops {
                let op = match kind {
                    0 => StackOp::Push(v),
                    1 => StackOp::Pop,
                    _ => StackOp::Top,
                };
                let resp = s.apply(&op);
                history.push(Event { thread: 0, op, resp, invoke: t, response: t + 1 });
                t += 2;
            }
            prop_assert!(check_linearizable(&Stack::new(), &history));
        }

        /// Shuffled *timestamps* (making everything concurrent) can only
        /// make acceptance easier: a sequentially-valid history stays
        /// linearizable when all its ops are made mutually concurrent.
        #[test]
        fn relaxing_real_time_order_preserves_acceptance(
            ops in proptest::collection::vec((0u8..2, any::<u64>()), 1..8)
        ) {
            let mut s = Stack::new();
            let mut history = Vec::new();
            for (i, (kind, v)) in ops.into_iter().enumerate() {
                let op = if kind == 0 { StackOp::Push(v) } else { StackOp::Pop };
                let resp = s.apply(&op);
                // All ops share one giant concurrent window.
                history.push(Event {
                    thread: i,
                    op,
                    resp,
                    invoke: 0,
                    response: 1_000,
                });
            }
            prop_assert!(check_linearizable(&Stack::new(), &history));
        }
    }
}
