//! Persistence-operation counters.
//!
//! Every emulated flush/fence/WBINVD bumps a counter here. The benchmark
//! harness reports these next to throughput so the *why* behind each figure
//! (e.g. CX-PUC's whole-replica flush volume vs PREP's batched log flushes)
//! is visible, and the crash tests use them as progress probes (e.g. "crash
//! after the third WBINVD").

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam_utils::CachePadded;

/// Atomic counters for persistence operations.
#[derive(Debug, Default)]
pub struct PmemStats {
    clflush: CachePadded<AtomicU64>,
    clflushopt: CachePadded<AtomicU64>,
    sfence: CachePadded<AtomicU64>,
    wbinvd: CachePadded<AtomicU64>,
    bytes_persisted: CachePadded<AtomicU64>,
    snapshots: CachePadded<AtomicU64>,
    checkpoints: CachePadded<AtomicU64>,
    checkpoint_bytes: CachePadded<AtomicU64>,
    checkpoint_lines: CachePadded<AtomicU64>,
}

/// A point-in-time copy of [`PmemStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmemStatsSnapshot {
    /// Synchronous CLFLUSH count.
    pub clflush: u64,
    /// Asynchronous CLFLUSHOPT/CLWB count.
    pub clflushopt: u64,
    /// SFENCE count.
    pub sfence: u64,
    /// WBINVD count.
    pub wbinvd: u64,
    /// Total bytes made persistent (cells + log entries + snapshots).
    pub bytes_persisted: u64,
    /// Replica snapshots installed (== successful persist cycles).
    pub snapshots: u64,
    /// Replica checkpoint flushes (one per persist cycle, any strategy).
    pub checkpoints: u64,
    /// Bytes written back by replica checkpoints: the whole replica under
    /// `Wbinvd`/`RangeFlush`, only the dirty set under `DirtyLines`.
    pub checkpoint_bytes: u64,
    /// Cachelines written back by replica checkpoints (`⌈bytes / 64⌉` per
    /// checkpoint).
    pub checkpoint_lines: u64,
}

impl PmemStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn count_clflush(&self) {
        self.clflush.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_clflushopt(&self) {
        self.clflushopt.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_clflushopt_n(&self, n: u64) {
        self.clflushopt.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn count_sfence(&self) {
        self.sfence.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_wbinvd(&self) {
        self.wbinvd.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_bytes(&self, n: u64) {
        self.bytes_persisted.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn count_snapshot(&self) {
        self.snapshots.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_checkpoint(&self, bytes: u64) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.checkpoint_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.checkpoint_lines
            .fetch_add(bytes.div_ceil(64), Ordering::Relaxed);
    }

    /// Number of WBINVDs so far (cheap accessor for progress probes).
    pub fn wbinvd_count(&self) -> u64 {
        self.wbinvd.load(Ordering::Relaxed)
    }

    /// Number of replica snapshots installed so far.
    pub fn snapshot_count(&self) -> u64 {
        self.snapshots.load(Ordering::Relaxed)
    }

    /// Takes a consistent-enough copy of all counters (relaxed reads; the
    /// counters are monotone so any interleaving is a valid observation).
    pub fn snapshot(&self) -> PmemStatsSnapshot {
        PmemStatsSnapshot {
            clflush: self.clflush.load(Ordering::Relaxed),
            clflushopt: self.clflushopt.load(Ordering::Relaxed),
            sfence: self.sfence.load(Ordering::Relaxed),
            wbinvd: self.wbinvd.load(Ordering::Relaxed),
            bytes_persisted: self.bytes_persisted.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            checkpoint_lines: self.checkpoint_lines.load(Ordering::Relaxed),
        }
    }
}

impl PmemStatsSnapshot {
    /// Per-field difference `self - earlier` (saturating): the persistence
    /// work done between two snapshots. This is the building block for all
    /// per-phase and per-shard accounting (see `prep-bench`'s
    /// `report::Phase`).
    pub fn delta(&self, earlier: &PmemStatsSnapshot) -> PmemStatsSnapshot {
        PmemStatsSnapshot {
            clflush: self.clflush.saturating_sub(earlier.clflush),
            clflushopt: self.clflushopt.saturating_sub(earlier.clflushopt),
            sfence: self.sfence.saturating_sub(earlier.sfence),
            wbinvd: self.wbinvd.saturating_sub(earlier.wbinvd),
            bytes_persisted: self.bytes_persisted.saturating_sub(earlier.bytes_persisted),
            snapshots: self.snapshots.saturating_sub(earlier.snapshots),
            checkpoints: self.checkpoints.saturating_sub(earlier.checkpoints),
            checkpoint_bytes: self
                .checkpoint_bytes
                .saturating_sub(earlier.checkpoint_bytes),
            checkpoint_lines: self
                .checkpoint_lines
                .saturating_sub(earlier.checkpoint_lines),
        }
    }

    /// Alias for [`PmemStatsSnapshot::delta`] (the historical name).
    pub fn delta_since(&self, earlier: &PmemStatsSnapshot) -> PmemStatsSnapshot {
        self.delta(earlier)
    }

    /// Total explicit flush instructions (sync + async).
    pub fn total_flushes(&self) -> u64 {
        self.clflush + self.clflushopt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = PmemStats::new();
        s.count_clflush();
        s.count_clflushopt();
        s.count_clflushopt();
        s.count_sfence();
        s.count_wbinvd();
        s.count_bytes(128);
        s.count_snapshot();
        s.count_checkpoint(100); // 100 bytes → 2 lines
        let snap = s.snapshot();
        assert_eq!(snap.clflush, 1);
        assert_eq!(snap.clflushopt, 2);
        assert_eq!(snap.sfence, 1);
        assert_eq!(snap.wbinvd, 1);
        assert_eq!(snap.bytes_persisted, 128);
        assert_eq!(snap.snapshots, 1);
        assert_eq!(snap.checkpoints, 1);
        assert_eq!(snap.checkpoint_bytes, 100);
        assert_eq!(snap.checkpoint_lines, 2);
        assert_eq!(snap.total_flushes(), 3);
    }

    #[test]
    fn delta_since_subtracts_fieldwise() {
        let s = PmemStats::new();
        s.count_sfence();
        let a = s.snapshot();
        s.count_sfence();
        s.count_clflush();
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.sfence, 1);
        assert_eq!(d.clflush, 1);
        assert_eq!(d.wbinvd, 0);
    }

    #[test]
    fn concurrent_counting_is_not_lossy() {
        use std::sync::Arc;
        let s = Arc::new(PmemStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.count_clflushopt();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().clflushopt, 4000);
    }
}
