//! Persistence-operation counters.
//!
//! Every emulated flush/fence/WBINVD bumps a counter here. The benchmark
//! harness reports these next to throughput so the *why* behind each figure
//! (e.g. CX-PUC's whole-replica flush volume vs PREP's batched log flushes)
//! is visible, and the crash tests use them as progress probes (e.g. "crash
//! after the third WBINVD").
//!
//! Counters are **striped per thread**: each thread is assigned (round-robin
//! on first count) one of [`STRIPES`] cacheline-padded cells and only ever
//! `fetch_add`s its own cell; [`PmemStats::snapshot`] sums the stripes.
//! Without this, every flush in the durable hot path contends on one shared
//! cacheline per counter — skewing exactly the scaling measurements the
//! stats exist to explain. The stripes are monotone, so a summed snapshot
//! is a valid observation of the totals at some instant between the first
//! and last stripe read.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crossbeam_utils::CachePadded;

/// Number of counter stripes; threads map onto them round-robin (mod).
const STRIPES: usize = 16;

/// One stripe's worth of counters.
// shared-line: plain (unpadded) atomics inside on purpose — the stripe as
// a whole is CachePadded and a thread owns its entire stripe, so fields
// sharing a line is free, not false sharing.
#[derive(Debug, Default)]
struct StripeCells {
    clflush: AtomicU64,
    clflushopt: AtomicU64,
    sfence: AtomicU64,
    wbinvd: AtomicU64,
    bytes_persisted: AtomicU64,
    snapshots: AtomicU64,
    checkpoints: AtomicU64,
    checkpoint_bytes: AtomicU64,
    checkpoint_lines: AtomicU64,
}

/// The stripe index this thread's counts land on.
fn my_stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
    }
    STRIPE.with(|c| {
        let mut v = c.get();
        if v == usize::MAX {
            // ord: round-robin dispenser; only RMW atomicity matters.
            v = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
            c.set(v);
        }
        v
    })
}

/// Atomic counters for persistence operations (thread-striped).
#[derive(Debug)]
pub struct PmemStats {
    stripes: Box<[CachePadded<StripeCells>]>,
}

impl Default for PmemStats {
    fn default() -> Self {
        PmemStats {
            stripes: (0..STRIPES).map(|_| CachePadded::default()).collect(),
        }
    }
}

/// A point-in-time copy of [`PmemStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmemStatsSnapshot {
    /// Synchronous CLFLUSH count.
    pub clflush: u64,
    /// Asynchronous CLFLUSHOPT/CLWB count.
    pub clflushopt: u64,
    /// SFENCE count.
    pub sfence: u64,
    /// WBINVD count.
    pub wbinvd: u64,
    /// Total bytes made persistent (cells + log entries + snapshots).
    pub bytes_persisted: u64,
    /// Replica snapshots installed (== successful persist cycles).
    pub snapshots: u64,
    /// Replica checkpoint flushes (one per persist cycle, any strategy).
    pub checkpoints: u64,
    /// Bytes written back by replica checkpoints: the whole replica under
    /// `Wbinvd`/`RangeFlush`, only the dirty set under `DirtyLines`.
    pub checkpoint_bytes: u64,
    /// Cachelines written back by replica checkpoints (`⌈bytes / 64⌉` per
    /// checkpoint).
    pub checkpoint_lines: u64,
}

impl PmemStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn mine(&self) -> &StripeCells {
        &self.stripes[my_stripe()]
    }

    #[inline]
    fn sum(&self, field: impl Fn(&StripeCells) -> &AtomicU64) -> u64 {
        self.stripes
            .iter()
            // ord: monotone counters — a relaxed sum is a valid observation
            // at some instant between the first and last stripe read (see
            // module docs); nothing synchronizes on it.
            .map(|s| field(s).load(Ordering::Relaxed))
            .sum()
    }

    pub(crate) fn count_clflush(&self) {
        // ord: per-thread striped statistic; summed relaxed (see `sum`).
        self.mine().clflush.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_clflushopt(&self) {
        // ord: per-thread striped statistic; summed relaxed (see `sum`).
        self.mine().clflushopt.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_clflushopt_n(&self, n: u64) {
        // ord: per-thread striped statistic; summed relaxed (see `sum`).
        self.mine().clflushopt.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn count_sfence(&self) {
        // ord: per-thread striped statistic; summed relaxed (see `sum`).
        self.mine().sfence.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_wbinvd(&self) {
        // ord: per-thread striped statistic; summed relaxed (see `sum`).
        self.mine().wbinvd.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_bytes(&self, n: u64) {
        // ord: per-thread striped statistic; summed relaxed (see `sum`).
        self.mine().bytes_persisted.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn count_snapshot(&self) {
        // ord: per-thread striped statistic; summed relaxed (see `sum`).
        self.mine().snapshots.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_checkpoint(&self, bytes: u64) {
        let mine = self.mine();
        // ord: per-thread striped statistic; summed relaxed (see `sum`).
        mine.checkpoints.fetch_add(1, Ordering::Relaxed);
        // ord: per-thread striped statistic; summed relaxed (see `sum`).
        mine.checkpoint_bytes.fetch_add(bytes, Ordering::Relaxed);
        mine.checkpoint_lines
            // ord: per-thread striped statistic; summed relaxed (see `sum`).
            .fetch_add(bytes.div_ceil(64), Ordering::Relaxed);
    }

    /// Number of WBINVDs so far (cheap accessor for progress probes).
    pub fn wbinvd_count(&self) -> u64 {
        self.sum(|s| &s.wbinvd)
    }

    /// Number of replica snapshots installed so far.
    pub fn snapshot_count(&self) -> u64 {
        self.sum(|s| &s.snapshots)
    }

    /// Takes a consistent-enough copy of all counters (relaxed reads; the
    /// counters are monotone so any interleaving is a valid observation).
    pub fn snapshot(&self) -> PmemStatsSnapshot {
        PmemStatsSnapshot {
            clflush: self.sum(|s| &s.clflush),
            clflushopt: self.sum(|s| &s.clflushopt),
            sfence: self.sum(|s| &s.sfence),
            wbinvd: self.sum(|s| &s.wbinvd),
            bytes_persisted: self.sum(|s| &s.bytes_persisted),
            snapshots: self.sum(|s| &s.snapshots),
            checkpoints: self.sum(|s| &s.checkpoints),
            checkpoint_bytes: self.sum(|s| &s.checkpoint_bytes),
            checkpoint_lines: self.sum(|s| &s.checkpoint_lines),
        }
    }
}

impl PmemStatsSnapshot {
    /// Per-field difference `self - earlier` (saturating): the persistence
    /// work done between two snapshots. This is the building block for all
    /// per-phase and per-shard accounting (see `prep-bench`'s
    /// `report::Phase`).
    pub fn delta(&self, earlier: &PmemStatsSnapshot) -> PmemStatsSnapshot {
        PmemStatsSnapshot {
            clflush: self.clflush.saturating_sub(earlier.clflush),
            clflushopt: self.clflushopt.saturating_sub(earlier.clflushopt),
            sfence: self.sfence.saturating_sub(earlier.sfence),
            wbinvd: self.wbinvd.saturating_sub(earlier.wbinvd),
            bytes_persisted: self.bytes_persisted.saturating_sub(earlier.bytes_persisted),
            snapshots: self.snapshots.saturating_sub(earlier.snapshots),
            checkpoints: self.checkpoints.saturating_sub(earlier.checkpoints),
            checkpoint_bytes: self
                .checkpoint_bytes
                .saturating_sub(earlier.checkpoint_bytes),
            checkpoint_lines: self
                .checkpoint_lines
                .saturating_sub(earlier.checkpoint_lines),
        }
    }

    /// Alias for [`PmemStatsSnapshot::delta`] (the historical name).
    pub fn delta_since(&self, earlier: &PmemStatsSnapshot) -> PmemStatsSnapshot {
        self.delta(earlier)
    }

    /// Total explicit flush instructions (sync + async).
    pub fn total_flushes(&self) -> u64 {
        self.clflush + self.clflushopt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = PmemStats::new();
        s.count_clflush();
        s.count_clflushopt();
        s.count_clflushopt();
        s.count_sfence();
        s.count_wbinvd();
        s.count_bytes(128);
        s.count_snapshot();
        s.count_checkpoint(100); // 100 bytes → 2 lines
        let snap = s.snapshot();
        assert_eq!(snap.clflush, 1);
        assert_eq!(snap.clflushopt, 2);
        assert_eq!(snap.sfence, 1);
        assert_eq!(snap.wbinvd, 1);
        assert_eq!(snap.bytes_persisted, 128);
        assert_eq!(snap.snapshots, 1);
        assert_eq!(snap.checkpoints, 1);
        assert_eq!(snap.checkpoint_bytes, 100);
        assert_eq!(snap.checkpoint_lines, 2);
        assert_eq!(snap.total_flushes(), 3);
    }

    #[test]
    fn delta_since_subtracts_fieldwise() {
        let s = PmemStats::new();
        s.count_sfence();
        let a = s.snapshot();
        s.count_sfence();
        s.count_clflush();
        let b = s.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.sfence, 1);
        assert_eq!(d.clflush, 1);
        assert_eq!(d.wbinvd, 0);
    }

    #[test]
    fn concurrent_counting_is_not_lossy() {
        use std::sync::Arc;
        let s = Arc::new(PmemStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.count_clflushopt();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot().clflushopt, 4000);
    }

    #[test]
    fn counts_from_many_threads_spread_over_stripes_and_still_sum() {
        use std::sync::Arc;
        // More threads than stripes: assignment wraps; totals must be exact
        // regardless of which stripes absorbed which threads.
        let s = Arc::new(PmemStats::new());
        let handles: Vec<_> = (0..(STRIPES + 3))
            .map(|i| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..(100 + i) {
                        s.count_bytes(3);
                        s.count_sfence();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected: u64 = (0..(STRIPES as u64 + 3)).map(|i| 100 + i).sum();
        let snap = s.snapshot();
        assert_eq!(snap.sfence, expected);
        assert_eq!(snap.bytes_persisted, 3 * expected);
        // A single thread's counts land on exactly one stripe.
        let occupied = s
            .stripes
            .iter()
            .filter(|st| st.sfence.load(Ordering::Relaxed) > 0)
            .count();
        assert!(occupied > 1, "thread counts failed to spread over stripes");
    }
}
