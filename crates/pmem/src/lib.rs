//! Persistence-semantics emulator for the PREP-UC reproduction.
//!
//! The paper runs on a machine with Intel Optane DC persistent memory and
//! persists data with `CLFLUSH`/`CLFLUSHOPT` + `SFENCE` and (for whole
//! replicas) the privileged `WBINVD` instruction. This crate replaces that
//! hardware with an emulator that models the two things the algorithms
//! actually depend on (see DESIGN.md "Hardware substitutions"):
//!
//! 1. **What survives a crash.** A [`PmemRuntime`] owns a *crash store*: the
//!    set of values that have genuinely reached "NVM". Persist operations
//!    ([`PersistentCell::persist`], [`ReplicaImage::install_snapshot`],
//!    [`LogImage::persist_entry`]) update it; a simulated power failure is a
//!    *consistent cut* of the store captured via
//!    [`PmemRuntime::capture_cut`], from which recovery code rebuilds the
//!    object. The active persistent replica's image is marked **torn**
//!    between its first post-snapshot mutation and the next WBINVD —
//!    modelling the paper's background-flush hazard (§4.1): recovering a torn
//!    image is a detectable bug.
//!
//! 2. **What persistence costs.** Every flush/fence/WBINVD spins for a
//!    configurable latency ([`LatencyModel`]) and bumps counters
//!    ([`PmemStats`]), so benchmark *shapes* (flush-bound vs compute-bound,
//!    the ε trade-off, CX's whole-replica flushes) reproduce without NVM.
//!
//! The crate also implements the paper's persistent-allocation story (§5.1):
//! a free-list [`arena::PArena`] with a fixed base address, and
//! [`alloc::SwappableAllocator`] — a `GlobalAlloc` wrapper with a
//! *thread-local* flag that redirects a thread's allocations to the
//! persistent arena without modifying sequential data-structure code.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod alloc;
pub mod arena;
mod image;
mod latency;
mod namespace;
mod runtime;
mod stats;

pub use image::{LogImage, PersistentCell, ReplicaImage, ReplicaSnapshot, TornImage};
pub use latency::LatencyModel;
pub use namespace::PersistentDirectory;
pub use runtime::{CrashToken, PmemRuntime};
pub use stats::{PmemStats, PmemStatsSnapshot};

/// The persistence-ordering sanitizer layered under this runtime (event
/// model, rule engine, crash-point bisection). Re-exported so sanitizer
/// consumers need not depend on `prep-psan` directly.
pub use prep_psan as psan;
