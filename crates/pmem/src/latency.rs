//! The persistence cost model.
//!
//! Costs are expressed in nanoseconds and applied by busy-waiting, because
//! the real instructions stall the issuing core (a `thread::sleep` would
//! under-charge by descheduling). Defaults are calibrated to published Intel
//! Optane DCPMM measurements (Izraelevitz et al. 2019, "Basic Performance
//! Measurements of the Intel Optane DC Persistent Memory Module"):
//! `CLWB`/`CLFLUSHOPT` of a dirty line ~tens of ns issue cost with the drain
//! paid at the fence; a full flush+fence round trip to the DIMM on the order
//! of 100–300 ns; `WBINVD` several hundred microseconds on a large cache.

use std::time::{Duration, Instant};

/// Nanosecond costs for each persistence primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    /// Synchronous `CLFLUSH` of one line (includes its implicit ordering).
    pub clflush_ns: u64,
    /// Asynchronous `CLFLUSHOPT`/`CLWB` issue cost for one line.
    pub clflushopt_ns: u64,
    /// `SFENCE` drain cost, charged per outstanding asynchronous flush.
    pub sfence_per_pending_ns: u64,
    /// `SFENCE` base cost.
    pub sfence_ns: u64,
    /// `WBINVD` base cost (kernel-module round trip + cache walk).
    pub wbinvd_base_ns: u64,
    /// `WBINVD` additional cost per KiB of modelled dirty footprint.
    pub wbinvd_per_kib_ns: u64,
    /// Extra write latency per cache line for stores that target NVM
    /// (charged when the persistence thread updates a persistent replica).
    pub nvm_write_ns: u64,
}

impl LatencyModel {
    /// Optane-calibrated defaults (see module docs).
    pub fn optane() -> Self {
        LatencyModel {
            clflush_ns: 250,
            clflushopt_ns: 40,
            sfence_per_pending_ns: 60,
            sfence_ns: 30,
            wbinvd_base_ns: 500_000,
            wbinvd_per_kib_ns: 15,
            nvm_write_ns: 90,
        }
    }

    /// Zero-cost model: persistence semantics are still tracked, but no time
    /// is charged. Used by correctness tests so crash-injection suites run
    /// fast.
    pub fn off() -> Self {
        LatencyModel {
            clflush_ns: 0,
            clflushopt_ns: 0,
            sfence_per_pending_ns: 0,
            sfence_ns: 0,
            wbinvd_base_ns: 0,
            wbinvd_per_kib_ns: 0,
            nvm_write_ns: 0,
        }
    }

    /// A scaled-down Optane model for quick benchmark smoke runs.
    pub fn optane_scaled(divisor: u64) -> Self {
        let d = divisor.max(1);
        let o = Self::optane();
        LatencyModel {
            clflush_ns: o.clflush_ns / d,
            clflushopt_ns: o.clflushopt_ns / d,
            sfence_per_pending_ns: o.sfence_per_pending_ns / d,
            sfence_ns: o.sfence_ns / d,
            wbinvd_base_ns: o.wbinvd_base_ns / d,
            wbinvd_per_kib_ns: o.wbinvd_per_kib_ns / d,
            nvm_write_ns: o.nvm_write_ns / d,
        }
    }

    /// Cost of a WBINVD over `dirty_bytes` of modelled dirty cache footprint.
    pub fn wbinvd_cost_ns(&self, dirty_bytes: u64) -> u64 {
        self.wbinvd_base_ns + self.wbinvd_per_kib_ns * (dirty_bytes / 1024)
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::optane()
    }
}

/// Measured cost of one `Instant::now()` + `elapsed()` pair, calibrated
/// once per process (minimum over several batches, so scheduler noise can
/// only *under*-estimate — deducting too little is safe, deducting too much
/// would make charges vanish).
///
/// Why it matters: the spin loop in [`charge_ns`] pays this timer cost on
/// top of the requested wait, which for a 40 ns `clflushopt` charge used to
/// mean billing 2–3× the modelled latency. [`charge_ns`] deducts it.
pub(crate) fn timer_overhead_ns() -> u64 {
    use std::sync::OnceLock;
    static OVERHEAD: OnceLock<u64> = OnceLock::new();
    *OVERHEAD.get_or_init(|| {
        const BATCH: u32 = 256;
        let mut best = u64::MAX;
        for _ in 0..8 {
            let start = Instant::now();
            for _ in 0..BATCH {
                let t = Instant::now();
                std::hint::black_box(t.elapsed());
            }
            let total = start.elapsed().as_nanos() as u64;
            best = best.min(total / BATCH as u64);
        }
        best
    })
}

/// Busy-waits for `ns` nanoseconds (no-op for 0).
///
/// Busy-waiting (not sleeping) matches how flush/fence instructions occupy
/// the issuing core. For waits above ~100 µs we fall back to a sleep so a
/// heavily charged operation (WBINVD) does not monopolize an oversubscribed
/// machine.
///
/// The calibrated timer overhead ([`timer_overhead_ns`]) is deducted from
/// the spin target: the `Instant::now()`/`elapsed()` pair is itself part of
/// the stall the caller experiences, and for small charges (a 40 ns
/// `clflushopt`) paying it *on top* overbilled by whole multiples. Charges
/// at or below the overhead return immediately — the call dispatch already
/// cost that much.
#[inline]
pub(crate) fn charge_ns(ns: u64) {
    if ns == 0 {
        return;
    }
    if ns > 100_000 {
        std::thread::sleep(Duration::from_nanos(ns));
        return;
    }
    let spin = ns.saturating_sub(timer_overhead_ns());
    if spin == 0 {
        return;
    }
    let start = Instant::now();
    let target = Duration::from_nanos(spin);
    while start.elapsed() < target {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_model_is_all_zero() {
        let m = LatencyModel::off();
        assert_eq!(m.clflush_ns, 0);
        assert_eq!(m.wbinvd_cost_ns(1 << 30), 0);
    }

    #[test]
    fn wbinvd_cost_scales_with_footprint() {
        let m = LatencyModel::optane();
        let small = m.wbinvd_cost_ns(4 * 1024);
        let large = m.wbinvd_cost_ns(4 * 1024 * 1024);
        assert!(large > small);
        assert_eq!(small, m.wbinvd_base_ns + 4 * m.wbinvd_per_kib_ns);
    }

    #[test]
    fn scaled_model_divides_costs() {
        let m = LatencyModel::optane_scaled(10);
        assert_eq!(m.clflush_ns, LatencyModel::optane().clflush_ns / 10);
        // Divisor 0 is clamped to 1 rather than dividing by zero.
        let id = LatencyModel::optane_scaled(0);
        assert_eq!(id, LatencyModel::optane());
    }

    #[test]
    fn charge_ns_zero_returns_immediately() {
        let t = Instant::now();
        charge_ns(0);
        assert!(t.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn charge_ns_waits_at_least_requested() {
        let t = Instant::now();
        charge_ns(200_000); // sleep path
        assert!(t.elapsed() >= Duration::from_micros(200));
        let t = Instant::now();
        // Spin path. The spin target deducts the calibrated timer overhead
        // (≲ 1 µs), so the externally observed wait is ns − overhead, not ≥ ns.
        charge_ns(20_000);
        assert!(t.elapsed() >= Duration::from_micros(19));
    }

    #[test]
    fn small_charges_do_not_overbill_by_the_timer_overhead() {
        // Regression bound for the charge_ns overcharge fix: charging the
        // Optane clflushopt cost N times must cost ≈ N × the charge, not
        // N × (charge + timer overhead). We bound the mean per-call cost by
        // charge + overhead + slack — before the fix it measured
        // ≥ charge + 2×overhead on hosts with slow clock reads.
        let overhead = timer_overhead_ns();
        let charge = LatencyModel::optane().clflushopt_ns; // 40 ns
        const N: u32 = 10_000;
        let start = Instant::now();
        for _ in 0..N {
            charge_ns(charge);
        }
        let mean = start.elapsed().as_nanos() as u64 / N as u64;
        // Generous slack for CI noise; the point is the bound scales with
        // ONE timer overhead, not two.
        let bound = charge + overhead + overhead / 2 + 60;
        assert!(
            mean <= bound,
            "mean per-call cost {mean} ns exceeds bound {bound} ns \
             (charge {charge} ns, calibrated timer overhead {overhead} ns)"
        );
    }

    #[test]
    fn timer_overhead_is_calibrated_and_sane() {
        let o = timer_overhead_ns();
        assert_eq!(o, timer_overhead_ns(), "calibration must be cached");
        assert!(o < 100_000, "implausible timer overhead: {o} ns");
    }
}
