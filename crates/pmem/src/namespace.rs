//! Namespaced persistent roots: a directory of named NVM variables that
//! share one crash image.
//!
//! Real PMEM deployments keep a *root object* per pool from which recovery
//! finds everything else. A multi-instance system (e.g. `prep-shard`'s N
//! independent PREP-UC shards) needs several such roots inside **one**
//! crash image so that a single power failure captures them together with
//! every instance's replicas. [`PersistentDirectory`] models that: a flat
//! `name → u64` namespace whose mutations take the shared runtime's
//! persist-effect guard, making the directory part of the same consistent
//! cut as every other image owned by the runtime. Hierarchical names use
//! `/`-separated paths by convention (`"shard/3/epoch"`), and
//! [`PersistentDirectory::scope`] prefixes a namespace.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

use prep_psan::Region;

use crate::runtime::PmemRuntime;

/// Sanitizer address space per directory: 16 Ki roots × one line each
/// (ordinals wrap beyond that — identity degrades, never overflows).
const DIRECTORY_REGION_BYTES: u64 = 1 << 20;

/// A persisted `name → u64` namespace sharing the runtime's crash image.
#[derive(Debug, Default)]
pub struct PersistentDirectory {
    image: Mutex<BTreeMap<String, u64>>,
    /// Sanitizer identity: one logical NVM line per root, inside a region
    /// allocated lazily from the first runtime this directory persists
    /// through.
    region: OnceLock<Region>,
    ordinals: Mutex<BTreeMap<String, u64>>,
}

impl PersistentDirectory {
    /// Creates an empty directory (a freshly formatted pool has no roots).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the conventional `/`-separated name for `root` under
    /// `namespace` (e.g. `scope("shard/3", "epoch")` → `"shard/3/epoch"`).
    pub fn scope(namespace: &str, root: &str) -> String {
        format!("{namespace}/{root}")
    }

    /// Records `value` under `name` as persistent. Like the other image
    /// mutators, this is a no-op without crash simulation; the caller
    /// charges flush costs separately.
    pub fn record(&self, rt: &PmemRuntime, name: &str, value: u64) {
        let Some(_guard) = rt.persist_effect() else {
            return;
        };
        rt.stats()
            .count_bytes((name.len() + std::mem::size_of::<u64>()) as u64);
        self.image
            .lock()
            .expect("directory poisoned")
            .insert(name.to_owned(), value);
    }

    /// The stable logical NVM address of `name`'s line (one line per root
    /// so directory entries never share a cacheline).
    fn addr_for(&self, rt: &PmemRuntime, name: &str) -> u64 {
        let region = self
            .region
            .get_or_init(|| rt.psan_region("directory", DIRECTORY_REGION_BYTES));
        let mut ordinals = self.ordinals.lock().expect("directory poisoned");
        let next = ordinals.len() as u64;
        let ordinal = *ordinals.entry(name.to_owned()).or_insert(next);
        region.base + (ordinal * 64) % region.len
    }

    /// Convenience: store + `CLFLUSH` as one atomic persist — the pattern
    /// for rarely-written metadata roots (shard counts, epochs, format
    /// versions). The root's bytes are durable when this returns.
    pub fn persist_clflush(&self, rt: &PmemRuntime, name: &str, value: u64) {
        rt.persist_clflush_at(
            self.addr_for(rt, name),
            std::mem::size_of::<u64>() as u64,
            "PersistentDirectory::persist_clflush",
        );
        self.record(rt, name, value);
    }

    /// Reads one root from the persisted image (what recovery would see).
    pub fn read(&self, name: &str) -> Option<u64> {
        self.image
            .lock()
            .expect("directory poisoned")
            .get(name)
            .copied()
    }

    /// Copies the whole persisted namespace — call inside a frozen cut
    /// (e.g. from a [`PmemRuntime::capture_cut`] closure) to embed the
    /// directory in a crash image.
    pub fn snapshot(&self) -> BTreeMap<String, u64> {
        self.image.lock().expect("directory poisoned").clone()
    }

    /// [`PersistentDirectory::snapshot`] plus sanitizer recovery-read
    /// events for every root the snapshot hands to recovery — call inside
    /// a frozen cut when the snapshot's purpose *is* crash recovery, so
    /// the sanitizer can verify each root was durable at the cut.
    pub fn snapshot_for_recovery(&self, rt: &PmemRuntime) -> BTreeMap<String, u64> {
        let snap = self.snapshot();
        if rt.psan_enabled() {
            for name in snap.keys() {
                rt.trace_recovery_read(
                    self.addr_for(rt, name),
                    std::mem::size_of::<u64>() as u64,
                    "PersistentDirectory::snapshot_for_recovery",
                );
            }
        }
        snap
    }

    /// Number of persisted roots.
    pub fn len(&self) -> usize {
        self.image.lock().expect("directory poisoned").len()
    }

    /// True if no root is persisted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LatencyModel;

    #[test]
    fn records_only_with_crash_sim() {
        let bench = PmemRuntime::for_benchmarks(LatencyModel::off());
        let sim = PmemRuntime::for_crash_tests();
        let dir = PersistentDirectory::new();
        dir.persist_clflush(&bench, "shards", 4);
        assert_eq!(dir.read("shards"), None, "bench runtime must not persist");
        dir.persist_clflush(&sim, "shards", 4);
        assert_eq!(dir.read("shards"), Some(4));
        assert_eq!(sim.stats().snapshot().clflush, 1);
    }

    #[test]
    fn scoped_names_nest_and_snapshot() {
        let rt = PmemRuntime::for_crash_tests();
        let dir = PersistentDirectory::new();
        for shard in 0..3u64 {
            let ns = format!("shard/{shard}");
            dir.record(&rt, &PersistentDirectory::scope(&ns, "epoch"), shard * 10);
        }
        dir.record(&rt, "shards", 3);
        assert_eq!(dir.len(), 4);
        assert_eq!(dir.read("shard/1/epoch"), Some(10));
        let snap = dir.snapshot();
        assert_eq!(snap.get("shards"), Some(&3));
        assert_eq!(snap.len(), 4);
    }

    #[test]
    fn snapshot_inside_cut_is_coherent_with_other_images() {
        // A directory write and a cell write made before the cut are both
        // visible; the capture closure sees one consistent namespace.
        let rt = PmemRuntime::for_crash_tests();
        let dir = PersistentDirectory::new();
        let cell = crate::PersistentCell::new(0u64);
        dir.persist_clflush(&rt, "shards", 2);
        cell.persist_clflush(&rt, 7);
        let (_tok, (snap, v)) = rt.capture_cut(|| (dir.snapshot(), cell.read_image()));
        assert_eq!(snap.get("shards"), Some(&2));
        assert_eq!(v, 7);
    }
}
