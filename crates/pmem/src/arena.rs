//! A free-list persistent-memory arena.
//!
//! Models the persistent allocator PREP-UC requires (§5.1): the paper uses
//! the simple free-list allocator of Correia et al. (and libvmmalloc for the
//! SOFT comparison) over a persistent memory file that is always mapped at
//! the same virtual address. The two guarantees a PUC needs from it are:
//!
//! 1. allocator operations never corrupt allocated objects on a crash, and
//! 2. allocated objects keep their virtual address across a crash.
//!
//! [`PArena`] provides both within the emulator: the backing region is
//! allocated once and never moves (fixed base), and allocation metadata is
//! updated under a lock, atomically from the crash model's point of view.
//!
//! Layout: segregated power-of-two size classes with intrusive LIFO free
//! lists (a freed block's first word is the next-free offset) and a bump
//! pointer for never-before-used space. Every live block carries a 16-byte
//! header `[block_offset, class]` immediately before the user pointer, so
//! deallocation is O(1) for any alignment.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Smallest block class in bytes (must hold the intrusive next pointer and
/// a header).
const MIN_CLASS: usize = 32;
/// Number of size classes: 32 B .. 32 B << (NCLASS-1) (= 64 GiB ceiling).
const NCLASS: usize = 32;
/// Per-block header: `[block_offset: usize][class: usize]` just before the
/// user pointer.
const HEADER: usize = 16;
/// Null sentinel for intrusive free lists (offset 0 is never a block).
const NIL: usize = 0;

fn class_for(total: usize) -> Option<usize> {
    let size = total.next_power_of_two().max(MIN_CLASS);
    let idx = size.trailing_zeros() as usize - MIN_CLASS.trailing_zeros() as usize;
    if idx < NCLASS {
        Some(idx)
    } else {
        None
    }
}

fn class_size(class: usize) -> usize {
    MIN_CLASS << class
}

#[derive(Debug)]
struct Inner {
    /// Next never-used offset (starts past a reserved guard block so offset
    /// 0 can be the free-list null).
    bump: usize,
    /// Head offset of each class's intrusive free list.
    free: [usize; NCLASS],
}

/// A fixed-base persistent memory arena with a free-list allocator.
#[derive(Debug)]
pub struct PArena {
    base: *mut u8,
    size: usize,
    inner: Mutex<Inner>,
    // shared-line: advisory op counters, bumped at most once per alloc or
    // dealloc — both of which already serialize on `inner`; the mutex, not
    // the counter line, is the transfer bottleneck.
    allocs: AtomicU64,
    // shared-line: see `allocs`.
    deallocs: AtomicU64,
}

// SAFETY: all access to the raw region is mediated by the inner mutex (for
// metadata) and by ownership of returned blocks (for payloads).
unsafe impl Send for PArena {}
unsafe impl Sync for PArena {}

impl PArena {
    /// Creates an arena of `size` bytes. The base address is fixed for the
    /// arena's lifetime (the "always mapped at the same virtual address"
    /// requirement).
    ///
    /// # Panics
    /// Panics if `size` is smaller than 4 KiB or the backing allocation
    /// fails.
    pub fn new(size: usize) -> Self {
        assert!(size >= 4096, "arena too small to be useful");
        let layout = Layout::from_size_align(size, 4096).expect("arena layout");
        // SAFETY: layout has nonzero size. Allocated through `System`
        // directly so this works even when PArena backs the process's
        // global allocator (no recursion). Deliberately NOT alloc_zeroed:
        // with 4 KiB alignment the system allocator cannot use calloc and
        // would memset the whole (possibly multi-GiB) region eagerly;
        // uninitialized memory is fine because every arena word (headers,
        // free-list links, payloads) is written before it is read.
        let base = unsafe { System.alloc(layout) };
        assert!(!base.is_null(), "failed to reserve arena backing memory");
        PArena {
            base,
            size,
            inner: Mutex::new(Inner {
                bump: MIN_CLASS, // reserve [0, MIN_CLASS) so 0 is never a block
                free: [NIL; NCLASS],
            }),
            allocs: AtomicU64::new(0),
            deallocs: AtomicU64::new(0),
        }
    }

    /// The fixed base address.
    pub fn base(&self) -> usize {
        self.base as usize
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.size
    }

    /// Bytes handed out by the bump pointer so far (upper bound on live
    /// bytes; freed blocks are reused, not returned to the bump region).
    pub fn high_water(&self) -> usize {
        self.inner.lock().expect("arena poisoned").bump
    }

    /// (allocations, deallocations) served so far.
    pub fn op_counts(&self) -> (u64, u64) {
        (
            // ord: advisory statistics; no decision synchronizes on them.
            self.allocs.load(Ordering::Relaxed),
            // ord: advisory statistics; no decision synchronizes on them.
            self.deallocs.load(Ordering::Relaxed),
        )
    }

    /// True if `ptr` points into this arena (used to route deallocation when
    /// the arena backs a [`crate::alloc::SwappableAllocator`]).
    #[inline]
    pub fn contains(&self, ptr: *const u8) -> bool {
        let p = ptr as usize;
        let b = self.base as usize;
        p >= b && p < b + self.size
    }

    /// Allocates per `layout`. Returns null when the request cannot be
    /// satisfied (class too large or arena exhausted) — callers may fall
    /// back to the system allocator.
    pub fn alloc(&self, layout: Layout) -> *mut u8 {
        let align = layout.align().max(16);
        let pad = align.saturating_sub(16);
        let total = HEADER + layout.size().max(1) + pad;
        let Some(class) = class_for(total) else {
            return std::ptr::null_mut();
        };
        let csize = class_size(class);

        let block_off = {
            let mut inner = self.inner.lock().expect("arena poisoned");
            if inner.free[class] != NIL {
                let off = inner.free[class];
                // SAFETY: `off` was a block start we handed out before; its
                // first word holds the next-free offset.
                inner.free[class] = unsafe { self.read_word(off) };
                off
            } else {
                // Bump region is 16-aligned by construction (all classes are
                // multiples of 32).
                let off = inner.bump;
                if off.checked_add(csize).is_none_or(|end| end > self.size) {
                    return std::ptr::null_mut();
                }
                inner.bump = off + csize;
                off
            }
        };

        let block = self.base as usize + block_off;
        let user = (block + HEADER + align - 1) & !(align - 1);
        debug_assert!(user + layout.size() <= block + csize);
        debug_assert!(user - HEADER >= block);
        // SAFETY: header slot [user-16, user) lies inside our block.
        unsafe {
            let hdr = (user - HEADER) as *mut usize;
            hdr.write(block_off);
            hdr.add(1).write(class);
        }
        // ord: advisory statistic (see op_counts).
        self.allocs.fetch_add(1, Ordering::Relaxed);
        user as *mut u8
    }

    /// Deallocates a pointer previously returned by [`PArena::alloc`].
    ///
    /// # Safety
    /// `ptr` must have been returned by this arena's `alloc` and not freed
    /// since.
    pub unsafe fn dealloc(&self, ptr: *mut u8) {
        debug_assert!(self.contains(ptr));
        // SAFETY: caller contract — header written by alloc is intact.
        let (block_off, class) = unsafe {
            let hdr = (ptr as usize - HEADER) as *const usize;
            (hdr.read(), hdr.add(1).read())
        };
        debug_assert!(class < NCLASS, "corrupt allocation header");
        let mut inner = self.inner.lock().expect("arena poisoned");
        let head = inner.free[class];
        // SAFETY: the block is ours again; reuse its first word as the link.
        unsafe { self.write_word(block_off, head) };
        inner.free[class] = block_off;
        drop(inner);
        // ord: advisory statistic (see op_counts).
        self.deallocs.fetch_add(1, Ordering::Relaxed);
    }

    /// # Safety
    /// `off` must be a valid word-aligned offset inside the arena.
    unsafe fn read_word(&self, off: usize) -> usize {
        // SAFETY: caller contract.
        unsafe { ((self.base as usize + off) as *const usize).read() }
    }

    /// # Safety
    /// `off` must be a valid word-aligned offset inside the arena, and the
    /// word must not be concurrently accessed (we hold the inner lock or own
    /// the block).
    unsafe fn write_word(&self, off: usize, val: usize) {
        // SAFETY: caller contract.
        unsafe { ((self.base as usize + off) as *mut usize).write(val) }
    }
}

impl Drop for PArena {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.size, 4096).expect("arena layout");
        // SAFETY: allocated with the same layout through System in `new`.
        unsafe { System.dealloc(self.base, layout) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout(size: usize, align: usize) -> Layout {
        Layout::from_size_align(size, align).unwrap()
    }

    #[test]
    fn class_mapping_is_monotone_and_bounded() {
        assert_eq!(class_for(1), Some(0));
        assert_eq!(class_for(32), Some(0));
        assert_eq!(class_for(33), Some(1));
        assert_eq!(class_for(64), Some(1));
        assert_eq!(class_for(65), Some(2));
        assert!(class_for(usize::MAX / 2).is_none());
        assert_eq!(class_size(0), 32);
        assert_eq!(class_size(3), 256);
    }

    #[test]
    fn alloc_respects_alignment() {
        let arena = PArena::new(1 << 20);
        for align in [1usize, 8, 16, 64, 256, 4096] {
            let p = arena.alloc(layout(24, align));
            assert!(!p.is_null());
            assert_eq!(p as usize % align.max(16), 0, "align {align}");
            assert!(arena.contains(p));
        }
    }

    #[test]
    fn freed_blocks_are_reused_within_class() {
        let arena = PArena::new(1 << 20);
        let p1 = arena.alloc(layout(100, 8));
        let hw1 = arena.high_water();
        unsafe { arena.dealloc(p1) };
        let p2 = arena.alloc(layout(100, 8));
        assert_eq!(p1, p2, "LIFO free list must hand back the same block");
        assert_eq!(arena.high_water(), hw1, "reuse must not bump");
        assert_eq!(arena.op_counts(), (2, 1));
    }

    #[test]
    fn live_allocations_do_not_overlap() {
        let arena = PArena::new(1 << 20);
        let mut spans: Vec<(usize, usize)> = Vec::new();
        for i in 0..200usize {
            let size = (i % 97) + 1;
            let p = arena.alloc(layout(size, 8)) as usize;
            assert_ne!(p, 0);
            for &(q, qs) in &spans {
                assert!(p + size <= q || q + qs <= p, "overlap");
            }
            spans.push((p, size));
        }
    }

    #[test]
    fn writes_survive_and_pointers_are_stable() {
        let arena = PArena::new(1 << 20);
        let p = arena.alloc(layout(64, 8));
        unsafe {
            std::ptr::write_bytes(p, 0xAB, 64);
        }
        let base_before = arena.base();
        // Allocate a bunch more; base and contents must be untouched.
        for _ in 0..100 {
            let _ = arena.alloc(layout(128, 8));
        }
        assert_eq!(arena.base(), base_before);
        for i in 0..64 {
            assert_eq!(unsafe { *p.add(i) }, 0xAB);
        }
    }

    #[test]
    fn exhaustion_returns_null_not_panic() {
        let arena = PArena::new(4096);
        let mut got_null = false;
        for _ in 0..1000 {
            if arena.alloc(layout(512, 8)).is_null() {
                got_null = true;
                break;
            }
        }
        assert!(got_null, "a 4 KiB arena must exhaust");
    }

    #[test]
    fn oversized_request_returns_null() {
        let arena = PArena::new(1 << 16);
        assert!(arena.alloc(layout(1 << 20, 8)).is_null());
    }

    #[test]
    fn concurrent_alloc_dealloc_is_consistent() {
        use std::sync::Arc;
        let arena = Arc::new(PArena::new(8 << 20));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let arena = Arc::clone(&arena);
                std::thread::spawn(move || {
                    let mut mine = Vec::new();
                    for i in 0..500usize {
                        let p = arena.alloc(layout(16 + (i % 64), 8));
                        assert!(!p.is_null());
                        // Tag the block with our thread id and check it later:
                        // catches blocks handed to two threads at once.
                        unsafe { (p as *mut usize).write(t * 1_000_000 + i) };
                        mine.push((p, t * 1_000_000 + i));
                        if i % 3 == 0 {
                            let (q, tag) = mine.swap_remove(i % mine.len());
                            assert_eq!(unsafe { (q as *const usize).read() }, tag);
                            unsafe { arena.dealloc(q) };
                        }
                    }
                    for (q, tag) in mine {
                        assert_eq!(unsafe { (q as *const usize).read() }, tag);
                        unsafe { arena.dealloc(q) };
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (a, d) = arena.op_counts();
        assert_eq!(a, d, "every allocation freed exactly once");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random alloc/free traces: no returned block overlaps a live one,
        /// alignment always honored.
        #[test]
        fn random_traces_preserve_disjointness(
            ops in proptest::collection::vec((1usize..512, 0u8..4, any::<bool>()), 1..200)
        ) {
            let arena = PArena::new(4 << 20);
            let mut live: Vec<(usize, usize)> = Vec::new();
            for (size, align_pow, free_one) in ops {
                let align = 8usize << align_pow;
                let p = arena.alloc(Layout::from_size_align(size, align).unwrap()) as usize;
                prop_assert!(p != 0);
                prop_assert_eq!(p % align.max(16), 0);
                for &(q, qs) in &live {
                    prop_assert!(p + size <= q || q + qs <= p);
                }
                live.push((p, size));
                if free_one && live.len() > 1 {
                    let (q, _) = live.swap_remove(0);
                    unsafe { arena.dealloc(q as *mut u8) };
                }
            }
        }
    }
}
