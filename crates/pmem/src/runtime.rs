//! The central persistence runtime: cost charging + consistent-cut capture.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard};

use crate::latency::{charge_ns, LatencyModel};
use crate::stats::PmemStats;

thread_local! {
    /// Outstanding asynchronous flushes issued by this thread since its last
    /// SFENCE. The fence drains them (and is charged per pending flush).
    static PENDING_FLUSHES: Cell<u64> = const { Cell::new(0) };
}

/// Proof that a crash was simulated; carries a monotonically increasing
/// crash id. Recovery constructors take a `CrashToken` so that "recover"
/// paths cannot be invoked without an actual (simulated) crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashToken {
    /// 1-based index of this crash within the runtime's lifetime.
    pub crash_id: u64,
}

/// The persistence-semantics emulator shared by one universal construction
/// instance (and everything it persists).
///
/// Two independent switches:
/// * the [`LatencyModel`] decides what persistence *costs* (benchmarks use
///   an Optane-calibrated model; correctness tests switch it off);
/// * `crash_sim` decides whether persist operations also maintain the crash
///   store (tests on) or are cost-only (benchmarks off — maintaining the
///   store takes a global read lock per persist, which would distort
///   measured scaling).
#[derive(Debug)]
pub struct PmemRuntime {
    latency: LatencyModel,
    stats: PmemStats,
    crash_sim: bool,
    /// Readers: every persist effect. Writer: crash capture. Holding the
    /// write lock freezes the crash store, making the captured image a
    /// consistent cut of the persist order.
    cut_lock: RwLock<()>,
    crashes: AtomicU64,
}

impl PmemRuntime {
    /// Creates a runtime with the given cost model and crash-sim switch.
    pub fn new(latency: LatencyModel, crash_sim: bool) -> Arc<Self> {
        Arc::new(PmemRuntime {
            latency,
            stats: PmemStats::new(),
            crash_sim,
            cut_lock: RwLock::new(()),
            crashes: AtomicU64::new(0),
        })
    }

    /// Cost-only runtime for benchmarks (no crash store).
    pub fn for_benchmarks(latency: LatencyModel) -> Arc<Self> {
        Self::new(latency, false)
    }

    /// Zero-cost runtime with crash simulation, for correctness tests.
    pub fn for_crash_tests() -> Arc<Self> {
        Self::new(LatencyModel::off(), true)
    }

    /// The cost model in effect.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Persistence-operation counters.
    pub fn stats(&self) -> &PmemStats {
        &self.stats
    }

    /// Whether the crash store is being maintained.
    pub fn crash_sim_enabled(&self) -> bool {
        self.crash_sim
    }

    /// Emulates a synchronous `CLFLUSH` of one cache line.
    #[inline]
    pub fn clflush(&self) {
        charge_ns(self.latency.clflush_ns);
        self.stats.count_clflush();
    }

    /// Emulates an asynchronous `CLFLUSHOPT`/`CLWB` of one cache line.
    /// Durability is only guaranteed after the next [`PmemRuntime::sfence`].
    #[inline]
    pub fn clflushopt(&self) {
        charge_ns(self.latency.clflushopt_ns);
        self.stats.count_clflushopt();
        PENDING_FLUSHES.with(|p| p.set(p.get() + 1));
    }

    /// Emulates an `SFENCE`: drains this thread's outstanding asynchronous
    /// flushes, charging per pending line.
    #[inline]
    pub fn sfence(&self) {
        let pending = PENDING_FLUSHES.with(|p| p.replace(0));
        charge_ns(self.latency.sfence_ns + pending * self.latency.sfence_per_pending_ns);
        self.stats.count_sfence();
    }

    /// Emulates `WBINVD` over `dirty_bytes` of modelled dirty footprint
    /// (write back and invalidate the executing processor's entire cache).
    #[inline]
    pub fn wbinvd(&self, dirty_bytes: u64) {
        charge_ns(self.latency.wbinvd_cost_ns(dirty_bytes));
        self.stats.count_wbinvd();
    }

    /// Emulates flushing a `bytes`-long address range with asynchronous
    /// line flushes (the CX-PUC whole-replica persist, and PREP's
    /// range-flush alternative to WBINVD from §6). Counts one `CLFLUSHOPT`
    /// per line; the cost is charged in one batch. Durability still
    /// requires a following [`PmemRuntime::sfence`].
    #[inline]
    pub fn flush_range(&self, bytes: u64) {
        let lines = bytes.div_ceil(64).max(1);
        charge_ns(lines * self.latency.clflushopt_ns);
        self.stats.count_clflushopt_n(lines);
        PENDING_FLUSHES.with(|p| p.set(p.get() + lines));
    }

    /// Records checkpoint accounting: one replica checkpoint that wrote
    /// back `bytes` of replica state (whole replica under WBINVD/range
    /// flush, only the dirty set under dirty-line flushing). Pure
    /// bookkeeping — the flush cost itself is charged by the caller through
    /// [`PmemRuntime::wbinvd`] / [`PmemRuntime::flush_range`].
    #[inline]
    pub fn count_checkpoint(&self, bytes: u64) {
        self.stats.count_checkpoint(bytes);
    }

    /// Charges the extra write latency for `bytes` of stores that target
    /// NVM (used when the persistence thread replays operations onto a
    /// persistent replica).
    #[inline]
    pub fn nvm_write(&self, bytes: u64) {
        if self.latency.nvm_write_ns == 0 {
            return;
        }
        let lines = bytes.div_ceil(64).max(1);
        charge_ns(lines * self.latency.nvm_write_ns);
    }

    /// Number of asynchronous flushes this thread has issued since its last
    /// fence (test/diagnostic hook).
    pub fn pending_flushes() -> u64 {
        PENDING_FLUSHES.with(|p| p.get())
    }

    /// Enters a persist effect: returns a guard that must be held while
    /// mutating the crash store. Returns `None` when crash simulation is
    /// off (the caller then skips the store update entirely).
    #[inline]
    pub(crate) fn persist_effect(&self) -> Option<RwLockReadGuard<'_, ()>> {
        if self.crash_sim {
            Some(self.cut_lock.read().expect("cut lock poisoned"))
        } else {
            None
        }
    }

    /// Simulates a full-system power failure: blocks until all in-flight
    /// persist effects complete, freezes the crash store, runs `capture`
    /// (which should clone whatever persisted images recovery will need),
    /// and returns the closure's result together with a [`CrashToken`].
    ///
    /// # Panics
    /// Panics if called when crash simulation is disabled.
    pub fn capture_cut<R>(&self, capture: impl FnOnce() -> R) -> (CrashToken, R) {
        assert!(
            self.crash_sim,
            "capture_cut requires a crash-sim runtime (PmemRuntime::for_crash_tests)"
        );
        let _w = self.cut_lock.write().expect("cut lock poisoned");
        let out = capture();
        let id = self.crashes.fetch_add(1, Ordering::Relaxed) + 1;
        (CrashToken { crash_id: id }, out)
    }

    /// Total simulated crashes so far.
    pub fn crash_count(&self) -> u64 {
        self.crashes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn flush_and_fence_update_stats_and_pending() {
        let rt = PmemRuntime::for_crash_tests();
        assert_eq!(PmemRuntime::pending_flushes(), 0);
        rt.clflushopt();
        rt.clflushopt();
        assert_eq!(PmemRuntime::pending_flushes(), 2);
        rt.sfence();
        assert_eq!(PmemRuntime::pending_flushes(), 0);
        rt.clflush();
        let s = rt.stats().snapshot();
        assert_eq!(s.clflushopt, 2);
        assert_eq!(s.sfence, 1);
        assert_eq!(s.clflush, 1);
    }

    #[test]
    fn pending_flushes_are_per_thread() {
        let rt = PmemRuntime::for_crash_tests();
        rt.clflushopt();
        let rt2 = Arc::clone(&rt);
        thread::spawn(move || {
            assert_eq!(PmemRuntime::pending_flushes(), 0);
            rt2.clflushopt();
            assert_eq!(PmemRuntime::pending_flushes(), 1);
        })
        .join()
        .unwrap();
        assert_eq!(PmemRuntime::pending_flushes(), 1);
        rt.sfence();
    }

    #[test]
    fn capture_cut_excludes_concurrent_persist_effects() {
        let rt = PmemRuntime::for_crash_tests();
        let inside = Arc::new(AtomicBool::new(false));

        // A thread holding a persist-effect guard delays the capture.
        let rt2 = Arc::clone(&rt);
        let inside2 = Arc::clone(&inside);
        let holder = thread::spawn(move || {
            let g = rt2.persist_effect().expect("crash sim on");
            inside2.store(true, Ordering::Release);
            thread::sleep(std::time::Duration::from_millis(20));
            drop(g);
        });
        prep_sync::spin_until(|| inside.load(Ordering::Acquire));
        let t0 = std::time::Instant::now();
        let (token, ()) = rt.capture_cut(|| ());
        assert!(t0.elapsed() >= std::time::Duration::from_millis(10));
        assert_eq!(token.crash_id, 1);
        holder.join().unwrap();
        let (token2, ()) = rt.capture_cut(|| ());
        assert_eq!(token2.crash_id, 2);
        assert_eq!(rt.crash_count(), 2);
    }

    #[test]
    #[should_panic(expected = "requires a crash-sim runtime")]
    fn capture_cut_panics_without_crash_sim() {
        let rt = PmemRuntime::for_benchmarks(LatencyModel::off());
        rt.capture_cut(|| ());
    }

    #[test]
    fn bench_runtime_skips_persist_effect_guard() {
        let rt = PmemRuntime::for_benchmarks(LatencyModel::off());
        assert!(rt.persist_effect().is_none());
        assert!(!rt.crash_sim_enabled());
    }
}
