//! The central persistence runtime: cost charging + consistent-cut capture.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard};

use prep_psan::{EventKind, PublishTag, Region, Tracer, Violation};

use crate::latency::{charge_ns, LatencyModel};
use crate::stats::PmemStats;

thread_local! {
    /// Outstanding asynchronous flushes issued by this thread since its last
    /// SFENCE. The fence drains them (and is charged per pending flush).
    static PENDING_FLUSHES: Cell<u64> = const { Cell::new(0) };
}

/// Proof that a crash was simulated; carries a monotonically increasing
/// crash id. Recovery constructors take a `CrashToken` so that "recover"
/// paths cannot be invoked without an actual (simulated) crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashToken {
    /// 1-based index of this crash within the runtime's lifetime.
    pub crash_id: u64,
}

/// The persistence-semantics emulator shared by one universal construction
/// instance (and everything it persists).
///
/// Two independent switches:
/// * the [`LatencyModel`] decides what persistence *costs* (benchmarks use
///   an Optane-calibrated model; correctness tests switch it off);
/// * `crash_sim` decides whether persist operations also maintain the crash
///   store (tests on) or are cost-only (benchmarks off — maintaining the
///   store takes a global read lock per persist, which would distort
///   measured scaling).
#[derive(Debug)]
pub struct PmemRuntime {
    latency: LatencyModel,
    stats: PmemStats,
    crash_sim: bool,
    /// Readers: every persist effect. Writer: crash capture. Holding the
    /// write lock freezes the crash store, making the captured image a
    /// consistent cut of the persist order.
    cut_lock: RwLock<()>,
    // shared-line: bumped once per simulated crash (a test-only, stop-the-
    // world event); never touched on the persist hot path.
    crashes: AtomicU64,
    /// Persistence-ordering sanitizer trace (see `prep-psan`). Disabled by
    /// default: the whole tracing surface then costs one relaxed atomic
    /// load per persist call.
    tracer: Tracer,
    /// When set (via `PREP_PSAN`), every captured crash cut and every
    /// recovery replays the trace through the rule engine and panics on
    /// violations, so the existing crash/proptest suite doubles as a
    /// sanitizer corpus.
    psan_panic: bool,
}

impl PmemRuntime {
    /// Creates a runtime with the given cost model and crash-sim switch.
    pub fn new(latency: LatencyModel, crash_sim: bool) -> Arc<Self> {
        // Calibrate the charge_ns timer-overhead deduction now, off the hot
        // path, so the first flush doesn't pay for the measurement.
        let _ = crate::latency::timer_overhead_ns();
        let tracer = Tracer::new();
        let psan_panic = prep_psan::env_enabled();
        if psan_panic {
            tracer.enable();
        }
        Arc::new(PmemRuntime {
            latency,
            stats: PmemStats::new(),
            crash_sim,
            cut_lock: RwLock::new(()),
            crashes: AtomicU64::new(0),
            tracer,
            psan_panic,
        })
    }

    /// Cost-only runtime for benchmarks (no crash store).
    pub fn for_benchmarks(latency: LatencyModel) -> Arc<Self> {
        Self::new(latency, false)
    }

    /// Zero-cost runtime with crash simulation, for correctness tests.
    pub fn for_crash_tests() -> Arc<Self> {
        Self::new(LatencyModel::off(), true)
    }

    /// The cost model in effect.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Persistence-operation counters.
    pub fn stats(&self) -> &PmemStats {
        &self.stats
    }

    /// Whether the crash store is being maintained.
    pub fn crash_sim_enabled(&self) -> bool {
        self.crash_sim
    }

    /// Emulates a synchronous `CLFLUSH` of one cache line.
    #[inline]
    pub fn clflush(&self) {
        charge_ns(self.latency.clflush_ns);
        self.stats.count_clflush();
    }

    /// Emulates an asynchronous `CLFLUSHOPT`/`CLWB` of one cache line.
    /// Durability is only guaranteed after the next [`PmemRuntime::sfence`].
    #[inline]
    pub fn clflushopt(&self) {
        charge_ns(self.latency.clflushopt_ns);
        self.stats.count_clflushopt();
        PENDING_FLUSHES.with(|p| p.set(p.get() + 1));
    }

    /// Emulates an `SFENCE`: drains this thread's outstanding asynchronous
    /// flushes, charging per pending line.
    #[inline]
    pub fn sfence(&self) {
        let pending = PENDING_FLUSHES.with(|p| p.replace(0));
        charge_ns(self.latency.sfence_ns + pending * self.latency.sfence_per_pending_ns);
        self.stats.count_sfence();
        self.tracer.record(EventKind::Fence, "PmemRuntime::sfence");
    }

    /// Emulates `WBINVD` over `dirty_bytes` of modelled dirty footprint
    /// (write back and invalidate the executing processor's entire cache).
    #[inline]
    pub fn wbinvd(&self, dirty_bytes: u64) {
        charge_ns(self.latency.wbinvd_cost_ns(dirty_bytes));
        self.stats.count_wbinvd();
        self.tracer.record(EventKind::Wbinvd, "PmemRuntime::wbinvd");
    }

    /// Emulates flushing the `bytes`-long address range starting at the
    /// logical NVM address `addr` with asynchronous line flushes (the
    /// CX-PUC whole-replica persist, and PREP's range-flush alternative to
    /// WBINVD from §6). Counts one `CLFLUSHOPT` per line; the cost is
    /// charged in one batch. Durability still requires a following
    /// [`PmemRuntime::sfence`]. `addr` comes from a
    /// [`PmemRuntime::psan_region`] allocation and gives the flush real
    /// identity for the ordering sanitizer.
    #[inline]
    pub fn flush_range(&self, addr: u64, bytes: u64, site: &'static str) {
        let lines = bytes.div_ceil(64).max(1);
        charge_ns(lines * self.latency.clflushopt_ns);
        self.stats.count_clflushopt_n(lines);
        PENDING_FLUSHES.with(|p| p.set(p.get() + lines));
        self.tracer
            .record(EventKind::FlushRange { addr, len: bytes }, site);
    }

    /// Records checkpoint accounting: one replica checkpoint that wrote
    /// back `bytes` of replica state (whole replica under WBINVD/range
    /// flush, only the dirty set under dirty-line flushing). Pure
    /// bookkeeping — the flush cost itself is charged by the caller through
    /// [`PmemRuntime::wbinvd`] / [`PmemRuntime::flush_range`].
    #[inline]
    pub fn count_checkpoint(&self, bytes: u64) {
        self.stats.count_checkpoint(bytes);
        self.tracer
            .record(EventKind::Epoch, "PmemRuntime::count_checkpoint");
    }

    /// Charges the extra write latency for `bytes` of stores at logical
    /// NVM address `addr` (used when the persistence thread replays
    /// operations onto a persistent replica). Cost-only: replica stores
    /// are traced for the sanitizer at checkpoint granularity (the dirty
    /// set the checkpoint flushes), not per replayed operation — per-op
    /// store events would claim lines dirty that the checkpoint's precise
    /// dirty-line trace re-states anyway.
    #[inline]
    pub fn nvm_write(&self, addr: u64, bytes: u64) {
        let _ = addr;
        if self.latency.nvm_write_ns == 0 {
            return;
        }
        let lines = bytes.div_ceil(64).max(1);
        charge_ns(lines * self.latency.nvm_write_ns);
    }

    /// Number of asynchronous flushes this thread has issued since its last
    /// fence (test/diagnostic hook).
    pub fn pending_flushes() -> u64 {
        PENDING_FLUSHES.with(|p| p.get())
    }

    // --- persistence-ordering sanitizer surface (see `prep-psan`) -------

    /// Emulates an asynchronous `CLFLUSHOPT` of the line containing the
    /// logical NVM address `addr`. Identical cost and stats to
    /// [`PmemRuntime::clflushopt`]; additionally gives the flush address
    /// identity for the sanitizer.
    #[inline]
    pub fn clflushopt_at(&self, addr: u64, site: &'static str) {
        charge_ns(self.latency.clflushopt_ns);
        self.stats.count_clflushopt();
        PENDING_FLUSHES.with(|p| p.set(p.get() + 1));
        self.tracer
            .record(EventKind::FlushLine { addr, sync: false }, site);
    }

    /// A store of `len` bytes at logical address `addr` followed by a
    /// synchronous `CLFLUSH` of its line, issued as one atomic persist
    /// (the pattern for rarely-written metadata cells: the bytes are
    /// durable when this returns). Identical cost and stats to one
    /// [`PmemRuntime::clflush`].
    #[inline]
    pub fn persist_clflush_at(&self, addr: u64, len: u64, site: &'static str) {
        charge_ns(self.latency.clflush_ns);
        self.stats.count_clflush();
        self.tracer.record(
            EventKind::Store {
                addr,
                len,
                durable: true,
            },
            site,
        );
    }

    /// A *publish* store of `len` bytes at `addr` plus its synchronous
    /// `CLFLUSH`, as one atomic persist: once durable it makes the `deps`
    /// byte ranges reachable by recovery, so the sanitizer requires every
    /// dep byte to be durable *before* this call. Identical cost and stats
    /// to one [`PmemRuntime::clflush`].
    #[inline]
    pub fn publish_clflush(
        &self,
        addr: u64,
        len: u64,
        deps: &[(u64, u64)],
        tag: PublishTag,
        site: &'static str,
    ) {
        charge_ns(self.latency.clflush_ns);
        self.stats.count_clflush();
        if self.tracer.enabled() {
            self.tracer.record(
                EventKind::Publish {
                    addr,
                    len,
                    deps: deps.to_vec(),
                    tag,
                    durable: true,
                },
                site,
            );
        }
    }

    /// Records a plain store to `[addr, addr+len)` (no cost — volatile
    /// store timing is not modelled; this only informs the sanitizer that
    /// the bytes are dirty until flushed and fenced).
    #[inline]
    pub fn trace_store(&self, addr: u64, len: u64, site: &'static str) {
        self.tracer.record(
            EventKind::Store {
                addr,
                len,
                durable: false,
            },
            site,
        );
    }

    /// Records a publish store (e.g. a log entry's emptyBit) whose
    /// durability is still governed by a later flush + fence. The `deps`
    /// byte ranges must already be durable when the store is issued.
    #[inline]
    pub fn trace_publish(
        &self,
        addr: u64,
        len: u64,
        deps: &[(u64, u64)],
        tag: PublishTag,
        site: &'static str,
    ) {
        if self.tracer.enabled() {
            self.tracer.record(
                EventKind::Publish {
                    addr,
                    len,
                    deps: deps.to_vec(),
                    tag,
                    durable: false,
                },
                site,
            );
        }
    }

    /// Records that recovery (for the most recent captured cut) reads
    /// `[addr, addr+len)`. The sanitizer checks the bytes were durable at
    /// that cut.
    #[inline]
    pub fn trace_recovery_read(&self, addr: u64, len: u64, site: &'static str) {
        if self.tracer.enabled() {
            let cut = self.tracer.last_cut();
            self.tracer
                .record(EventKind::RecoveryRead { addr, len, cut }, site);
        }
    }

    /// Allocates a disjoint logical NVM address region for sanitizer
    /// identity (valid whether or not tracing is enabled, so construction
    /// paths can allocate unconditionally).
    pub fn psan_region(&self, label: &'static str, len: u64) -> Region {
        self.tracer.alloc_region(label, len)
    }

    /// Switches the sanitizer tracer on for this runtime (idempotent; also
    /// done at construction when `PREP_PSAN` is set, in which case crash
    /// cuts and recoveries additionally panic on violations).
    pub fn psan_enable(&self) {
        self.tracer.enable();
    }

    /// Whether the sanitizer tracer is recording.
    pub fn psan_enabled(&self) -> bool {
        self.tracer.enabled()
    }

    /// Replays the trace through the rule engine and returns violations.
    pub fn psan_check(&self) -> Vec<Violation> {
        self.tracer.check()
    }

    /// The raw event trace (diagnostics and overhead reporting).
    pub fn psan_events(&self) -> Vec<prep_psan::Event> {
        self.tracer.events()
    }

    /// Number of traced events so far.
    pub fn psan_event_count(&self) -> usize {
        self.tracer.len()
    }

    /// Panics with a full report if the trace violates any ordering rule.
    pub fn psan_assert_clean(&self) {
        let violations = self.tracer.check();
        assert!(
            violations.is_empty(),
            "{}",
            prep_psan::format_violations(&violations)
        );
    }

    /// Enforcement hook for crash/recovery paths: when running under
    /// `PREP_PSAN`, checks the trace and panics on violations; otherwise a
    /// no-op (programmatic [`PmemRuntime::psan_enable`] users inspect
    /// [`PmemRuntime::psan_check`] themselves).
    pub fn psan_enforce(&self) {
        if self.psan_panic && self.tracer.enabled() {
            let violations = self.tracer.check();
            if !violations.is_empty() {
                panic!("{}", prep_psan::format_violations(&violations));
            }
        }
    }

    /// Enters a persist effect: returns a guard that must be held while
    /// mutating the crash store. Returns `None` when crash simulation is
    /// off (the caller then skips the store update entirely).
    #[inline]
    pub(crate) fn persist_effect(&self) -> Option<RwLockReadGuard<'_, ()>> {
        if self.crash_sim {
            Some(self.cut_lock.read().expect("cut lock poisoned"))
        } else {
            None
        }
    }

    /// Simulates a full-system power failure: blocks until all in-flight
    /// persist effects complete, freezes the crash store, runs `capture`
    /// (which should clone whatever persisted images recovery will need),
    /// and returns the closure's result together with a [`CrashToken`].
    ///
    /// # Panics
    /// Panics if called when crash simulation is disabled.
    pub fn capture_cut<R>(&self, capture: impl FnOnce() -> R) -> (CrashToken, R) {
        assert!(
            self.crash_sim,
            "capture_cut requires a crash-sim runtime (PmemRuntime::for_crash_tests)"
        );
        // ord: crash-id dispenser; the cut itself is ordered by cut_lock,
        // the counter only names it.
        let id = self.crashes.fetch_add(1, Ordering::Relaxed) + 1;
        let out = {
            let _w = self.cut_lock.write().expect("cut lock poisoned");
            // Recorded under the write lock: every persist effect ordered
            // before the cut is already in the trace, everything after
            // comes later — the trace sees the same consistent cut the
            // crash store does.
            self.tracer
                .record(EventKind::CrashCut { id }, "PmemRuntime::capture_cut");
            capture()
        };
        self.psan_enforce();
        (CrashToken { crash_id: id }, out)
    }

    /// Total simulated crashes so far.
    pub fn crash_count(&self) -> u64 {
        // ord: advisory statistic.
        self.crashes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::thread;

    #[test]
    fn flush_and_fence_update_stats_and_pending() {
        let rt = PmemRuntime::for_crash_tests();
        assert_eq!(PmemRuntime::pending_flushes(), 0);
        rt.clflushopt();
        rt.clflushopt();
        assert_eq!(PmemRuntime::pending_flushes(), 2);
        rt.sfence();
        assert_eq!(PmemRuntime::pending_flushes(), 0);
        rt.clflush();
        let s = rt.stats().snapshot();
        assert_eq!(s.clflushopt, 2);
        assert_eq!(s.sfence, 1);
        assert_eq!(s.clflush, 1);
    }

    #[test]
    fn pending_flushes_are_per_thread() {
        let rt = PmemRuntime::for_crash_tests();
        rt.clflushopt();
        let rt2 = Arc::clone(&rt);
        thread::spawn(move || {
            assert_eq!(PmemRuntime::pending_flushes(), 0);
            rt2.clflushopt();
            assert_eq!(PmemRuntime::pending_flushes(), 1);
        })
        .join()
        .unwrap();
        assert_eq!(PmemRuntime::pending_flushes(), 1);
        rt.sfence();
    }

    #[test]
    fn capture_cut_excludes_concurrent_persist_effects() {
        let rt = PmemRuntime::for_crash_tests();
        let inside = Arc::new(AtomicBool::new(false));

        // A thread holding a persist-effect guard delays the capture.
        let rt2 = Arc::clone(&rt);
        let inside2 = Arc::clone(&inside);
        let holder = thread::spawn(move || {
            let g = rt2.persist_effect().expect("crash sim on");
            inside2.store(true, Ordering::Release);
            thread::sleep(std::time::Duration::from_millis(20));
            drop(g);
        });
        prep_sync::spin_until(|| inside.load(Ordering::Acquire));
        let t0 = std::time::Instant::now();
        let (token, ()) = rt.capture_cut(|| ());
        assert!(t0.elapsed() >= std::time::Duration::from_millis(10));
        assert_eq!(token.crash_id, 1);
        holder.join().unwrap();
        let (token2, ()) = rt.capture_cut(|| ());
        assert_eq!(token2.crash_id, 2);
        assert_eq!(rt.crash_count(), 2);
    }

    #[test]
    #[should_panic(expected = "requires a crash-sim runtime")]
    fn capture_cut_panics_without_crash_sim() {
        let rt = PmemRuntime::for_benchmarks(LatencyModel::off());
        rt.capture_cut(|| ());
    }

    #[test]
    fn bench_runtime_skips_persist_effect_guard() {
        let rt = PmemRuntime::for_benchmarks(LatencyModel::off());
        assert!(rt.persist_effect().is_none());
        assert!(!rt.crash_sim_enabled());
    }
}
