//! The paper's thread-local allocator swap (§5.1).
//!
//! A PUC cannot hand the sequential implementation a persistent allocator
//! (that would require modifying sequential code), and cannot override the
//! system allocator globally (that would put *everything* in NVM). PREP-UC's
//! answer: wrap the standard allocation entry points in a dispatcher
//! controlled by a **thread-local flag**. The persistence thread sets the
//! flag before calling into the sequential object (so the object's internal
//! `Box`/`Vec` allocations land in the persistent arena) and clears it when
//! control returns; worker threads never set it.
//!
//! [`SwappableAllocator`] is that dispatcher as a Rust `GlobalAlloc`.
//! Binaries that want the full-fidelity behaviour register it:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: prep_pmem::alloc::SwappableAllocator =
//!     prep_pmem::alloc::SwappableAllocator::new();
//! ```
//!
//! Deallocation routes by **pointer range**, not by the flag: an object
//! allocated persistently can safely be dropped by a thread in volatile
//! mode (and vice versa), which is exactly what happens when a recovered
//! replica is later rebuilt.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::OnceLock;

use crate::arena::PArena;

thread_local! {
    static USE_PMEM: Cell<bool> = const { Cell::new(false) };
}

/// Default arena capacity when `PREP_ARENA_BYTES` is unset: 1 GiB (virtual;
/// pages are only touched on use).
const DEFAULT_ARENA_BYTES: usize = 1 << 30;

static GLOBAL_ARENA: OnceLock<PArena> = OnceLock::new();

/// Returns the process-wide persistent arena, creating it on first use.
///
/// Size comes from the `PREP_ARENA_BYTES` environment variable if set.
pub fn global_arena() -> &'static PArena {
    GLOBAL_ARENA.get_or_init(|| {
        // Initialization allocates (env lookup, the arena's bookkeeping);
        // force those onto the system allocator to avoid re-entering the
        // persistent path mid-initialization.
        let _volatile = VolatileGuard::new();
        let size = std::env::var("PREP_ARENA_BYTES")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_ARENA_BYTES);
        PArena::new(size)
    })
}

/// True if this thread's allocations currently route to the persistent
/// arena.
#[inline]
pub fn persistent_allocation_enabled() -> bool {
    USE_PMEM.with(|c| c.get())
}

/// RAII guard: routes this thread's allocations to the persistent arena
/// until dropped (restores the previous state, so guards nest).
#[derive(Debug)]
pub struct PersistGuard {
    prev: bool,
}

impl PersistGuard {
    /// Enables persistent allocation for the current thread.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let prev = USE_PMEM.with(|c| c.replace(true));
        PersistGuard { prev }
    }
}

impl Drop for PersistGuard {
    fn drop(&mut self) {
        USE_PMEM.with(|c| c.set(self.prev));
    }
}

/// RAII guard forcing *volatile* allocation (used internally during arena
/// initialization; also handy in tests).
#[derive(Debug)]
pub struct VolatileGuard {
    prev: bool,
}

impl VolatileGuard {
    /// Disables persistent allocation for the current thread.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let prev = USE_PMEM.with(|c| c.replace(false));
        VolatileGuard { prev }
    }
}

impl Drop for VolatileGuard {
    fn drop(&mut self) {
        USE_PMEM.with(|c| c.set(self.prev));
    }
}

/// Runs `f` with persistent allocation enabled on this thread.
///
/// This is the call the persistence thread wraps around every method it
/// invokes on the sequential object.
pub fn with_persistent<R>(f: impl FnOnce() -> R) -> R {
    let _g = PersistGuard::new();
    f()
}

/// A `GlobalAlloc` that dispatches between the system allocator and the
/// persistent arena based on the calling thread's flag.
#[derive(Debug, Default)]
pub struct SwappableAllocator;

impl SwappableAllocator {
    /// Const constructor for use in `#[global_allocator]` statics.
    pub const fn new() -> Self {
        SwappableAllocator
    }
}

// SAFETY: dispatches to System or PArena, both of which uphold GlobalAlloc's
// contract; routing of dealloc by pointer range guarantees each pointer is
// returned to the allocator that produced it.
unsafe impl GlobalAlloc for SwappableAllocator {
    // SAFETY: caller upholds GlobalAlloc's alloc contract (nonzero layout).
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if persistent_allocation_enabled() {
            let p = global_arena().alloc(layout);
            if !p.is_null() {
                return p;
            }
            // Arena exhausted: degrade to volatile rather than aborting the
            // process. (Persistence fidelity for this object is lost; the
            // emulator's crash tests size their arenas to avoid this.)
        }
        // SAFETY: forwarding the caller's contract to System.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller passes a pointer this allocator returned, with its
    // original layout; the range check below routes it home.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if let Some(arena) = GLOBAL_ARENA.get() {
            if arena.contains(ptr) {
                // SAFETY: range check proves this pointer came from the arena.
                unsafe { arena.dealloc(ptr) };
                return;
            }
        }
        // SAFETY: not an arena pointer, so it came from System.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller passes a live allocation and its layout per the
    // GlobalAlloc realloc contract.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_layout =
            Layout::from_size_align(new_size, layout.align()).expect("invalid realloc layout");
        // SAFETY: alloc with a valid layout.
        let new_ptr = unsafe { self.alloc(new_layout) };
        if !new_ptr.is_null() {
            let copy = layout.size().min(new_size);
            // SAFETY: both regions are at least `copy` bytes and disjoint.
            unsafe {
                std::ptr::copy_nonoverlapping(ptr, new_ptr, copy);
                self.dealloc(ptr, layout);
            }
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_nest_and_restore() {
        assert!(!persistent_allocation_enabled());
        {
            let _a = PersistGuard::new();
            assert!(persistent_allocation_enabled());
            {
                let _b = VolatileGuard::new();
                assert!(!persistent_allocation_enabled());
                {
                    let _c = PersistGuard::new();
                    assert!(persistent_allocation_enabled());
                }
                assert!(!persistent_allocation_enabled());
            }
            assert!(persistent_allocation_enabled());
        }
        assert!(!persistent_allocation_enabled());
    }

    #[test]
    fn with_persistent_scopes_the_flag() {
        let inside = with_persistent(persistent_allocation_enabled);
        assert!(inside);
        assert!(!persistent_allocation_enabled());
    }

    #[test]
    fn flag_is_thread_local() {
        let _g = PersistGuard::new();
        std::thread::spawn(|| {
            assert!(
                !persistent_allocation_enabled(),
                "flag must not leak across threads"
            );
        })
        .join()
        .unwrap();
    }

    #[test]
    fn dispatcher_routes_by_flag_and_range() {
        // Exercise the dispatcher directly (not registered as the global
        // allocator in unit tests; integration tests register it).
        let a = SwappableAllocator::new();
        let layout = Layout::from_size_align(64, 8).unwrap();

        let vol = unsafe { a.alloc(layout) };
        assert!(!vol.is_null());
        assert!(
            GLOBAL_ARENA.get().is_none_or(|ar| !ar.contains(vol)),
            "volatile alloc must not land in the arena"
        );

        let per = with_persistent(|| unsafe { a.alloc(layout) });
        assert!(!per.is_null());
        assert!(global_arena().contains(per));

        // Cross-mode deallocation: free the persistent pointer while in
        // volatile mode and vice versa.
        unsafe {
            a.dealloc(per, layout);
            with_persistent(|| a.dealloc(vol, layout));
        }
    }

    #[test]
    fn realloc_preserves_contents_across_modes() {
        let a = SwappableAllocator::new();
        let layout = Layout::from_size_align(32, 8).unwrap();
        let p = with_persistent(|| unsafe { a.alloc(layout) });
        unsafe {
            std::ptr::write_bytes(p, 0x5A, 32);
            // Grow while volatile: new block comes from System, contents move.
            let q = a.realloc(p, layout, 128);
            assert!(!q.is_null());
            for i in 0..32 {
                assert_eq!(*q.add(i), 0x5A);
            }
            a.dealloc(q, Layout::from_size_align(128, 8).unwrap());
        }
    }
}
