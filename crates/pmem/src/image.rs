//! Crash-store images: what recovery can read after a simulated power
//! failure.
//!
//! Three image kinds mirror the three things PREP-UC persists (§4.1):
//!
//! * [`PersistentCell`] — a single NVM variable such as `p_activePReplica`
//!   or (durable mode) `d_completedTail`;
//! * [`LogImage`] — the persisted subset of the shared operation log
//!   (durable mode only);
//! * [`ReplicaImage`] — a persistent replica's NVM image, including the
//!   paper's background-flush hazard: from the first mutation after a
//!   snapshot until the next WBINVD the image is **torn**, and recovery code
//!   that reads a torn image gets an error. This is what makes the paper's
//!   two-replica design testable: the *stable* replica is never mutated, so
//!   its image is never torn.
//!
//! All mutators take the runtime's persist-effect guard, so a crash captured
//! with [`crate::PmemRuntime::capture_cut`] observes a consistent cut. When
//! crash simulation is off every mutator is a no-op (cost is charged by the
//! caller through the runtime's flush/fence methods regardless).

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::runtime::PmemRuntime;

/// A single persistent variable's NVM image.
#[derive(Debug)]
pub struct PersistentCell<T: Clone> {
    image: Mutex<T>,
}

impl<T: Clone> PersistentCell<T> {
    /// Creates the cell with `initial` already persistent (the paper starts
    /// from a freshly created, initialized persistent memory file).
    pub fn new(initial: T) -> Self {
        PersistentCell {
            image: Mutex::new(initial),
        }
    }

    /// Records `value` as persistent. The caller is responsible for charging
    /// the corresponding flush cost (e.g. [`PmemRuntime::clflush`]).
    pub fn record(&self, rt: &PmemRuntime, value: T) {
        let Some(_guard) = rt.persist_effect() else {
            return;
        };
        rt.stats().count_bytes(std::mem::size_of::<T>() as u64);
        *self.image.lock().expect("cell poisoned") = value;
    }

    /// Convenience: `CLFLUSH` + record, the paper's pattern for
    /// `completedTail` and `p_activePReplica`.
    pub fn persist_clflush(&self, rt: &PmemRuntime, value: T) {
        rt.clflush();
        self.record(rt, value);
    }

    /// Reads the persisted image (what recovery would see).
    pub fn read_image(&self) -> T {
        self.image.lock().expect("cell poisoned").clone()
    }
}

impl PersistentCell<u64> {
    /// Records `value` only if it exceeds the current image — the right
    /// primitive for monotone indexes like `completedTail`, where concurrent
    /// flushers must never let an older value overwrite a newer one (§5.2's
    /// flush-reduction protocol has several threads flushing different
    /// observed values).
    pub fn record_max(&self, rt: &PmemRuntime, value: u64) {
        let Some(_guard) = rt.persist_effect() else {
            return;
        };
        rt.stats().count_bytes(std::mem::size_of::<u64>() as u64);
        let mut img = self.image.lock().expect("cell poisoned");
        if value > *img {
            *img = value;
        }
    }
}

/// The persisted subset of the shared operation log (PREP-Durable only).
///
/// Keyed by the *monotonic* log index, not the physical slot, so wrapped
/// entries never collide; [`LogImage::retain_from`] discards indexes below
/// the recovery horizon when slots are reused.
#[derive(Debug)]
pub struct LogImage<O: Clone> {
    entries: Mutex<BTreeMap<u64, O>>,
}

impl<O: Clone> Default for LogImage<O> {
    fn default() -> Self {
        Self::new()
    }
}

impl<O: Clone> LogImage<O> {
    /// Creates an empty (all-entries-empty) log image.
    pub fn new() -> Self {
        LogImage {
            entries: Mutex::new(BTreeMap::new()),
        }
    }

    /// Records log entry `index` (monotonic) as persistent with operation
    /// `op`. Caller charges flush costs.
    pub fn persist_entry(&self, rt: &PmemRuntime, index: u64, op: O) {
        let Some(_guard) = rt.persist_effect() else {
            return;
        };
        rt.stats().count_bytes(std::mem::size_of::<O>() as u64);
        self.entries
            .lock()
            .expect("log image poisoned")
            .insert(index, op);
    }

    /// Drops persisted entries below `min_index` (their slots are being
    /// reused; recovery will never need them because both persistent
    /// replicas are already past them).
    pub fn retain_from(&self, rt: &PmemRuntime, min_index: u64) {
        let Some(_guard) = rt.persist_effect() else {
            return;
        };
        let mut map = self.entries.lock().expect("log image poisoned");
        *map = map.split_off(&min_index);
    }

    /// Clears the image (recovery resets the log to empty, §5.1).
    pub fn clear(&self, rt: &PmemRuntime) {
        let Some(_guard) = rt.persist_effect() else {
            return;
        };
        self.entries.lock().expect("log image poisoned").clear();
    }

    /// Copies the persisted entries in `[from, to)`, in index order, with
    /// holes (never-persisted entries) skipped — exactly what the paper's
    /// recovery does when it "applies all operations in the log
    /// corresponding to non-empty log entries" (§5.2).
    pub fn persisted_range(&self, from: u64, to: u64) -> Vec<(u64, O)> {
        let map = self.entries.lock().expect("log image poisoned");
        map.range(from..to).map(|(k, v)| (*k, v.clone())).collect()
    }

    /// Number of persisted entries currently in the image.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("log image poisoned").len()
    }

    /// True if no entry is persisted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Error: the replica image was torn at the crash (a mutation happened
/// after the last consistent snapshot, so background cache evictions may
/// have written inconsistent state to NVM). PREP-UC's recovery never reads
/// a torn image; a design with a single persistent replica would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornImage;

impl std::fmt::Display for TornImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replica NVM image is torn (mutated since last snapshot)")
    }
}

impl std::error::Error for TornImage {}

/// A persistent replica's recovered state: the sequential object plus the
/// log position it reflects.
#[derive(Debug, Clone)]
pub struct ReplicaSnapshot<T: Clone> {
    /// Deep copy of the sequential object at snapshot time.
    pub state: T,
    /// The replica's `localTail` at snapshot time: the first log index NOT
    /// reflected in `state`.
    pub local_tail: u64,
}

#[derive(Debug)]
struct ReplicaImageState<T: Clone> {
    snapshot: ReplicaSnapshot<T>,
    torn: bool,
}

/// The NVM image of one persistent replica.
#[derive(Debug)]
pub struct ReplicaImage<T: Clone> {
    state: Mutex<ReplicaImageState<T>>,
}

impl<T: Clone> ReplicaImage<T> {
    /// Creates the image with `initial` persisted and consistent (localTail
    /// 0): a freshly initialized persistent memory file.
    pub fn new(initial: T) -> Self {
        ReplicaImage {
            state: Mutex::new(ReplicaImageState {
                snapshot: ReplicaSnapshot {
                    state: initial,
                    local_tail: 0,
                },
                torn: false,
            }),
        }
    }

    /// Marks the image torn: the in-DRAM replica has been mutated since the
    /// last snapshot, so background cache evictions may have written an
    /// inconsistent mixture back to NVM (§4.1). Idempotent.
    pub fn mark_torn(&self, rt: &PmemRuntime) {
        let Some(_guard) = rt.persist_effect() else {
            return;
        };
        self.state.lock().expect("replica image poisoned").torn = true;
    }

    /// Installs a consistent snapshot (the effect of WBINVD + SFENCE over
    /// this replica): the image becomes `state`@`local_tail` and is no
    /// longer torn. The caller charges the WBINVD cost.
    pub fn install_snapshot(&self, rt: &PmemRuntime, state: T, local_tail: u64, approx_bytes: u64) {
        let Some(_guard) = rt.persist_effect() else {
            return;
        };
        rt.stats().count_bytes(approx_bytes);
        rt.stats().count_snapshot();
        let mut s = self.state.lock().expect("replica image poisoned");
        s.snapshot = ReplicaSnapshot { state, local_tail };
        s.torn = false;
    }

    /// Installs a consistent snapshot **incrementally**: instead of
    /// replacing the image with a fresh deep clone, `mutate` replays the
    /// delta (the log range `[image's local_tail, local_tail)`) directly
    /// onto the stored state. With dirty-line flushing this is the NVM
    /// effect of `CLFLUSHOPT`ing exactly the dirty lines + `SFENCE`: the
    /// image ends identical to what a full clone would install, but an
    /// unchanged object costs nothing to checkpoint (an empty delta is a
    /// pure metadata update — no clone, no state write).
    ///
    /// `flushed_bytes` is the modelled write-back volume (the dirty-set
    /// size); the caller charges the corresponding flush cost.
    pub fn apply_delta(
        &self,
        rt: &PmemRuntime,
        local_tail: u64,
        flushed_bytes: u64,
        mutate: impl FnOnce(&mut T),
    ) {
        let Some(_guard) = rt.persist_effect() else {
            return;
        };
        rt.stats().count_bytes(flushed_bytes);
        rt.stats().count_snapshot();
        let mut s = self.state.lock().expect("replica image poisoned");
        debug_assert!(
            local_tail >= s.snapshot.local_tail,
            "delta would rewind image from {} to {}",
            s.snapshot.local_tail,
            local_tail,
        );
        mutate(&mut s.snapshot.state);
        s.snapshot.local_tail = local_tail;
        s.torn = false;
    }

    /// Reads the image as recovery would. [`TornImage`] means recovering it
    /// would hand back possibly-inconsistent state. PREP-UC never does this
    /// (it recovers the *stable* replica); the one-persistent-replica
    /// ablation test shows a design without the stable replica hits this
    /// error.
    pub fn read_image(&self) -> Result<ReplicaSnapshot<T>, TornImage> {
        let s = self.state.lock().expect("replica image poisoned");
        if s.torn {
            Err(TornImage)
        } else {
            Ok(s.snapshot.clone())
        }
    }

    /// True if the image is currently torn (diagnostic).
    pub fn is_torn(&self) -> bool {
        self.state.lock().expect("replica image poisoned").torn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PmemRuntime;

    #[test]
    fn cell_records_only_with_crash_sim() {
        let sim = PmemRuntime::for_crash_tests();
        let bench = PmemRuntime::for_benchmarks(crate::LatencyModel::off());
        let cell = PersistentCell::new(0u64);
        cell.persist_clflush(&bench, 7);
        assert_eq!(
            cell.read_image(),
            0,
            "bench runtime must not touch the image"
        );
        cell.persist_clflush(&sim, 7);
        assert_eq!(cell.read_image(), 7);
        assert_eq!(sim.stats().snapshot().clflush, 1);
    }

    #[test]
    fn log_image_range_skips_holes_and_respects_bounds() {
        let rt = PmemRuntime::for_crash_tests();
        let img = LogImage::new();
        img.persist_entry(&rt, 3, "c");
        img.persist_entry(&rt, 1, "a");
        img.persist_entry(&rt, 6, "f");
        let got = img.persisted_range(1, 6);
        assert_eq!(got, vec![(1, "a"), (3, "c")]);
        assert_eq!(img.len(), 3);
    }

    #[test]
    fn log_image_retain_and_clear() {
        let rt = PmemRuntime::for_crash_tests();
        let img = LogImage::new();
        for i in 0..10u64 {
            img.persist_entry(&rt, i, i);
        }
        img.retain_from(&rt, 7);
        assert_eq!(img.persisted_range(0, 100), vec![(7, 7), (8, 8), (9, 9)]);
        img.clear(&rt);
        assert!(img.is_empty());
    }

    #[test]
    fn replica_image_torn_lifecycle() {
        let rt = PmemRuntime::for_crash_tests();
        let img = ReplicaImage::new(vec![0u32; 2]);
        // Fresh image is consistent and empty.
        let snap = img.read_image().unwrap();
        assert_eq!(snap.local_tail, 0);
        // Mutation in progress → torn → unreadable.
        img.mark_torn(&rt);
        assert!(img.is_torn());
        assert!(img.read_image().is_err());
        // WBINVD installs a consistent snapshot.
        img.install_snapshot(&rt, vec![1, 2], 5, 8);
        let snap = img.read_image().unwrap();
        assert_eq!(snap.state, vec![1, 2]);
        assert_eq!(snap.local_tail, 5);
        assert!(!img.is_torn());
        assert_eq!(rt.stats().snapshot_count(), 1);
    }

    #[test]
    fn apply_delta_matches_full_clone_install() {
        let rt = PmemRuntime::for_crash_tests();
        let full = ReplicaImage::new(vec![0u32; 3]);
        let incr = ReplicaImage::new(vec![0u32; 3]);
        // Same logical update, two install paths.
        full.mark_torn(&rt);
        incr.mark_torn(&rt);
        full.install_snapshot(&rt, vec![0, 7, 0], 4, 12);
        incr.apply_delta(&rt, 4, 4, |v| v[1] = 7);
        assert_eq!(
            full.read_image().unwrap().state,
            incr.read_image().unwrap().state
        );
        assert_eq!(incr.read_image().unwrap().local_tail, 4);
        assert!(!incr.is_torn());
        assert_eq!(rt.stats().snapshot_count(), 2);
        // Empty delta: pure metadata update, image stays readable.
        incr.apply_delta(&rt, 4, 0, |_| {});
        assert_eq!(incr.read_image().unwrap().state, vec![0, 7, 0]);
    }

    #[test]
    fn apply_delta_is_skipped_without_crash_sim() {
        let rt = PmemRuntime::for_benchmarks(crate::LatencyModel::off());
        let img = ReplicaImage::new(0u64);
        img.apply_delta(&rt, 9, 8, |v| *v = 1);
        let snap = img.read_image().unwrap();
        assert_eq!(snap.state, 0, "bench runtime must not touch the image");
        assert_eq!(snap.local_tail, 0);
    }

    #[test]
    fn torn_marking_is_skipped_without_crash_sim() {
        let rt = PmemRuntime::for_benchmarks(crate::LatencyModel::off());
        let img = ReplicaImage::new(0u8);
        img.mark_torn(&rt);
        assert!(!img.is_torn());
    }

    #[test]
    fn record_max_is_monotone_under_out_of_order_writers() {
        let rt = PmemRuntime::for_crash_tests();
        let cell = PersistentCell::new(0u64);
        cell.record_max(&rt, 10);
        cell.record_max(&rt, 7); // late flusher with a stale value
        assert_eq!(cell.read_image(), 10);
        cell.record_max(&rt, 12);
        assert_eq!(cell.read_image(), 12);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::PmemRuntime;
    use proptest::prelude::*;

    proptest! {
        /// LogImage behaves as a map keyed by monotonic index: a random
        /// interleaving of persists, retains and clears matches a BTreeMap
        /// model.
        #[test]
        fn log_image_matches_model(
            ops in proptest::collection::vec((0u8..4, 0u64..64), 1..120)
        ) {
            let rt = PmemRuntime::for_crash_tests();
            let img: LogImage<u64> = LogImage::new();
            let mut model = std::collections::BTreeMap::new();
            for (kind, x) in ops {
                match kind {
                    0 | 1 => {
                        img.persist_entry(&rt, x, x * 2);
                        model.insert(x, x * 2);
                    }
                    2 => {
                        img.retain_from(&rt, x);
                        model = model.split_off(&x);
                    }
                    _ => {
                        let got = img.persisted_range(0, x);
                        let expect: Vec<(u64, u64)> =
                            model.range(0..x).map(|(k, v)| (*k, *v)).collect();
                        prop_assert_eq!(got, expect);
                    }
                }
                prop_assert_eq!(img.len(), model.len());
            }
        }

        /// record_max over any write sequence ends at the running maximum.
        #[test]
        fn record_max_ends_at_maximum(values in proptest::collection::vec(any::<u64>(), 1..50)) {
            let rt = PmemRuntime::for_crash_tests();
            let cell = PersistentCell::new(0u64);
            for &v in &values {
                cell.record_max(&rt, v);
            }
            let expect = values.iter().copied().max().unwrap();
            prop_assert_eq!(cell.read_image(), expect);
        }
    }
}
