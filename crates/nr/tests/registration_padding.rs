//! Regression tests for the registration-flag layout.
//!
//! `NodeReplicated.registered` used to be a `Box<[AtomicBool]>`: ~64 flags
//! per cache line, so the one genuinely concurrent phase that touches them
//! — every worker swapping its own flag at startup — serialized on a single
//! line. The fix pads each flag to its own line
//! (`Box<[CachePadded<AtomicBool>]>`); these tests pin the layout and the
//! concurrent-registration behavior so the padding cannot silently regress.

use std::sync::Arc;

use prep_nr::NodeReplicated;
use prep_seqds::recorder::Recorder;
use prep_topology::Topology;

/// Layout pin: adjacent registration flags must live ≥ one cache line
/// apart. With the old unpadded `[AtomicBool]` every adjacent pair was
/// 1 byte apart, so this fails immediately if the padding is dropped.
#[test]
fn registration_flags_never_share_a_cache_line() {
    let workers = 8;
    let asg = Topology::new(2, 5, 1).assign_workers(workers);
    let nr = NodeReplicated::new(Recorder::new(), asg, 64);
    let addrs: Vec<usize> = (0..workers).map(|w| nr.registration_flag_addr(w)).collect();
    for pair in addrs.windows(2) {
        let gap = pair[1].abs_diff(pair[0]);
        assert!(
            gap >= 64,
            "registration flags {:#x} and {:#x} are {gap} bytes apart — \
             they share a cache line (flags must be CachePadded)",
            pair[0],
            pair[1]
        );
    }
}

/// The land rush the padding exists for: every worker registers at once.
/// Each must come away with its own coherent token (correct worker index,
/// node/slot matching the assignment) — concurrency must not corrupt the
/// one-shot flags or hand two workers the same identity.
#[test]
fn registration_land_rush() {
    let workers = 8;
    let asg = Topology::new(2, 5, 1).assign_workers(workers);
    let expected: Vec<(usize, usize)> = (0..workers)
        .map(|w| (asg.node_of(w), asg.slot_of(w)))
        .collect();
    let nr = Arc::new(NodeReplicated::new(Recorder::new(), asg, 64));

    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let nr = Arc::clone(&nr);
            std::thread::spawn(move || {
                let t = nr.register(w);
                (w, t.worker(), t.node(), t.reader_slot())
            })
        })
        .collect();

    for h in handles {
        let (w, tw, node, rslot) = h.join().expect("registration panicked");
        assert_eq!(tw, w, "token carries the wrong worker index");
        assert_eq!(node, expected[w].0, "worker {w} routed to wrong node");
        assert_eq!(rslot, expected[w].1, "worker {w} got wrong reader slot");
    }

    // The flags are one-shot: a late duplicate must still be caught after
    // the rush (the AcqRel swap makes exactly one winner per flag).
    let nr2 = Arc::clone(&nr);
    let dup = std::thread::spawn(move || nr2.register(0)).join();
    assert!(dup.is_err(), "duplicate registration must panic");
}
