//! The shared circular operation log.
//!
//! Entries are addressed by **monotonic** u64 indexes; the physical slot is
//! `index % size` and `lap = index / size`. Each entry carries the paper's
//! *emptyBit*: a flag whose full/empty meaning flips every lap, so slots can
//! be reused without clearing (§3: "Each time the log wraps around the
//! parity of the emptyBit's meaning flips"). An entry at index `i` is full
//! iff `empty_bit == (lap(i) is even)` — on lap 0, `true` means full; on lap
//! 1, `false` means full; and so on.
//!
//! Safety protocol (upheld by the universal construction, not the log):
//!
//! * an index is **written** only by the combiner that reserved it (a
//!   successful `reserve` grants exclusive write access to the range);
//! * an index is **read** only after `is_full(index)` has been observed;
//! * a slot is **reused** (written in lap L+1) only after every replica's
//!   localTail has passed the lap-L index — guaranteed by the `logMin`
//!   protocol in the universal construction.

use prep_sync::cell::{AtomicBool, AtomicU64, Ordering};
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;

use crossbeam_utils::CachePadded;
use prep_sync::Waiter;

/// One log slot: the emptyBit plus space for an operation.
///
/// Slots are stored cacheline-padded (§5.1: combiners on different nodes
/// write disjoint reserved ranges while appliers poll emptyBits; without
/// padding, a write to slot `i` invalidates the line holding neighboring
/// slots on every other core polling them — false sharing that grows with
/// thread count).
struct Entry<O> {
    // shared-line: the container is padded as a whole (Box<[CachePadded<
    // Entry<O>>]> above) — the emptyBit intentionally shares its line with
    // its own payload, and with nothing else.
    empty_bit: AtomicBool,
    op: UnsafeCell<MaybeUninit<O>>,
}

// SAFETY: cross-thread access to `op` is ordered by `empty_bit`
// (release-store on write, acquire-load before read) under the protocol in
// the module docs.
unsafe impl<O: Send> Send for Entry<O> {}
unsafe impl<O: Send> Sync for Entry<O> {}

/// The shared circular operation log.
pub struct Log<O> {
    entries: Box<[CachePadded<Entry<O>>]>,
    size: u64,
    log_tail: CachePadded<AtomicU64>,
    completed_tail: CachePadded<AtomicU64>,
    log_min: CachePadded<AtomicU64>,
}

impl<O: Clone> Log<O> {
    /// Creates a log with `size` slots.
    ///
    /// # Panics
    /// Panics if `size < 2`.
    pub fn new(size: u64) -> Self {
        assert!(size >= 2, "log must have at least two slots");
        let entries: Box<[CachePadded<Entry<O>>]> = (0..size)
            .map(|_| {
                CachePadded::new(Entry {
                    empty_bit: AtomicBool::new(false),
                    op: UnsafeCell::new(MaybeUninit::uninit()),
                })
            })
            .collect();
        Log {
            entries,
            size,
            log_tail: CachePadded::new(AtomicU64::new(0)),
            completed_tail: CachePadded::new(AtomicU64::new(0)),
            // Paper: logMin = LOG_SIZE - 1 initially.
            log_min: CachePadded::new(AtomicU64::new(size - 1)),
        }
    }

    /// Number of slots.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The emptyBit value that means "full" for `index`'s lap.
    #[inline]
    fn full_flag(&self, index: u64) -> bool {
        (index / self.size).is_multiple_of(2)
    }

    #[inline]
    fn entry(&self, index: u64) -> &Entry<O> {
        &self.entries[(index % self.size) as usize]
    }

    /// Current `logTail` (first unreserved index).
    #[inline]
    pub fn log_tail(&self) -> u64 {
        // ord: Acquire pairs with the reservation CAS so a combiner that
        // sees tail t also sees the reservations before t.
        self.log_tail.load(Ordering::Acquire)
    }

    /// Current `completedTail`.
    #[inline]
    pub fn completed_tail(&self) -> u64 {
        // ord: Acquire pairs with advance_completed_tail's AcqRel CAS:
        // seeing `t` means entries below `t` were published first.
        self.completed_tail.load(Ordering::Acquire)
    }

    /// Current `logMin`.
    #[inline]
    pub fn log_min(&self) -> u64 {
        // ord: Acquire pairs with set_log_min's Release: a combiner that
        // sees the new lowMark also sees the slow replica's progress that
        // justified it (safe slot reuse).
        self.log_min.load(Ordering::Acquire)
    }

    /// Publishes a new `logMin` (only the thread that reserved the lowMark
    /// entry does this, see `uc::NodeReplicated::update_or_wait_on_log_min`).
    #[inline]
    pub(crate) fn set_log_min(&self, v: u64) {
        // ord: Release publishes the scan that computed the new lowMark
        // (see log_min's Acquire).
        self.log_min.store(v, Ordering::Release);
    }

    /// Attempts to reserve `n` entries starting at `expected_tail` via CAS.
    /// On success the caller owns indexes `[expected_tail,
    /// expected_tail + n)` for writing.
    #[inline]
    pub(crate) fn try_reserve(&self, expected_tail: u64, n: u64) -> bool {
        self.log_tail
            // ord: AcqRel — Release publishes our view of logMin checks to
            // later reservers; Acquire orders our writes into the reserved
            // slots after earlier reservations. Failure re-reads the tail
            // (Acquire) for the caller's retry.
            .compare_exchange(
                expected_tail,
                expected_tail + n,
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_ok()
    }

    /// True once `index` holds a fully written operation for its current
    /// lap.
    #[inline]
    pub fn is_full(&self, index: u64) -> bool {
        // ord: Acquire pairs with publish's Release — a full emptyBit makes
        // the payload write visible before any read of the slot.
        self.entry(index).empty_bit.load(Ordering::Acquire) == self.full_flag(index)
    }

    /// Writes the operation payload of `index` **without** publishing it
    /// (the emptyBit is untouched). Split from [`Log::publish`] so the
    /// durable implementation can flush payloads, fence, and only then set
    /// emptyBits (§4.1 "Operation Log").
    ///
    /// # Safety
    /// The caller must own `index` via a successful reservation, the slot
    /// must be reusable (logMin protocol), and `write_payload`/`publish`
    /// must be called exactly once each per owned index.
    pub(crate) unsafe fn write_payload(&self, index: u64, op: O) {
        let e = self.entry(index);
        // SAFETY: exclusive ownership per caller contract. The previous
        // lap's value (if any) was a plain-old-data `O: Clone`; we drop it
        // in place before overwriting iff it was published. To keep this
        // simple and `O`-agnostic, the log requires... we overwrite without
        // dropping: see `Drop for Log` — published entries are dropped
        // there; overwritten ones are dropped here first.
        unsafe {
            let slot = &mut *e.op.get();
            if self.lap_written(index) {
                slot.assume_init_drop();
            }
            slot.write(op);
        }
    }

    /// True if the slot for `index` currently holds an initialized value
    /// from a previous lap (i.e. `index >= size` means the slot was written
    /// on every earlier lap by the reuse protocol).
    #[inline]
    fn lap_written(&self, index: u64) -> bool {
        index >= self.size
    }

    /// Publishes `index`: flips the emptyBit to this lap's "full" value.
    ///
    /// # Safety
    /// Same contract as [`Log::write_payload`], which must have been called
    /// for `index` first.
    pub(crate) unsafe fn publish(&self, index: u64) {
        self.entry(index)
            .empty_bit
            // ord: Release publishes the payload written by write_payload;
            // pairs with is_full's Acquire.
            .store(self.full_flag(index), Ordering::Release);
    }

    /// Clones the operation at `index`, spinning until it is published.
    ///
    /// # Safety
    /// `index` must be protected from reuse (the caller's replica localTail
    /// has not passed it, so the logMin protocol pins it).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) unsafe fn wait_and_read(&self, index: u64) -> O {
        let mut w = Waiter::new();
        while !self.is_full(index) {
            w.wait();
        }
        // SAFETY: is_full (acquire) synchronizes with publish (release); the
        // payload is initialized and pinned per caller contract.
        unsafe { (*self.entry(index).op.get()).assume_init_ref().clone() }
    }

    /// Clones the (possibly still unpublished) payload at `index`.
    ///
    /// # Safety
    /// The caller must own `index` via a reservation and have already
    /// called [`Log::write_payload`] for it. Unlike [`Log::wait_and_read`]
    /// this does not wait for the emptyBit, so it is only sound for the
    /// reserving combiner reading its own batch back.
    pub(crate) unsafe fn read_own_payload(&self, index: u64) -> O {
        // SAFETY: the owner wrote the payload on this same thread; no other
        // thread writes an owned slot.
        unsafe { (*self.entry(index).op.get()).assume_init_ref().clone() }
    }

    /// Advances `completedTail` to at least `to` via CAS-max. Returns `true`
    /// if this call performed an advance.
    pub(crate) fn advance_completed_tail(&self, to: u64) -> bool {
        // ord: optimistic snapshot; the CAS below re-validates.
        let mut cur = self.completed_tail.load(Ordering::Relaxed);
        while cur < to {
            // ord: AcqRel — Release so a reader that observes the new
            // completedTail (Acquire in completed_tail) sees the published
            // entries below it; failure just reloads the counter.
            match self.completed_tail.compare_exchange_weak(
                cur,
                to,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
        false
    }

    /// Iterates the published operations in `[from, to)` in log order,
    /// spinning on any not-yet-published entry.
    ///
    /// Used by appliers (combiners, the persistence thread, recovery): the
    /// indexes must be pinned against reuse by the caller's localTail.
    pub fn for_each_op(&self, from: u64, to: u64, mut f: impl FnMut(u64, &O)) {
        for idx in from..to {
            let mut w = Waiter::new();
            while !self.is_full(idx) {
                w.wait();
            }
            // SAFETY: published + pinned per caller contract (same as
            // `wait_and_read`).
            let op = unsafe { (*self.entry(idx).op.get()).assume_init_ref() };
            f(idx, op);
        }
    }
}

/// Model-checking seam: re-exposes the crate-private reservation protocol
/// so the `prep-mc` property tests (crates/mc/tests) can drive the log
/// op-by-op under the exhaustive scheduler. Compiled only under
/// `RUSTFLAGS="--cfg prep_mc"`; normal builds carry no extra surface.
#[cfg(prep_mc)]
impl<O: Clone> Log<O> {
    /// Seam for [`Log::try_reserve`].
    pub fn mc_try_reserve(&self, expected_tail: u64, n: u64) -> bool {
        self.try_reserve(expected_tail, n)
    }

    /// Seam for [`Log::write_payload`].
    ///
    /// # Safety
    /// Same contract as [`Log::write_payload`].
    pub unsafe fn mc_write_payload(&self, index: u64, op: O) {
        // SAFETY: forwarded contract.
        unsafe { self.write_payload(index, op) }
    }

    /// Seam for [`Log::publish`].
    ///
    /// # Safety
    /// Same contract as [`Log::publish`].
    pub unsafe fn mc_publish(&self, index: u64) {
        // SAFETY: forwarded contract.
        unsafe { self.publish(index) }
    }

    /// Seam for [`Log::advance_completed_tail`].
    pub fn mc_advance_completed_tail(&self, to: u64) -> bool {
        self.advance_completed_tail(to)
    }
}

impl<O> Drop for Log<O> {
    fn drop(&mut self) {
        // Drop every slot that holds an initialized value. Slot s has been
        // written iff some index with `index % size == s` was published;
        // given the sequential reservation protocol that is exactly the
        // slots below the high-water mark `log_tail`.
        let tail = *self.log_tail.get_mut();
        let written = tail.min(self.size);
        for s in 0..written {
            // SAFETY: slot was written at least once and never dropped.
            unsafe { (*self.entries[s as usize].op.get()).assume_init_drop() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reserve helper for tests (the UC drives this in production).
    fn reserve<O: Clone>(log: &Log<O>, n: u64) -> u64 {
        loop {
            let t = log.log_tail();
            if log.try_reserve(t, n) {
                return t;
            }
        }
    }

    #[test]
    fn entries_are_cacheline_padded() {
        // Two adjacent slots must never share a cacheline (§5.1 false
        // sharing): the padded slot is at least a line wide and
        // line-aligned.
        let slot = std::mem::size_of::<CachePadded<Entry<u64>>>();
        let align = std::mem::align_of::<CachePadded<Entry<u64>>>();
        assert!(slot >= 64, "padded slot smaller than a cacheline: {slot}");
        assert!(align >= 64, "padded slot under-aligned: {align}");
        assert!(slot.is_multiple_of(align));
    }

    #[test]
    fn indexes_start_at_paper_initial_values() {
        let log: Log<u64> = Log::new(8);
        assert_eq!(log.log_tail(), 0);
        assert_eq!(log.completed_tail(), 0);
        assert_eq!(log.log_min(), 7); // LOG_SIZE - 1
        assert_eq!(log.size(), 8);
    }

    #[test]
    fn log_indexes_table1_semantics() {
        // Table 1: logTail = last log entry (first unreserved); completedTail
        // trails it; both monotone.
        let log: Log<u64> = Log::new(8);
        let start = reserve(&log, 3);
        assert_eq!(start, 0);
        assert_eq!(log.log_tail(), 3);
        assert!(log.advance_completed_tail(3));
        assert_eq!(log.completed_tail(), 3);
        // CAS-max: advancing backwards is a no-op.
        assert!(!log.advance_completed_tail(2));
        assert_eq!(log.completed_tail(), 3);
        assert!(!log.advance_completed_tail(3));
    }

    #[test]
    fn publish_makes_entries_readable() {
        let log: Log<String> = Log::new(4);
        let i = reserve(&log, 2);
        assert!(!log.is_full(i));
        unsafe {
            log.write_payload(i, "a".to_string());
            log.write_payload(i + 1, "b".to_string());
        }
        // Payload written but not published: still empty.
        assert!(!log.is_full(i));
        unsafe {
            log.publish(i);
            log.publish(i + 1);
        }
        assert!(log.is_full(i));
        assert_eq!(unsafe { log.wait_and_read(i) }, "a");
        assert_eq!(unsafe { log.wait_and_read(i + 1) }, "b");
    }

    #[test]
    fn empty_bit_parity_flips_per_lap() {
        let log: Log<u64> = Log::new(4);
        // Lap 0: write all four entries.
        let s = reserve(&log, 4);
        for i in s..s + 4 {
            unsafe {
                log.write_payload(i, i);
                log.publish(i);
            }
        }
        for i in 0..4 {
            assert!(log.is_full(i));
        }
        // Lap 1 indexes map to the same slots but read as EMPTY until
        // rewritten — the parity flip at work.
        for i in 4..8u64 {
            assert!(!log.is_full(i), "lap-1 index {i} must read empty");
        }
        // Rewrite slot 0 on lap 1.
        let s = reserve(&log, 1);
        assert_eq!(s, 4);
        unsafe {
            log.write_payload(4, 44);
            log.publish(4);
        }
        assert!(log.is_full(4));
        assert_eq!(unsafe { log.wait_and_read(4) }, 44);
        // Lap-2 view of the same slot is empty again.
        assert!(!log.is_full(8));
    }

    #[test]
    fn for_each_op_yields_in_order() {
        let log: Log<u64> = Log::new(16);
        let s = reserve(&log, 5);
        for i in s..s + 5 {
            unsafe {
                log.write_payload(i, i * 10);
                log.publish(i);
            }
        }
        let mut seen = Vec::new();
        log.for_each_op(1, 4, |idx, op| seen.push((idx, *op)));
        assert_eq!(seen, vec![(1, 10), (2, 20), (3, 30)]);
    }

    #[test]
    fn wait_and_read_blocks_until_published() {
        use std::sync::Arc;
        let log: Arc<Log<u64>> = Arc::new(Log::new(4));
        let s = reserve(&*log, 1);
        let l2 = Arc::clone(&log);
        let reader = std::thread::spawn(move || unsafe { l2.wait_and_read(s) });
        std::thread::sleep(std::time::Duration::from_millis(10));
        unsafe {
            log.write_payload(s, 99);
            log.publish(s);
        }
        assert_eq!(reader.join().unwrap(), 99);
    }

    #[test]
    fn concurrent_reservations_are_disjoint() {
        use std::sync::Arc;
        let log: Arc<Log<u64>> = Arc::new(Log::new(1 << 16));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let log = Arc::clone(&log);
                std::thread::spawn(move || {
                    let mut mine = Vec::new();
                    for _ in 0..200 {
                        let s = reserve(&*log, 3);
                        mine.push(s);
                    }
                    mine
                })
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        // 800 reservations of 3 entries: starts must be exactly 0,3,6,...
        for (i, s) in all.iter().enumerate() {
            assert_eq!(*s, (i as u64) * 3);
        }
        assert_eq!(log.log_tail(), 2400);
    }

    #[test]
    fn drop_releases_published_entries_without_leak_or_double_free() {
        // Use Strings so Miri/asan-style issues would surface as UB or
        // leaks under normal test runs with a crash.
        let log: Log<String> = Log::new(4);
        let s = reserve(&log, 3);
        for i in s..s + 3 {
            unsafe {
                log.write_payload(i, format!("x{i}"));
                log.publish(i);
            }
        }
        drop(log); // must drop exactly 3 strings
    }

    #[test]
    fn reserve_write_read_model_trace() {
        // Model-based single-threaded trace: interleave reservations,
        // publications and reads arbitrarily; every published index must
        // read back its own value and only become full after publication.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(99);
        let log: Log<u64> = Log::new(8);
        let mut reserved: Vec<u64> = Vec::new(); // written but unpublished
        let mut published: std::collections::BTreeSet<u64> = Default::default();
        let mut applied = 0u64; // simulated single replica tail
        for _ in 0..2000 {
            match rng.gen_range(0..3) {
                0 => {
                    // Reserve+write one entry if the ring has room
                    // (single-replica logMin analogue: tail - applied < size).
                    let tail = log.log_tail();
                    if tail - applied < log.size() - 1 && log.try_reserve(tail, 1) {
                        unsafe { log.write_payload(tail, tail * 3) };
                        assert!(!log.is_full(tail), "unpublished entry reads full");
                        reserved.push(tail);
                    }
                }
                1 => {
                    if let Some(idx) = reserved.pop() {
                        unsafe { log.publish(idx) };
                        published.insert(idx);
                    }
                }
                _ => {
                    // Apply the contiguous published prefix, in order.
                    while published.remove(&applied) {
                        assert!(log.is_full(applied));
                        assert_eq!(unsafe { log.wait_and_read(applied) }, applied * 3);
                        applied += 1;
                    }
                }
            }
        }
    }

    #[test]
    fn overwrite_on_next_lap_drops_previous_value() {
        let log: Log<String> = Log::new(2);
        for lap in 0..3u64 {
            for slot in 0..2u64 {
                let i = lap * 2 + slot;
                let s = reserve(&log, 1);
                assert_eq!(s, i);
                unsafe {
                    log.write_payload(i, format!("v{i}"));
                    log.publish(i);
                }
            }
        }
        assert_eq!(unsafe { log.wait_and_read(4) }, "v4");
        assert_eq!(unsafe { log.wait_and_read(5) }, "v5");
    }
}
