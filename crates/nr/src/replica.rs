//! Per-node replicas and flat-combining batch slots.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

use crossbeam_utils::CachePadded;
use prep_sync::{
    PhaseFairReadGuard, PhaseFairRwLock, PhaseFairWriteGuard, RwSpinLock, RwSpinReadGuard,
    RwSpinWriteGuard, TryLock,
};

use crate::FairnessMode;

/// Slot states for the flat-combining protocol.
pub(crate) const SLOT_EMPTY: u8 = 0;
pub(crate) const SLOT_PENDING: u8 = 1;
pub(crate) const SLOT_DONE: u8 = 2;

/// One thread's slot in its node's flat-combining batch.
///
/// Ownership protocol:
/// * the owning worker writes `op` while the slot is `EMPTY`, then stores
///   `PENDING` (release);
/// * the combiner reads `op` after loading `PENDING` (acquire), writes
///   `resp`, then stores `DONE` (release);
/// * the owner takes `resp` after loading `DONE` (acquire) and stores
///   `EMPTY` (release), completing the cycle.
pub(crate) struct BatchSlot<O, R> {
    pub(crate) state: CachePadded<AtomicU8>,
    pub(crate) op: UnsafeCell<Option<O>>,
    pub(crate) resp: UnsafeCell<Option<R>>,
}

// SAFETY: `op`/`resp` are handed off between exactly two parties with
// release/acquire ordering on `state` per the protocol above.
unsafe impl<O: Send, R: Send> Send for BatchSlot<O, R> {}
unsafe impl<O: Send, R: Send> Sync for BatchSlot<O, R> {}

impl<O, R> BatchSlot<O, R> {
    fn new() -> Self {
        BatchSlot {
            state: CachePadded::new(AtomicU8::new(SLOT_EMPTY)),
            op: UnsafeCell::new(None),
            resp: UnsafeCell::new(None),
        }
    }
}

/// The replica's reader-writer lock, selected by [`FairnessMode`] (§4.2:
/// the starvation-free variant swaps in a starvation-free reader-writer
/// lock so a stream of combiners cannot starve readers).
// One instance per NUMA node: the size difference between lock
// implementations is irrelevant at that count.
#[allow(clippy::large_enum_variant)]
pub(crate) enum ReplicaRwLock<T> {
    WriterPref(RwSpinLock<T>),
    PhaseFair(PhaseFairRwLock<T>),
}

pub(crate) enum ReplicaReadGuard<'a, T> {
    WriterPref(RwSpinReadGuard<'a, T>),
    PhaseFair(PhaseFairReadGuard<'a, T>),
}

pub(crate) enum ReplicaWriteGuard<'a, T> {
    WriterPref(RwSpinWriteGuard<'a, T>),
    PhaseFair(PhaseFairWriteGuard<'a, T>),
}

impl<T> ReplicaRwLock<T> {
    fn new(ds: T, fairness: FairnessMode) -> Self {
        match fairness {
            FairnessMode::Throughput => ReplicaRwLock::WriterPref(RwSpinLock::new(ds)),
            FairnessMode::StarvationFree => ReplicaRwLock::PhaseFair(PhaseFairRwLock::new(ds)),
        }
    }

    pub(crate) fn read(&self) -> ReplicaReadGuard<'_, T> {
        match self {
            ReplicaRwLock::WriterPref(l) => ReplicaReadGuard::WriterPref(l.read()),
            ReplicaRwLock::PhaseFair(l) => ReplicaReadGuard::PhaseFair(l.read()),
        }
    }

    pub(crate) fn write(&self) -> ReplicaWriteGuard<'_, T> {
        match self {
            ReplicaRwLock::WriterPref(l) => ReplicaWriteGuard::WriterPref(l.write()),
            ReplicaRwLock::PhaseFair(l) => ReplicaWriteGuard::PhaseFair(l.write()),
        }
    }
}

impl<T> Deref for ReplicaReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match self {
            ReplicaReadGuard::WriterPref(g) => g,
            ReplicaReadGuard::PhaseFair(g) => g,
        }
    }
}

impl<T> Deref for ReplicaWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match self {
            ReplicaWriteGuard::WriterPref(g) => g,
            ReplicaWriteGuard::PhaseFair(g) => g,
        }
    }
}

impl<T> DerefMut for ReplicaWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match self {
            ReplicaWriteGuard::WriterPref(g) => g.deref_mut(),
            ReplicaWriteGuard::PhaseFair(g) => g.deref_mut(),
        }
    }
}

/// A volatile replica: the sequential object plus its coordination state.
pub(crate) struct Replica<T: prep_seqds::SequentialObject> {
    /// The combiner lock (paper: a trylock; winning it makes a thread the
    /// combiner for this node).
    pub(crate) combiner: TryLock<()>,
    /// Reader-writer lock protecting the sequential object.
    pub(crate) rw: ReplicaRwLock<T>,
    /// First log index not yet applied to this replica.
    pub(crate) local_tail: CachePadded<AtomicU64>,
    /// Flat-combining batch: one slot per worker on this node.
    pub(crate) slots: Box<[BatchSlot<T::Op, T::Resp>]>,
    /// `updateReplicaNow` flag (Algorithm 3): set by a combiner blocked on
    /// logMin to ask this replica's threads to bring it up to date.
    pub(crate) update_now: CachePadded<AtomicBool>,
}

impl<T: prep_seqds::SequentialObject> Replica<T> {
    pub(crate) fn new(ds: T, beta: usize, fairness: FairnessMode) -> Self {
        Replica {
            combiner: TryLock::new(()),
            rw: ReplicaRwLock::new(ds, fairness),
            local_tail: CachePadded::new(AtomicU64::new(0)),
            slots: (0..beta).map(|_| BatchSlot::new()).collect(),
            update_now: CachePadded::new(AtomicBool::new(false)),
        }
    }

    #[inline]
    pub(crate) fn local_tail(&self) -> u64 {
        self.local_tail.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prep_seqds::recorder::Recorder;

    #[test]
    fn replica_initial_state() {
        let r: Replica<Recorder> = Replica::new(Recorder::new(), 4, FairnessMode::Throughput);
        assert_eq!(r.local_tail(), 0);
        assert_eq!(r.slots.len(), 4);
        assert!(!r.update_now.load(Ordering::Relaxed));
        assert!(!r.combiner.is_locked());
        for s in r.slots.iter() {
            assert_eq!(s.state.load(Ordering::Relaxed), SLOT_EMPTY);
        }
    }
}
