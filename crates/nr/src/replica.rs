//! Per-node replicas and flat-combining batch slots.

use prep_sync::cell::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::cell::UnsafeCell;

use crossbeam_utils::CachePadded;
use prep_sync::{
    AdaptiveSelector, DistRwLock, PhaseFairRwLock, ReadMode, ReaderId, ReplicaLock, RwSpinLock,
    SeqVersion, TryLock,
};

use crate::FairnessMode;

/// Slot states for the flat-combining protocol.
pub(crate) const SLOT_EMPTY: u8 = 0;
pub(crate) const SLOT_PENDING: u8 = 1;
pub(crate) const SLOT_DONE: u8 = 2;

/// One thread's slot in its node's flat-combining batch.
///
/// Ownership protocol:
/// * the owning worker writes `op` while the slot is `EMPTY`, then stores
///   `PENDING` (release);
/// * the combiner reads `op` after loading `PENDING` (acquire), writes
///   `resp`, then stores `DONE` (release);
/// * the owner takes `resp` after loading `DONE` (acquire) and stores
///   `EMPTY` (release), completing the cycle.
pub(crate) struct BatchSlot<O, R> {
    // lock-level: 3 innermost: the combiner claims slots while holding
    // the level-1 combiner lock and never waits on a ranked lock after
    pub(crate) state: CachePadded<AtomicU8>,
    pub(crate) op: UnsafeCell<Option<O>>,
    pub(crate) resp: UnsafeCell<Option<R>>,
}

// SAFETY: `op`/`resp` are handed off between exactly two parties with
// release/acquire ordering on `state` per the protocol above.
unsafe impl<O: Send, R: Send> Send for BatchSlot<O, R> {}
unsafe impl<O: Send, R: Send> Sync for BatchSlot<O, R> {}

impl<O, R> BatchSlot<O, R> {
    fn new() -> Self {
        BatchSlot {
            state: CachePadded::new(AtomicU8::new(SLOT_EMPTY)),
            op: UnsafeCell::new(None),
            resp: UnsafeCell::new(None),
        }
    }
}

/// Per-reader-slot read-path bookkeeping, one cacheline per slot.
///
/// Every field is written only by the slot's owning worker (plain
/// load+store, never an RMW) and read by others only for rare, advisory
/// aggregation (metrics, the adaptive selector's window) — so the whole
/// struct shares one padded line without contention.
pub(crate) struct SlotReadState {
    /// Read-only operations routed through this slot (bumped in
    /// [`FairnessMode::Adaptive`] to feed the selector's window).
    // shared-line: single-writer line with its two siblings below; padding
    // is applied once at the container (`CachePadded<SlotReadState>`).
    pub(crate) reads: AtomicU64,
    /// Validated optimistic (lock-free) fast-path reads.
    // shared-line: see `reads` — same single-writer padded line.
    pub(crate) fast_optimistic: AtomicU64,
    /// Replica version observed by this slot's last *locked* read; when the
    /// current version still equals it, the reader has proof of a write-free
    /// window and may skip the slot RMW ([`FairnessMode::Throughput`]'s
    /// optimistic skip).
    // shared-line: see `reads` — same single-writer padded line.
    pub(crate) last_version: AtomicU64,
}

impl SlotReadState {
    fn new() -> Self {
        SlotReadState {
            reads: AtomicU64::new(0),
            fast_optimistic: AtomicU64::new(0),
            last_version: AtomicU64::new(u64::MAX),
        }
    }

    /// Single-writer counter bump: a plain load + store on the owning
    /// reader's private line — deliberately **not** `fetch_add`, so the
    /// optimistic fast path stays free of atomic RMW instructions. Returns
    /// the new value.
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) -> u64 {
        // ord: single-writer statistics on the owner's private line; remote
        // aggregation (metrics, selector windows) tolerates staleness.
        let v = counter.load(Ordering::Relaxed) + 1;
        // ord: single-writer statistics store (see the load above).
        counter.store(v, Ordering::Relaxed);
        v
    }
}

/// A volatile replica: the sequential object plus its coordination state.
pub(crate) struct Replica<T: prep_seqds::SequentialObject> {
    /// The combiner lock (paper: a trylock; winning it makes a thread the
    /// combiner for this node).
    // lock-level: 1 combiner election, nested inside nothing and outside
    // the level-2 replica rwlock and level-3 slot claims
    pub(crate) combiner: TryLock<()>,
    /// Reader-writer lock protecting the sequential object. Which lock is
    /// behind the trait object is [`FairnessMode`]'s choice: the NR §3
    /// distributed lock (one padded reader slot per worker on this node) by
    /// default, the centralized spin lock for the ablation baseline, the
    /// phase-fair lock for §4.2's starvation-free variant.
    pub(crate) rw: Box<dyn ReplicaLock<T>>,
    /// First log index not yet applied to this replica.
    pub(crate) local_tail: CachePadded<AtomicU64>,
    /// Flat-combining batch: one slot per worker on this node.
    pub(crate) slots: Box<[BatchSlot<T::Op, T::Resp>]>,
    /// `updateReplicaNow` flag (Algorithm 3): set by a combiner blocked on
    /// logMin to ask this replica's threads to bring it up to date.
    pub(crate) update_now: CachePadded<AtomicBool>,
    /// Read-only operations that missed the zero-contention fast path (the
    /// replica was behind `completedTail` at snapshot time). Bumped only on
    /// the slow path, which already writes shared state.
    pub(crate) read_slow: CachePadded<AtomicU64>,
    /// Seqlock-style version bracketing every replica mutation (bumped odd
    /// inside `write_with` before the mutation, even after): the optimistic
    /// read path's validation word.
    pub(crate) version: SeqVersion,
    /// Per-reader-slot read bookkeeping (one padded line per slot, indexed
    /// like the lock's reader slots).
    pub(crate) read_state: Box<[CachePadded<SlotReadState>]>,
    /// Optimistic reads that failed validation (a combiner overlapped the
    /// lock-free read). Bumped only on the failure path, which falls back
    /// to a real lock acquisition anyway.
    pub(crate) read_validation_failures: CachePadded<AtomicU64>,
    /// Advisory read-mode selector, consulted in [`FairnessMode::Adaptive`].
    pub(crate) selector: AdaptiveSelector,
}

impl<T: prep_seqds::SequentialObject> Replica<T> {
    pub(crate) fn new(ds: T, beta: usize, fairness: FairnessMode) -> Self {
        let rw: Box<dyn ReplicaLock<T>> = match fairness {
            // The optimistic modes keep the distributed lock as their
            // validated-read fallback and writer-side exclusion.
            FairnessMode::Throughput | FairnessMode::Optimistic | FairnessMode::Adaptive => {
                Box::new(DistRwLock::new(ds, beta))
            }
            FairnessMode::ThroughputCentralized => Box::new(RwSpinLock::new(ds)),
            FairnessMode::StarvationFree => Box::new(PhaseFairRwLock::new(ds)),
        };
        Replica {
            combiner: TryLock::new(()),
            rw,
            local_tail: CachePadded::new(AtomicU64::new(0)),
            slots: (0..beta).map(|_| BatchSlot::new()).collect(),
            update_now: CachePadded::new(AtomicBool::new(false)),
            read_slow: CachePadded::new(AtomicU64::new(0)),
            version: SeqVersion::new(),
            read_state: (0..beta)
                .map(|_| CachePadded::new(SlotReadState::new()))
                .collect(),
            read_validation_failures: CachePadded::new(AtomicU64::new(0)),
            // Start distributed: the paper's default routing until a window
            // of evidence argues otherwise.
            selector: AdaptiveSelector::new(ReadMode::Distributed),
        }
    }

    #[inline]
    pub(crate) fn local_tail(&self) -> u64 {
        // ord: Acquire pairs with the combiner's Release store — observing
        // tail t implies the replica state reflects every entry below t.
        self.local_tail.load(Ordering::Acquire)
    }

    /// Runs `f` with shared access to the sequential object, acquiring the
    /// replica lock as reader `id`. (`FnOnce`-over-`FnMut` adapter for the
    /// dyn-compatible [`ReplicaLock`] interface.)
    #[inline]
    pub(crate) fn read_with<R>(&self, id: ReaderId, f: impl FnOnce(&T) -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        self.rw.with_read(id, &mut |ds| {
            out = Some((f.take().expect("with_read runs f once"))(ds));
        });
        out.expect("with_read ran f")
    }

    /// Runs `f` with exclusive access to the sequential object, bracketed
    /// by the replica's seqlock version (odd while `f` runs, even after) so
    /// optimistic readers detect the overlap and discard their reads.
    #[inline]
    pub(crate) fn write_with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        self.rw.with_write(&mut |ds| {
            // Inside the write lock: we are the only version writer.
            self.version.write_begin();
            out = Some((f.take().expect("with_write runs f once"))(ds));
            self.version.write_end();
        });
        out.expect("with_write ran f")
    }

    /// Attempts a seqlock-validated lock-free read: snapshot the version,
    /// run `f` against the replica without touching the lock, and accept
    /// the result only if no combiner overlapped. Returns `None` after
    /// bounded retries (writer mid-apply, or validation kept failing) — the
    /// caller then falls back to a real lock acquisition. The fast path
    /// performs zero atomic RMWs and zero stores to any shared cacheline.
    pub(crate) fn read_optimistic<R>(&self, f: impl Fn(&T) -> R) -> Option<R> {
        /// Validation failures tolerated before falling back: each retry
        /// costs a wasted `f`, and under combiner churn the slot path is
        /// cheaper than a third wasted read.
        const RETRIES: usize = 2;
        for _ in 0..RETRIES {
            let Some(snap) = self.version.read_begin() else {
                // A combiner is mid-apply; the slot path waits for it
                // politely instead of spinning here (writers never wait on
                // optimistic readers, and readers should not busy-spin on
                // writers).
                return None;
            };
            let mut out = None;
            // SAFETY: seqlock bracket — `snap` was even (no write in
            // progress) and `validate` below rejects the result if any
            // write bracket overlapped `f`'s unsynchronized reads. `f` is a
            // `SequentialObject::apply_readonly` over plain (non-pointer-
            // chasing-into-freed-memory) data; discarded torn reads are
            // never observable (see DESIGN.md "Why optimistic reads are
            // safe").
            unsafe { self.rw.with_peek(&mut |ds| out = Some(f(ds))) };
            if self.version.validate(snap) {
                return out;
            }
            self.read_validation_failures
                // ord: failure-path statistic (shared line is fine: this
                // path proceeds to a lock acquisition anyway).
                .fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    /// Feeds the adaptive selector a fresh window: total reads across this
    /// replica's slots, completed write brackets, validation failures.
    /// Called amortized (once per `WINDOW_READS_PER_READER` of one reader's
    /// reads), so the O(β) sum is off the per-read path.
    pub(crate) fn evaluate_selector(&self) {
        self.selector.observe(prep_sync::ReadWindow {
            reads: self
                .read_state
                .iter()
                // ord: advisory aggregation of single-writer counters.
                .map(|s| s.reads.load(Ordering::Relaxed))
                .sum(),
            writes: self.version.writes(),
            // ord: advisory aggregation (see above).
            validation_failures: self.read_validation_failures.load(Ordering::Relaxed),
        });
    }

    /// Validated optimistic fast-path reads served by this replica.
    pub(crate) fn fast_optimistic_total(&self) -> u64 {
        self.read_state
            .iter()
            // ord: advisory aggregation of single-writer counters.
            .map(|s| s.fast_optimistic.load(Ordering::Relaxed))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prep_seqds::recorder::Recorder;

    #[test]
    fn replica_initial_state() {
        let r: Replica<Recorder> = Replica::new(Recorder::new(), 4, FairnessMode::Throughput);
        assert_eq!(r.local_tail(), 0);
        assert_eq!(r.slots.len(), 4);
        assert!(!r.update_now.load(Ordering::Relaxed));
        assert!(!r.combiner.is_locked());
        assert_eq!(r.read_slow.load(Ordering::Relaxed), 0);
        for s in r.slots.iter() {
            assert_eq!(s.state.load(Ordering::Relaxed), SLOT_EMPTY);
        }
    }

    #[test]
    fn fairness_selects_reader_slot_layout() {
        let dist: Replica<Recorder> = Replica::new(Recorder::new(), 4, FairnessMode::Throughput);
        assert_eq!(dist.rw.reader_slots(), 4);
        let central: Replica<Recorder> =
            Replica::new(Recorder::new(), 4, FairnessMode::ThroughputCentralized);
        assert_eq!(central.rw.reader_slots(), 0);
        let fair: Replica<Recorder> =
            Replica::new(Recorder::new(), 4, FairnessMode::StarvationFree);
        assert_eq!(fair.rw.reader_slots(), 0);
    }

    #[test]
    fn read_with_and_write_with_round_trip() {
        use prep_seqds::recorder::{RecorderOp, RecorderResp};
        use prep_seqds::SequentialObject;
        let r: Replica<Recorder> = Replica::new(Recorder::new(), 2, FairnessMode::Throughput);
        let resp = r.write_with(|ds| ds.apply(&RecorderOp::Record(7)));
        assert_eq!(resp, RecorderResp::RecordedAt(0));
        let seen = r.read_with(ReaderId::Slot(1), |ds| ds.apply_readonly(&RecorderOp::Last));
        assert_eq!(seen, RecorderResp::Last(Some(7)));
        let shared = r.read_with(ReaderId::Shared, |ds| ds.apply_readonly(&RecorderOp::Count));
        assert_eq!(shared, RecorderResp::Count(1));
    }
}
