//! Per-node replicas and flat-combining batch slots.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

use crossbeam_utils::CachePadded;
use prep_sync::{DistRwLock, PhaseFairRwLock, ReaderId, ReplicaLock, RwSpinLock, TryLock};

use crate::FairnessMode;

/// Slot states for the flat-combining protocol.
pub(crate) const SLOT_EMPTY: u8 = 0;
pub(crate) const SLOT_PENDING: u8 = 1;
pub(crate) const SLOT_DONE: u8 = 2;

/// One thread's slot in its node's flat-combining batch.
///
/// Ownership protocol:
/// * the owning worker writes `op` while the slot is `EMPTY`, then stores
///   `PENDING` (release);
/// * the combiner reads `op` after loading `PENDING` (acquire), writes
///   `resp`, then stores `DONE` (release);
/// * the owner takes `resp` after loading `DONE` (acquire) and stores
///   `EMPTY` (release), completing the cycle.
pub(crate) struct BatchSlot<O, R> {
    pub(crate) state: CachePadded<AtomicU8>,
    pub(crate) op: UnsafeCell<Option<O>>,
    pub(crate) resp: UnsafeCell<Option<R>>,
}

// SAFETY: `op`/`resp` are handed off between exactly two parties with
// release/acquire ordering on `state` per the protocol above.
unsafe impl<O: Send, R: Send> Send for BatchSlot<O, R> {}
unsafe impl<O: Send, R: Send> Sync for BatchSlot<O, R> {}

impl<O, R> BatchSlot<O, R> {
    fn new() -> Self {
        BatchSlot {
            state: CachePadded::new(AtomicU8::new(SLOT_EMPTY)),
            op: UnsafeCell::new(None),
            resp: UnsafeCell::new(None),
        }
    }
}

/// A volatile replica: the sequential object plus its coordination state.
pub(crate) struct Replica<T: prep_seqds::SequentialObject> {
    /// The combiner lock (paper: a trylock; winning it makes a thread the
    /// combiner for this node).
    pub(crate) combiner: TryLock<()>,
    /// Reader-writer lock protecting the sequential object. Which lock is
    /// behind the trait object is [`FairnessMode`]'s choice: the NR §3
    /// distributed lock (one padded reader slot per worker on this node) by
    /// default, the centralized spin lock for the ablation baseline, the
    /// phase-fair lock for §4.2's starvation-free variant.
    pub(crate) rw: Box<dyn ReplicaLock<T>>,
    /// First log index not yet applied to this replica.
    pub(crate) local_tail: CachePadded<AtomicU64>,
    /// Flat-combining batch: one slot per worker on this node.
    pub(crate) slots: Box<[BatchSlot<T::Op, T::Resp>]>,
    /// `updateReplicaNow` flag (Algorithm 3): set by a combiner blocked on
    /// logMin to ask this replica's threads to bring it up to date.
    pub(crate) update_now: CachePadded<AtomicBool>,
    /// Read-only operations that missed the zero-contention fast path (the
    /// replica was behind `completedTail` at snapshot time). Bumped only on
    /// the slow path, which already writes shared state.
    pub(crate) read_slow: CachePadded<AtomicU64>,
}

impl<T: prep_seqds::SequentialObject> Replica<T> {
    pub(crate) fn new(ds: T, beta: usize, fairness: FairnessMode) -> Self {
        let rw: Box<dyn ReplicaLock<T>> = match fairness {
            FairnessMode::Throughput => Box::new(DistRwLock::new(ds, beta)),
            FairnessMode::ThroughputCentralized => Box::new(RwSpinLock::new(ds)),
            FairnessMode::StarvationFree => Box::new(PhaseFairRwLock::new(ds)),
        };
        Replica {
            combiner: TryLock::new(()),
            rw,
            local_tail: CachePadded::new(AtomicU64::new(0)),
            slots: (0..beta).map(|_| BatchSlot::new()).collect(),
            update_now: CachePadded::new(AtomicBool::new(false)),
            read_slow: CachePadded::new(AtomicU64::new(0)),
        }
    }

    #[inline]
    pub(crate) fn local_tail(&self) -> u64 {
        // ord: Acquire pairs with the combiner's Release store — observing
        // tail t implies the replica state reflects every entry below t.
        self.local_tail.load(Ordering::Acquire)
    }

    /// Runs `f` with shared access to the sequential object, acquiring the
    /// replica lock as reader `id`. (`FnOnce`-over-`FnMut` adapter for the
    /// dyn-compatible [`ReplicaLock`] interface.)
    #[inline]
    pub(crate) fn read_with<R>(&self, id: ReaderId, f: impl FnOnce(&T) -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        self.rw.with_read(id, &mut |ds| {
            out = Some((f.take().expect("with_read runs f once"))(ds));
        });
        out.expect("with_read ran f")
    }

    /// Runs `f` with exclusive access to the sequential object.
    #[inline]
    pub(crate) fn write_with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut f = Some(f);
        let mut out = None;
        self.rw.with_write(&mut |ds| {
            out = Some((f.take().expect("with_write runs f once"))(ds));
        });
        out.expect("with_write ran f")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prep_seqds::recorder::Recorder;

    #[test]
    fn replica_initial_state() {
        let r: Replica<Recorder> = Replica::new(Recorder::new(), 4, FairnessMode::Throughput);
        assert_eq!(r.local_tail(), 0);
        assert_eq!(r.slots.len(), 4);
        assert!(!r.update_now.load(Ordering::Relaxed));
        assert!(!r.combiner.is_locked());
        assert_eq!(r.read_slow.load(Ordering::Relaxed), 0);
        for s in r.slots.iter() {
            assert_eq!(s.state.load(Ordering::Relaxed), SLOT_EMPTY);
        }
    }

    #[test]
    fn fairness_selects_reader_slot_layout() {
        let dist: Replica<Recorder> = Replica::new(Recorder::new(), 4, FairnessMode::Throughput);
        assert_eq!(dist.rw.reader_slots(), 4);
        let central: Replica<Recorder> =
            Replica::new(Recorder::new(), 4, FairnessMode::ThroughputCentralized);
        assert_eq!(central.rw.reader_slots(), 0);
        let fair: Replica<Recorder> =
            Replica::new(Recorder::new(), 4, FairnessMode::StarvationFree);
        assert_eq!(fair.rw.reader_slots(), 0);
    }

    #[test]
    fn read_with_and_write_with_round_trip() {
        use prep_seqds::recorder::{RecorderOp, RecorderResp};
        use prep_seqds::SequentialObject;
        let r: Replica<Recorder> = Replica::new(Recorder::new(), 2, FairnessMode::Throughput);
        let resp = r.write_with(|ds| ds.apply(&RecorderOp::Record(7)));
        assert_eq!(resp, RecorderResp::RecordedAt(0));
        let seen = r.read_with(ReaderId::Slot(1), |ds| ds.apply_readonly(&RecorderOp::Last));
        assert_eq!(seen, RecorderResp::Last(Some(7)));
        let shared = r.read_with(ReaderId::Shared, |ds| ds.apply_readonly(&RecorderOp::Count));
        assert_eq!(shared, RecorderResp::Count(1));
    }
}
