//! A set of independent operation logs for multi-log (CNR-style)
//! replication.
//!
//! NrOS-style concurrent node replication scales the *write* path by
//! partitioning the update stream across `L` independent logs: operations
//! that commute (single-key operations hashing to different logs) flow
//! through per-log combiners concurrently, while multi-key/scan operations
//! reserve a slot in **every** log and apply at the joint frontier. Each
//! log keeps its own `logTail`/`completedTail`; there is no shared index
//! between logs, which is exactly what removes the single-combiner
//! bottleneck.
//!
//! [`LogSet`] wraps `L` [`Log`]s behind a *safe* reservation API: a
//! successful [`LogSet::try_reserve`] returns a linear [`Reservation`]
//! token, and the write/publish protocol (`write payload → persist →
//! publish emptyBit`) is enforced by the token's stage tracking, so the
//! underlying log's `unsafe` exactly-once contract is discharged here
//! rather than re-proved at every call site. The single remaining caller
//! obligation — slot reuse only after every reader has passed an entry —
//! is concentrated in the one `unsafe fn` ([`LogSet::mark_applied`]).

use crate::log::Log;

/// How far the write/publish protocol has progressed on a reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// Entries reserved; payloads not yet (all) written.
    Reserved,
    /// All payloads written; emptyBits not yet flipped.
    Written,
    /// Published: the reservation is spent.
    Published,
}

/// Exclusive ownership of `n` consecutive entries in one log of a
/// [`LogSet`], granted by a successful [`LogSet::try_reserve`].
///
/// The token is linear (not `Clone`) and tracks protocol progress, so the
/// holder can only drive each entry through *write payload exactly once,
/// then publish exactly once* — the contract the underlying [`Log`]'s
/// unsafe API requires. Dropping an unpublished reservation leaves a hole
/// other appliers will spin on; the universal construction never does
/// (combiners publish everything they reserve, even on shutdown).
#[derive(Debug)]
pub struct Reservation {
    log: usize,
    start: u64,
    n: u64,
    written: u64,
    stage: Stage,
}

impl Reservation {
    /// Which log of the set the entries live in.
    pub fn log(&self) -> usize {
        self.log
    }

    /// First reserved (monotonic) index.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// Number of reserved entries.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// True iff the reservation is empty (never produced by `try_reserve`,
    /// which rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The half-open reserved index range.
    pub fn range(&self) -> std::ops::Range<u64> {
        self.start..self.start + self.n
    }
}

/// `L` independent circular operation logs (see module docs).
pub struct LogSet<O> {
    logs: Box<[Log<O>]>,
}

impl<O: Clone> LogSet<O> {
    /// Creates `logs` logs of `size` slots each.
    ///
    /// # Panics
    /// Panics if `logs == 0` or `size < 2`.
    pub fn new(logs: usize, size: u64) -> Self {
        assert!(logs > 0, "a log set needs at least one log");
        LogSet {
            logs: (0..logs).map(|_| Log::new(size)).collect(),
        }
    }

    /// Number of logs in the set.
    pub fn len(&self) -> usize {
        self.logs.len()
    }

    /// True iff the set is empty (never: construction requires ≥ 1 log).
    pub fn is_empty(&self) -> bool {
        self.logs.is_empty()
    }

    /// Read access to log `l` (its indexes, `for_each_op`, `is_full`).
    pub fn log(&self, l: usize) -> &Log<O> {
        &self.logs[l]
    }

    /// Every log's `completedTail`, in log order — the *joint frontier*
    /// vector cross-log operations and the persistence cut are defined
    /// against.
    pub fn completed_vector(&self) -> Vec<u64> {
        self.logs.iter().map(|lg| lg.completed_tail()).collect()
    }

    /// Attempts to reserve `n > 0` entries at the tail of log `l`.
    ///
    /// The reservation is refused — before any CAS — if writing `n`
    /// entries could lap a slot some reader has not passed
    /// (`tail + n > applied_floor + size`, with the floor maintained via
    /// [`LogSet::mark_applied`]). Returns `None` on a lost CAS race or on
    /// backpressure; the caller retries after re-reading the tail (and,
    /// for backpressure, after advancing appliers and the floor).
    pub fn try_reserve(&self, l: usize, n: u64) -> Option<Reservation> {
        assert!(n > 0, "empty reservations are not allowed");
        let log = &self.logs[l];
        let tail = log.log_tail();
        // Ring-capacity check: index `i` may be (re)written only once every
        // reader's tail passed `i - size`, i.e. `i < applied_floor + size`.
        if tail + n > self.applied_floor(l) + log.size() {
            return None;
        }
        if !log.try_reserve(tail, n) {
            return None;
        }
        Some(Reservation {
            log: l,
            start: tail,
            n,
            written: 0,
            stage: Stage::Reserved,
        })
    }

    /// Writes the payload of the reservation's `offset`-th entry (offsets
    /// must arrive in order `0, 1, …, n−1`). The entry stays unpublished —
    /// invisible to appliers — until [`LogSet::publish`].
    ///
    /// # Panics
    /// Panics on out-of-order offsets or a spent reservation — protocol
    /// bugs, not runtime conditions.
    pub fn write(&self, res: &mut Reservation, offset: u64, op: O) {
        assert_eq!(res.stage, Stage::Reserved, "reservation already published");
        assert_eq!(res.written, offset, "payloads must be written in order");
        // SAFETY: `res` proves exclusive ownership of the index (granted by
        // the reservation CAS, linear token), the in-order offset check
        // makes this the single write of this index, and try_reserve's
        // capacity check established the slot is past every reader
        // (mark_applied contract).
        unsafe { self.logs[res.log].write_payload(res.start + offset, op) };
        res.written += 1;
        if res.written == res.n {
            res.stage = Stage::Written;
        }
    }

    /// Publishes every entry of the reservation (flips the emptyBits, in
    /// index order), making them visible to appliers. The caller performs
    /// its durability work (flush payloads + fence) *between*
    /// [`LogSet::write`] and this call — that ordering is what makes a
    /// published entry durably recoverable.
    ///
    /// # Panics
    /// Panics unless every payload was written and the reservation has not
    /// already been published.
    pub fn publish(&self, res: &mut Reservation) {
        assert_eq!(res.stage, Stage::Written, "publish requires all payloads");
        for idx in res.range() {
            // SAFETY: ownership + write-before-publish enforced by the
            // stage machine above; called once per index (stage flips to
            // Published below).
            unsafe { self.logs[res.log].publish(idx) };
        }
        res.stage = Stage::Published;
    }

    /// Advances log `l`'s `completedTail` to at least `to` (CAS-max).
    /// Returns `true` if this call advanced it.
    pub fn advance_completed(&self, l: usize, to: u64) -> bool {
        self.logs[l].advance_completed_tail(to)
    }

    /// Declares that every reader of log `l` (the lane replica, the
    /// persistence replicas) has applied all entries below `to`, unpinning
    /// their slots for reuse by later laps.
    ///
    /// This is the one hole in the otherwise-safe reservation API, kept as
    /// a single audited site instead of leaking `unsafe` into every
    /// combiner.
    ///
    /// # Safety
    /// All entries of log `l` below `to` must never be read again (every
    /// reader's local tail has passed them, and no new reader will start
    /// below `to`). Overstating `to` lets a reservation overwrite an entry
    /// mid-read.
    pub unsafe fn mark_applied(&self, l: usize, to: u64) {
        // The log's logMin cell stores the highest *reservable* index
        // (floor + size − 1, the paper's convention — its initial value
        // size − 1 encodes floor 0). There is no logMin scan protocol here
        // (each lane has one replica), so the cell simply tracks the
        // caller's floor, monotone.
        let log = &self.logs[l];
        let log_min = to + log.size() - 1;
        if log.log_min() < log_min {
            log.set_log_min(log_min);
        }
    }

    /// The current applied floor of log `l` (see [`LogSet::mark_applied`]).
    pub fn applied_floor(&self, l: usize) -> u64 {
        let log = &self.logs[l];
        log.log_min() - (log.size() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reserve<O: Clone>(set: &LogSet<O>, l: usize, n: u64) -> Reservation {
        loop {
            if let Some(r) = set.try_reserve(l, n) {
                return r;
            }
        }
    }

    #[test]
    fn logs_have_independent_indexes() {
        let set: LogSet<u64> = LogSet::new(3, 8);
        // Fresh logs: applied floor 0 admits exactly the first lap.
        let mut r0 = reserve(&set, 0, 2);
        let mut r2 = reserve(&set, 2, 5);
        assert_eq!((r0.log(), r0.start(), r0.len()), (0, 0, 2));
        assert_eq!((r2.log(), r2.start(), r2.len()), (2, 0, 5));
        assert_eq!(set.log(1).log_tail(), 0, "untouched log keeps tail 0");
        for i in 0..2 {
            set.write(&mut r0, i, 100 + i);
        }
        for i in 0..5 {
            set.write(&mut r2, i, 200 + i);
        }
        set.publish(&mut r0);
        set.publish(&mut r2);
        set.advance_completed(0, 2);
        set.advance_completed(2, 5);
        assert_eq!(set.completed_vector(), vec![2, 0, 5]);
        let mut seen = Vec::new();
        set.log(2).for_each_op(0, 5, |i, op| seen.push((i, *op)));
        assert_eq!(seen, vec![(0, 200), (1, 201), (2, 202), (3, 203), (4, 204)]);
    }

    #[test]
    fn entries_invisible_until_publish() {
        let set: LogSet<u64> = LogSet::new(2, 4);
        let mut r = reserve(&set, 1, 2);
        set.write(&mut r, 0, 7);
        set.write(&mut r, 1, 8);
        assert!(!set.log(1).is_full(0), "written ≠ published");
        set.publish(&mut r);
        assert!(set.log(1).is_full(0) && set.log(1).is_full(1));
    }

    #[test]
    fn reserve_backpressures_at_ring_capacity() {
        let set: LogSet<u64> = LogSet::new(1, 4);
        // Floor 0: at most `size` entries may be outstanding.
        assert!(set.try_reserve(0, 5).is_none(), "over capacity");
        let mut r = set.try_reserve(0, 4).expect("exactly size fits");
        for i in 0..4 {
            set.write(&mut r, i, i);
        }
        set.publish(&mut r);
        assert!(set.try_reserve(0, 1).is_none(), "ring full at floor 0");
        // SAFETY: entries below 2 will not be read again in this test.
        unsafe { set.mark_applied(0, 2) };
        assert_eq!(set.applied_floor(0), 2);
        assert!(set.try_reserve(0, 2).is_some());
        assert!(set.try_reserve(0, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_writes_rejected() {
        let set: LogSet<u64> = LogSet::new(1, 8);
        let mut r = reserve(&set, 0, 2);
        set.write(&mut r, 1, 0);
    }

    #[test]
    #[should_panic(expected = "all payloads")]
    fn publish_requires_every_payload() {
        let set: LogSet<u64> = LogSet::new(1, 8);
        let mut r = reserve(&set, 0, 2);
        set.write(&mut r, 0, 0);
        set.publish(&mut r);
    }

    #[test]
    fn applied_floor_is_monotone() {
        let set: LogSet<u64> = LogSet::new(2, 8);
        // SAFETY: no concurrent readers in this test.
        unsafe {
            set.mark_applied(0, 9);
            set.mark_applied(0, 3); // regress attempt: ignored
        }
        assert_eq!(set.applied_floor(0), 9);
        assert_eq!(set.applied_floor(1), 0, "other logs untouched");
    }

    #[test]
    fn concurrent_lanes_make_disjoint_reservations() {
        use std::sync::Arc;
        let set: Arc<LogSet<u64>> = Arc::new(LogSet::new(2, 1 << 12));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let set = Arc::clone(&set);
                std::thread::spawn(move || {
                    let l = t % 2;
                    let mut starts = Vec::new();
                    for _ in 0..200 {
                        let mut r = loop {
                            if let Some(r) = set.try_reserve(l, 2) {
                                break r;
                            }
                        };
                        starts.push(r.start());
                        set.write(&mut r, 0, 1);
                        set.write(&mut r, 1, 2);
                        set.publish(&mut r);
                    }
                    (l, starts)
                })
            })
            .collect();
        let mut per_log: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        for h in handles {
            let (l, starts) = h.join().unwrap();
            per_log[l].extend(starts);
        }
        for lane in &mut per_log {
            lane.sort_unstable();
            for (i, s) in lane.iter().enumerate() {
                assert_eq!(*s, (i as u64) * 2, "reservations must tile the log");
            }
        }
        assert_eq!(set.log(0).log_tail(), 800);
        assert_eq!(set.log(1).log_tail(), 800);
    }
}
