//! The node-replication universal construction.

use prep_sync::cell::{AtomicBool, Ordering};

use crossbeam_utils::CachePadded;

use prep_seqds::SequentialObject;
use prep_sync::{ReaderId, TicketLock, Waiter};
use prep_topology::ThreadAssignment;

use prep_sync::{ReadMode, WINDOW_READS_PER_READER};

use crate::hooks::{NoopHooks, NrHooks};
use crate::log::Log;
use crate::replica::{Replica, SlotReadState, SLOT_DONE, SLOT_EMPTY, SLOT_PENDING};
use crate::FairnessMode;

/// A registered worker's identity: its NUMA node (→ replica) and its slot in
/// that node's flat-combining batch.
///
/// Deliberately neither `Clone` nor `Copy`: a token is the exclusive
/// capability to use one batch slot, and two threads sharing a token would
/// race on it. Obtained from [`NodeReplicated::register`].
#[derive(Debug)]
pub struct ThreadToken {
    worker: usize,
    node: usize,
    slot: usize,
    /// Dedicated reader slot in the replica's distributed reader-writer
    /// lock. Allocated at registration; exclusive to this token, so a
    /// read-only fast path touches no cacheline shared with another reader.
    rslot: usize,
}

impl ThreadToken {
    /// The worker index this token was registered for.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// The NUMA node (replica index) this worker operates on.
    pub fn node(&self) -> usize {
        self.node
    }

    /// This worker's dedicated reader slot in its replica's lock.
    pub fn reader_slot(&self) -> usize {
        self.rslot
    }
}

/// NR-UC: a concurrent object built from a sequential one by node
/// replication (paper §3). With the default [`NoopHooks`] this is the
/// volatile construction (the paper's PREP-V); `prep-uc` instantiates it
/// with persistence hooks.
///
/// ```
/// use prep_nr::NodeReplicated;
/// use prep_seqds::recorder::{Recorder, RecorderOp, RecorderResp};
/// use prep_topology::Topology;
///
/// let asg = Topology::small().assign_workers(2);
/// let nr = NodeReplicated::new(Recorder::new(), asg, 64);
/// let t0 = nr.register(0);
/// assert_eq!(
///     nr.execute(&t0, RecorderOp::Record(7)),
///     RecorderResp::RecordedAt(0)
/// );
/// assert_eq!(nr.execute(&t0, RecorderOp::Count), RecorderResp::Count(1));
/// ```
pub struct NodeReplicated<T: SequentialObject, H: NrHooks<T::Op> = NoopHooks> {
    log: Log<T::Op>,
    replicas: Box<[Replica<T>]>,
    assignment: ThreadAssignment,
    beta: u64,
    hooks: H,
    /// One-shot registration flags, one per worker. Padded: workers
    /// register concurrently at startup, and an unpadded `[AtomicBool]`
    /// puts ~64 flags on one line — every registration RMW then stalls
    /// every other core's registration (misses measured 10-20x higher in
    /// `registration_land_rush`; see tests/registration_padding.rs).
    registered: Box<[CachePadded<AtomicBool>]>,
    /// FIFO reservation lock, present in [`FairnessMode::StarvationFree`].
    fair_reserve: Option<TicketLock>,
    /// The fairness mode this instance was built with; routes the read path
    /// (locked, optimistic, or adaptive).
    fairness: FairnessMode,
}

impl<T: SequentialObject> NodeReplicated<T, NoopHooks> {
    /// Builds the volatile construction (PREP-V): `obj` is replicated once
    /// per populated NUMA node of `assignment`, coordinated through a log of
    /// `log_size` entries.
    pub fn new(obj: T, assignment: ThreadAssignment, log_size: u64) -> Self {
        Self::with_hooks(obj, assignment, log_size, NoopHooks)
    }
}

impl<T: SequentialObject, H: NrHooks<T::Op>> NodeReplicated<T, H> {
    /// Builds the construction with explicit persistence hooks (default
    /// [`FairnessMode::Throughput`]).
    pub fn with_hooks(obj: T, assignment: ThreadAssignment, log_size: u64, hooks: H) -> Self {
        Self::with_hooks_and_fairness(obj, assignment, log_size, hooks, FairnessMode::default())
    }

    /// Builds the construction with explicit persistence hooks and liveness
    /// mode.
    ///
    /// # Panics
    /// Panics if `log_size` is too small for deadlock-free reclamation: the
    /// ring must comfortably hold every node's in-flight batch, so we
    /// require `log_size >= 2 * (nodes + 1) * β + 2` (see
    /// `update_or_wait_on_log_min`).
    pub fn with_hooks_and_fairness(
        obj: T,
        assignment: ThreadAssignment,
        log_size: u64,
        hooks: H,
        fairness: FairnessMode,
    ) -> Self {
        let nodes = assignment.populated_nodes();
        let beta = assignment.beta() as u64;
        let min_log = 2 * (nodes as u64 + 1) * beta + 2;
        assert!(
            log_size >= min_log,
            "log_size {log_size} too small: need at least {min_log} for \
             {nodes} nodes with batch size {beta}"
        );
        let replicas: Box<[Replica<T>]> = (0..nodes)
            .map(|_| Replica::new(obj.clone_object(), beta as usize, fairness))
            .collect();
        let registered = (0..assignment.workers())
            .map(|_| CachePadded::new(AtomicBool::new(false)))
            .collect();
        NodeReplicated {
            log: Log::new(log_size),
            replicas,
            assignment,
            beta,
            hooks,
            registered,
            fair_reserve: match fairness {
                FairnessMode::StarvationFree => Some(TicketLock::new()),
                FairnessMode::Throughput
                | FairnessMode::ThroughputCentralized
                | FairnessMode::Optimistic
                | FairnessMode::Adaptive => None,
            },
            fairness,
        }
    }

    /// Registers worker `worker` (an index into the assignment), returning
    /// its token. Each worker may register exactly once.
    ///
    /// # Panics
    /// Panics on out-of-range or duplicate registration.
    pub fn register(&self, worker: usize) -> ThreadToken {
        assert!(
            worker < self.assignment.workers(),
            "worker {worker} out of range ({} workers)",
            self.assignment.workers()
        );
        // ord: AcqRel so duplicate registrations race deterministically
        // (exactly one swap sees false) and the winner's token derivation
        // is ordered after the flag for any observer of the panic path.
        let was = self.registered[worker].swap(true, Ordering::AcqRel);
        assert!(!was, "worker {worker} registered twice");
        // The batch-slot index is dense per node (0..β), so it doubles as
        // the worker's dedicated reader slot in the replica lock, which was
        // sized with β slots.
        let slot = self.assignment.slot_of(worker);
        ThreadToken {
            worker,
            node: self.assignment.node_of(worker),
            slot,
            rslot: slot,
        }
    }

    /// The paper's `ExecuteConcurrent`: runs `op` against the object with
    /// linearizable semantics and returns its response.
    pub fn execute(&self, token: &ThreadToken, op: T::Op) -> T::Resp {
        if T::is_read_only(&op) {
            self.execute_readonly(token, op)
        } else {
            self.execute_update(token, op)
        }
    }

    fn execute_update(&self, token: &ThreadToken, op: T::Op) -> T::Resp {
        let replica = &self.replicas[token.node];
        let slot = &replica.slots[token.slot];
        // ord: debug sanity read of our own slot; no synchronization.
        debug_assert_eq!(slot.state.load(Ordering::Relaxed), SLOT_EMPTY);
        // Publish the operation in our batch slot.
        // SAFETY: we own the slot while it is EMPTY.
        unsafe { *slot.op.get() = Some(op) };
        // ord: Release publishes the op write above to the combiner's
        // Acquire scan.
        slot.state.store(SLOT_PENDING, Ordering::Release);

        let mut w = Waiter::new();
        loop {
            // ord: Acquire pairs with the combiner's DONE Release; the resp
            // write is visible before we take it.
            if slot.state.load(Ordering::Acquire) == SLOT_DONE {
                // SAFETY: DONE (acquire) synchronizes with the combiner's
                // resp write; the slot is ours again.
                let resp = unsafe { (*slot.resp.get()).take() }.expect("combiner left no resp");
                // ord: Release returns the slot: our resp take is ordered
                // before the next PENDING publisher's Acquire.
                slot.state.store(SLOT_EMPTY, Ordering::Release);
                return resp;
            }
            if let Some(_guard) = replica.combiner.try_lock() {
                // We are the combiner for this node.
                self.combine(token.node);
                // Our own PENDING slot was part of the batch (or a previous
                // combiner already completed it); re-check DONE.
                continue;
            }
            w.wait();
        }
    }

    /// The combiner: collects this node's pending batch, appends it to the
    /// log, brings the local replica up to date, and delivers responses.
    ///
    /// Caller must hold `replicas[node]`'s combiner lock.
    fn combine(&self, node: usize) {
        let replica = &self.replicas[node];

        // 1. Collect the batch.
        let mut slot_ids: Vec<usize> = Vec::with_capacity(replica.slots.len());
        let mut ops: Vec<T::Op> = Vec::with_capacity(replica.slots.len());
        for (i, s) in replica.slots.iter().enumerate() {
            // ord: Acquire pairs with the owner's PENDING Release; the op
            // write is visible before the combiner takes it.
            if s.state.load(Ordering::Acquire) == SLOT_PENDING {
                // SAFETY: PENDING (acquire) synchronizes with the owner's op
                // write; the combiner takes ownership of the op.
                let op = unsafe { (*s.op.get()).take() }.expect("PENDING slot without op");
                slot_ids.push(i);
                ops.push(op);
            }
        }
        if ops.is_empty() {
            return;
        }
        let n = ops.len() as u64;

        // 2. Reserve log entries (gated by the flush boundary, and running
        //    the logMin reclamation protocol).
        let start = self.reserve(n, node);
        let end = start + n;

        // 3. Write payloads; persist them (durable); persist the published
        //    state (durable); only then publish. §4.1 "Operation Log". Ops
        //    are *moved* into the log — the log is the single home of the
        //    batch from here on; step 4 applies it from the log slots, and
        //    the durable hook reads back the entries it needs via `op_at`.
        //
        //    The durable publish persistence MUST precede the volatile
        //    publish: the moment an emptyBit is set, any combiner on any
        //    node can apply the entry and CAS `completedTail` past it —
        //    and then durably publish that completedTail, covering an
        //    entry whose emptyBit this thread has flushed but not yet
        //    fenced (a crash there loses a covered entry). Publishing last
        //    closes the window; the ordering sanitizer caught the original
        //    race live (rule 2, tail-before-entry).
        for (k, op) in ops.into_iter().enumerate() {
            // SAFETY: we reserved [start, end); the logMin protocol ran in
            // `reserve`, so these slots are reusable.
            unsafe { self.log.write_payload(start + k as u64, op) };
        }
        self.hooks.persist_batch_payload(start..end);
        self.hooks
            // SAFETY: (closure) we own [start, end) and wrote every payload
            // above, so reading our own still-unpublished entries is race-free.
            .persist_batch_published(start..end, &|idx| unsafe { self.log.read_own_payload(idx) });
        for k in 0..n {
            // SAFETY: payload written above.
            unsafe { self.log.publish(start + k) };
        }

        // 4. Bring the local replica up to date through `end`, recording
        //    responses for our own batch (applied from the log slots).
        replica.write_with(|ds| {
            // ord: Acquire pairs with local_tail Release stores: entries
            // below `from` were applied before we resume from there.
            let from = replica.local_tail.load(Ordering::Acquire);
            debug_assert!(
                from <= start,
                "replica applied our batch before we combined it"
            );
            // Foreign entries first (responses belong to other nodes).
            self.log.for_each_op(from, start, |_, op| {
                ds.apply(op);
            });
            // Our batch, capturing responses.
            self.log.for_each_op(start, end, |idx, op| {
                let resp = ds.apply(op);
                let s = &replica.slots[slot_ids[(idx - start) as usize]];
                // SAFETY: between PENDING and DONE the combiner owns the
                // slot's resp field.
                unsafe { *s.resp.get() = Some(resp) };
            });
            // ord: Release publishes the replica state just applied;
            // readers gate on local_tail >= completedTail snapshot.
            replica.local_tail.store(end, Ordering::Release);
        });

        // 5. Advance completedTail; make it durable before releasing any
        //    response (durable mode).
        self.log.advance_completed_tail(end);
        self.hooks.ensure_completed_tail_durable(end);

        // 6. Release responses.
        for &slot_i in &slot_ids {
            replica.slots[slot_i]
                .state
                // ord: Release publishes the resp write to the owner's
                // Acquire poll.
                .store(SLOT_DONE, Ordering::Release);
        }
    }

    /// Algorithm 4: reserve `n` entries, blocking at the flush boundary.
    fn reserve(&self, n: u64, node: usize) -> u64 {
        // Starvation-free mode serializes reservations through a FIFO
        // ticket lock (§4.2: "Replacing the CAS with a fair lock would
        // allow for starvation-free update operations"). The ticket only
        // covers the gate + CAS; logMin maintenance happens after release
        // so waiting on a straggler replica cannot block other reservers.
        // lock-level: 2 the reservation gate is only ever taken by a
        // combiner that already holds its replica's combiner lock (level
        // 1), so combiner -> reserve-gate is the one global order; its
        // TicketLock type otherwise defaults to the level-0 cross-log gate
        let fair_guard = self.fair_reserve.as_ref().map(|l| l.lock());
        let mut w = Waiter::new();
        let tail = loop {
            let tail = self.log.log_tail();
            // Gate: PREP refuses admission while the persistence thread has
            // not yet persisted up to the flush boundary. While waiting we
            // hold our replica's combiner lock, so we must keep servicing
            // updateReplicaNow requests — a logMin updater may need *our*
            // replica to advance before the boundary can move.
            if !self.hooks.reserve_admitted(tail) {
                // ord: Acquire/Release handshake on updateReplicaNow — see
                // advance_log_min's straggler help protocol.
                if self.replicas[node].update_now.load(Ordering::Acquire) {
                    self.update_replica_to(node, self.log.completed_tail());
                    self.replicas[node]
                        .update_now
                        // ord: Release acknowledges the help request with
                        // the catch-up visible.
                        .store(false, Ordering::Release);
                }
                w.wait();
                continue;
            }
            if self.log.try_reserve(tail, n) {
                break tail;
            }
            debug_assert!(fair_guard.is_none(), "ticketed CAS cannot lose");
            w.wait();
        };
        drop(fair_guard);
        self.update_or_wait_on_log_min(tail, tail + n, node);
        tail
    }

    /// Algorithm 3: make sure `[tail, new_tail)` is safe to write, advancing
    /// `logMin` if our reservation crossed the lowMark, or waiting (and
    /// helping our own replica) otherwise.
    fn update_or_wait_on_log_min(&self, tail: u64, new_tail: u64, node: usize) {
        let beta = self.beta;
        let low_mark = self.log.log_min().saturating_sub(beta);
        if new_tail <= low_mark {
            return;
        }
        if tail <= low_mark {
            // Our reservation contains the lowMark entry: we advance logMin.
            self.advance_log_min(new_tail, node);
        } else {
            // Someone earlier owns the lowMark; wait for logMin to advance,
            // helping our own replica if asked to (Algorithm 3, else-branch).
            let mut w = Waiter::new();
            while self.log.log_min().saturating_sub(beta) < new_tail {
                // ord: Acquire/Release handshake on updateReplicaNow — see
                // advance_log_min's straggler help protocol.
                if self.replicas[node].update_now.load(Ordering::Acquire) {
                    self.update_replica_to(node, self.log.completed_tail());
                    self.replicas[node]
                        .update_now
                        // ord: Release acknowledges the help request with
                        // the catch-up visible.
                        .store(false, Ordering::Release);
                }
                w.wait();
            }
        }
    }

    fn advance_log_min(&self, new_tail: u64, node: usize) {
        let size = self.log.size();
        let mut outer = Waiter::new();
        loop {
            let log_min = self.log.log_min();
            if log_min.saturating_sub(self.beta) >= new_tail {
                return;
            }
            let low_mark = log_min.saturating_sub(self.beta);
            // Scan every localTail: volatile replicas then persistent ones.
            let mut lowest = u64::MAX;
            let mut who = 0usize;
            for (i, r) in self.replicas.iter().enumerate() {
                let lt = r.local_tail();
                if lt < lowest {
                    lowest = lt;
                    who = i;
                }
            }
            let ptails = self.hooks.persistent_tails();
            for (j, &lt) in ptails.iter().enumerate() {
                if lt < lowest {
                    lowest = lt;
                    who = self.replicas.len() + j;
                }
            }

            if lowest + size - 1 == log_min {
                // The straggler hasn't moved since logMin was last advanced:
                // help it (Algorithm 3).
                if who >= self.replicas.len() {
                    // A persistence-only replica: ask PREP to persist-and-
                    // swap early by lowering the flush boundary.
                    self.hooks
                        .help_persistent_straggler(who - self.replicas.len(), low_mark);
                    outer.wait();
                } else if who == node {
                    // Our own replica is the straggler; we hold its combiner
                    // lock, so update it directly. completedTail never
                    // covers our still-unwritten reservation, so this cannot
                    // consume our own pending batch.
                    self.update_replica_to(node, self.log.completed_tail());
                    outer.wait();
                } else {
                    // Another node's replica: raise its updateReplicaNow
                    // flag and wait; if its threads are idle, help remotely
                    // under its combiner lock (safe: holding the combiner
                    // lock proves no combine is in flight there, and we only
                    // apply published entries up to completedTail).
                    let straggler = &self.replicas[who];
                    // ord: Release so the straggler's Acquire load of the
                    // flag also sees the log state that made helping
                    // necessary.
                    straggler.update_now.store(true, Ordering::Release);
                    let baseline = lowest;
                    let mut w = Waiter::new();
                    while straggler.local_tail() == baseline && self.log.completed_tail() > baseline
                    {
                        if w.is_contended() {
                            if let Some(_guard) = straggler.combiner.try_lock() {
                                self.update_replica_to(who, self.log.completed_tail());
                            }
                        }
                        w.wait();
                    }
                    // ord: Release clears the request after the straggler
                    // moved (or was helped remotely).
                    straggler.update_now.store(false, Ordering::Release);
                }
                continue;
            }

            self.log.set_log_min(lowest + size - 1);
            // Loop: recompute — one advance may not cover new_tail.
        }
    }

    /// Applies published log entries `[localTail, to)` to `node`'s replica.
    ///
    /// Caller must hold the replica's combiner lock.
    fn update_replica_to(&self, node: usize, to: u64) {
        let replica = &self.replicas[node];
        // Already there: skip the lock and the version bump a no-op write
        // bracket would cost optimistic readers.
        if replica.local_tail() >= to {
            return;
        }
        replica.write_with(|ds| {
            // ord: Acquire pairs with local_tail Release stores (resume
            // point covers all prior applications).
            let from = replica.local_tail.load(Ordering::Acquire);
            if from >= to {
                return;
            }
            self.log.for_each_op(from, to, |_, op| {
                ds.apply(op);
            });
            // ord: Release publishes the applied state with the new tail.
            replica.local_tail.store(to, Ordering::Release);
        });
    }

    fn execute_readonly(&self, token: &ThreadToken, op: T::Op) -> T::Resp {
        let replica = &self.replicas[token.node];
        // Snapshot completedTail at invocation: the response must reflect at
        // least every operation completed before this read began (§3).
        let ct = self.log.completed_tail();
        // Fast path: the replica has already applied everything this read
        // must observe. (The `local_tail` Acquire load also guarantees the
        // version word below is at least the bracket that published that
        // tail — see DESIGN.md "Why optimistic reads are safe".)
        if replica.local_tail() >= ct {
            return self.read_caught_up(replica, token.rslot, &op);
        }
        // Slow path: the replica is behind. This path writes shared state
        // anyway (combiner lock, log application), so one more counter bump
        // costs nothing and makes the fast-path hit rate bench-visible.
        // ord: statistics counter; read only by tests/benches after join.
        replica.read_slow.fetch_add(1, Ordering::Relaxed);
        let mut w = Waiter::new();
        loop {
            if replica.local_tail() >= ct {
                // The replica just advanced, so its version just changed:
                // optimism would only validate-fail. Take the slot path.
                return replica.read_with(ReaderId::Slot(token.rslot), |ds| ds.apply_readonly(&op));
            }
            // Become the combiner and catch the replica up, or wait for the
            // current combiner.
            if let Some(_guard) = replica.combiner.try_lock() {
                self.update_replica_to(token.node, self.log.completed_tail());
                // ord: Release — we just serviced any pending help request
                // as a side effect of catching up.
                replica.update_now.store(false, Ordering::Release);
                continue;
            }
            w.wait();
        }
    }

    /// Serves a read-only op against a caught-up replica, routed by the
    /// fairness mode:
    ///
    /// * locked modes acquire this token's dedicated reader slot — zero
    ///   stores to any cacheline shared with another reader;
    /// * optimistic routes run the read lock-free under the seqlock bracket
    ///   — zero RMWs, zero stores to *any* shared cacheline — and fall back
    ///   to the slot on validation failure;
    /// * [`FairnessMode::Adaptive`] consults the replica's selector and
    ///   feeds it a window sample every [`WINDOW_READS_PER_READER`] of this
    ///   reader's reads.
    fn read_caught_up(&self, replica: &Replica<T>, rslot: usize, op: &T::Op) -> T::Resp {
        let state = &replica.read_state[rslot];
        match self.fairness {
            FairnessMode::ThroughputCentralized | FairnessMode::StarvationFree => {
                replica.read_with(ReaderId::Slot(rslot), |ds| ds.apply_readonly(op))
            }
            FairnessMode::Throughput => {
                // Optimistic skip, gated on an *observed write-free window*:
                // the version is unchanged since this reader's last locked
                // read, so combiners are quiet and validation is near-certain
                // to succeed. Outside the window, pay the slot RMW — it is
                // cheaper than likely-wasted optimistic attempts.
                // ord: advisory gate; correctness comes from the
                // read_begin/validate bracket inside read_optimistic.
                if replica.version.current() == state.last_version.load(Ordering::Relaxed) {
                    if let Some(resp) = replica.read_optimistic(|ds| ds.apply_readonly(op)) {
                        SlotReadState::bump(&state.fast_optimistic);
                        return resp;
                    }
                }
                let resp = replica.read_with(ReaderId::Slot(rslot), |ds| ds.apply_readonly(op));
                // Record the version this locked read observed; while it
                // stays put, later reads have their write-free window.
                let observed = replica.version.current();
                // ord: single-writer record on our own line (advisory gate).
                state.last_version.store(observed, Ordering::Relaxed);
                resp
            }
            FairnessMode::Optimistic => {
                if let Some(resp) = replica.read_optimistic(|ds| ds.apply_readonly(op)) {
                    SlotReadState::bump(&state.fast_optimistic);
                    return resp;
                }
                replica.read_with(ReaderId::Slot(rslot), |ds| ds.apply_readonly(op))
            }
            FairnessMode::Adaptive => {
                let reads = SlotReadState::bump(&state.reads);
                if reads.is_multiple_of(WINDOW_READS_PER_READER) {
                    replica.evaluate_selector();
                }
                match replica.selector.mode() {
                    ReadMode::Optimistic => {
                        if let Some(resp) = replica.read_optimistic(|ds| ds.apply_readonly(op)) {
                            SlotReadState::bump(&state.fast_optimistic);
                            return resp;
                        }
                        replica.read_with(ReaderId::Slot(rslot), |ds| ds.apply_readonly(op))
                    }
                    ReadMode::Distributed => {
                        replica.read_with(ReaderId::Slot(rslot), |ds| ds.apply_readonly(op))
                    }
                    // Route through the shared overflow line: all readers
                    // count on one hot line, approximating the centralized
                    // lock without swapping lock objects.
                    ReadMode::Centralized => {
                        replica.read_with(ReaderId::Shared, |ds| ds.apply_readonly(op))
                    }
                }
            }
        }
    }

    /// Current `completedTail` (used by the persistence thread and tests).
    pub fn completed_tail(&self) -> u64 {
        self.log.completed_tail()
    }

    /// The shared log (the persistence thread replays from it; recovery
    /// reads it).
    pub fn log(&self) -> &Log<T::Op> {
        &self.log
    }

    /// The persistence hooks.
    pub fn hooks(&self) -> &H {
        &self.hooks
    }

    /// The worker→node assignment this instance was built with.
    pub fn assignment(&self) -> &ThreadAssignment {
        &self.assignment
    }

    /// Byte address of worker `w`'s registration flag. Test-only probe:
    /// `tests/registration_padding.rs` pins the flags to distinct cache
    /// lines so concurrent registration does not false-share.
    #[doc(hidden)]
    pub fn registration_flag_addr(&self, worker: usize) -> usize {
        &*self.registered[worker] as *const AtomicBool as usize
    }

    /// Number of volatile replicas (= populated NUMA nodes).
    pub fn num_replicas(&self) -> usize {
        self.replicas.len()
    }

    /// Batch capacity β.
    pub fn beta(&self) -> u64 {
        self.beta
    }

    /// Total read-only operations that missed the zero-contention fast path
    /// (their replica was behind `completedTail`), summed over replicas.
    pub fn read_slow_paths(&self) -> u64 {
        self.replicas
            .iter()
            // ord: statistics counter (see read_slow bump).
            .map(|r| r.read_slow.load(Ordering::Relaxed))
            .sum()
    }

    /// Total validated optimistic (lock-free) fast-path reads, summed over
    /// replicas.
    pub fn read_fast_optimistic(&self) -> u64 {
        self.replicas
            .iter()
            .map(|r| r.fast_optimistic_total())
            .sum()
    }

    /// Total optimistic reads that failed seqlock validation (a combiner
    /// overlapped the lock-free read), summed over replicas.
    pub fn read_validation_failures(&self) -> u64 {
        self.replicas
            .iter()
            // ord: statistics counter (see the failure-path bump).
            .map(|r| r.read_validation_failures.load(Ordering::Relaxed))
            .sum()
    }

    /// Snapshot of `node`'s replica-lock state words. Test-only probe for
    /// asserting the optimistic fast path stores to no lock word.
    #[doc(hidden)]
    pub fn replica_lock_state_words(&self, node: usize) -> Vec<u64> {
        self.replicas[node].rw.state_words()
    }

    /// Raw seqlock version of `node`'s replica. Test-only probe: reads must
    /// leave it unchanged.
    #[doc(hidden)]
    pub fn replica_version(&self, node: usize) -> u64 {
        self.replicas[node].version.current()
    }

    /// Runs `f` against `node`'s replica under its read lock, after
    /// bringing it up to date with `completedTail` — i.e. observes a state
    /// reflecting every completed update. Test/diagnostic API; callers have
    /// no registered identity, so the lock is taken as [`ReaderId::Shared`]
    /// (the counting overflow line).
    pub fn with_replica<R>(&self, node: usize, f: impl FnOnce(&T) -> R) -> R {
        let replica = &self.replicas[node];
        let ct = self.log.completed_tail();
        let mut f = Some(f);
        let mut w = Waiter::new();
        loop {
            if replica.local_tail() >= ct {
                return replica.read_with(ReaderId::Shared, f.take().expect("runs f once"));
            }
            if let Some(_guard) = replica.combiner.try_lock() {
                self.update_replica_to(node, self.log.completed_tail());
                continue;
            }
            w.wait();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prep_seqds::recorder::{Recorder, RecorderOp, RecorderResp};
    use prep_topology::Topology;
    use std::sync::Arc;

    fn small_nr(workers: usize, log: u64) -> (Arc<NodeReplicated<Recorder>>, usize) {
        // 2 nodes × 4 cores × 1 smt → up to 7 workers across 2 nodes.
        let topo = Topology::new(2, 4, 1);
        let asg = topo.assign_workers(workers);
        let nodes = asg.populated_nodes();
        (
            Arc::new(NodeReplicated::new(Recorder::new(), asg, log)),
            nodes,
        )
    }

    #[test]
    fn single_thread_updates_and_reads() {
        let (nr, _) = small_nr(1, 64);
        let t = nr.register(0);
        for i in 0..10u64 {
            assert_eq!(
                nr.execute(&t, RecorderOp::Record(i)),
                RecorderResp::RecordedAt(i)
            );
        }
        assert_eq!(nr.execute(&t, RecorderOp::Count), RecorderResp::Count(10));
        assert_eq!(
            nr.execute(&t, RecorderOp::Last),
            RecorderResp::Last(Some(9))
        );
    }

    #[test]
    fn caught_up_reads_take_the_fast_path() {
        // Single thread: after each update completes, the local replica is
        // at completedTail, so every read must hit the zero-contention fast
        // path and the slow-path counter must stay at zero.
        let (nr, _) = small_nr(1, 64);
        let t = nr.register(0);
        assert_eq!(t.reader_slot(), 0);
        for i in 0..50u64 {
            nr.execute(&t, RecorderOp::Record(i));
            nr.execute(&t, RecorderOp::Count);
            nr.execute(&t, RecorderOp::Last);
        }
        assert_eq!(nr.read_slow_paths(), 0, "caught-up read took the slow path");
    }

    #[test]
    fn centralized_mode_preserves_correctness() {
        // The readscale ablation baseline (centralized RwSpinLock) must be
        // semantically identical to the distributed default.
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 200;
        let topo = Topology::new(2, 4, 1);
        let asg = topo.assign_workers(THREADS);
        let nr = Arc::new(NodeReplicated::with_hooks_and_fairness(
            Recorder::new(),
            asg,
            128,
            crate::NoopHooks,
            FairnessMode::ThroughputCentralized,
        ));
        let handles: Vec<_> = (0..THREADS)
            .map(|w| {
                let nr = Arc::clone(&nr);
                std::thread::spawn(move || {
                    let t = nr.register(w);
                    for i in 0..PER_THREAD {
                        nr.execute(&t, RecorderOp::Record((w as u64) << 32 | i));
                        if i % 8 == 0 {
                            nr.execute(&t, RecorderOp::Count);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let hist = nr.with_replica(0, |r| r.history().to_vec());
        assert_eq!(hist.len() as u64, THREADS as u64 * PER_THREAD);
        let mut next = [0u64; THREADS];
        for id in &hist {
            let w = (id >> 32) as usize;
            assert_eq!(id & 0xffff_ffff, next[w], "FIFO violated (centralized)");
            next[w] += 1;
        }
    }

    /// The tentpole invariant, end to end: in optimistic mode a caught-up
    /// read performs zero atomic RMWs and zero stores to any shared
    /// cacheline — every lock state word and the version word are
    /// bit-identical across any number of reads, all of which take the
    /// optimistic fast path.
    #[test]
    fn optimistic_read_makes_no_shared_stores() {
        let topo = Topology::new(2, 4, 1);
        let asg = topo.assign_workers(1);
        let nr = NodeReplicated::with_hooks_and_fairness(
            Recorder::new(),
            asg,
            64,
            crate::NoopHooks,
            FairnessMode::Optimistic,
        );
        let t = nr.register(0);
        for i in 0..10u64 {
            nr.execute(&t, RecorderOp::Record(i));
        }

        let words_before = nr.replica_lock_state_words(0);
        let version_before = nr.replica_version(0);
        assert_eq!(version_before % 2, 0, "replica stable between batches");
        const READS: u64 = 1000;
        for _ in 0..READS {
            assert_eq!(nr.execute(&t, RecorderOp::Count), RecorderResp::Count(10));
        }
        assert_eq!(
            nr.replica_lock_state_words(0),
            words_before,
            "an optimistic read stored to a lock state word"
        );
        assert_eq!(
            nr.replica_version(0),
            version_before,
            "an optimistic read bumped the version"
        );
        assert_eq!(nr.read_fast_optimistic(), READS, "reads left the fast path");
        assert_eq!(nr.read_validation_failures(), 0);
        assert_eq!(nr.read_slow_paths(), 0);
    }

    /// The Throughput default's write-free-window skip: with writes quiet,
    /// repeated reads converge to the optimistic path (at most one locked
    /// read per reader per write), and a write re-opens the window.
    #[test]
    fn throughput_mode_skips_slot_rmw_in_write_free_window() {
        let (nr, _) = small_nr(1, 64);
        let t = nr.register(0);
        nr.execute(&t, RecorderOp::Record(1));
        for _ in 0..100u64 {
            nr.execute(&t, RecorderOp::Count);
        }
        // First read after the write is locked (records the version), the
        // other 99 ride the write-free window.
        assert_eq!(nr.read_fast_optimistic(), 99);
        nr.execute(&t, RecorderOp::Record(2));
        nr.execute(&t, RecorderOp::Count);
        assert_eq!(
            nr.read_fast_optimistic(),
            99,
            "read after a write must re-probe under the lock"
        );
        nr.execute(&t, RecorderOp::Count);
        assert_eq!(nr.read_fast_optimistic(), 100, "window re-opens");
    }

    #[test]
    fn optimistic_and_adaptive_modes_preserve_correctness() {
        for fairness in [FairnessMode::Optimistic, FairnessMode::Adaptive] {
            const THREADS: usize = 4;
            const PER_THREAD: u64 = 300;
            let topo = Topology::new(2, 4, 1);
            let asg = topo.assign_workers(THREADS);
            let nr = Arc::new(NodeReplicated::with_hooks_and_fairness(
                Recorder::new(),
                asg,
                128,
                crate::NoopHooks,
                fairness,
            ));
            let handles: Vec<_> = (0..THREADS)
                .map(|w| {
                    let nr = Arc::clone(&nr);
                    std::thread::spawn(move || {
                        let t = nr.register(w);
                        let mut mine = 0u64;
                        for i in 0..PER_THREAD {
                            nr.execute(&t, RecorderOp::Record((w as u64) << 32 | i));
                            mine += 1;
                            match nr.execute(&t, RecorderOp::Count) {
                                RecorderResp::Count(c) => {
                                    assert!(
                                        c >= mine,
                                        "read missed completed updates ({fairness:?})"
                                    )
                                }
                                other => panic!("unexpected resp {other:?}"),
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let hist = nr.with_replica(0, |r| r.history().to_vec());
            assert_eq!(hist.len() as u64, THREADS as u64 * PER_THREAD);
            let mut next = [0u64; THREADS];
            for id in &hist {
                let w = (id >> 32) as usize;
                assert_eq!(id & 0xffff_ffff, next[w], "FIFO violated ({fairness:?})");
                next[w] += 1;
            }
        }
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_rejected() {
        let (nr, _) = small_nr(2, 64);
        let _a = nr.register(0);
        let _b = nr.register(0);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn undersized_log_rejected() {
        let topo = Topology::new(2, 4, 1);
        let asg = topo.assign_workers(7);
        let _ = NodeReplicated::new(Recorder::new(), asg, 8);
    }

    #[test]
    fn concurrent_updates_all_recorded_in_log_order() {
        const THREADS: usize = 6; // spans both nodes
        const PER_THREAD: u64 = 300;
        let (nr, nodes) = small_nr(THREADS, 256);
        assert_eq!(nodes, 2);

        let handles: Vec<_> = (0..THREADS)
            .map(|w| {
                let nr = Arc::clone(&nr);
                std::thread::spawn(move || {
                    let t = nr.register(w);
                    for i in 0..PER_THREAD {
                        let id = (w as u64) << 32 | i;
                        nr.execute(&t, RecorderOp::Record(id));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // Every replica, once caught up, holds the same history containing
        // each id exactly once, with per-thread FIFO order.
        let reference = nr.with_replica(0, |r| r.history().to_vec());
        assert_eq!(reference.len(), THREADS * PER_THREAD as usize);
        for node in 0..nodes {
            let h = nr.with_replica(node, |r| r.history().to_vec());
            assert_eq!(h, reference, "replica {node} diverged");
        }
        let mut seen = std::collections::HashSet::new();
        let mut per_thread_next = [0u64; THREADS];
        for id in &reference {
            assert!(seen.insert(*id), "duplicate id {id:#x}");
            let w = (id >> 32) as usize;
            let seq = id & 0xffff_ffff;
            assert_eq!(
                seq, per_thread_next[w],
                "per-thread FIFO order violated for worker {w}"
            );
            per_thread_next[w] += 1;
        }
    }

    #[test]
    fn log_wraps_many_times_without_corruption() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 500;
        // Smallest admissible log for 2 nodes / β=4: 2*3*4+2 = 26 → use 32.
        let (nr, _) = small_nr(THREADS, 32);
        let handles: Vec<_> = (0..THREADS)
            .map(|w| {
                let nr = Arc::clone(&nr);
                std::thread::spawn(move || {
                    let t = nr.register(w);
                    for i in 0..PER_THREAD {
                        nr.execute(&t, RecorderOp::Record((w as u64) << 32 | i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total = THREADS as u64 * PER_THREAD;
        assert!(nr.log().log_tail() >= total, "all ops logged");
        let h = nr.with_replica(0, |r| r.history().to_vec());
        assert_eq!(h.len() as u64, total);
    }

    #[test]
    fn reads_observe_previously_completed_updates() {
        const THREADS: usize = 4;
        let (nr, _) = small_nr(THREADS, 128);
        let handles: Vec<_> = (0..THREADS)
            .map(|w| {
                let nr = Arc::clone(&nr);
                std::thread::spawn(move || {
                    let t = nr.register(w);
                    let mut mine = 0u64;
                    for i in 0..200u64 {
                        nr.execute(&t, RecorderOp::Record((w as u64) << 32 | i));
                        mine += 1;
                        // A read after my i-th completed update must observe
                        // at least i+1 updates (mine alone).
                        match nr.execute(&t, RecorderOp::Count) {
                            RecorderResp::Count(c) => {
                                assert!(c >= mine, "read missed completed updates")
                            }
                            other => panic!("unexpected resp {other:?}"),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn starvation_free_mode_preserves_correctness() {
        // The §4.2 liveness variant (ticketed reservations + phase-fair
        // replica locks) must produce identical semantics.
        const THREADS: usize = 5;
        const PER_THREAD: u64 = 300;
        let topo = Topology::new(2, 4, 1);
        let asg = topo.assign_workers(THREADS);
        let nr = Arc::new(NodeReplicated::with_hooks_and_fairness(
            Recorder::new(),
            asg,
            128,
            crate::NoopHooks,
            FairnessMode::StarvationFree,
        ));
        let handles: Vec<_> = (0..THREADS)
            .map(|w| {
                let nr = Arc::clone(&nr);
                std::thread::spawn(move || {
                    let t = nr.register(w);
                    for i in 0..PER_THREAD {
                        nr.execute(&t, RecorderOp::Record((w as u64) << 32 | i));
                        if i % 16 == 0 {
                            nr.execute(&t, RecorderOp::Count);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let hist = nr.with_replica(0, |r| r.history().to_vec());
        assert_eq!(hist.len() as u64, THREADS as u64 * PER_THREAD);
        let mut next = [0u64; THREADS];
        for id in &hist {
            let w = (id >> 32) as usize;
            assert_eq!(id & 0xffff_ffff, next[w], "FIFO violated under fairness");
            next[w] += 1;
        }
    }

    #[test]
    fn uneven_finishers_do_not_deadlock_reclamation() {
        // Node 1's single worker finishes early; node 0 keeps wrapping the
        // small log and must reclaim space via helping (remote update of the
        // idle replica), not deadlock.
        let topo = Topology::new(2, 4, 1);
        let asg = topo.assign_workers(5); // node0: 4 workers, node1: 1
        let nr = Arc::new(NodeReplicated::new(Recorder::new(), asg, 32));

        let early = {
            let nr = Arc::clone(&nr);
            std::thread::spawn(move || {
                let t = nr.register(4); // the node-1 worker
                for i in 0..5u64 {
                    nr.execute(&t, RecorderOp::Record(0xdead << 16 | i));
                }
                // ...then goes idle forever.
            })
        };
        early.join().unwrap();

        let handles: Vec<_> = (0..4)
            .map(|w| {
                let nr = Arc::clone(&nr);
                std::thread::spawn(move || {
                    let t = nr.register(w);
                    for i in 0..400u64 {
                        nr.execute(&t, RecorderOp::Record((w as u64) << 32 | i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let h = nr.with_replica(0, |r| r.history().to_vec());
        assert_eq!(h.len(), 5 + 4 * 400);
    }
}
