//! The simplest universal construction: one copy of the sequential object
//! behind a global lock (the paper's "GL" baseline in Figure 1).

use std::sync::Mutex;

use prep_seqds::SequentialObject;

/// A global-lock universal construction: every operation — update or read —
/// serializes through one mutex around a single copy of the object.
///
/// ```
/// use prep_nr::GlobalLockUc;
/// use prep_seqds::stack::{Stack, StackOp, StackResp};
///
/// let uc = GlobalLockUc::new(Stack::new());
/// assert_eq!(uc.execute(StackOp::Push(3)), StackResp::Ok);
/// assert_eq!(uc.execute(StackOp::Pop), StackResp::Value(Some(3)));
/// ```
pub struct GlobalLockUc<T: SequentialObject> {
    inner: Mutex<T>,
}

impl<T: SequentialObject> GlobalLockUc<T> {
    /// Wraps `obj` behind a global lock.
    pub fn new(obj: T) -> Self {
        GlobalLockUc {
            inner: Mutex::new(obj),
        }
    }

    /// Runs `op` with linearizable semantics (trivially: total order by the
    /// lock).
    pub fn execute(&self, op: T::Op) -> T::Resp {
        let mut guard = self.inner.lock().expect("global lock poisoned");
        guard.apply(&op)
    }

    /// Observes the object under the lock (test/diagnostic API, symmetric
    /// with `NodeReplicated::with_replica`).
    pub fn with_object<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let guard = self.inner.lock().expect("global lock poisoned");
        f(&guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prep_seqds::recorder::{Recorder, RecorderOp, RecorderResp};
    use std::sync::Arc;

    #[test]
    fn serializes_updates_and_reads() {
        let uc = GlobalLockUc::new(Recorder::new());
        for i in 0..5u64 {
            assert_eq!(
                uc.execute(RecorderOp::Record(i)),
                RecorderResp::RecordedAt(i)
            );
        }
        assert_eq!(uc.execute(RecorderOp::Count), RecorderResp::Count(5));
    }

    #[test]
    fn concurrent_operations_are_linearizable() {
        const THREADS: usize = 4;
        const PER_THREAD: u64 = 500;
        let uc = Arc::new(GlobalLockUc::new(Recorder::new()));
        let handles: Vec<_> = (0..THREADS)
            .map(|w| {
                let uc = Arc::clone(&uc);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        uc.execute(RecorderOp::Record((w as u64) << 32 | i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        uc.with_object(|r| {
            assert_eq!(r.count(), THREADS as u64 * PER_THREAD);
            // Per-thread FIFO.
            let mut next = [0u64; THREADS];
            for id in r.history() {
                let w = (id >> 32) as usize;
                assert_eq!(id & 0xffff_ffff, next[w]);
                next[w] += 1;
            }
        });
    }
}
