//! Persistence hook points.
//!
//! PREP-UC is "NR-UC plus persistence" (§4.1): the control flow of
//! reservation, combining, and log reclamation is unchanged, but persistence
//! actions are inserted at five specific points. [`NrHooks`] names those
//! points; the volatile construction uses [`NoopHooks`] (zero-cost —
//! everything inlines away), and `prep-uc` provides buffered and durable
//! implementations.

use std::ops::Range;

/// Hook points the universal construction invokes around the shared log.
///
/// All methods have no-op defaults; implementations override the subset
/// their durability level needs.
pub trait NrHooks<O>: Send + Sync + 'static {
    /// Called by `ReserveLogEntries` before each CAS attempt, with the
    /// observed `logTail`: may this reservation proceed? The PREP
    /// implementations answer `false` while the tail has reached the
    /// flush boundary (Algorithm 4): no new entries may be reserved until
    /// the active persistent replica has been persisted, which is what
    /// bounds post-crash loss to `ε + β − 1`.
    ///
    /// Deliberately **non-blocking**: the caller is a combiner holding its
    /// replica's combiner lock, and while it waits it must stay responsive
    /// to `updateReplicaNow` helping requests (a blocked-combiner gate was
    /// observed to deadlock log-space reclamation — see DESIGN.md).
    fn reserve_admitted(&self, _tail: u64) -> bool {
        true
    }

    /// Called after the combiner wrote the batch payloads into entries
    /// `range` but **before** any emptyBit is set. PREP-Durable flushes
    /// every touched entry asynchronously and issues one fence (§4.1: "a
    /// single fence is executed" per batch). The payloads live in the log;
    /// the hook flushes by address, so it never needs the ops themselves.
    fn persist_batch_payload(&self, _range: Range<u64>) {}

    /// Called after the payloads of `range` are durable but **before** the
    /// combiner sets any emptyBit. PREP-Durable persists the batch's
    /// published state here (flush the emptyBit image lines, fence, mirror
    /// the entries into the crash image); only then does the combiner
    /// publish. The order is load-bearing: a volatile emptyBit lets any
    /// combiner advance `completedTail` past the entry and durably publish
    /// that tail — if this entry's durable image were still unfenced, a
    /// crash would lose a covered entry (sanitizer rule 2). `op_at` reads
    /// entry `idx ∈ range` back from the combiner's own (still
    /// unpublished) slots — implementations that mirror ops into a crash
    /// image clone on demand; the rest clone nothing, which is the point:
    /// the combiner moves each op into the log exactly once instead of
    /// keeping a second vector alive for the hooks.
    fn persist_batch_published(&self, _range: Range<u64>, _op_at: &dyn Fn(u64) -> O) {}

    /// Called before a completed update's response is released to its
    /// invoking thread, with the `completedTail` value that covers it.
    /// PREP-Durable ensures a persisted `completedTail >= ct` here (the
    /// flush-or-observe-persisted protocol of §5.2); without this, a thread
    /// whose CAS lost to a larger advance could return before the covering
    /// tail is durable.
    fn ensure_completed_tail_durable(&self, _ct: u64) {}

    /// localTails of the persistence-only replicas, consulted by the logMin
    /// scan (§5.1: worker threads "need to know about the localTails of the
    /// two persistent replicas in order to correctly reuse log entries").
    /// Empty for volatile NR.
    fn persistent_tails(&self) -> Vec<u64> {
        Vec::new()
    }

    /// The logMin straggler is persistence-only replica `idx` (an index
    /// into [`NrHooks::persistent_tails`]). PREP lowers the flushBoundary
    /// to `low_mark - 1` if `idx` is the *stable* replica, forcing an early
    /// persist-and-swap so it catches up (Algorithm 3).
    fn help_persistent_straggler(&self, _idx: usize, _low_mark: u64) {}
}

/// The volatile instantiation: every hook is a no-op. `NodeReplicated`
/// with `NoopHooks` is NR-UC exactly — the paper's PREP-V baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopHooks;

impl<O> NrHooks<O> for NoopHooks {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_hooks_do_nothing_observable() {
        let h = NoopHooks;
        assert!(NrHooks::<u64>::reserve_admitted(&h, 5));
        NrHooks::<u64>::persist_batch_payload(&h, 0..3);
        NrHooks::<u64>::persist_batch_published(&h, 0..3, &|i| i + 1);
        NrHooks::<u64>::ensure_completed_tail_durable(&h, 3);
        assert!(NrHooks::<u64>::persistent_tails(&h).is_empty());
        NrHooks::<u64>::help_persistent_straggler(&h, 0, 10);
    }
}
