//! NR-UC: the Node Replication universal construction (Calciu et al.,
//! ASPLOS 2017), as described in §3 of the PREP-UC paper.
//!
//! Node replication keeps one replica of the sequential object per NUMA
//! node. Threads on a node coordinate through **flat combining**: each
//! thread publishes its update in a per-thread batch slot; one thread — the
//! *combiner*, elected by winning the replica's trylock — appends the whole
//! batch to a **shared circular log** and applies pending log entries to the
//! local replica. Across nodes, the log is the only communication channel:
//! its order *is* the linearization order of update operations.
//!
//! Read-only operations never touch the log; they take the replica's
//! reader-writer lock in read mode once the replica has caught up to
//! `completedTail`.
//!
//! Three monotonically increasing indexes (paper Table 1):
//!
//! | index | scope | meaning |
//! |---|---|---|
//! | `localTail` | per replica | first log index not yet applied locally |
//! | `completedTail` | global | first log index not yet applied to any replica |
//! | `logTail` | global | first unreserved log index |
//!
//! This crate hosts the machinery PREP-UC reuses (PREP-UC *is* NR-UC plus
//! persistence, §4.1). The persistence-specific actions — gating
//! reservations at the flush boundary, persisting batches and the completed
//! tail, involving the persistent replicas in log-space reclamation — enter
//! through the [`NrHooks`] trait, which the volatile construction
//! instantiates with [`NoopHooks`] (the paper's **PREP-V**).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod global_lock;
mod hooks;
pub mod log;
pub mod mluc;
pub mod multilog;
mod replica;
mod uc;

pub use global_lock::GlobalLockUc;
pub use hooks::{NoopHooks, NrHooks};
pub use log::Log;
pub use mluc::{MlHooks, MlOp, MlToken, MultiLaneReplicated, NoopMlHooks};
pub use multilog::{LogSet, Reservation};
pub use uc::{NodeReplicated, ThreadToken};

/// Default log capacity (entries) used by the paper's evaluation (§6: "we
/// utilize a log size of 1 million for all experiments").
pub const DEFAULT_LOG_SIZE: u64 = 1 << 20;

/// Liveness trade-off (§4.2 "Liveness").
///
/// The paper's implementation is deadlock-free but allows starvation in two
/// places: an adversarial scheduler can make one combiner's log-reservation
/// CAS lose forever, and a stream of write-mode combiners can starve
/// readers. The paper names the two changes that buy starvation-freedom —
/// a fair lock around reservations and a starvation-free reader-writer
/// lock per replica — and this enum selects them.
///
/// The `ThroughputCentralized` variant is not a paper mode: it keeps the
/// centralized writer-preference spin lock that predates the distributed
/// reader-writer lock, as the ablation baseline the distributed read path
/// is measured against (`prep-bench -- readscale`). `Optimistic` and
/// `Adaptive` go past the paper in the other direction: seqlock-validated
/// reads touch no lock state at all (zero RMWs, zero shared-line stores),
/// falling back to the reader slot only when a combiner overlaps the read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FairnessMode {
    /// The paper's default: CAS reservations + NR §3's distributed
    /// writer-preference reader-writer lock per replica (one cacheline-padded
    /// slot per registered reader). Fastest; starvation possible under
    /// adversarial scheduling. Includes a conservative optimistic skip: when
    /// the replica version is unchanged since this reader's last locked
    /// read (an observed write-free window), the read validates against the
    /// version instead of RMW-ing its slot.
    #[default]
    Throughput,
    /// Like [`FairnessMode::Throughput`] but with the centralized
    /// writer-preference lock ([`prep_sync::RwSpinLock`]): every reader
    /// bounces one shared cacheline. Ablation baseline only.
    ThroughputCentralized,
    /// Starvation-free updates and reads: FIFO ticket lock around log
    /// reservations, phase-fair reader-writer lock per replica.
    StarvationFree,
    /// Always-optimistic reads: every caught-up read runs lock-free against
    /// the replica and validates with the [`prep_sync::SeqVersion`] bracket
    /// (zero atomic RMWs, zero stores to shared cachelines); bounded retries
    /// fall back to the distributed reader slot. Writers never wait on
    /// optimistic readers.
    Optimistic,
    /// Contention-adaptive: route each read Centralized / Distributed /
    /// Optimistic per [`prep_sync::AdaptiveSelector`]'s windowed view of the
    /// read/write mix and optimistic validation-failure rate (hysteresis
    /// over consecutive windows).
    Adaptive,
}

impl FairnessMode {
    /// Whether this mode's replicas may serve seqlock-validated lock-free
    /// reads at all.
    pub fn allows_optimistic(self) -> bool {
        matches!(
            self,
            FairnessMode::Throughput | FairnessMode::Optimistic | FairnessMode::Adaptive
        )
    }
}
