//! Multi-lane node replication: the CNR-style engine over a [`LogSet`].
//!
//! One combiner per log was NR's write bottleneck: every update in the
//! structure serialized through a single log tail and a single apply loop.
//! [`MultiLaneReplicated`] partitions the update stream across `L` *lanes*
//! — log `l` plus a replica partition guarded by its own combiner trylock —
//! so commuting operations (single-key ops hashed to different lanes) are
//! reserved, persisted, published, and applied by `L` combiners
//! concurrently.
//!
//! ## Single-lane operations
//!
//! Flat combining per lane, exactly as `uc.rs` per node: the submitter arms
//! its per-lane slot, and whoever wins the lane's trylock collects pending
//! slots, reserves a batch in lane `l`'s log, writes + persists + publishes
//! it, applies the published prefix, and delivers responses. Because a
//! batch may end up applied by a *later* combiner (see the multi barrier
//! below), each log entry carries its submitter's worker id — any applier
//! can route the response.
//!
//! ## Cross-lane operations and the joint frontier
//!
//! A multi-key/scan op must be atomic across lanes. The submitter:
//!
//! 1. takes the **gate** (a ticket lock serializing multi ops — this
//!    totally orders them, and their ids ascend in every log);
//! 2. reserves one entry in **every** lane's log (lane order);
//! 3. writes and persists the entry in every lane **before publishing in
//!    any** — so a multi that is durable anywhere is completable
//!    everywhere (see `prep-uc`'s multilog recovery);
//! 4. publishes everywhere, then acquires **all** lane locks and applies
//!    each lane up to and through its entry — the *joint frontier*.
//!
//! Lane combiners treat a published multi entry as a **barrier**: they
//! apply singles up to it and park (release the lock) without consuming
//! it. Only the gate-holding submitter applies multi entries, and it does
//! so holding every lane lock, so no reader or combiner ever observes a
//! multi applied to one lane but not another — which is what makes the
//! op's visibility (not just its durability) atomic. Combiners never
//! block while holding a lane lock (one reservation attempt, no waiting
//! loops), so the submitter's ordered lock acquisition cannot deadlock.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crossbeam_utils::CachePadded;
use prep_seqds::SequentialObject;
use prep_sync::{TicketLock, TryLock, Waiter};

use crate::multilog::LogSet;

/// What a lane's log entry holds: a single-lane operation tagged with its
/// submitter (so any applier can deliver the response), or one lane's
/// instance of a cross-lane operation.
#[derive(Debug, Clone)]
pub enum MlOp<O> {
    /// A single-lane operation submitted by `worker`.
    Single {
        /// The submitting worker's slot index — the response destination.
        worker: u32,
        /// The operation itself.
        op: O,
    },
    /// One lane's instance of a cross-lane operation. The same `id` (gate
    /// sequence number) appears once in every lane's log; ids ascend in
    /// every log because the gate serializes multi ops.
    Multi {
        /// Gate sequence number of the cross-lane operation.
        id: u64,
        /// The operation (full copy in every lane; each lane applies it to
        /// its partition).
        op: O,
    },
}

/// Persistence hook points for the multi-lane engine — `NrHooks`
/// generalized with a log index. The no-op defaults yield the volatile
/// engine (the multi-lane analog of PREP-V).
pub trait MlHooks<O: Clone>: Send + Sync + 'static {
    /// Gate for reserving at `tail` in log `l` (flush-boundary check).
    fn reserve_admitted(&self, _log: usize, _tail: u64) -> bool {
        true
    }

    /// Persist the payload bytes of log `l`'s entries `range` (durable
    /// mode: flush + one fence). Runs after the payload writes, before
    /// publication.
    fn persist_batch_payload(&self, _log: usize, _range: std::ops::Range<u64>, _ops: &[MlOp<O>]) {}

    /// Persist the emptyBit image of log `l`'s entries `range` (durable
    /// mode). Runs **before** the volatile publish: an entry must not
    /// become coverable by a durably-published completedTail until its
    /// image is fenced.
    fn persist_batch_published(&self, _log: usize, _range: std::ops::Range<u64>, _ops: &[MlOp<O>]) {
    }

    /// Make log `l`'s `completedTail = ct` durable (durable mode). Runs
    /// before the responses covered by `ct` are delivered.
    fn ensure_completed_tail_durable(&self, _log: usize, _ct: u64) {}

    /// Both persistent replicas' applied tails in log `l`, for log-space
    /// reclamation. `u64::MAX` means "no persistent reader".
    fn persistent_tails(&self, _log: usize) -> [u64; 2] {
        [u64::MAX, u64::MAX]
    }
}

/// The no-op hooks: a purely volatile multi-lane engine.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopMlHooks;

impl<O: Clone> MlHooks<O> for NoopMlHooks {}

/// Registration token: the caller's worker index (one flat-combining slot
/// per lane per worker).
#[derive(Debug)]
pub struct MlToken {
    worker: usize,
}

impl MlToken {
    /// The worker index this token was registered with.
    pub fn worker(&self) -> usize {
        self.worker
    }
}

const SLOT_EMPTY: u64 = 0;
/// Armed: `op` is set, waiting for a combiner to collect it.
const SLOT_PENDING: u64 = 1;
/// Collected into a published batch; the response arrives when some
/// applier advances the lane past the batch.
const SLOT_INFLIGHT: u64 = 2;
/// Applied: `resp` is set, waiting for the submitter to consume it.
const SLOT_DONE: u64 = 3;

struct Slot<T: SequentialObject> {
    // shared-line: each whole Slot is stored as CachePadded<Slot<T>> in
    // Lane::slots, so the state word already owns its line.
    // lock-level: 3 innermost: a slot claim (PENDING -> INFLIGHT) happens
    // under the lane lock and never waits on another ranked lock
    state: AtomicU64,
    op: UnsafeCell<Option<T::Op>>,
    resp: UnsafeCell<Option<T::Resp>>,
}

// SAFETY: the slot cells are guarded by the `state` protocol — `op` is
// written only by the owning worker before the PENDING Release store and
// read only by the unique PENDING→INFLIGHT CAS winner; `resp` is written
// only by the (lane-lock-holding, hence unique) applier before the DONE
// Release store and read only by the owning worker after observing DONE.
unsafe impl<T: SequentialObject> Sync for Slot<T> {}

impl<T: SequentialObject> Slot<T> {
    fn new() -> Self {
        Slot {
            state: AtomicU64::new(SLOT_EMPTY),
            op: UnsafeCell::new(None),
            resp: UnsafeCell::new(None),
        }
    }
}

/// One lane: a replica partition behind its combiner trylock, its applied
/// position in lane `l`'s log, and the lane's flat-combining slots.
struct Lane<T: SequentialObject> {
    /// The lane's replica partition; holding the lock is what makes a
    /// thread this lane's combiner (or reader).
    // lock-level: 1 lane combiner election — nested inside the level-0
    // gate by cross-lane operations
    obj: TryLock<T>,
    /// First log index not yet applied to `obj`. Written only under the
    /// lane lock; read locklessly for floor computation.
    local_tail: CachePadded<AtomicU64>,
    /// Per-worker flat-combining slots (each padded: a worker spins on its
    /// own slot's line).
    slots: Box<[CachePadded<Slot<T>>]>,
    /// Combine rounds executed on this lane — the "is this combiner
    /// actually active" evidence `prep-bench -- writescale` reports.
    combine_rounds: CachePadded<AtomicU64>,
}

/// The multi-lane (CNR-style) replicated object. See module docs.
pub struct MultiLaneReplicated<T: SequentialObject, H: MlHooks<T::Op>> {
    set: LogSet<MlOp<T::Op>>,
    lanes: Box<[Lane<T>]>,
    /// Serializes cross-lane operations; its ticket order is their total
    /// order.
    // lock-level: 0 the cross-log gate is taken before any lane lock
    gate: TicketLock,
    /// Next multi id. Only mutated under the gate.
    // shared-line: gate-serialized — never contended, padding wasted.
    next_multi_id: AtomicU64,
    hooks: H,
    max_workers: usize,
    registered: Box<[CachePadded<AtomicBool>]>,
}

impl<T: SequentialObject, H: MlHooks<T::Op>> MultiLaneReplicated<T, H> {
    /// Builds an engine whose `lanes` partitions all start as copies of
    /// `obj`.
    ///
    /// Routing by key means each lane's partition only ever *sees* its
    /// key subset, so `obj` must be empty or otherwise consistent with
    /// every partition (recovery instead rebuilds per-lane states and uses
    /// [`MultiLaneReplicated::from_lane_states`]).
    pub fn new(obj: &T, lanes: usize, max_workers: usize, log_size: u64, hooks: H) -> Self {
        Self::from_lane_states(
            (0..lanes).map(|_| obj.clone_object()).collect(),
            max_workers,
            log_size,
            hooks,
        )
    }

    /// Builds an engine from explicit per-lane partition states (recovery).
    ///
    /// # Panics
    /// Panics if `states` is empty or `max_workers == 0`.
    pub fn from_lane_states(states: Vec<T>, max_workers: usize, log_size: u64, hooks: H) -> Self {
        assert!(!states.is_empty(), "at least one lane required");
        assert!(max_workers > 0, "at least one worker required");
        let lanes = states.len();
        MultiLaneReplicated {
            set: LogSet::new(lanes, log_size),
            lanes: states
                .into_iter()
                .map(|obj| Lane {
                    obj: TryLock::new(obj),
                    local_tail: CachePadded::new(AtomicU64::new(0)),
                    slots: (0..max_workers)
                        .map(|_| CachePadded::new(Slot::new()))
                        .collect(),
                    combine_rounds: CachePadded::new(AtomicU64::new(0)),
                })
                .collect(),
            gate: TicketLock::new(),
            next_multi_id: AtomicU64::new(0),
            hooks,
            max_workers,
            registered: (0..max_workers)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
        }
    }

    /// Number of lanes (= logs).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The engine's log set (read access for the persistence thread and
    /// tests).
    pub fn log_set(&self) -> &LogSet<MlOp<T::Op>> {
        &self.set
    }

    /// The installed hooks.
    pub fn hooks(&self) -> &H {
        &self.hooks
    }

    /// Registers worker `worker` (one flat-combining slot per lane).
    ///
    /// # Panics
    /// Panics if `worker ≥ max_workers` or is already registered.
    pub fn register(&self, worker: usize) -> MlToken {
        assert!(worker < self.max_workers, "worker index out of range");
        // ord: AcqRel — makes double-registration detection a total order.
        let was = self.registered[worker].swap(true, Ordering::AcqRel);
        assert!(!was, "worker {worker} registered twice");
        MlToken { worker }
    }

    /// Lane `l`'s applied position in its log.
    pub fn lane_tail(&self, l: usize) -> u64 {
        // ord: Acquire pairs with the applier's Release — the partition
        // state behind a tail t reflects every entry below t.
        self.lanes[l].local_tail.load(Ordering::Acquire)
    }

    /// Combine rounds executed on lane `l` so far.
    pub fn combine_rounds(&self, l: usize) -> u64 {
        // ord: Relaxed — monotonic counter, no ordering needed.
        self.lanes[l].combine_rounds.load(Ordering::Relaxed)
    }

    /// Every lane's `completedTail` (the joint frontier vector).
    pub fn completed_vector(&self) -> Vec<u64> {
        self.set.completed_vector()
    }

    /// Runs `f` on lane `l`'s partition under the lane lock (tests,
    /// metrics).
    pub fn with_lane<R>(&self, l: usize, f: impl FnOnce(&T) -> R) -> R {
        let mut w = Waiter::new();
        loop {
            if let Some(guard) = self.lanes[l].obj.try_lock() {
                return f(&guard);
            }
            w.wait();
        }
    }

    /// Executes a single-lane **update** on lane `lane`.
    pub fn execute(&self, token: &MlToken, lane: usize, op: T::Op) -> T::Resp {
        debug_assert!(!T::is_read_only(&op), "updates only — use execute_readonly");
        let slot = &self.lanes[lane].slots[token.worker];
        debug_assert_eq!(
            // ord: Relaxed — our own last store; nothing to synchronize.
            slot.state.load(Ordering::Relaxed),
            SLOT_EMPTY,
            "one in-flight op per worker"
        );
        // SAFETY: this worker owns the slot and it is EMPTY (we consumed
        // the previous response); no other thread reads `op` until the
        // PENDING store below publishes it.
        unsafe { *slot.op.get() = Some(op) };
        // ord: Release publishes the op to the collecting combiner's
        // Acquire CAS.
        slot.state.store(SLOT_PENDING, Ordering::Release);
        let mut w = Waiter::new();
        loop {
            // ord: Acquire pairs with the applier's DONE Release — the
            // response write is visible.
            if slot.state.load(Ordering::Acquire) == SLOT_DONE {
                // SAFETY: DONE means the applier set `resp` before its
                // Release; this worker is the unique consumer.
                let resp = unsafe { (*slot.resp.get()).take() }.expect("resp set at DONE");
                // ord: Release orders the consumption before the slot's
                // next arming.
                slot.state.store(SLOT_EMPTY, Ordering::Release);
                return resp;
            }
            self.try_combine(lane);
            w.wait();
        }
    }

    /// Executes a single-lane **read-only** op on lane `lane` under the
    /// lane lock. Completed operations are always applied before their
    /// response is delivered, so the partition behind the lock reflects
    /// every completed op that touches this lane.
    pub fn execute_readonly(&self, lane: usize, op: &T::Op) -> T::Resp {
        debug_assert!(T::is_read_only(op), "read-only path");
        let mut w = Waiter::new();
        loop {
            if let Some(guard) = self.lanes[lane].obj.try_lock() {
                return guard.apply_readonly(op);
            }
            w.wait();
        }
    }

    /// Executes a cross-lane operation: one log entry per lane, applied at
    /// the joint frontier under **all** lane locks (module docs). Returns
    /// each lane's response, in lane order; the caller folds them.
    pub fn execute_multi(&self, op: &T::Op) -> Vec<T::Resp> {
        let lanes = self.lanes.len();
        let _gate = self.gate.lock();
        // ord: Relaxed — the gate serializes all mutations of the id.
        let id = self.next_multi_id.fetch_add(1, Ordering::Relaxed);

        // Reserve one entry in every lane's log (lane order — immaterial,
        // the gate already excludes other multi submitters).
        let mut ress = Vec::with_capacity(lanes);
        for l in 0..lanes {
            let mut w = Waiter::new();
            let res = loop {
                if self.hooks.reserve_admitted(l, self.set.log(l).log_tail()) {
                    self.update_floor(l, self.lane_tail(l));
                    if let Some(r) = self.set.try_reserve(l, 1) {
                        break r;
                    }
                }
                w.wait();
            };
            ress.push(res);
        }

        // Write + persist the payload in EVERY lane before publishing in
        // ANY lane: once any lane's entry is visible (and hence coverable
        // by that lane's durably-published completedTail), the op is
        // already recoverable from every other lane's image — this
        // ordering is the multi-op atomicity argument across a crash.
        for (l, res) in ress.iter_mut().enumerate() {
            let entry = MlOp::Multi { id, op: op.clone() };
            self.set.write(res, 0, entry.clone());
            let batch = [entry];
            self.hooks.persist_batch_payload(l, res.range(), &batch);
            self.hooks.persist_batch_published(l, res.range(), &batch);
        }
        for res in &mut ress {
            self.set.publish(res);
        }

        // Acquire every lane lock. Combiners never block while holding a
        // lane lock (one reservation attempt, barrier parking instead of
        // waiting), so each acquisition terminates.
        let mut guards = Vec::with_capacity(lanes);
        for lane in self.lanes.iter() {
            let mut w = Waiter::new();
            loop {
                if let Some(g) = lane.obj.try_lock() {
                    guards.push(g);
                    break;
                }
                w.wait();
            }
        }

        // Joint frontier: with all locks held, drain each lane's published
        // singles up to our barrier entry, then apply the multi itself.
        // Nothing can observe a lane in between, so the op's visibility is
        // atomic across lanes.
        let mut resps = Vec::with_capacity(lanes);
        for (l, guard) in guards.iter_mut().enumerate() {
            let barrier = ress[l].start();
            self.apply_published(l, guard, barrier);
            debug_assert_eq!(
                // ord: Relaxed — we hold the lane lock; only holders write it.
                self.lanes[l].local_tail.load(Ordering::Relaxed),
                barrier,
                "gap below a multi barrier must be fully published singles"
            );
            let mut resp = None;
            self.set
                .log(l)
                .for_each_op(barrier, barrier + 1, |_, e| match e {
                    MlOp::Multi { id: eid, op } => {
                        debug_assert_eq!(*eid, id, "one multi in flight at a time");
                        resp = Some(guard.apply(op));
                    }
                    MlOp::Single { .. } => unreachable!("barrier entry is this multi"),
                });
            let lane_tail = &self.lanes[l].local_tail;
            // ord: Release pairs with lane_tail's Acquire readers.
            lane_tail.store(barrier + 1, Ordering::Release);
            self.set.advance_completed(l, barrier + 1);
            self.update_floor(l, barrier + 1);
            resps.push(resp.expect("just published"));
        }
        drop(guards);

        // Durable mode: the ack must be crash-proof in every lane before
        // the caller sees it.
        for l in 0..lanes {
            self.hooks
                .ensure_completed_tail_durable(l, self.set.log(l).completed_tail());
        }
        resps
    }

    /// One combining attempt on `lane`: catch up the published prefix,
    /// collect pending slots, reserve/write/persist/publish a batch, apply
    /// it, deliver responses. Never blocks while holding the lane lock —
    /// on backpressure it reverts the collected slots and returns; at a
    /// multi barrier it parks (the gate holder applies the multi, and the
    /// still-spinning submitters re-elect a combiner for the rest).
    fn try_combine(&self, l: usize) {
        let lane = &self.lanes[l];
        let Some(mut guard) = lane.obj.try_lock() else {
            return;
        };
        // ord: Relaxed — monotonic diagnostics counter.
        lane.combine_rounds.fetch_add(1, Ordering::Relaxed);

        // Entries published by a parked predecessor (or by helping) first.
        self.apply_published(l, &mut guard, u64::MAX);

        // Collect armed slots.
        let mut batch: Vec<(usize, T::Op)> = Vec::new();
        for (w, slot) in lane.slots.iter().enumerate() {
            // ord: Acquire pairs with the submitter's PENDING Release (op
            // visible before the state reads PENDING).
            if slot.state.load(Ordering::Acquire) != SLOT_PENDING {
                continue;
            }
            // ord: AcqRel — success acquires the submitter's op publish and
            // releases INFLIGHT, making this thread the unique collector;
            // Relaxed failure just skips the slot (someone else collected).
            let claimed = slot.state.compare_exchange(
                SLOT_PENDING,
                SLOT_INFLIGHT,
                Ordering::AcqRel,
                Ordering::Relaxed,
            );
            if claimed.is_ok() {
                // SAFETY: the CAS win makes us the unique collector of an
                // armed slot; the op was published by the PENDING store.
                let op = unsafe { (*slot.op.get()).take() }.expect("op set at PENDING");
                batch.push((w, op));
            }
        }
        if batch.is_empty() {
            return;
        }

        // One reservation attempt — never wait holding the lane lock.
        let n = batch.len() as u64;
        let res = if self.hooks.reserve_admitted(l, self.set.log(l).log_tail()) {
            // ord: Relaxed — we hold the lane lock; only holders write it.
            self.update_floor(l, lane.local_tail.load(Ordering::Relaxed));
            self.set.try_reserve(l, n)
        } else {
            None
        };
        let Some(mut res) = res else {
            // Backpressure (flush boundary or ring capacity): re-arm the
            // slots and let the submitters re-elect a combiner later.
            for (w, op) in batch {
                let slot = &lane.slots[w];
                // SAFETY: we own the INFLIGHT slot (CAS above); restore the
                // op before re-arming so the next collector finds it.
                unsafe { *slot.op.get() = Some(op) };
                // ord: Release republishes the op with the PENDING state.
                slot.state.store(SLOT_PENDING, Ordering::Release);
            }
            return;
        };

        let ops: Vec<MlOp<T::Op>> = batch
            .into_iter()
            .map(|(w, op)| MlOp::Single {
                worker: w as u32,
                op,
            })
            .collect();
        for (off, e) in ops.iter().enumerate() {
            self.set.write(&mut res, off as u64, e.clone());
        }
        self.hooks.persist_batch_payload(l, res.range(), &ops);
        // Durable publish precedes the volatile publish (hook docs).
        self.hooks.persist_batch_published(l, res.range(), &ops);
        self.set.publish(&mut res);

        // Apply through our batch. A multi barrier in the gap parks us —
        // our published batch is then applied (and responses delivered) by
        // whichever combiner runs after the gate holder clears the barrier.
        self.apply_published(l, &mut guard, res.range().end);
    }

    /// Applies lane `l`'s published entries from its `local_tail` up to
    /// `limit`, stopping early at an unpublished entry or at a multi
    /// barrier (multi entries are applied only by the gate holder).
    /// Advances `completedTail`, makes it durable, and only then delivers
    /// the batch responses — an acked op is always covered by a durable
    /// `completedTail` in durable mode.
    ///
    /// Caller must hold lane `l`'s lock (`obj` is the locked partition).
    fn apply_published(&self, l: usize, obj: &mut T, limit: u64) {
        let lane = &self.lanes[l];
        // ord: Relaxed — we hold the lane lock; only holders write it.
        let start = lane.local_tail.load(Ordering::Relaxed);
        let mut idx = start;
        let mut deliveries: Vec<(usize, T::Resp)> = Vec::new();
        while idx < limit && self.set.log(l).is_full(idx) {
            let mut parked = false;
            self.set.log(l).for_each_op(idx, idx + 1, |_, e| match e {
                MlOp::Single { worker, op } => {
                    let resp = obj.apply(op);
                    deliveries.push((*worker as usize, resp));
                }
                MlOp::Multi { .. } => parked = true,
            });
            if parked {
                break;
            }
            idx += 1;
        }
        if idx == start {
            return;
        }
        // ord: Release pairs with lane_tail's Acquire readers: the
        // partition reflects everything below idx.
        lane.local_tail.store(idx, Ordering::Release);
        self.set.advance_completed(l, idx);
        self.hooks
            .ensure_completed_tail_durable(l, self.set.log(l).completed_tail());
        self.update_floor(l, idx);
        for (w, resp) in deliveries {
            let slot = &lane.slots[w];
            debug_assert_eq!(
                // ord: Relaxed — diagnostic only; the INFLIGHT transition
                // happened under this same lane lock.
                slot.state.load(Ordering::Relaxed),
                SLOT_INFLIGHT,
                "applied entry's slot must be in flight"
            );
            // SAFETY: the entry's worker id names a slot our lane lock made
            // INFLIGHT (collected into a published batch) — we are its
            // unique applier; write the response before the DONE store.
            unsafe { *slot.resp.get() = Some(resp) };
            // ord: Release publishes the response to the submitter's
            // Acquire spin.
            slot.state.store(SLOT_DONE, Ordering::Release);
        }
    }

    /// Recomputes log `l`'s applied floor (minimum over the lane replica
    /// and both persistent replicas) and unpins slots below it.
    fn update_floor(&self, l: usize, lane_tail: u64) {
        let [p0, p1] = self.hooks.persistent_tails(l);
        let floor = lane_tail.min(p0).min(p1);
        // SAFETY: `floor` is the minimum applied tail over every reader of
        // log `l` — the lane replica (applies under the lane lock) and the
        // two persistent replicas (the hooks' tails) — and each is
        // monotone, so no reader will ever read below it again.
        unsafe { self.set.mark_applied(l, floor) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prep_seqds::recorder::{Recorder, RecorderOp, RecorderResp};
    use std::sync::Arc;

    fn engine(lanes: usize, workers: usize) -> MultiLaneReplicated<Recorder, NoopMlHooks> {
        MultiLaneReplicated::new(&Recorder::new(), lanes, workers, 64, NoopMlHooks)
    }

    #[test]
    fn singles_flow_through_their_own_lane() {
        let e = engine(2, 1);
        let t = e.register(0);
        for i in 0..10u64 {
            e.execute(&t, (i % 2) as usize, RecorderOp::Record(i));
        }
        assert_eq!(
            e.with_lane(0, |r| r.history().to_vec()),
            vec![0, 2, 4, 6, 8]
        );
        assert_eq!(
            e.with_lane(1, |r| r.history().to_vec()),
            vec![1, 3, 5, 7, 9]
        );
        assert_eq!(e.completed_vector(), vec![5, 5]);
        assert!(e.combine_rounds(0) >= 1 && e.combine_rounds(1) >= 1);
    }

    #[test]
    fn multi_reaches_every_lane_at_the_joint_frontier() {
        let e = engine(3, 1);
        let t = e.register(0);
        e.execute(&t, 0, RecorderOp::Record(1));
        e.execute(&t, 2, RecorderOp::Record(2));
        let resps = e.execute_multi(&RecorderOp::Record(99));
        assert_eq!(resps.len(), 3);
        for l in 0..3 {
            let hist = e.with_lane(l, |r| r.history().to_vec());
            assert_eq!(hist.last(), Some(&99), "lane {l} applied the multi last");
        }
        // Every lane consumed exactly its own singles plus the multi.
        assert_eq!(e.completed_vector(), vec![2, 1, 2]);
    }

    #[test]
    fn readonly_sees_completed_updates() {
        let e = engine(2, 1);
        let t = e.register(0);
        e.execute(&t, 1, RecorderOp::Record(7));
        match e.execute_readonly(1, &RecorderOp::Count) {
            RecorderResp::Count(c) => assert_eq!(c, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn concurrent_lanes_commute_and_multis_are_ordered() {
        let e = Arc::new(engine(2, 4));
        let threads: Vec<_> = (0..4)
            .map(|w| {
                let e = Arc::clone(&e);
                std::thread::spawn(move || {
                    let t = e.register(w);
                    for i in 0..50u64 {
                        let id = (w as u64) * 1000 + i;
                        if w == 3 && i % 10 == 0 {
                            e.execute_multi(&RecorderOp::Record(id));
                        } else {
                            e.execute(&t, w % 2, RecorderOp::Record(id));
                        }
                    }
                })
            })
            .collect();
        for th in threads {
            th.join().unwrap();
        }
        // Every op completed exactly once; multis (5 of them) appear in
        // both lanes, singles in exactly one.
        let h0 = e.with_lane(0, |r| r.history().to_vec());
        let h1 = e.with_lane(1, |r| r.history().to_vec());
        let multis: Vec<u64> = (0..50).filter(|i| i % 10 == 0).map(|i| 3000 + i).collect();
        for m in &multis {
            assert!(h0.contains(m) && h1.contains(m), "multi {m} in both lanes");
        }
        assert_eq!(h0.len() + h1.len(), 50 * 4 + multis.len());
        // Gate order: multis appear in the same relative order in every lane.
        let order =
            |h: &[u64]| -> Vec<u64> { h.iter().copied().filter(|v| multis.contains(v)).collect() };
        assert_eq!(order(&h0), order(&h1), "joint frontier orders multis");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_rejected() {
        let e = engine(1, 2);
        let _a = e.register(1);
        let _b = e.register(1);
    }
}
