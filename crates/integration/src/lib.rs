//! Host package for the workspace-level integration tests.
//!
//! The tests themselves live in the repository's top-level `tests/`
//! directory (wired in through `[[test]]` path entries in this package's
//! manifest) so they sit beside the crates they span rather than inside any
//! one of them. This library is intentionally empty.

#![forbid(unsafe_code)]
