//! The execution engine: cooperative deterministic scheduling + the
//! C11-flavored memory model.
//!
//! Model threads are real OS threads, but exactly one runs at a time: a
//! token (the `token` field) names the thread allowed to make progress,
//! and everyone else parks on a condvar. Every instrumented operation
//! follows the same protocol:
//!
//! 1. **announce** — publish the pending op (location + read/write class)
//!    so the scheduler and the sleep-set pruner can reason about it;
//! 2. **schedule** — pick the next thread to run among all announced
//!    threads (a DFS choice point, bounded by the preemption budget and
//!    pruned by sleep sets), handing the token over if it isn't us;
//! 3. **perform** — once we hold the token again, apply the op to the
//!    store-history memory model (possibly branching again on which store
//!    a load reads).
//!
//! Because every non-token thread is parked *inside* step 2 of its own
//! next op, the scheduler always knows every thread's pending operation —
//! which is what makes sleep-set pruning and deadlock/livelock reporting
//! possible.
//!
//! Teardown discipline: engine-detected failures unwind the detecting
//! thread *while holding the state mutex* (the guard is released by the
//! unwind itself); every `lock()` is therefore poison-tolerant.

use std::collections::HashMap;
use std::panic::Location as SrcLoc;
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

use crate::clock::{VClock, MAX_THREADS};
use crate::loc::{LocKind, Location, Store, STALE_BOUND};
use crate::sched::Schedule;
use crate::trace::{render, Ev, EvKind, NO_LOC};

/// Consecutive write-free steps (with at least one spin-yield in the
/// window) before the checker reports a livelock/deadlock.
const LIVELOCK_WINDOW: u64 = 64;

/// Sentinel panic payload used to unwind model threads when an execution
/// aborts (failure found elsewhere, or sleep-set prune). Raised via
/// `resume_unwind` so the panic hook stays silent.
pub(crate) struct AbortToken;

/// Why an execution failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureKind {
    /// A test assertion (or any user panic) fired.
    Panic,
    /// A data race on peeked plain data.
    DataRace,
    /// No thread can make progress (spin livelock or join deadlock).
    Livelock,
    /// The execution exceeded the per-schedule step budget.
    StepLimit,
    /// The execution did not replay deterministically.
    Divergence,
    /// Model capacity exceeded (too many threads).
    Capacity,
}

/// A failing schedule, fully rendered.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Failure class.
    pub kind: FailureKind,
    /// Human-readable description (panic message, race site, …).
    pub message: String,
    /// Op-by-op rendering of the failing execution.
    pub trace: String,
    /// DFS schedule encoding; feed to [`crate::Builder::replay`].
    pub schedule: String,
}

/// Thread run states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    /// May be scheduled normally.
    Runnable,
    /// Spin-waiting (announced a yield, or spinning on a join): scheduled
    /// only when no runnable thread exists, until a write wakes it.
    Yielded,
    /// Done; never scheduled again.
    Finished,
}

/// An announced (pending) operation, as much as scheduling needs to know.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Pend {
    /// Location the op touches, if any.
    loc: Option<u32>,
    /// Whether the op writes that location.
    writes: bool,
    /// Dependent with everything (spawn/join/start/finish).
    strong: bool,
    /// A scheduling yield (dependent with writes: they wake it).
    yields: bool,
}

impl Pend {
    fn read(loc: u32) -> Pend {
        Pend {
            loc: Some(loc),
            writes: false,
            strong: false,
            yields: false,
        }
    }
    fn write(loc: u32) -> Pend {
        Pend {
            loc: Some(loc),
            writes: true,
            strong: false,
            yields: false,
        }
    }
    fn local() -> Pend {
        Pend {
            loc: None,
            writes: false,
            strong: false,
            yields: false,
        }
    }
    fn strong() -> Pend {
        Pend {
            loc: None,
            writes: false,
            strong: true,
            yields: false,
        }
    }
    fn yielding() -> Pend {
        // Yields are dependent with *everything* (strong): a spin loop is a
        // cycle in the state space, and letting other threads sleep through
        // it re-creates the classic sleep-set "ignoring problem" — the
        // sleeping thread holds the only real progress, the spinner loops
        // alone, and the livelock detector fires a false positive.
        Pend {
            loc: None,
            writes: false,
            strong: true,
            yields: true,
        }
    }
}

/// Two pending ops are dependent iff reordering them could change the
/// execution (sleep sets may only keep *independent* ops asleep).
fn dependent(a: &Pend, b: &Pend) -> bool {
    if a.strong || b.strong {
        return true;
    }
    // Writes wake yielded spinners, so they do not commute with yields.
    if (a.yields && b.writes) || (b.yields && a.writes) {
        return true;
    }
    match (a.loc, b.loc) {
        (Some(x), Some(y)) => x == y && (a.writes || b.writes),
        _ => false,
    }
}

#[derive(Debug)]
struct Thr {
    status: Status,
    pending: Option<Pend>,
    clock: VClock,
    /// Relaxed-load acquisitions not yet ordered (merged by acquire fences).
    acq_pending: VClock,
    /// Clock snapshot at the latest release fence (future relaxed stores
    /// release at least this).
    rel_fence: VClock,
}

impl Thr {
    fn new(clock: VClock) -> Thr {
        Thr {
            status: Status::Runnable,
            pending: None,
            clock,
            acq_pending: VClock::ZERO,
            rel_fence: VClock::ZERO,
        }
    }
}

/// Per-execution (and per-check) mutable state, all under one mutex.
pub(crate) struct Exec {
    /// Thread currently allowed to run.
    token: usize,
    threads: Vec<Thr>,
    locs: Vec<Location>,
    by_addr: HashMap<usize, u32>,
    labels: HashMap<usize, &'static str>,
    /// DFS state (persists across executions of one check).
    pub(crate) sched: Schedule,
    /// Preemptions spent in this execution.
    preemptions: u32,
    /// Sleep set (bitmask over tids): provably redundant branches.
    sleep: u32,
    step: u64,
    last_write_step: u64,
    yield_seen_since_write: bool,
    /// Last spinner run by the fair rotation (see `schedule_next`).
    spin_rr: usize,
    trace: Vec<Ev>,
    failure: Option<Failure>,
    /// Execution is being torn down (failure or prune): all threads unwind.
    abort: bool,
    /// Aborted for redundancy (sleep-set prune), not failure.
    pruned: bool,
    /// All threads finished.
    complete: bool,
    live: usize,
    os_handles: Vec<std::thread::JoinHandle<()>>,
    // Budgets (copied from the Builder each run).
    max_preemptions: u32,
    max_steps: u64,
}

impl Exec {
    fn new() -> Exec {
        Exec {
            token: 0,
            threads: Vec::new(),
            locs: Vec::new(),
            by_addr: HashMap::new(),
            labels: HashMap::new(),
            sched: Schedule::default(),
            preemptions: 0,
            sleep: 0,
            step: 0,
            last_write_step: 0,
            yield_seen_since_write: false,
            spin_rr: 0,
            trace: Vec::new(),
            failure: None,
            abort: false,
            pruned: false,
            complete: false,
            live: 0,
            os_handles: Vec::new(),
            max_preemptions: 2,
            max_steps: 20_000,
        }
    }

    fn loc_names(&self) -> Vec<String> {
        self.locs.iter().map(|l| l.name.clone()).collect()
    }

    /// A write landed: reset the livelock window and wake spinners.
    fn note_write(&mut self) {
        self.last_write_step = self.step;
        self.yield_seen_since_write = false;
        for t in &mut self.threads {
            if t.status == Status::Yielded {
                t.status = Status::Runnable;
            }
        }
    }
}

pub(crate) struct Engine {
    mu: Mutex<Exec>,
    cv: Condvar,
}

static ENGINE: OnceLock<Engine> = OnceLock::new();

/// The process-wide engine (checks are serialized by `crate::CHECK_LOCK`).
pub(crate) fn engine() -> &'static Engine {
    ENGINE.get_or_init(|| Engine {
        mu: Mutex::new(Exec::new()),
        cv: Condvar::new(),
    })
}

thread_local! {
    static CUR_TID: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The current model-thread id, if this OS thread is participating in an
/// execution. Drives the instrumented-vs-passthrough routing in the cells.
pub fn current_tid() -> Option<usize> {
    CUR_TID.with(|c| c.get())
}

pub(crate) fn set_current_tid(t: Option<usize>) {
    CUR_TID.with(|c| c.set(t));
}

impl Engine {
    pub(crate) fn lock(&self) -> MutexGuard<'_, Exec> {
        // Poison-tolerant by design: failure teardown unwinds while the
        // guard is held (see module docs).
        self.mu.lock().unwrap_or_else(|e| e.into_inner())
    }

    // ----- execution lifecycle (driver side) ---------------------------

    /// Resets per-execution state; the DFS schedule survives.
    pub(crate) fn begin_execution(&self, max_preemptions: u32, max_steps: u64) {
        let mut g = self.lock();
        debug_assert!(g.os_handles.is_empty(), "previous execution not joined");
        g.token = 0;
        g.threads.clear();
        g.threads.push(Thr::new(VClock::ZERO));
        g.locs.clear();
        g.by_addr.clear();
        g.labels.clear();
        g.sched.rewind();
        g.preemptions = 0;
        g.sleep = 0;
        g.step = 0;
        g.last_write_step = 0;
        g.yield_seen_since_write = false;
        g.spin_rr = 0;
        g.trace.clear();
        g.abort = false;
        g.pruned = false;
        g.complete = false;
        g.live = 1;
        g.max_preemptions = max_preemptions;
        g.max_steps = max_steps;
    }

    /// Installs or clears a replay-only schedule.
    pub(crate) fn set_schedule(&self, sched: Schedule) {
        self.lock().sched = sched;
    }

    /// Advances the DFS to the next unexplored schedule.
    pub(crate) fn advance_schedule(&self) -> bool {
        self.lock().sched.advance()
    }

    /// Waits for every model thread to finish, then reaps the OS threads.
    /// Returns (pruned, failure-if-any).
    pub(crate) fn wait_all_done(&self) -> (bool, Option<Failure>) {
        let mut g = self.lock();
        while !g.complete {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        let handles = std::mem::take(&mut g.os_handles);
        let pruned = g.pruned;
        let failure = g.failure.take();
        drop(g);
        for h in handles {
            let _ = h.join();
        }
        (pruned, failure)
    }

    /// Records a user panic (assertion failure) as this execution's
    /// failure, unless the panic is the abort sentinel.
    pub(crate) fn record_panic(&self, payload: &(dyn std::any::Any + Send)) {
        if payload.is::<AbortToken>() {
            return;
        }
        let msg = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "<non-string panic payload>".to_string()
        };
        let mut g = self.lock();
        if g.failure.is_none() {
            let names = g.loc_names();
            g.failure = Some(Failure {
                kind: FailureKind::Panic,
                message: msg,
                trace: render(&g.trace, &names),
                schedule: g.sched.encode(),
            });
        }
        g.abort = true;
        self.cv.notify_all();
    }

    /// Marks `tid` finished without scheduling (teardown paths). Safe to
    /// call more than once.
    pub(crate) fn force_finish(&self, tid: usize) {
        let mut g = self.lock();
        if g.threads.len() > tid && g.threads[tid].status != Status::Finished {
            g.threads[tid].status = Status::Finished;
            g.threads[tid].pending = None;
            g.live -= 1;
            if g.live == 0 {
                g.complete = true;
            }
        }
        self.cv.notify_all();
    }

    // ----- failure / teardown helpers ----------------------------------

    /// Records an engine-detected failure and unwinds the calling thread.
    /// The caller's guard is released by the unwind (module docs).
    fn fail_in(&self, g: &mut Exec, kind: FailureKind, message: String) -> ! {
        if g.failure.is_none() {
            let names = g.loc_names();
            g.failure = Some(Failure {
                kind,
                message,
                trace: render(&g.trace, &names),
                schedule: g.sched.encode(),
            });
        }
        g.abort = true;
        self.cv.notify_all();
        std::panic::resume_unwind(Box::new(AbortToken));
    }

    /// Abandons a provably redundant execution (sleep-set prune).
    fn prune_in(&self, g: &mut Exec) -> ! {
        g.pruned = true;
        g.abort = true;
        self.cv.notify_all();
        std::panic::resume_unwind(Box::new(AbortToken));
    }

    fn check_abort(&self, g: &Exec) {
        if g.abort {
            std::panic::resume_unwind(Box::new(AbortToken));
        }
    }

    fn choose(&self, g: &mut Exec, n: usize) -> usize {
        match g.sched.choose(n) {
            Ok(i) => i,
            Err(recorded) => self.fail_in(
                g,
                FailureKind::Divergence,
                format!(
                    "nondeterministic execution: a replayed choice point had arity \
                     {n} but {recorded} was recorded (is the closure reading time, \
                     randomness, or state carried across executions?)"
                ),
            ),
        }
    }

    // ----- the announce / schedule / perform protocol ------------------

    /// Parks until this thread holds the token; unwinds on abort.
    fn wait_token<'a>(&'a self, mut g: MutexGuard<'a, Exec>, tid: usize) -> MutexGuard<'a, Exec> {
        while g.token != tid && !g.abort {
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        self.check_abort(&g);
        g
    }

    /// The scheduling choice point: picks which announced thread performs
    /// its pending op next, handing the token over when it isn't `me`.
    fn schedule_next(&self, g: &mut Exec, me: usize) {
        let nthreads = g.threads.len();
        let eligible: Vec<usize> = (0..nthreads)
            .filter(|&t| g.threads[t].pending.is_some() && g.threads[t].status != Status::Finished)
            .collect();
        if eligible.is_empty() {
            return; // all done; completion is handled at finish sites
        }
        let nosleep: Vec<usize> = eligible
            .iter()
            .copied()
            .filter(|&t| g.sleep & (1 << t) == 0)
            .collect();
        if nosleep.is_empty() {
            // Every enabled transition is in the sleep set: this execution
            // is a reordering of one already explored.
            self.prune_in(g);
        }
        let runnable: Vec<usize> = nosleep
            .iter()
            .copied()
            .filter(|&t| g.threads[t].status == Status::Runnable)
            .collect();
        let runnable_empty = runnable.is_empty();
        let pool = if runnable_empty { nosleep } else { runnable };
        let me_continues = pool.contains(&me) && g.threads[me].status == Status::Runnable;
        let (chosen, explored) = if runnable_empty && pool.len() > 1 {
            // Pure spin phase: every candidate is a Yielded spinner. Branching
            // the DFS here starves spinners (a schedule that keeps picking the
            // same yielder forever looks like a livelock that isn't real), and
            // the orderings don't matter anyway until somebody writes — so run
            // the spinners round-robin with no choice point, loom-style. A
            // write wakes everyone and returns control to the DFS.
            let next = pool
                .iter()
                .copied()
                .find(|&t| t > g.spin_rr)
                .unwrap_or(pool[0]);
            g.spin_rr = next;
            (next, Vec::new())
        } else {
            let mut cands = if me_continues && g.preemptions >= g.max_preemptions {
                vec![me]
            } else {
                pool
            };
            // Deterministic order: continuing the current thread is branch 0.
            cands.sort_unstable();
            if let Some(p) = cands.iter().position(|&t| t == me) {
                cands.remove(p);
                cands.insert(0, me);
            }
            let idx = self.choose(g, cands.len());
            let chosen = cands[idx];
            cands.truncate(idx);
            (chosen, cands)
        };
        if chosen != me && me_continues {
            g.preemptions += 1;
        }
        // Sleep-set update: alternatives already fully explored at this
        // node stay asleep as long as the op we now run commutes with
        // their pending op (running them later reaches the same states).
        let chosen_pend = g.threads[chosen].pending.expect("candidate has pending");
        let mut ns: u32 = 0;
        for t in 0..nthreads {
            let was_asleep = g.sleep & (1 << t) != 0;
            let newly_explored = explored.contains(&t);
            if t != chosen && (was_asleep || newly_explored) {
                if let Some(p) = g.threads[t].pending {
                    if !dependent(&p, &chosen_pend) {
                        ns |= 1 << t;
                    }
                }
            }
        }
        g.sleep = ns;
        if chosen != me {
            g.token = chosen;
            self.cv.notify_all();
        }
    }

    /// Runs one full op: announce `pend`, schedule, park if preempted,
    /// then perform `perform` while holding the token.
    fn op<R>(&self, tid: usize, pend: Pend, park: bool, perform: impl FnOnce(&mut Exec) -> R) -> R {
        let mut g = self.lock();
        self.check_abort(&g);
        debug_assert_eq!(g.token, tid, "op from a thread not holding the token");
        g.threads[tid].pending = Some(pend);
        if park {
            g.threads[tid].status = Status::Yielded;
        }
        self.schedule_next(&mut g, tid);
        if g.token != tid {
            g = self.wait_token(g, tid);
        }
        g.threads[tid].status = Status::Runnable;
        let r = perform(&mut g);
        g.threads[tid].pending = None;
        g.step += 1;
        if g.step > g.max_steps {
            let max = g.max_steps;
            self.fail_in(
                &mut g,
                FailureKind::StepLimit,
                format!(
                    "execution exceeded {max} steps (unbounded loop without \
                     instrumented progress?)"
                ),
            );
        }
        // Livelock: a window of write-free steps containing spin-yields
        // means no thread can make progress (stale reads are bounded, so
        // spinners have already seen the final values).
        if g.yield_seen_since_write && g.step - g.last_write_step > LIVELOCK_WINDOW {
            let stuck: Vec<String> = (0..g.threads.len())
                .filter(|&t| g.threads[t].status != Status::Finished)
                .map(|t| format!("t{t}"))
                .collect();
            let msg = format!(
                "no progress: threads [{}] spin without any write becoming \
                 visible (deadlock or livelock)",
                stuck.join(", ")
            );
            self.fail_in(&mut g, FailureKind::Livelock, msg);
        }
        r
    }

    // ----- location registry -------------------------------------------

    fn register(
        &self,
        g: &mut Exec,
        addr: usize,
        kind: LocKind,
        initial: u64,
        caller: &'static SrcLoc<'static>,
    ) -> u32 {
        if let Some(&i) = g.by_addr.get(&addr) {
            return i;
        }
        let i = g.locs.len() as u32;
        let name = match g.labels.remove(&addr) {
            Some(l) => l.to_string(),
            None => {
                let file = caller.file();
                let base = file.rsplit('/').next().unwrap_or(file);
                format!(
                    "{}#{}@{}:{}",
                    if kind == LocKind::Atomic { "a" } else { "p" },
                    i,
                    base,
                    caller.line()
                )
            }
        };
        g.locs.push(Location::new(name, initial));
        g.by_addr.insert(addr, i);
        i
    }

    /// Names a location for traces (before or after first access).
    pub(crate) fn label(&self, addr: usize, name: &'static str) {
        let mut g = self.lock();
        if let Some(&i) = g.by_addr.get(&addr) {
            g.locs[i as usize].name = name.to_string();
        } else {
            g.labels.insert(addr, name);
        }
    }

    /// The latest modeled value of a registered atomic (used by `get_mut`
    /// style escape hatches to sync the backing cell).
    pub(crate) fn latest_value(&self, addr: usize) -> Option<u64> {
        let g = self.lock();
        let &i = g.by_addr.get(&addr)?;
        g.locs[i as usize].stores.last().map(|s| s.value)
    }

    /// Index of the latest store to a registered peek cell (`PeekCell::
    /// get_mut` syncs its typed value from it).
    pub(crate) fn latest_peek_index(&self, addr: usize) -> Option<usize> {
        let g = self.lock();
        let &i = g.by_addr.get(&addr)?;
        Some(g.locs[i as usize].stores.len() - 1)
    }

    // ----- memory-model primitives (called while holding the token) ----

    /// Load value choice + happens-before effects. Returns (store index,
    /// value, concurrent-write-existed).
    fn do_load(&self, g: &mut Exec, tid: usize, li: u32, ord: Ordering) -> (usize, u64, bool) {
        g.threads[tid].clock.tick(tid);
        let clock = g.threads[tid].clock;
        let l = &g.locs[li as usize];
        let (hb_floor, concurrent) = l.hb_scan(&clock);
        let mut floor = hb_floor.max(l.read_floor[tid]).max(l.write_floor[tid]);
        if matches!(ord, Ordering::SeqCst) {
            if let Some(k) = l.last_sc {
                floor = floor.max(k);
            }
        }
        let newest = l.stores.len() - 1;
        if l.stale[tid] >= STALE_BOUND {
            floor = newest;
        }
        let n = newest - floor + 1;
        let c = self.choose(g, n);
        let idx = newest - c;
        let l = &mut g.locs[li as usize];
        l.stale[tid] = if idx == newest { 0 } else { l.stale[tid] + 1 };
        l.read_floor[tid] = l.read_floor[tid].max(idx);
        let value = l.stores[idx].value;
        let release = l.stores[idx].release;
        let thr = &mut g.threads[tid];
        match ord {
            Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst => thr.clock.join(&release),
            _ => thr.acq_pending.join(&release),
        }
        (idx, value, concurrent)
    }

    /// Appends a store; `rmw_prev_release` carries the release sequence
    /// through read-modify-writes.
    fn do_store(
        &self,
        g: &mut Exec,
        tid: usize,
        li: u32,
        value: u64,
        ord: Ordering,
        rmw_prev_release: Option<VClock>,
    ) -> usize {
        let seq = g.threads[tid].clock.tick(tid);
        let thr = &g.threads[tid];
        let mut release = match ord {
            Ordering::Release | Ordering::AcqRel | Ordering::SeqCst => thr.clock,
            _ => thr.rel_fence,
        };
        if let Some(prev) = rmw_prev_release {
            release.join(&prev);
        }
        let sc = matches!(ord, Ordering::SeqCst);
        let l = &mut g.locs[li as usize];
        let idx = l.stores.len();
        l.stores.push(Store {
            value,
            writer: tid,
            writer_seq: seq,
            release,
        });
        l.read_floor[tid] = idx;
        l.write_floor[tid] = idx;
        if sc {
            l.last_sc = Some(idx);
        }
        g.note_write();
        idx
    }

    #[allow(clippy::too_many_arguments)]
    fn push_ev(
        &self,
        g: &mut Exec,
        tid: usize,
        kind: EvKind,
        loc: u32,
        ord: Option<Ordering>,
        a: u64,
        b: u64,
        racy: bool,
        caller: &'static SrcLoc<'static>,
    ) {
        let step = g.step;
        g.trace.push(Ev {
            step,
            tid,
            kind,
            loc,
            ord,
            a,
            b,
            racy,
            caller,
        });
    }

    // ----- public op surface (used by cell.rs / thread.rs / lib.rs) ----

    /// Atomic load.
    pub(crate) fn atomic_load(
        &self,
        tid: usize,
        addr: usize,
        initial: u64,
        ord: Ordering,
        caller: &'static SrcLoc<'static>,
    ) -> u64 {
        let li = {
            let mut g = self.lock();
            self.check_abort(&g);
            self.register(&mut g, addr, LocKind::Atomic, initial, caller)
        };
        self.op(tid, Pend::read(li), false, |g| {
            let (_, v, _) = self.do_load(g, tid, li, ord);
            self.push_ev(g, tid, EvKind::Load, li, Some(ord), v, 0, false, caller);
            v
        })
    }

    /// Atomic store.
    pub(crate) fn atomic_store(
        &self,
        tid: usize,
        addr: usize,
        initial: u64,
        value: u64,
        ord: Ordering,
        caller: &'static SrcLoc<'static>,
    ) {
        let li = {
            let mut g = self.lock();
            self.check_abort(&g);
            self.register(&mut g, addr, LocKind::Atomic, initial, caller)
        };
        self.op(tid, Pend::write(li), false, |g| {
            self.do_store(g, tid, li, value, ord, None);
            self.push_ev(
                g,
                tid,
                EvKind::Store,
                li,
                Some(ord),
                value,
                0,
                false,
                caller,
            );
        })
    }

    /// Atomic read-modify-write. `f` maps old value → new value; when
    /// `expected` is `Some(x)` this is a compare-exchange that only writes
    /// if the current value equals `x` (failure loads with `fail_ord`).
    /// Returns `(old, success)`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn atomic_rmw(
        &self,
        tid: usize,
        addr: usize,
        initial: u64,
        f: &dyn Fn(u64) -> u64,
        expected: Option<u64>,
        ord: Ordering,
        fail_ord: Ordering,
        caller: &'static SrcLoc<'static>,
    ) -> (u64, bool) {
        let li = {
            let mut g = self.lock();
            self.check_abort(&g);
            self.register(&mut g, addr, LocKind::Atomic, initial, caller)
        };
        self.op(tid, Pend::write(li), false, |g| {
            // An RMW always reads the latest store in modification order
            // (atomicity). A failed CAS is modeled as a load of the latest
            // value — see DESIGN.md for why that approximation is sound
            // for the protocols here.
            let newest = g.locs[li as usize].stores.len() - 1;
            let old = g.locs[li as usize].stores[newest].value;
            let prev_release = g.locs[li as usize].stores[newest].release;
            if let Some(exp) = expected {
                if old != exp {
                    g.threads[tid].clock.tick(tid);
                    let l = &mut g.locs[li as usize];
                    l.read_floor[tid] = newest;
                    l.stale[tid] = 0;
                    let thr = &mut g.threads[tid];
                    match fail_ord {
                        Ordering::Acquire | Ordering::SeqCst => thr.clock.join(&prev_release),
                        _ => thr.acq_pending.join(&prev_release),
                    }
                    self.push_ev(
                        g,
                        tid,
                        EvKind::CasFail,
                        li,
                        Some(fail_ord),
                        old,
                        0,
                        false,
                        caller,
                    );
                    return (old, false);
                }
            }
            // Acquire side of the successful RMW.
            {
                let thr = &mut g.threads[tid];
                match ord {
                    Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst => {
                        thr.clock.join(&prev_release)
                    }
                    _ => thr.acq_pending.join(&prev_release),
                }
            }
            let new = f(old);
            self.do_store(g, tid, li, new, ord, Some(prev_release));
            self.push_ev(g, tid, EvKind::Rmw, li, Some(ord), old, new, false, caller);
            (old, true)
        })
    }

    /// Memory fence.
    pub(crate) fn fence(&self, tid: usize, ord: Ordering, caller: &'static SrcLoc<'static>) {
        self.op(tid, Pend::local(), false, |g| {
            let thr = &mut g.threads[tid];
            match ord {
                Ordering::Acquire => {
                    let p = thr.acq_pending;
                    thr.clock.join(&p);
                }
                Ordering::Release => thr.rel_fence = thr.clock,
                // AcqRel and SeqCst fences do both (SC-fence total-order
                // semantics are not modeled; nothing in the workspace
                // relies on them — see DESIGN.md).
                _ => {
                    let p = thr.acq_pending;
                    thr.clock.join(&p);
                    thr.rel_fence = thr.clock;
                }
            }
            self.push_ev(
                g,
                tid,
                EvKind::Fence,
                NO_LOC,
                Some(ord),
                0,
                0,
                false,
                caller,
            );
        })
    }

    /// Plain (peeked) read. `consent = true` (`read_racy`) reports the race
    /// back to the caller; `consent = false` (`read`) makes any race fatal.
    /// Returns (store index, racy).
    pub(crate) fn peek_read(
        &self,
        tid: usize,
        addr: usize,
        consent: bool,
        caller: &'static SrcLoc<'static>,
    ) -> (usize, bool) {
        let li = {
            let mut g = self.lock();
            self.check_abort(&g);
            self.register(&mut g, addr, LocKind::Peek, 0, caller)
        };
        self.op(tid, Pend::read(li), false, |g| {
            // Plain reads behave like relaxed atomic loads (value choice +
            // pending acquisition) plus race accounting.
            let (idx, _, racy) = self.do_load(g, tid, li, Ordering::Relaxed);
            self.push_ev(
                g,
                tid,
                EvKind::PeekRead,
                li,
                None,
                idx as u64,
                0,
                racy,
                caller,
            );
            if !consent {
                if racy {
                    let name = g.locs[li as usize].name.clone();
                    let msg = format!(
                        "data race: t{tid} read {name} at {}:{} while a concurrent \
                         (unordered) write exists",
                        caller.file(),
                        caller.line()
                    );
                    self.fail_in(g, FailureKind::DataRace, msg);
                }
                let seq = g.threads[tid].clock.get(tid);
                let l = &mut g.locs[li as usize];
                l.read_marks[tid] = Some(seq.max(l.read_marks[tid].unwrap_or(0)));
            }
            (idx, racy)
        })
    }

    /// Plain (peeked) write. Any unordered prior read or write is a fatal
    /// race. Returns the store index (the cell stores the typed value).
    pub(crate) fn peek_write(
        &self,
        tid: usize,
        addr: usize,
        caller: &'static SrcLoc<'static>,
    ) -> usize {
        let li = {
            let mut g = self.lock();
            self.check_abort(&g);
            self.register(&mut g, addr, LocKind::Peek, 0, caller)
        };
        self.op(tid, Pend::write(li), false, |g| {
            g.threads[tid].clock.tick(tid);
            let clock = g.threads[tid].clock;
            let l = &g.locs[li as usize];
            let (_, concurrent_store) = l.hb_scan(&clock);
            let mut racing_reader = None;
            for t in 0..MAX_THREADS {
                if t != tid {
                    if let Some(k) = l.read_marks[t] {
                        if clock.get(t) < k {
                            racing_reader = Some(t);
                        }
                    }
                }
            }
            if concurrent_store || racing_reader.is_some() {
                let name = l.name.clone();
                let what = match racing_reader {
                    Some(t) => format!("a concurrent read by t{t}"),
                    None => "a concurrent write".to_string(),
                };
                let msg = format!(
                    "data race: t{tid} wrote {name} at {}:{} racing {what}",
                    caller.file(),
                    caller.line()
                );
                self.fail_in(g, FailureKind::DataRace, msg);
            }
            let idx = self.do_store(g, tid, li, 0, Ordering::Relaxed, None);
            self.push_ev(
                g,
                tid,
                EvKind::PeekWrite,
                li,
                None,
                idx as u64,
                0,
                false,
                caller,
            );
            idx
        })
    }

    /// Cooperative yield (spin backoff): deprioritized until a write lands.
    pub(crate) fn yield_op(&self, tid: usize, caller: &'static SrcLoc<'static>) {
        self.op(tid, Pend::yielding(), true, |g| {
            g.yield_seen_since_write = true;
            self.push_ev(g, tid, EvKind::Yield, NO_LOC, None, 0, 0, false, caller);
        })
    }

    /// Spawns a model thread running `body` on a fresh OS thread; returns
    /// its tid. `body` runs with the child tid already bound.
    pub(crate) fn spawn(
        &self,
        tid: usize,
        body: Box<dyn FnOnce() + Send>,
        caller: &'static SrcLoc<'static>,
    ) -> usize {
        self.op(tid, Pend::strong(), false, |g| {
            let child = g.threads.len();
            if child >= MAX_THREADS {
                self.fail_in(
                    g,
                    FailureKind::Capacity,
                    format!("spawn would exceed MAX_THREADS ({MAX_THREADS})"),
                );
            }
            g.threads[tid].clock.tick(tid);
            let mut thr = Thr::new(g.threads[tid].clock);
            // The child is immediately schedulable at its start op.
            thr.pending = Some(Pend::strong());
            g.threads.push(thr);
            g.live += 1;
            g.note_write();
            self.push_ev(
                g,
                tid,
                EvKind::Spawn,
                NO_LOC,
                None,
                child as u64,
                0,
                false,
                caller,
            );
            let handle = std::thread::Builder::new()
                .name(format!("prep-mc-t{child}"))
                .spawn(move || {
                    set_current_tid(Some(child));
                    body();
                    set_current_tid(None);
                })
                .expect("spawn model thread");
            g.os_handles.push(handle);
            child
        })
    }

    /// First op of a spawned thread: waits to be scheduled for the first
    /// time. (Its `pending` was announced by the parent inside `spawn`.)
    pub(crate) fn start_op(&self, tid: usize, caller: &'static SrcLoc<'static>) {
        let g = self.lock();
        self.check_abort(&g);
        let mut g = self.wait_token(g, tid);
        g.threads[tid].status = Status::Runnable;
        self.push_ev(
            &mut g,
            tid,
            EvKind::Start,
            NO_LOC,
            None,
            0,
            0,
            false,
            caller,
        );
        g.threads[tid].pending = None;
        g.step += 1;
        g.note_write();
    }

    /// One join attempt: true when `target` has finished (merging its
    /// final clock — join synchronizes-with thread end). Callers loop.
    pub(crate) fn join_try(
        &self,
        tid: usize,
        target: usize,
        caller: &'static SrcLoc<'static>,
    ) -> bool {
        // Park-flavored when the target is still running: the switch away
        // from us is forced, not a preemption. (No other thread can run
        // between this check and the announce — we hold the token.)
        let parked = {
            let g = self.lock();
            self.check_abort(&g);
            g.threads[target].status != Status::Finished
        };
        self.op(tid, Pend::strong(), parked, |g| {
            if g.threads[target].status == Status::Finished {
                let tclock = g.threads[target].clock;
                g.threads[tid].clock.join(&tclock);
                g.note_write();
                self.push_ev(
                    g,
                    tid,
                    EvKind::Join,
                    NO_LOC,
                    None,
                    target as u64,
                    0,
                    false,
                    caller,
                );
                true
            } else {
                g.yield_seen_since_write = true;
                self.push_ev(g, tid, EvKind::Yield, NO_LOC, None, 0, 0, false, caller);
                false
            }
        })
    }

    /// Final op of any model thread (including the main closure).
    pub(crate) fn finish_op(&self, tid: usize, caller: &'static SrcLoc<'static>) {
        let mut g = self.lock();
        self.check_abort(&g);
        debug_assert_eq!(g.token, tid);
        g.threads[tid].pending = Some(Pend::strong());
        self.schedule_next(&mut g, tid);
        if g.token != tid {
            g = self.wait_token(g, tid);
        }
        self.push_ev(
            &mut g,
            tid,
            EvKind::Finish,
            NO_LOC,
            None,
            0,
            0,
            false,
            caller,
        );
        g.threads[tid].status = Status::Finished;
        g.threads[tid].pending = None;
        g.live -= 1;
        g.step += 1;
        g.note_write();
        if g.live == 0 {
            g.complete = true;
            self.cv.notify_all();
        } else {
            // Forced handoff: we are no longer eligible.
            self.schedule_next(&mut g, tid);
        }
    }
}
