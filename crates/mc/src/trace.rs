//! Execution traces and counterexample rendering.
//!
//! Every performed operation is recorded as a compact [`Ev`]; when an
//! execution fails (assertion, data race, livelock, …) the trace is
//! rendered op-by-op together with the DFS schedule encoding, which
//! [`crate::Builder::replay`] accepts to re-run exactly that interleaving.

use std::fmt::Write as _;
use std::panic::Location as SrcLoc;
use std::sync::atomic::Ordering;

/// What a trace event was.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvKind {
    /// Atomic load; `a` = value read.
    Load,
    /// Atomic store; `a` = value written.
    Store,
    /// Successful RMW; `a` = old value, `b` = new value.
    Rmw,
    /// Failed compare-exchange; `a` = observed value.
    CasFail,
    /// Memory fence.
    Fence,
    /// Plain (peeked) read; `a` = store index read.
    PeekRead,
    /// Plain (peeked) write; `a` = store index written.
    PeekWrite,
    /// Cooperative yield (spin backoff).
    Yield,
    /// Thread spawn; `a` = child thread id.
    Spawn,
    /// Join completed; `a` = joined thread id.
    Join,
    /// Thread start.
    Start,
    /// Thread finish.
    Finish,
}

/// One performed operation.
#[derive(Clone, Copy, Debug)]
pub struct Ev {
    /// Global step number.
    pub step: u64,
    /// Performing thread.
    pub tid: usize,
    /// Operation kind.
    pub kind: EvKind,
    /// Location index (`u32::MAX` when not location-bound).
    pub loc: u32,
    /// Memory ordering, when meaningful.
    pub ord: Option<Ordering>,
    /// Primary operand (see [`EvKind`]).
    pub a: u64,
    /// Secondary operand (see [`EvKind`]).
    pub b: u64,
    /// Whether a concurrent (unordered) write existed at a peeked read.
    pub racy: bool,
    /// Source location of the instrumented call.
    pub caller: &'static SrcLoc<'static>,
}

/// Marker for events with no associated memory location.
pub const NO_LOC: u32 = u32::MAX;

fn ord_str(o: Ordering) -> &'static str {
    match o {
        Ordering::Relaxed => "Relaxed",
        Ordering::Acquire => "Acquire",
        Ordering::Release => "Release",
        Ordering::AcqRel => "AcqRel",
        Ordering::SeqCst => "SeqCst",
        _ => "?",
    }
}

/// Trims a long absolute path down to its last two components.
fn short_path(p: &str) -> String {
    let parts: Vec<&str> = p.rsplitn(3, '/').collect();
    match parts.len() {
        0 | 1 => p.to_string(),
        2 => format!("{}/{}", parts[1], parts[0]),
        _ => format!("{}/{}", parts[1], parts[0]),
    }
}

/// Renders a trace as numbered, per-thread-labeled lines.
pub fn render(trace: &[Ev], loc_names: &[String]) -> String {
    let mut out = String::new();
    for ev in trace {
        let loc = if ev.loc == NO_LOC {
            String::new()
        } else {
            loc_names
                .get(ev.loc as usize)
                .cloned()
                .unwrap_or_else(|| format!("loc#{}", ev.loc))
        };
        let ord = ev.ord.map(ord_str).unwrap_or("");
        let desc = match ev.kind {
            EvKind::Load => format!("load  {loc} ({ord}) -> {}", ev.a),
            EvKind::Store => format!("store {loc} ({ord}) <- {}", ev.a),
            EvKind::Rmw => format!("rmw   {loc} ({ord}) {} -> {}", ev.a, ev.b),
            EvKind::CasFail => format!("cas!  {loc} ({ord}) observed {}", ev.a),
            EvKind::Fence => format!("fence ({ord})"),
            EvKind::PeekRead => format!(
                "peekR {loc} [store #{}]{}",
                ev.a,
                if ev.racy { " RACY" } else { "" }
            ),
            EvKind::PeekWrite => format!("peekW {loc} [store #{}]", ev.a),
            EvKind::Yield => "yield".to_string(),
            EvKind::Spawn => format!("spawn t{}", ev.a),
            EvKind::Join => format!("join  t{}", ev.a),
            EvKind::Start => "start".to_string(),
            EvKind::Finish => "finish".to_string(),
        };
        let _ = writeln!(
            out,
            "[{:4}] t{}  {:<52} {}:{}",
            ev.step,
            ev.tid,
            desc,
            short_path(ev.caller.file()),
            ev.caller.line()
        );
    }
    out
}
