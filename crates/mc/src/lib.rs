//! prep-mc: a dependency-free, loom-style model checker for the PREP-UC
//! workspace's synchronization primitives.
//!
//! A check takes a closure over instrumented cells ([`cell`]) and threads
//! ([`thread`]) and runs it under **every** schedule a bounded exhaustive
//! search can reach: the scheduler branches at each instrumented operation
//! (which thread runs next, bounded by a preemption budget and pruned by
//! sleep sets) and at each load (which store it reads, per a C11-flavored
//! memory model with per-location store histories and vector clocks — so
//! `Relaxed` loads really can return stale values, and
//! `Acquire`/`Release`/`SeqCst`/fences actually differ).
//!
//! On a failing schedule — assertion panic, data race on peeked plain
//! data, livelock/deadlock, or step-budget blowout — the checker reports
//! an op-by-op trace plus a compact schedule string that
//! [`Builder::replay`] re-executes deterministically.
//!
//! ```
//! use prep_mc::{cell::AtomicU64, thread, Builder};
//! use std::sync::atomic::Ordering;
//! use std::sync::Arc;
//!
//! Builder::new("counter").check(|| {
//!     let c = Arc::new(AtomicU64::new(0));
//!     let c2 = Arc::clone(&c);
//!     let t = thread::spawn(move || {
//!         c2.fetch_add(1, Ordering::Relaxed);
//!     });
//!     c.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     assert_eq!(c.load(Ordering::Relaxed), 2);
//! });
//! ```
//!
//! What this checker deliberately is *not* — and the reductions it takes
//! (preemption bound, stale-read bound, no spurious CAS failure, no
//! SC-fence total order) — is documented in `DESIGN.md` under "What
//! prep-mc proves (and what it doesn't)".

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod clock;
mod engine;
mod loc;
mod sched;
mod trace;

pub mod cell;
pub mod thread;

pub use cell::label;
pub use engine::{Failure, FailureKind};

use std::panic::{catch_unwind, AssertUnwindSafe, Location};
use std::sync::Mutex;

use engine::{engine, set_current_tid};
use sched::Schedule;

/// Serializes checks process-wide: the engine is a singleton, and `cargo
/// test`'s default parallelism must not interleave two explorations.
static CHECK_LOCK: Mutex<()> = Mutex::new(());

/// Default schedule budget when neither the builder nor the
/// `PREP_MC_MAX_SCHEDULES` environment variable says otherwise.
const DEFAULT_MAX_SCHEDULES: u64 = 200_000;

/// What an exploration did.
#[derive(Debug)]
pub struct Report {
    /// Executions run (including sleep-set-pruned ones).
    pub schedules: u64,
    /// Executions abandoned as provably redundant (sleep sets).
    pub pruned: u64,
    /// True when the whole bounded schedule tree was explored (false when
    /// the schedule budget ran out first, or a failure stopped the search).
    pub complete: bool,
    /// The first failing schedule found, if any.
    pub failure: Option<Failure>,
}

/// Configures and runs one model-checking exploration.
#[derive(Clone, Debug)]
pub struct Builder {
    name: &'static str,
    max_preemptions: u32,
    max_schedules: u64,
    max_steps: u64,
    replay: Option<String>,
}

impl Builder {
    /// A builder with the default bounds (2 preemptions, 20k steps per
    /// execution, schedule budget from `PREP_MC_MAX_SCHEDULES` or 200k).
    pub fn new(name: &'static str) -> Builder {
        let max_schedules = std::env::var("PREP_MC_MAX_SCHEDULES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_MAX_SCHEDULES);
        Builder {
            name,
            max_preemptions: 2,
            max_schedules,
            max_steps: 20_000,
            replay: None,
        }
    }

    /// Caps forced context switches per execution (CHESS-style bounding:
    /// most real concurrency bugs need very few preemptions).
    pub fn max_preemptions(mut self, n: u32) -> Builder {
        self.max_preemptions = n;
        self
    }

    /// Caps the number of schedules explored.
    pub fn max_schedules(mut self, n: u64) -> Builder {
        self.max_schedules = n;
        self
    }

    /// Caps instrumented steps per execution.
    pub fn max_steps(mut self, n: u64) -> Builder {
        self.max_steps = n;
        self
    }

    /// Replays exactly one execution from a [`Failure::schedule`] string
    /// instead of exploring.
    pub fn replay(mut self, schedule: &str) -> Builder {
        self.replay = Some(schedule.to_string());
        self
    }

    /// Explores the closure and returns what happened. The closure runs
    /// once per schedule; create all cells and threads inside it.
    pub fn run<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync,
    {
        let _serial = CHECK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let e = engine();
        match &self.replay {
            Some(s) => e.set_schedule(Schedule::decode(s)),
            None => e.set_schedule(Schedule::default()),
        }
        let here = Location::caller();
        let mut schedules = 0u64;
        let mut pruned_count = 0u64;
        loop {
            e.begin_execution(self.max_preemptions, self.max_steps);
            set_current_tid(Some(0));
            let outcome = catch_unwind(AssertUnwindSafe(&f));
            match outcome {
                Ok(()) => {
                    // The main closure's final op; un-joined model threads
                    // keep running to completion after it.
                    if let Err(p) = catch_unwind(AssertUnwindSafe(|| e.finish_op(0, here))) {
                        e.record_panic(&*p);
                        e.force_finish(0);
                    }
                }
                Err(p) => {
                    e.record_panic(&*p);
                    e.force_finish(0);
                }
            }
            set_current_tid(None);
            let (pruned, failure) = e.wait_all_done();
            schedules += 1;
            if pruned {
                pruned_count += 1;
            }
            if failure.is_some() {
                return Report {
                    schedules,
                    pruned: pruned_count,
                    complete: false,
                    failure,
                };
            }
            if self.replay.is_some() {
                return Report {
                    schedules,
                    pruned: pruned_count,
                    complete: true,
                    failure: None,
                };
            }
            if schedules >= self.max_schedules {
                return Report {
                    schedules,
                    pruned: pruned_count,
                    complete: false,
                    failure: None,
                };
            }
            if !e.advance_schedule() {
                return Report {
                    schedules,
                    pruned: pruned_count,
                    complete: true,
                    failure: None,
                };
            }
        }
    }

    /// Explores the closure and panics with a rendered counterexample on
    /// the first failing schedule. An incomplete (budget-capped) clean
    /// exploration passes — the bound is part of the claim being checked.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync,
    {
        let r = self.run(f);
        if let Some(fail) = r.failure {
            panic!(
                "prep-mc check '{}' failed after {} schedule(s)\n\
                 kind: {:?}\n\
                 {}\n\
                 replay schedule: \"{}\"\n\
                 trace:\n{}",
                self.name, r.schedules, fail.kind, fail.message, fail.schedule, fail.trace
            );
        }
    }
}
