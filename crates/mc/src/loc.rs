//! Per-location store histories — the memory-model half of the checker.
//!
//! Each atomic (or peeked) memory location keeps the full list of stores
//! made to it during the current execution. Modification order is the
//! order stores executed; value nondeterminism lives entirely on the load
//! side: a load may read any store that coherence, happens-before, and the
//! SeqCst rules leave visible, and the scheduler branches on that choice.

use crate::clock::{VClock, MAX_THREADS};

/// How many *consecutive* stale (non-latest) reads one thread may take from
/// one location before the checker forces it to read the latest store.
///
/// Without this bound a spinning reader could be handed the same stale value
/// forever — a livelock that no real coherence protocol exhibits (MESI
/// propagates invalidations in finite time). Three consecutive stale reads
/// is enough to expose every reordering our two/three-thread properties care
/// about while keeping executions finite.
pub const STALE_BOUND: u32 = 3;

/// What kind of cell a location models. Atomics never data-race; peeked
/// plain data participates in happens-before race detection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LocKind {
    /// An `Atomic*` cell routed through the instrumented seam.
    Atomic,
    /// A `PeekCell<T>` — plain data read through `with_peek`-style brackets.
    Peek,
}

/// One store in a location's modification order.
#[derive(Clone, Debug)]
pub struct Store {
    /// The stored value (masked to the cell's width; unused for peek cells,
    /// whose typed values live in the cell itself, indexed by store index).
    pub value: u64,
    /// Thread that made the store.
    pub writer: usize,
    /// The writer's own clock component at the store (post-tick): `s`
    /// happens-before thread `t` iff `t.clock[s.writer] >= s.writer_seq`.
    pub writer_seq: u64,
    /// The clock an acquire-side reader of this store synchronizes with
    /// (release clock, including release-fence and release-sequence
    /// contributions).
    pub release: VClock,
}

/// A modeled memory location.
#[derive(Debug)]
pub struct Location {
    /// Display name for traces (`mc::label` or first-access site).
    pub name: String,
    /// Modification order. Index 0 is the initial value, modeled as a store
    /// that happens-before everything (`writer_seq` 0).
    pub stores: Vec<Store>,
    /// Per-thread coherence floor from past reads: a thread may never read
    /// an older store than one it (or its hb-predecessors) already read.
    pub read_floor: [usize; MAX_THREADS],
    /// Per-thread coherence floor from own writes.
    pub write_floor: [usize; MAX_THREADS],
    /// Index of the latest `SeqCst` store, if any.
    pub last_sc: Option<usize>,
    /// Consecutive stale-read counters (see [`STALE_BOUND`]).
    pub stale: [u32; MAX_THREADS],
    /// Latest non-consenting plain read per thread (reader's own clock
    /// component at the read) — the write side checks races against these.
    pub read_marks: [Option<u64>; MAX_THREADS],
}

impl Location {
    /// Creates a location whose initial value is visible to (and ordered
    /// before) every thread.
    pub fn new(name: String, initial: u64) -> Self {
        Location {
            name,
            stores: vec![Store {
                value: initial,
                writer: 0,
                writer_seq: 0,
                release: VClock::ZERO,
            }],
            read_floor: [0; MAX_THREADS],
            write_floor: [0; MAX_THREADS],
            last_sc: None,
            stale: [0; MAX_THREADS],
            read_marks: [None; MAX_THREADS],
        }
    }

    /// Index of the newest store that happens-before `clock`, plus whether
    /// any store does *not* (i.e. the location has a write concurrent with
    /// the observer — the read side of race detection).
    ///
    /// Visibility: a store is hidden iff a *newer* store happens-before the
    /// reader, so the visible suffix is exactly `hb_floor..`.
    pub fn hb_scan(&self, clock: &VClock) -> (usize, bool) {
        let mut floor = 0;
        let mut concurrent = false;
        for (i, s) in self.stores.iter().enumerate() {
            if clock.get(s.writer) >= s.writer_seq {
                floor = i;
            } else {
                concurrent = true;
            }
        }
        (floor, concurrent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_store_is_visible_to_everyone() {
        let l = Location::new("x".into(), 7);
        let (floor, concurrent) = l.hb_scan(&VClock::ZERO);
        assert_eq!(floor, 0);
        assert!(!concurrent);
        assert_eq!(l.stores[0].value, 7);
    }

    #[test]
    fn hb_scan_floor_and_concurrency() {
        let mut l = Location::new("x".into(), 0);
        // Thread 1's store at seq 4, thread 2's at seq 9.
        l.stores.push(Store {
            value: 1,
            writer: 1,
            writer_seq: 4,
            release: VClock::ZERO,
        });
        l.stores.push(Store {
            value: 2,
            writer: 2,
            writer_seq: 9,
            release: VClock::ZERO,
        });
        let mut c = VClock::ZERO;
        c.set(1, 4); // saw thread 1's store, not thread 2's
        let (floor, concurrent) = l.hb_scan(&c);
        assert_eq!(floor, 1);
        assert!(concurrent);
        c.set(2, 9);
        let (floor, concurrent) = l.hb_scan(&c);
        assert_eq!(floor, 2);
        assert!(!concurrent);
    }
}
