//! Instrumented atomic cells, fences, and peekable plain data.
//!
//! These are drop-in shaped like `std::sync::atomic`: outside a model
//! execution every operation passes straight through to a real `std`
//! atomic backing the cell, so the same binary can run instrumented tests
//! and ordinary code. Inside an execution ([`crate::engine::current_tid`]
//! is bound) operations route through the engine, which branches on
//! schedules and on which store each load reads.
//!
//! Address identity: the engine keys locations by cell address, and the
//! registry resets per execution. Create cells *inside* the checked
//! closure (or in `Arc`s made there) so one model location never aliases
//! another across executions.

use std::cell::UnsafeCell;
use std::panic::Location;
use std::sync::atomic::Ordering;

use crate::engine::{current_tid, engine};

macro_rules! instrumented_atomic {
    ($name:ident, $std:ident, $prim:ty, $to:expr, $from:expr) => {
        /// Instrumented counterpart of the same-named `std::sync::atomic`
        /// type (see the module docs for the routing rules).
        #[derive(Debug)]
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            /// Creates a cell holding `v`.
            pub const fn new(v: $prim) -> Self {
                Self {
                    inner: std::sync::atomic::$std::new(v),
                }
            }

            fn addr(&self) -> usize {
                self as *const _ as usize
            }

            fn initial(&self) -> u64 {
                // Outside the model this is the live value; at first model
                // access it seeds the location's initial store. The cell
                // is only mutated through the engine during an execution,
                // so the backing still holds the pre-execution value.
                ($to)(self.inner.load(Ordering::Relaxed))
            }

            /// Atomic load.
            #[track_caller]
            pub fn load(&self, ord: Ordering) -> $prim {
                match current_tid() {
                    None => self.inner.load(ord),
                    Some(tid) => ($from)(engine().atomic_load(
                        tid,
                        self.addr(),
                        self.initial(),
                        ord,
                        Location::caller(),
                    )),
                }
            }

            /// Atomic store.
            #[track_caller]
            pub fn store(&self, v: $prim, ord: Ordering) {
                match current_tid() {
                    None => self.inner.store(v, ord),
                    Some(tid) => engine().atomic_store(
                        tid,
                        self.addr(),
                        self.initial(),
                        ($to)(v),
                        ord,
                        Location::caller(),
                    ),
                }
            }

            /// Atomic swap.
            #[track_caller]
            pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                match current_tid() {
                    None => self.inner.swap(v, ord),
                    Some(tid) => {
                        let (old, _) = engine().atomic_rmw(
                            tid,
                            self.addr(),
                            self.initial(),
                            &|_| ($to)(v),
                            None,
                            ord,
                            Ordering::Relaxed,
                            Location::caller(),
                        );
                        ($from)(old)
                    }
                }
            }

            /// Atomic compare-exchange.
            #[track_caller]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match current_tid() {
                    None => self.inner.compare_exchange(current, new, success, failure),
                    Some(tid) => {
                        let (old, ok) = engine().atomic_rmw(
                            tid,
                            self.addr(),
                            self.initial(),
                            &|_| ($to)(new),
                            Some(($to)(current)),
                            success,
                            failure,
                            Location::caller(),
                        );
                        if ok {
                            Ok(($from)(old))
                        } else {
                            Err(($from)(old))
                        }
                    }
                }
            }

            /// Atomic compare-exchange, weak form. The model does not
            /// inject spurious failures (every modeled failure corresponds
            /// to a real value mismatch) — callers must already loop, and
            /// spurious failure adds no states a retry loop can distinguish.
            #[track_caller]
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                match current_tid() {
                    None => self
                        .inner
                        .compare_exchange_weak(current, new, success, failure),
                    Some(_) => self.compare_exchange(current, new, success, failure),
                }
            }

            /// Returns a mutable reference to the value. `&mut self` proves
            /// exclusivity, so the model value (if any) is synced into the
            /// backing cell first.
            pub fn get_mut(&mut self) -> &mut $prim {
                self.sync_backing();
                self.inner.get_mut()
            }

            /// Consumes the cell, returning the value.
            pub fn into_inner(self) -> $prim {
                self.sync_backing();
                self.inner.into_inner()
            }

            fn sync_backing(&self) {
                if current_tid().is_some() {
                    if let Some(v) = engine().latest_value(self.addr()) {
                        self.inner.store(($from)(v), Ordering::Relaxed);
                    }
                }
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self::new(Default::default())
            }
        }
    };
}

macro_rules! instrumented_fetch {
    ($name:ident, $prim:ty, $to:expr, $from:expr) => {
        impl $name {
            /// Atomic wrapping add; returns the previous value.
            #[track_caller]
            pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                self.rmw(ord, &|old| ($to)(($from)(old).wrapping_add(v)))
            }

            /// Atomic wrapping subtract; returns the previous value.
            #[track_caller]
            pub fn fetch_sub(&self, v: $prim, ord: Ordering) -> $prim {
                self.rmw(ord, &|old| ($to)(($from)(old).wrapping_sub(v)))
            }

            /// Atomic bitwise and; returns the previous value.
            #[track_caller]
            pub fn fetch_and(&self, v: $prim, ord: Ordering) -> $prim {
                self.rmw(ord, &|old| ($to)(($from)(old) & v))
            }

            /// Atomic bitwise or; returns the previous value.
            #[track_caller]
            pub fn fetch_or(&self, v: $prim, ord: Ordering) -> $prim {
                self.rmw(ord, &|old| ($to)(($from)(old) | v))
            }

            #[track_caller]
            fn rmw(&self, ord: Ordering, f: &dyn Fn(u64) -> u64) -> $prim {
                match current_tid() {
                    None => {
                        // Passthrough via a CAS loop on the backing cell:
                        // only reached outside executions, where this cell
                        // is an ordinary atomic.
                        let mut old = self.inner.load(Ordering::Relaxed);
                        loop {
                            let new = ($from)(f(($to)(old)));
                            match self
                                .inner
                                .compare_exchange_weak(old, new, ord, Ordering::Relaxed)
                            {
                                Ok(prev) => return prev,
                                Err(seen) => old = seen,
                            }
                        }
                    }
                    Some(tid) => {
                        let (old, _) = engine().atomic_rmw(
                            tid,
                            self.addr(),
                            self.initial(),
                            f,
                            None,
                            ord,
                            Ordering::Relaxed,
                            Location::caller(),
                        );
                        ($from)(old)
                    }
                }
            }
        }
    };
}

instrumented_atomic!(AtomicU64, AtomicU64, u64, |v: u64| v, |v: u64| v);
instrumented_atomic!(
    AtomicUsize,
    AtomicUsize,
    usize,
    |v: usize| v as u64,
    |v: u64| v as usize
);
instrumented_atomic!(AtomicU8, AtomicU8, u8, |v: u8| v as u64, |v: u64| v as u8);
instrumented_atomic!(
    AtomicBool,
    AtomicBool,
    bool,
    |v: bool| v as u64,
    |v: u64| v != 0
);

instrumented_fetch!(AtomicU64, u64, |v: u64| v, |v: u64| v);
instrumented_fetch!(AtomicUsize, usize, |v: usize| v as u64, |v: u64| v as usize);
instrumented_fetch!(AtomicU8, u8, |v: u8| v as u64, |v: u64| v as u8);

impl AtomicBool {
    /// Atomic bitwise and; returns the previous value.
    #[track_caller]
    pub fn fetch_and(&self, v: bool, ord: Ordering) -> bool {
        match current_tid() {
            None => self.inner.fetch_and(v, ord),
            Some(tid) => {
                let (old, _) = engine().atomic_rmw(
                    tid,
                    self.addr(),
                    self.initial(),
                    &|old| ((old != 0) && v) as u64,
                    None,
                    ord,
                    Ordering::Relaxed,
                    Location::caller(),
                );
                old != 0
            }
        }
    }

    /// Atomic bitwise or; returns the previous value.
    #[track_caller]
    pub fn fetch_or(&self, v: bool, ord: Ordering) -> bool {
        match current_tid() {
            None => self.inner.fetch_or(v, ord),
            Some(tid) => {
                let (old, _) = engine().atomic_rmw(
                    tid,
                    self.addr(),
                    self.initial(),
                    &|old| ((old != 0) || v) as u64,
                    None,
                    ord,
                    Ordering::Relaxed,
                    Location::caller(),
                );
                old != 0
            }
        }
    }
}

/// Memory fence. Inside the model, acquire fences promote the
/// synchronization carried by earlier relaxed loads and release fences
/// cover later relaxed stores, per the C11 fence rules.
#[track_caller]
pub fn fence(ord: Ordering) {
    match current_tid() {
        None => std::sync::atomic::fence(ord),
        Some(tid) => engine().fence(tid, ord, Location::caller()),
    }
}

/// Compiler fence: no inter-thread semantics, so the model treats it as a
/// no-op (it constrains only same-thread compiler reordering, which a
/// sequential interpreter trivially respects).
pub fn compiler_fence(ord: Ordering) {
    if current_tid().is_none() {
        std::sync::atomic::compiler_fence(ord);
    }
}

/// A peeked-read result from [`PeekCell::read_racy`].
#[derive(Clone, Copy, Debug)]
pub struct Peeked<T> {
    /// The value read (possibly from a stale or torn-equivalent store when
    /// `racy` is true — callers must validate before use).
    pub value: T,
    /// Whether a concurrent (unordered) write existed at the read.
    pub racy: bool,
}

/// Plain (non-atomic) data with model-checked race detection.
///
/// Outside the model this is a bare `UnsafeCell` — the `unsafe` contracts
/// on [`read`](PeekCell::read) and [`write`](PeekCell::write) are the real
/// synchronization obligations. Inside the model the same calls become
/// *checked*: an unordered write racing a `read`/`write` is reported as a
/// [`crate::FailureKind::DataRace`] with a full trace, and a
/// [`read_racy`](PeekCell::read_racy) may observe stale values (the
/// seqlock "torn read" the validate step must reject).
#[derive(Debug)]
pub struct PeekCell<T> {
    init: UnsafeCell<T>,
    /// Values written during the current execution, indexed by engine
    /// store index minus one (index 0 is `init`).
    vals: UnsafeCell<Vec<T>>,
}

// SAFETY: like UnsafeCell-wrapping lock internals, the cell itself does
// no synchronization; the engine (or the caller's real synchronization,
// outside the model) orders all access.
unsafe impl<T: Send> Send for PeekCell<T> {}
// SAFETY: shared access is mediated by the engine's peek protocol (or by
// the caller's protocol outside the model); see Send above.
unsafe impl<T: Send> Sync for PeekCell<T> {}

impl<T: Copy> PeekCell<T> {
    /// Creates a cell holding `v`.
    pub const fn new(v: T) -> Self {
        PeekCell {
            init: UnsafeCell::new(v),
            vals: UnsafeCell::new(Vec::new()),
        }
    }

    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    fn value_at(&self, idx: usize) -> T {
        // SAFETY: the engine holds no references into us; we run while
        // holding the scheduler token, so no other model thread touches
        // `vals`, and `idx` came from a store this cell recorded.
        unsafe {
            if idx == 0 {
                *self.init.get()
            } else {
                (&*self.vals.get())[idx - 1]
            }
        }
    }

    /// Reads the value.
    ///
    /// # Safety
    /// No thread may write the cell concurrently. Inside the model a
    /// violation is detected and reported rather than being undefined.
    #[track_caller]
    pub unsafe fn read(&self) -> T {
        match current_tid() {
            // SAFETY: forwarded caller contract (no concurrent writer).
            None => unsafe { *self.init.get() },
            Some(tid) => {
                let (idx, _) = engine().peek_read(tid, self.addr(), false, Location::caller());
                self.value_at(idx)
            }
        }
    }

    /// Reads the value, consenting to races: the result may be stale or
    /// inconsistent and `racy` says whether a concurrent write existed.
    /// For seqlock-style readers that validate before using the value.
    ///
    /// # Safety
    /// The caller must discard `value` unless its own validation protocol
    /// (e.g. [`SeqVersion::validate`](../../prep_sync/struct.SeqVersion.html))
    /// proves no write overlapped. Outside the model this is a plain read
    /// of shared data — `T: Copy` keeps that free of drop hazards, and the
    /// surrounding protocol carries the UB obligation.
    #[track_caller]
    pub unsafe fn read_racy(&self) -> Peeked<T> {
        match current_tid() {
            None => Peeked {
                // SAFETY: forwarded caller contract (validate-or-discard).
                value: unsafe { *self.init.get() },
                racy: false,
            },
            Some(tid) => {
                let (idx, racy) = engine().peek_read(tid, self.addr(), true, Location::caller());
                Peeked {
                    value: self.value_at(idx),
                    racy,
                }
            }
        }
    }

    /// Writes the value.
    ///
    /// # Safety
    /// No other thread may read or write the cell concurrently. Inside
    /// the model a violation is detected and reported.
    #[track_caller]
    pub unsafe fn write(&self, v: T) {
        match current_tid() {
            // SAFETY: forwarded caller contract (exclusive access).
            None => unsafe { *self.init.get() = v },
            Some(tid) => {
                let idx = engine().peek_write(tid, self.addr(), Location::caller());
                // Store indices restart at 1 each execution; drop leftovers
                // from a previous execution so index i+1 is always vals[i].
                // SAFETY: token-holding model thread; no other thread (and
                // no engine reference) touches `vals` concurrently.
                unsafe {
                    let vals = &mut *self.vals.get();
                    vals.truncate(idx - 1);
                    vals.push(v);
                }
            }
        }
    }

    /// Returns a mutable reference to the value (exclusive by `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        if current_tid().is_some() {
            if let Some(idx) = engine().latest_peek_index(self.addr()) {
                if idx > 0 {
                    let v = self.value_at(idx);
                    *self.init.get_mut() = v;
                }
            }
        }
        self.init.get_mut()
    }
}

/// Names a cell for counterexample traces (otherwise locations are named
/// by their first-access source line). Callable before or after first
/// access; a no-op outside the model.
pub fn label<T>(cell: &T, name: &'static str) {
    if current_tid().is_some() {
        engine().label(cell as *const _ as usize, name);
    }
}
