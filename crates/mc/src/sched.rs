//! The DFS schedule: the decision tree the checker explores.
//!
//! An execution is driven by a sequence of *choices* — "which thread
//! performs the next op" and "which store does this load read". The
//! checker replays a recorded prefix deterministically and appends fresh
//! choices past it; after each execution the deepest non-exhausted choice
//! is advanced (depth-first search over the whole tree).
//!
//! Only branching points (`n > 1`) are recorded: forced moves are
//! recomputed identically on replay, so the schedule encoding stays short
//! and doubles as the counterexample replay string.

/// One recorded branching decision.
#[derive(Clone, Copy, Debug)]
pub struct Choice {
    /// Arity observed when the choice was first made. `0` means "unknown"
    /// (a user-supplied replay string); arity is then not validated.
    pub n: u32,
    /// Branch taken (index into the deterministic candidate order).
    pub chosen: u32,
}

/// The DFS state carried across executions of one check.
#[derive(Default, Debug)]
pub struct Schedule {
    /// Recorded branching decisions, in execution order.
    pub choices: Vec<Choice>,
    /// Replay cursor for the current execution.
    pub cursor: usize,
    /// True when the schedule was supplied by [`crate::Builder::replay`]:
    /// run exactly one execution, never record or advance.
    pub replay_only: bool,
}

impl Schedule {
    /// Resolves the next decision of arity `n`, recording it if fresh.
    /// Returns the chosen branch, or `Err` with the recorded arity on a
    /// determinism violation (the execution diverged from its recording).
    pub fn choose(&mut self, n: usize) -> Result<usize, u32> {
        debug_assert!(n >= 1);
        if n == 1 {
            return Ok(0);
        }
        let idx = if self.cursor < self.choices.len() {
            let c = self.choices[self.cursor];
            if c.n != 0 && c.n != n as u32 {
                return Err(c.n);
            }
            (c.chosen as usize).min(n - 1)
        } else {
            if !self.replay_only {
                self.choices.push(Choice {
                    n: n as u32,
                    chosen: 0,
                });
            }
            0
        };
        self.cursor += 1;
        Ok(idx)
    }

    /// Advances to the next schedule in DFS order. Returns false when the
    /// whole tree is exhausted.
    pub fn advance(&mut self) -> bool {
        // Drop any stale suffix beyond what the last execution actually
        // consumed (an aborted execution may not have revisited deep
        // choices, but those are exactly the ones being exhausted).
        while let Some(c) = self.choices.last_mut() {
            if c.chosen + 1 < c.n {
                c.chosen += 1;
                self.cursor = 0;
                return true;
            }
            self.choices.pop();
        }
        false
    }

    /// Resets the replay cursor for a fresh execution.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// Encodes the *taken* branches as a comma-separated replay string.
    pub fn encode(&self) -> String {
        self.choices
            .iter()
            .map(|c| c.chosen.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Builds a replay-only schedule from [`encode`](Self::encode) output.
    pub fn decode(s: &str) -> Schedule {
        let choices = s
            .split(',')
            .filter(|p| !p.trim().is_empty())
            .map(|p| Choice {
                n: 0,
                chosen: p.trim().parse().unwrap_or(0),
            })
            .collect();
        Schedule {
            choices,
            cursor: 0,
            replay_only: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_enumerates_all_leaves() {
        // Two binary choices -> four executions.
        let mut s = Schedule::default();
        let mut leaves = Vec::new();
        loop {
            s.rewind();
            let a = s.choose(2).unwrap();
            let b = s.choose(2).unwrap();
            leaves.push((a, b));
            if !s.advance() {
                break;
            }
        }
        assert_eq!(leaves, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn unary_choices_are_not_recorded() {
        let mut s = Schedule::default();
        assert_eq!(s.choose(1).unwrap(), 0);
        assert!(s.choices.is_empty());
        assert_eq!(s.cursor, 0);
    }

    #[test]
    fn varying_arity_below_an_advanced_prefix() {
        // First execution: choice arities (2, 3); advancing explores the
        // deepest first.
        let mut s = Schedule::default();
        s.choose(2).unwrap();
        s.choose(3).unwrap();
        assert!(s.advance());
        s.rewind();
        assert_eq!(s.choose(2).unwrap(), 0);
        assert_eq!(s.choose(3).unwrap(), 1);
    }

    #[test]
    fn divergence_is_reported() {
        let mut s = Schedule::default();
        s.choose(2).unwrap();
        s.rewind();
        assert!(s.choose(3).is_err());
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut s = Schedule::default();
        s.choose(3).unwrap();
        s.choose(2).unwrap();
        s.advance();
        s.advance();
        let enc = s.encode();
        let r = Schedule::decode(&enc);
        assert!(r.replay_only);
        assert_eq!(r.choices.len(), s.choices.len());
    }
}
