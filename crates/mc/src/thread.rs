//! Model-aware thread spawn/join/yield.
//!
//! Inside a [`crate::Builder`] closure these route through the cooperative
//! scheduler: `spawn` announces the child to the engine (the child's first
//! op is a schedulable "start"), `join` folds into the spin-with-yield
//! protocol (so join cycles surface as livelock failures rather than
//! hanging the checker), and `yield_now` is a scheduling hint that
//! deprioritizes the caller until a write lands.
//!
//! Outside a model execution every function falls through to
//! `std::thread`, so test helpers can share code with production paths.

use std::panic::{catch_unwind, AssertUnwindSafe, Location};
use std::sync::{Arc, Mutex};

use crate::engine::{current_tid, engine};

enum Inner<T> {
    Model {
        tid: usize,
        result: Arc<Mutex<Option<T>>>,
    },
    Os(std::thread::JoinHandle<T>),
}

/// Handle to a spawned (model or OS) thread.
pub struct JoinHandle<T>(Inner<T>);

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    ///
    /// In a model execution a panic in the child is recorded as the
    /// execution's failure and tears the whole execution down, so the
    /// `Err` arm is effectively unreachable there; it exists for API
    /// parity with `std`.
    #[track_caller]
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Os(h) => h.join(),
            Inner::Model {
                tid: target,
                result,
            } => {
                let me = current_tid().expect("model JoinHandle joined outside the model");
                let caller = Location::caller();
                let e = engine();
                while !e.join_try(me, target, caller) {}
                match result.lock().unwrap_or_else(|e| e.into_inner()).take() {
                    Some(v) => Ok(v),
                    None => Err(Box::new("model thread produced no result".to_string())),
                }
            }
        }
    }
}

/// Spawns a thread; a model thread when called inside a checker execution,
/// a plain OS thread otherwise.
#[track_caller]
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some(parent) = current_tid() else {
        return JoinHandle(Inner::Os(std::thread::spawn(f)));
    };
    let caller = Location::caller();
    let result = Arc::new(Mutex::new(None));
    let slot = Arc::clone(&result);
    let body = Box::new(move || {
        let e = engine();
        let tid = current_tid().expect("model body without bound tid");
        // The start op parks until the scheduler first picks this thread.
        match catch_unwind(AssertUnwindSafe(|| {
            e.start_op(tid, caller);
            f()
        })) {
            Ok(v) => {
                *slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
                if let Err(p) = catch_unwind(AssertUnwindSafe(|| e.finish_op(tid, caller))) {
                    e.record_panic(&*p);
                    e.force_finish(tid);
                }
            }
            Err(p) => {
                e.record_panic(&*p);
                e.force_finish(tid);
            }
        }
    });
    let tid = engine().spawn(parent, body, caller);
    JoinHandle(Inner::Model { tid, result })
}

/// Cooperative yield: inside the model, hints the scheduler that this
/// thread is spinning (it is deprioritized until some write lands, and a
/// long write-free yield streak is reported as livelock).
#[track_caller]
pub fn yield_now() {
    match current_tid() {
        Some(tid) => engine().yield_op(tid, Location::caller()),
        None => std::thread::yield_now(),
    }
}

/// The current model-thread index, when running inside an execution.
/// Primitives that need a small per-thread ordinal (combiner slots,
/// reader counters) use this under `cfg(prep_mc)` so every execution is
/// deterministic.
pub fn model_thread_index() -> Option<usize> {
    current_tid()
}
