//! Vector clocks over model-thread ids.
//!
//! Every modeled thread carries a [`VClock`]; every store records the
//! writer's clock (its *release clock*) so loads can establish
//! happens-before edges. Clocks are fixed-size arrays — the checker caps
//! executions at [`MAX_THREADS`] threads, which is far above what an
//! exhaustive exploration can afford anyway.

/// Maximum number of model threads per execution (including the main
/// closure, which runs as thread 0).
pub const MAX_THREADS: usize = 8;

/// A fixed-width vector clock: one logical-time component per model thread.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct VClock {
    t: [u64; MAX_THREADS],
}

impl VClock {
    /// The zero clock (happens-before everything).
    pub const ZERO: VClock = VClock {
        t: [0; MAX_THREADS],
    };

    /// Component for thread `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.t[i]
    }

    /// Sets component `i` to `v`.
    #[inline]
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn set(&mut self, i: usize, v: u64) {
        self.t[i] = v;
    }

    /// Advances thread `i`'s own component by one and returns the new value.
    #[inline]
    pub fn tick(&mut self, i: usize) -> u64 {
        self.t[i] += 1;
        self.t[i]
    }

    /// Pointwise maximum (the join of the two clocks).
    #[inline]
    pub fn join(&mut self, other: &VClock) {
        for i in 0..MAX_THREADS {
            if other.t[i] > self.t[i] {
                self.t[i] = other.t[i];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VClock::ZERO;
        let mut b = VClock::ZERO;
        a.set(0, 3);
        a.set(1, 1);
        b.set(1, 5);
        a.join(&b);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 0);
    }

    #[test]
    fn tick_advances_own_component() {
        let mut a = VClock::ZERO;
        assert_eq!(a.tick(2), 1);
        assert_eq!(a.tick(2), 2);
        assert_eq!(a.get(2), 2);
        assert_eq!(a.get(0), 0);
    }
}
