//! Seeded-mutation corpus: hand-written miniatures of the prep-sync
//! protocols, each in a correct form and a deliberately broken form that
//! reproduces a historical ordering bug class. The checker must pass
//! every clean variant and catch every mutant with a replayable
//! counterexample — this is the regression net that keeps prep-mc honest
//! (mirroring the known-bad-traces corpora shipped with sanitizers).
//!
//! These drive `prep_mc::cell` directly, so the file runs in both normal
//! and `--cfg prep_mc` builds.

use std::sync::atomic::Ordering::{Acquire, Relaxed, Release, SeqCst};
use std::sync::Arc;

use prep_mc::cell::{fence, AtomicU64, PeekCell};
use prep_mc::{thread, Builder, Failure, FailureKind};

/// Runs `f` under the checker and returns the counterexample, asserting
/// one exists and is replayable (replaying the recorded schedule
/// reproduces the same failure kind in exactly one execution).
fn expect_caught<F>(name: &'static str, f: F) -> Failure
where
    F: Fn() + Send + Sync + 'static,
{
    let report = Builder::new(name).run(&f);
    let failure = report
        .failure
        .unwrap_or_else(|| panic!("mutant `{name}` escaped the checker"));
    assert!(
        !failure.trace.is_empty(),
        "mutant `{name}` caught without a counterexample trace"
    );
    let replay = Builder::new(name).replay(&failure.schedule).run(&f);
    assert_eq!(replay.schedules, 1, "replay of `{name}` must run once");
    let replayed = replay
        .failure
        .unwrap_or_else(|| panic!("replaying `{name}` did not reproduce the failure"));
    assert_eq!(replayed.kind, failure.kind, "replay diverged for `{name}`");
    failure
}

/// Runs `f` under the checker and asserts the exploration is exhaustive
/// and clean.
fn expect_clean<F>(name: &'static str, f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let report = Builder::new(name).run(&f);
    if let Some(failure) = report.failure {
        panic!(
            "clean variant `{name}` failed: {:?}: {}\n{}",
            failure.kind, failure.message, failure.trace
        );
    }
    assert!(report.complete, "clean variant `{name}` ran out of budget");
}

// ---------------------------------------------------------------------------
// Miniature seqlock, parameterized over the two orderings the corpus
// mutates: the `read_begin` load and the `validate` re-load.
// ---------------------------------------------------------------------------

struct MiniSeq {
    version: AtomicU64,
    a: PeekCell<u64>,
    b: PeekCell<u64>,
}

impl MiniSeq {
    fn new() -> Self {
        MiniSeq {
            version: AtomicU64::new(0),
            a: PeekCell::new(0),
            b: PeekCell::new(0),
        }
    }

    fn write_pair(&self, v: u64) {
        let s = self.version.load(Relaxed);
        self.version.store(s + 1, Relaxed);
        fence(Release);
        // SAFETY: single writer in these scenarios; readers consent.
        unsafe {
            self.a.write(v);
            self.b.write(v);
        }
        self.version.store(s + 2, Release);
    }

    /// Reader with configurable orderings. The correct recipe is
    /// `begin_acquire = true` (Acquire snapshot load) and
    /// `validate_fence = true` (Acquire fence before the re-load).
    fn read_pair(&self, begin_acquire: bool, validate_fence: bool) -> Option<(u64, u64, u64)> {
        let ord = if begin_acquire { Acquire } else { Relaxed };
        let snap = self.version.load(ord);
        if !snap.is_multiple_of(2) {
            return None;
        }
        // SAFETY: consenting peeks; validation rejects racy snapshots.
        let x = unsafe { self.a.read_racy() }.value;
        let y = unsafe { self.b.read_racy() }.value;
        if validate_fence {
            fence(Acquire);
        }
        if self.version.load(Relaxed) == snap {
            Some((snap, x, y))
        } else {
            None
        }
    }
}

fn seqlock_scenario(begin_acquire: bool, validate_fence: bool) {
    let s = Arc::new(MiniSeq::new());
    let s2 = Arc::clone(&s);
    let w = thread::spawn(move || s2.write_pair(1));
    if let Some((snap, x, y)) = s.read_pair(begin_acquire, validate_fence) {
        assert_eq!(x, y, "validated read is torn");
        assert_eq!(x, snap / 2, "validated read is stale for its snapshot");
    }
    w.join().unwrap();
}

/// Baseline: the correct recipe passes exhaustively.
#[test]
fn seqlock_clean_recipe_passes() {
    expect_clean("seqlock-clean", || seqlock_scenario(true, true));
}

/// Mutant 1 (SeqVersion::validate): dropping the Acquire fence before the
/// version re-load lets the re-load be ordered before the data reads — a
/// torn or stale pair validates.
#[test]
fn seqlock_validate_without_fence_is_caught() {
    let f = expect_caught("seqlock-no-validate-fence", || {
        seqlock_scenario(true, false)
    });
    assert_eq!(
        f.kind,
        FailureKind::Panic,
        "expected the pair assert: {f:?}"
    );
}

/// Mutant 2 (SeqVersion::read_begin): a Relaxed snapshot load does not
/// synchronize with the writer's Release publish, so the data reads can
/// see values older than the snapshot claims.
#[test]
fn seqlock_relaxed_read_begin_is_caught() {
    let f = expect_caught("seqlock-relaxed-begin", || seqlock_scenario(false, true));
    assert_eq!(
        f.kind,
        FailureKind::Panic,
        "expected the pair assert: {f:?}"
    );
}

// ---------------------------------------------------------------------------
// Miniature DistRwLock: writer flag + per-reader mark, the PR 6/7 shape.
// ---------------------------------------------------------------------------

struct MiniDistRw {
    writer: AtomicU64,
    reader: AtomicU64,
    data: PeekCell<u64>,
}

impl MiniDistRw {
    fn new() -> Self {
        MiniDistRw {
            writer: AtomicU64::new(0),
            reader: AtomicU64::new(0),
            data: PeekCell::new(0),
        }
    }

    /// Writer: publish the flag, then scan the reader line. The correct
    /// publish is SeqCst (it must totally order against the reader's
    /// mark/recheck — this is a store-buffering shape, Release is NOT
    /// enough).
    fn write(&self, publish: std::sync::atomic::Ordering) -> bool {
        self.writer.store(1, publish);
        if self.reader.load(SeqCst) == 0 {
            // No reader marked: the critical section is ours.
            unsafe { self.data.write(1) };
            self.writer.store(0, Release);
            true
        } else {
            self.writer.store(0, Release);
            false
        }
    }

    /// Reader: mark, then recheck the writer flag (SeqCst on both sides
    /// in the correct protocol; `recheck = false` skips the recheck the
    /// way the StrongTryRwLock mutant does).
    fn try_read(&self, recheck: bool) -> bool {
        self.reader.fetch_add(1, SeqCst);
        if recheck && self.writer.load(SeqCst) != 0 {
            self.reader.fetch_sub(1, Release);
            return false;
        }
        // Non-consenting peek: overlapping the writer is a data race.
        let _ = unsafe { self.data.read() };
        self.reader.fetch_sub(1, Release);
        true
    }
}

fn dist_rw_scenario(publish: std::sync::atomic::Ordering, recheck: bool) {
    let l = Arc::new(MiniDistRw::new());
    let l2 = Arc::clone(&l);
    let w = thread::spawn(move || {
        l2.write(publish);
    });
    l.try_read(recheck);
    w.join().unwrap();
}

/// Baseline: SeqCst publish + SeqCst recheck exclude exhaustively.
#[test]
fn dist_rw_clean_protocol_passes() {
    expect_clean("dist-rw-clean", || dist_rw_scenario(SeqCst, true));
}

/// Mutant 3 (DistRwLock): publishing the writer flag with Relaxed breaks
/// the store-buffering pairing — writer-scan and reader-recheck can both
/// miss each other and both sides enter, which the peek oracle reports as
/// a data race.
#[test]
fn dist_rw_relaxed_writer_publish_is_caught() {
    let f = expect_caught("dist-rw-relaxed-publish", || {
        dist_rw_scenario(Relaxed, true)
    });
    assert_eq!(f.kind, FailureKind::DataRace, "expected overlap: {f:?}");
}

/// Mutant 4 (StrongTryRwLock::try_read): removing the post-mark SeqCst
/// writer recheck lets a reader that marked after the writer's scan sail
/// into the critical section.
#[test]
fn strong_try_missing_recheck_is_caught() {
    let f = expect_caught("strong-try-no-recheck", || dist_rw_scenario(SeqCst, false));
    assert_eq!(f.kind, FailureKind::DataRace, "expected overlap: {f:?}");
}
