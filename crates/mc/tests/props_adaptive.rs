//! Model-checked mode-migration safety for [`prep_sync::AdaptiveSelector`].
//!
//! The selector itself is advisory (all-Relaxed counters), so the
//! properties are: (a) concurrent observers never corrupt the mode word
//! — every read decodes to a valid [`ReadMode`] — and (b) a migration in
//! flight is safe because readers in *different* modes remain mutually
//! consistent as long as writers honor both protocols (lock + version
//! bracket), which is exactly what `uc.rs` does.
#![cfg(prep_mc)]

use std::sync::Arc;

use prep_mc::{thread, Builder};
use prep_sync::cell::PeekCell;
use prep_sync::{AdaptiveSelector, ReadMode, ReadWindow, RwSpinLock, SeqVersion};

/// Two threads feed `observe` disagreeing windows while a third samples
/// `mode`. The sampled word must always decode to a valid mode — the
/// Relaxed plumbing may be arbitrarily stale but can never be torn or
/// out of range.
#[test]
fn concurrent_observe_keeps_mode_valid() {
    Builder::new("adaptive-observe").check(|| {
        let sel = Arc::new(AdaptiveSelector::new(ReadMode::Centralized));
        let s2 = Arc::clone(&sel);
        let s3 = Arc::clone(&sel);
        let t1 = thread::spawn(move || {
            // Read-heavy, clean window: votes toward Optimistic.
            s2.observe(ReadWindow {
                reads: 10_000,
                writes: 1,
                validation_failures: 0,
            });
        });
        let t2 = thread::spawn(move || {
            // Write-heavy window: votes toward Centralized.
            s3.observe(ReadWindow {
                reads: 10,
                writes: 10,
                validation_failures: 5,
            });
        });
        let m = sel.mode();
        assert!(
            matches!(
                m,
                ReadMode::Centralized | ReadMode::Distributed | ReadMode::Optimistic
            ),
            "mode word decoded to an invalid value"
        );
        t1.join().unwrap();
        t2.join().unwrap();
        let m = sel.mode();
        assert!(matches!(
            m,
            ReadMode::Centralized | ReadMode::Distributed | ReadMode::Optimistic
        ));
    });
}

/// Mid-migration mix: one reader still on the optimistic (seqlock) path,
/// one already on the locked path, one writer honoring both protocols.
/// Both readers must observe consistent data regardless of which mode the
/// selector reports at any instant — this is the invariant that makes
/// `AdaptiveSelector` migrations safe without a stop-the-world handoff.
#[test]
fn mixed_mode_readers_stay_consistent_during_migration() {
    Builder::new("adaptive-migration").check(|| {
        let lock = Arc::new(RwSpinLock::new(()));
        let sv = Arc::new(SeqVersion::new());
        let data = Arc::new(PeekCell::new(0u64));

        // Writer: lock for the locked readers, version bracket for the
        // optimistic ones (the order uc.rs uses).
        let (l2, v2, d2) = (Arc::clone(&lock), Arc::clone(&sv), Arc::clone(&data));
        let w = thread::spawn(move || {
            let _g = l2.write();
            v2.write_begin();
            unsafe { d2.write(5) };
            v2.write_end();
        });

        // Optimistic reader (consenting peek + validate).
        let (v3, d3) = (Arc::clone(&sv), Arc::clone(&data));
        let r = thread::spawn(move || {
            if let Some(snap) = v3.read_begin() {
                let x = unsafe { d3.read_racy() }.value;
                if v3.validate(snap) {
                    assert_eq!(x, snap / 2 * 5, "optimistic reader validated stale data");
                }
            }
        });

        // Locked reader on the main thread (non-consenting peek: any
        // overlap with the writer is a hard DataRace).
        {
            let _g = lock.read();
            let x = unsafe { data.read() };
            let y = unsafe { data.read() };
            assert_eq!(x, y, "locked reader saw a torn write");
        }
        w.join().unwrap();
        r.join().unwrap();
    });
}

/// `decide` is a pure function; pin the corners the selector migrates
/// between so a refactor can't silently flip the thresholds.
#[test]
fn decide_corners_are_stable() {
    assert_eq!(
        AdaptiveSelector::decide(10_000, 1, 0),
        ReadMode::Optimistic,
        "read-heavy clean windows should pick the optimistic path"
    );
    assert_eq!(
        AdaptiveSelector::decide(10, 10, 0),
        ReadMode::Centralized,
        "write-heavy windows should fall back to the centralized lock"
    );
}
