//! Litmus tests for the model checker itself.
//!
//! These run under *plain* `cargo test` (prep-mc's own cells are always
//! instrumented — only the `prep_sync::cell` seam is cfg-gated) and pin
//! the memory model to the classic C11 litmus shapes: store buffering,
//! message passing, coherence, release sequences, fences, race detection,
//! livelock detection, and deterministic replay.

use std::sync::atomic::Ordering::{AcqRel, Acquire, Relaxed, Release, SeqCst};
use std::sync::Arc;

use prep_mc::cell::{fence, AtomicBool, AtomicU64, PeekCell};
use prep_mc::{thread, Builder, FailureKind};

/// Two threads each fetch_add(1): RMW atomicity means no lost update.
#[test]
fn rmw_atomicity_no_lost_update() {
    Builder::new("rmw-atomicity").check(|| {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = thread::spawn(move || {
            c2.fetch_add(1, Relaxed);
        });
        c.fetch_add(1, Relaxed);
        t.join().unwrap();
        assert_eq!(c.load(Relaxed), 2);
    });
}

/// Store buffering with SeqCst: the (0, 0) outcome is forbidden.
#[test]
fn store_buffering_seqcst_forbids_0_0() {
    Builder::new("sb-seqcst").check(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, SeqCst);
            y2.load(SeqCst)
        });
        y.store(1, SeqCst);
        let a = x.load(SeqCst);
        let b = t.join().unwrap();
        assert!(a == 1 || b == 1, "SeqCst store buffering produced (0, 0)");
    });
}

/// Store buffering with Relaxed: the model *must* find the (0, 0) outcome
/// (each load reading the initial store) — this is what distinguishes a
/// real weak-memory model from naive sequential consistency.
#[test]
fn store_buffering_relaxed_finds_0_0() {
    let r = Builder::new("sb-relaxed").run(|| {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Relaxed);
            y2.load(Relaxed)
        });
        y.store(1, Relaxed);
        let a = x.load(Relaxed);
        let b = t.join().unwrap();
        assert!(a == 1 || b == 1, "found (0, 0)");
    });
    let fail = r.failure.expect("relaxed SB must reach (0, 0)");
    assert_eq!(fail.kind, FailureKind::Panic);
    assert!(
        fail.trace.contains("load"),
        "trace renders ops: {}",
        fail.trace
    );
}

/// Message passing with Release/Acquire: flag observed ⇒ data visible.
#[test]
fn message_passing_release_acquire_holds() {
    Builder::new("mp-rel-acq").check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Relaxed);
            f2.store(true, Release);
        });
        if flag.load(Acquire) {
            assert_eq!(data.load(Relaxed), 42, "flag set but data stale");
        }
        t.join().unwrap();
    });
}

/// Message passing with Relaxed flag: the model must find the stale-data
/// interleaving (flag visible, data not).
#[test]
fn message_passing_relaxed_finds_stale_data() {
    let r = Builder::new("mp-relaxed").run(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(42, Relaxed);
            f2.store(true, Relaxed);
        });
        if flag.load(Relaxed) {
            assert_eq!(data.load(Relaxed), 42, "stale data behind relaxed flag");
        }
        t.join().unwrap();
    });
    assert!(r.failure.is_some(), "relaxed MP must expose stale data");
}

/// Message passing through fences: Release fence before relaxed store,
/// Acquire fence after relaxed load — must hold like rel/acq.
#[test]
fn message_passing_via_fences_holds() {
    Builder::new("mp-fences").check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicBool::new(false));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = thread::spawn(move || {
            d2.store(7, Relaxed);
            fence(Release);
            f2.store(true, Relaxed);
        });
        if flag.load(Relaxed) {
            fence(Acquire);
            assert_eq!(data.load(Relaxed), 7, "fence MP violated");
        }
        t.join().unwrap();
    });
}

/// Coherence: once a thread reads the new value of a location, it can
/// never read the old one again (per-location total order).
#[test]
fn coherence_no_backwards_reads() {
    Builder::new("coherence").check(|| {
        let x = Arc::new(AtomicU64::new(0));
        let x2 = Arc::clone(&x);
        let t = thread::spawn(move || {
            x2.store(1, Relaxed);
        });
        let first = x.load(Relaxed);
        let second = x.load(Relaxed);
        assert!(second >= first, "coherence violated: {first} then {second}");
        t.join().unwrap();
    });
}

/// Release sequence: a relaxed RMW continues the release sequence of the
/// release store it reads from, so an acquire load of the RMW's result
/// still synchronizes with the original release store.
#[test]
fn release_sequence_through_rmw() {
    Builder::new("release-seq").check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let (d3, f3) = (Arc::clone(&data), Arc::clone(&flag));
        let producer = thread::spawn(move || {
            d2.store(9, Relaxed);
            f2.store(1, Release);
        });
        let bumper = thread::spawn(move || {
            // Relaxed RMW: continues the release sequence, must not break it.
            let _ = f3.fetch_add(1, Relaxed);
            let _ = d3; // silence unused
        });
        if flag.load(Acquire) == 2 {
            // We read the RMW (which read the release store): synchronized.
            assert_eq!(data.load(Relaxed), 9, "release sequence broken");
        }
        producer.join().unwrap();
        bumper.join().unwrap();
    });
}

/// An unsynchronized plain write racing a plain read is reported as a
/// data race (not an assertion failure).
#[test]
fn peek_race_is_detected() {
    let r = Builder::new("peek-race").run(|| {
        let d = Arc::new(PeekCell::new(0u64));
        let d2 = Arc::clone(&d);
        let t = thread::spawn(move || unsafe {
            d2.write(1);
        });
        let _ = unsafe { d.read() };
        t.join().unwrap();
    });
    let fail = r.failure.expect("plain-data race must be detected");
    assert_eq!(fail.kind, FailureKind::DataRace);
    assert!(!fail.trace.is_empty());
}

/// `read_racy` consents to the race: no failure, and at least one
/// interleaving observes `racy == true`.
#[test]
fn peek_read_racy_consents() {
    use std::sync::atomic::AtomicBool as StdBool;
    let saw_racy = Arc::new(StdBool::new(false));
    let saw = Arc::clone(&saw_racy);
    let r = Builder::new("peek-read-racy").run(move || {
        let d = Arc::new(PeekCell::new(0u64));
        let d2 = Arc::clone(&d);
        let t = thread::spawn(move || unsafe {
            d2.write(1);
        });
        let p = unsafe { d.read_racy() };
        if p.racy {
            saw.store(true, Relaxed);
        }
        t.join().unwrap();
    });
    assert!(r.failure.is_none(), "consenting read must not fail");
    assert!(r.complete, "exploration must finish");
    assert!(saw_racy.load(Relaxed), "some interleaving must be racy");
}

/// A guard that is never released: the spinning reader is reported as
/// livelocked (deadlock folds into the same detector).
#[test]
fn stuck_spinner_reported_as_livelock() {
    let r = Builder::new("livelock").max_steps(2_000).run(|| {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let t = thread::spawn(move || {
            while !f2.load(Acquire) {
                thread::yield_now();
            }
        });
        // Nobody ever sets the flag.
        t.join().unwrap();
    });
    let fail = r.failure.expect("stuck spinner must be reported");
    assert_eq!(fail.kind, FailureKind::Livelock);
}

/// The schedule string from a failure replays the exact same failure.
#[test]
fn replay_reproduces_the_failure() {
    let prop = || {
        let x = Arc::new(AtomicU64::new(0));
        let y = Arc::new(AtomicU64::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = thread::spawn(move || {
            x2.store(1, Relaxed);
            y2.load(Relaxed)
        });
        y.store(1, Relaxed);
        let a = x.load(Relaxed);
        let b = t.join().unwrap();
        assert!(a == 1 || b == 1, "found (0, 0)");
    };
    let first = Builder::new("replay-find").run(prop);
    let fail = first.failure.expect("must fail");
    let again = Builder::new("replay-again")
        .replay(&fail.schedule)
        .run(prop);
    let refail = again.failure.expect("replay must reproduce the failure");
    assert_eq!(refail.kind, fail.kind);
    assert_eq!(refail.message, fail.message);
    assert_eq!(again.schedules, 1, "replay runs exactly one execution");
}

/// Swap + AcqRel RMW round trip (lock-shaped usage).
#[test]
fn swap_and_cas_model_a_lock() {
    Builder::new("cas-lock").check(|| {
        let locked = Arc::new(AtomicBool::new(false));
        let data = Arc::new(PeekCell::new(0u64));
        let (l2, d2) = (Arc::clone(&locked), Arc::clone(&data));
        let t = thread::spawn(move || {
            while l2.compare_exchange(false, true, Acquire, Relaxed).is_err() {
                thread::yield_now();
            }
            unsafe { d2.write(d2.read() + 1) };
            l2.store(false, Release);
        });
        while locked
            .compare_exchange(false, true, Acquire, Relaxed)
            .is_err()
        {
            thread::yield_now();
        }
        unsafe { data.write(data.read() + 1) };
        locked.store(false, Release);
        t.join().unwrap();
        // Joined both critical sections: no race, both increments visible.
        assert_eq!(unsafe { data.read() }, 2);
    });
}

/// AcqRel swap publishes like a release store and acquires like a load.
#[test]
fn swap_acqrel_round_trip() {
    Builder::new("swap-acqrel").check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let slot = Arc::new(AtomicU64::new(0));
        let (d2, s2) = (Arc::clone(&data), Arc::clone(&slot));
        let t = thread::spawn(move || {
            d2.store(5, Relaxed);
            s2.swap(1, AcqRel);
        });
        if slot.swap(2, AcqRel) == 1 {
            assert_eq!(data.load(Relaxed), 5, "AcqRel swap failed to publish");
        }
        t.join().unwrap();
    });
}
