//! Model-checked multi-log (persistent CNR) invariants: two logs, two
//! threads, every interleaving.
//!
//! The multi-log engine's correctness leans on three log-level facts that
//! single-log checking can't establish:
//!
//! * reservations never collide **per log** even when both threads fan
//!   out across both logs concurrently;
//! * each log's `completedTail` covers only its own published entries —
//!   the coverage invariant holds per log and at the cut vector
//!   `(ct_0, ct_1)` jointly;
//! * cross-log operations, serialized by the gate, appear in the **same
//!   order in every log**, so applying at the joint frontier
//!   `min(ct_0, ct_1)` observes one consistent cross-log history.
//!
//! Drives two `prep_nr::Log`s through the `mc_*` seam under the
//! exhaustive scheduler, with an instrumented CAS gate standing in for
//! the engine's multi-op gate.
#![cfg(prep_mc)]

use std::sync::Arc;

use prep_mc::cell::AtomicU64;
use prep_mc::{thread, Builder};
use prep_nr::Log;

fn reserve_write_publish(log: &Log<u64>, op: u64) -> u64 {
    loop {
        let t = log.log_tail();
        if log.mc_try_reserve(t, 1) {
            // SAFETY: the successful CAS gives this thread exclusive
            // ownership of index `t`, written and published exactly once.
            unsafe {
                log.mc_write_payload(t, op);
                log.mc_publish(t);
            }
            return t;
        }
        thread::yield_now();
    }
}

fn advance_past(log: &Log<u64>, idx: u64) {
    for j in 0..=idx {
        while !log.is_full(j) {
            thread::yield_now();
        }
    }
    log.mc_advance_completed_tail(idx + 1);
}

/// Two threads each reserving in both logs: per-log indexes stay disjoint
/// and each log's tail counts both reservations exactly once.
#[test]
fn per_log_reservations_never_collide() {
    Builder::new("ml-reserve").check(|| {
        let logs = Arc::new([Log::<u64>::new(4), Log::<u64>::new(4)]);
        let l2 = Arc::clone(&logs);
        let t = thread::spawn(move || {
            [
                reserve_write_publish(&l2[0], 10),
                reserve_write_publish(&l2[1], 11),
            ]
        });
        let mine = [
            reserve_write_publish(&logs[0], 20),
            reserve_write_publish(&logs[1], 21),
        ];
        let theirs = t.join().unwrap();
        for l in 0..2 {
            assert_ne!(
                mine[l], theirs[l],
                "log {l}: two reservations own the same entry"
            );
            assert_eq!(mine[l].min(theirs[l]), 0);
            assert_eq!(mine[l].max(theirs[l]), 1);
            assert_eq!(logs[l].log_tail(), 2, "log {l}: a reservation vanished");
        }
    });
}

/// Per-log coverage at the cut vector: whatever `(ct_0, ct_1)` a thread
/// observes, every entry below each component is published in that log —
/// no component ever borrows coverage from the other log.
#[test]
fn per_log_completed_tail_covers_only_published_entries() {
    Builder::new("ml-completed-tail").check(|| {
        let logs = Arc::new([Log::<u64>::new(4), Log::<u64>::new(4)]);
        let l2 = Arc::clone(&logs);
        let t = thread::spawn(move || {
            for l in 0..2 {
                let idx = reserve_write_publish(&l2[l], 100 + l as u64);
                advance_past(&l2[l], idx);
            }
        });
        let mut own = [0u64; 2];
        for l in 0..2 {
            own[l] = reserve_write_publish(&logs[l], 200 + l as u64);
            advance_past(&logs[l], own[l]);
        }
        // Read the cut vector; each component must be covered by its own
        // log's published entries, at every interleaving point.
        let cut = [logs[0].completed_tail(), logs[1].completed_tail()];
        for l in 0..2 {
            assert!(
                cut[l] >= own[l] + 1,
                "log {l}: own advance not reflected (ct={}, idx={})",
                cut[l],
                own[l]
            );
            for j in 0..cut[l] {
                assert!(
                    logs[l].is_full(j),
                    "log {l}: completedTail {} covers unpublished entry {j}",
                    cut[l]
                );
            }
        }
        t.join().unwrap();
        for l in 0..2 {
            assert_eq!(logs[l].completed_tail(), 2, "log {l}: CAS-max must settle");
        }
    });
}

/// Cross-log ops through the gate land in the same order in every log, so
/// the joint frontier `min(ct_0, ct_1)` always exposes one consistent
/// cross-log history (the engine's "apply at the joint frontier" rule is
/// sound).
#[test]
fn cross_log_order_is_consistent_at_the_joint_frontier() {
    Builder::new("ml-joint-frontier").check(|| {
        let logs = Arc::new([Log::<u64>::new(4), Log::<u64>::new(4)]);
        // The multi gate: 0 = open; a thread CASes in its id to reserve
        // slots in every log, then reopens. Mirrors the engine's gate,
        // which serializes cross-log reservations.
        let gate = Arc::new(AtomicU64::new(0));

        let multi = |logs: &[Log<u64>; 2], gate: &AtomicU64, id: u64| {
            use std::sync::atomic::Ordering;
            while gate
                .compare_exchange(0, id, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                thread::yield_now();
            }
            let mut idx = [0u64; 2];
            for l in 0..2 {
                idx[l] = reserve_write_publish(&logs[l], id);
            }
            gate.store(0, Ordering::Release);
            for l in 0..2 {
                advance_past(&logs[l], idx[l]);
            }
        };

        let l2 = Arc::clone(&logs);
        let g2 = Arc::clone(&gate);
        let t = thread::spawn(move || multi(&l2, &g2, 1));
        multi(&logs, &gate, 2);

        // Joint frontier mid-observation: both logs' histories below
        // min(ct_0, ct_1) must spell the same multi sequence.
        let frontier = logs[0].completed_tail().min(logs[1].completed_tail());
        let collect = |l: usize| {
            let mut seq = Vec::new();
            logs[l].for_each_op(0, frontier, |_, &op| seq.push(op));
            seq
        };
        assert_eq!(
            collect(0),
            collect(1),
            "logs disagree below the joint frontier {frontier}"
        );
        t.join().unwrap();

        // After both multis: identical full order in both logs.
        let full = |l: usize| {
            let mut seq = Vec::new();
            logs[l].for_each_op(0, 2, |_, &op| seq.push(op));
            seq
        };
        let (a, b) = (full(0), full(1));
        assert_eq!(a, b, "cross-log ops applied in different orders");
        assert_eq!(a.len(), 2);
        assert!(a == vec![1, 2] || a == vec![2, 1]);
    });
}
