//! Model-checked mutual-exclusion properties of the real prep-sync locks.
//!
//! The locks guard plain `UnsafeCell<T>` payloads that the runtime cannot
//! see, so every test threads an external [`PeekCell`] oracle through the
//! critical sections: a broken lock surfaces as a `DataRace` failure on
//! the oracle (non-consenting peek vs. concurrent store) or as a lost
//! update in the final counter value.
#![cfg(prep_mc)]

use std::sync::Arc;

use prep_mc::{thread, Builder};
use prep_sync::cell::PeekCell;
use prep_sync::{DistRwLock, ReaderId, RwSpinLock, StrongTryRwLock, TryLock};

/// `TryLock`: two successful `try_lock`s can never overlap. Each holder
/// stores into the oracle without consent — any interleaving where both
/// hold the lock races and fails the check.
#[test]
fn trylock_mutual_exclusion() {
    Builder::new("trylock-exclusion").check(|| {
        let l = Arc::new(TryLock::new(()));
        let oracle = Arc::new(PeekCell::new(0u64));
        let (l2, o2) = (Arc::clone(&l), Arc::clone(&oracle));
        let t = thread::spawn(move || {
            if let Some(_g) = l2.try_lock() {
                unsafe { o2.write(1) };
                let _ = unsafe { o2.read() };
            }
        });
        if let Some(_g) = l.try_lock() {
            unsafe { oracle.write(2) };
            let _ = unsafe { oracle.read() };
        }
        t.join().unwrap();
    });
}

/// `TryLock` as a combiner-election primitive: both threads spin until
/// they win the lock, and each combines exactly one increment. Exclusion
/// plus eventual election means no update is lost: the counter ends at 2.
#[test]
fn trylock_combiner_election_loses_no_updates() {
    Builder::new("trylock-combiner").check(|| {
        let l = Arc::new(TryLock::new(()));
        let counter = Arc::new(PeekCell::new(0u64));
        let bump = |l: &TryLock<()>, c: &PeekCell<u64>| loop {
            if let Some(_g) = l.try_lock() {
                let v = unsafe { c.read() };
                unsafe { c.write(v + 1) };
                return;
            }
            thread::yield_now();
        };
        let (l2, c2) = (Arc::clone(&l), Arc::clone(&counter));
        let t = thread::spawn(move || bump(&l2, &c2));
        bump(&l, &counter);
        t.join().unwrap();
        assert_eq!(unsafe { counter.read() }, 2, "combiner lost an update");
    });
}

/// `RwSpinLock`: a reader holding the lock observes a stable value even
/// while a writer makes a deliberately non-atomic two-step update.
#[test]
fn rw_spin_read_write_exclusion() {
    Builder::new("rw-spin-exclusion").check(|| {
        let l = Arc::new(RwSpinLock::new(()));
        let oracle = Arc::new(PeekCell::new(0u64));
        let (l2, o2) = (Arc::clone(&l), Arc::clone(&oracle));
        let w = thread::spawn(move || {
            let _g = l2.write();
            unsafe { o2.write(1) };
            unsafe { o2.write(2) };
        });
        {
            let _g = l.read();
            let x = unsafe { oracle.read() };
            let y = unsafe { oracle.read() };
            assert_eq!(x, y, "reader saw a half-done write under the read lock");
            assert_ne!(x, 1, "reader observed the writer mid-critical-section");
        }
        w.join().unwrap();
    });
}

/// `DistRwLock`: a slot reader that wins `try_read` excludes the writer
/// (and vice versa), including the PR 7 SeqCst writer-recheck path.
#[test]
fn dist_rw_slot_reader_excludes_writer() {
    Builder::new("dist-rw-exclusion").check(|| {
        let l = Arc::new(DistRwLock::new((), 2));
        let oracle = Arc::new(PeekCell::new(0u64));
        let (l2, o2) = (Arc::clone(&l), Arc::clone(&oracle));
        let w = thread::spawn(move || {
            let _g = l2.write();
            unsafe { o2.write(1) };
            unsafe { o2.write(2) };
        });
        if let Some(_g) = l.try_read(ReaderId::Slot(0)) {
            let x = unsafe { oracle.read() };
            let y = unsafe { oracle.read() };
            assert_eq!(x, y, "slot reader saw a torn write");
            assert_ne!(x, 1, "slot reader overlapped the writer");
        }
        w.join().unwrap();
    });
}

/// `DistRwLock`: same property for the shared overflow line readers.
#[test]
fn dist_rw_shared_reader_excludes_writer() {
    Builder::new("dist-rw-shared").check(|| {
        let l = Arc::new(DistRwLock::new((), 1));
        let oracle = Arc::new(PeekCell::new(0u64));
        let (l2, o2) = (Arc::clone(&l), Arc::clone(&oracle));
        let w = thread::spawn(move || {
            let _g = l2.write();
            unsafe { o2.write(1) };
            unsafe { o2.write(2) };
        });
        if let Some(_g) = l.try_read(ReaderId::Shared) {
            let x = unsafe { oracle.read() };
            let y = unsafe { oracle.read() };
            assert_eq!(x, y, "shared reader saw a torn write");
            assert_ne!(x, 1, "shared reader overlapped the writer");
        }
        w.join().unwrap();
    });
}

/// `StrongTryRwLock`: `try_read` vs `try_write` exclusion through the
/// striped reader marks and the post-mark SeqCst writer recheck.
#[test]
fn strong_try_read_write_exclusion() {
    Builder::new("strong-try-exclusion").check(|| {
        let l = Arc::new(StrongTryRwLock::with_reader_slots((), 2));
        let oracle = Arc::new(PeekCell::new(0u64));
        let (l2, o2) = (Arc::clone(&l), Arc::clone(&oracle));
        let w = thread::spawn(move || {
            if let Some(_g) = l2.try_write() {
                unsafe { o2.write(1) };
                unsafe { o2.write(2) };
            }
        });
        if let Some(_g) = l.try_read() {
            let x = unsafe { oracle.read() };
            let y = unsafe { oracle.read() };
            assert_eq!(x, y, "try_read overlapped try_write");
            assert_ne!(x, 1, "try_read saw the writer mid-update");
        }
        w.join().unwrap();
    });
}

/// `StrongTryRwLock`: two blocking writers never interleave their
/// read-modify-write on the oracle, so no increment is lost.
#[test]
fn strong_try_writers_exclude_each_other() {
    Builder::new("strong-try-writers").check(|| {
        let l = Arc::new(StrongTryRwLock::new(()));
        let counter = Arc::new(PeekCell::new(0u64));
        let bump = |l: &StrongTryRwLock<()>, c: &PeekCell<u64>| {
            let _g = l.write();
            let v = unsafe { c.read() };
            unsafe { c.write(v + 1) };
        };
        let (l2, c2) = (Arc::clone(&l), Arc::clone(&counter));
        let t = thread::spawn(move || bump(&l2, &c2));
        bump(&l, &counter);
        t.join().unwrap();
        assert_eq!(unsafe { counter.read() }, 2, "writer lost an update");
    });
}
